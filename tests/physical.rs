//! Physical-design invariants: timing sanity, wirelength accounting,
//! repeated-ECO robustness, and interface bookkeeping.

use fpga_debug_tiling::prelude::*;
use fpga_debug_tiling::{implement_paper_design, sim, tiling};

#[test]
fn routed_timing_beats_worst_case_estimate() {
    let td = implement_paper_design(PaperDesign::NineSym, TilingOptions::fast(31)).unwrap();
    let routed = td.timing().unwrap();
    assert!(routed.critical_ns > 0.0);
    // Critical path must include at least input, one LUT, and output.
    assert!(routed.critical_path.len() >= 3);
    // And fmax is the reciprocal.
    let f = routed.fmax_mhz();
    assert!((f - 1000.0 / routed.critical_ns).abs() < 1e-6);
}

#[test]
fn wirelength_accounting_is_consistent() {
    let td = implement_paper_design(PaperDesign::NineSym, TilingOptions::fast(32)).unwrap();
    let total = td.routing.total_wirelength();
    let sum: usize = td.routing.iter().map(|(_, t)| t.wirelength()).sum();
    assert_eq!(total, sum);
    assert!(total > 0);
    // Every routed net's first path starts at its driver pin.
    for (net_id, tree) in td.routing.iter() {
        let net = td.netlist.net(net_id).unwrap();
        let Some(driver) = net.driver else { continue };
        let src = td.rrg.source_node(td.placement.loc_of(driver).unwrap());
        assert!(
            tree.paths.iter().any(|p| p.first() == Some(&src)),
            "net {net_id} has no path rooted at its driver"
        );
    }
}

#[test]
fn ten_consecutive_ecos_keep_the_design_consistent() {
    // Stress: alternate function changes and observation-tap
    // insertions across many tiles; the design must stay feasible,
    // valid, and functionally correct (modulo the deliberate change
    // being reverted each time).
    let mut td = implement_paper_design(PaperDesign::Sand, TilingOptions::fast(33)).unwrap();
    let golden = td.netlist.clone();
    let luts: Vec<CellId> = td
        .netlist
        .cells()
        .filter(|(_, c)| c.lut_function().is_some())
        .map(|(id, _)| id)
        .collect();
    for k in 0..10usize {
        let victim = luts[(k * 37) % luts.len()];
        if k % 2 == 0 {
            // Flip a function and flip it back (two ECOs bundled into
            // one physical re-implementation, like a real fix-up).
            let tt = *td.netlist.cell(victim).unwrap().lut_function().unwrap();
            td.netlist
                .set_lut_function(victim, tt.complement())
                .unwrap();
            td.netlist.set_lut_function(victim, tt).unwrap();
            TiledFlow::default()
                .reimplement(&mut td, &[victim], &[])
                .unwrap();
        } else {
            // Insert an observation tap (PO only, no logic).
            let net = td.netlist.cell_output(victim).unwrap();
            let rep = sim::testlogic::insert_observation_tap(
                &mut td.netlist,
                net,
                &format!("stress{k}"),
                false,
            )
            .unwrap();
            TiledFlow::default()
                .reimplement(&mut td, &[victim], &rep.added)
                .unwrap();
        }
        assert!(td.routing.is_feasible(), "infeasible after ECO {k}");
        td.netlist.validate().unwrap();
    }
    // Original outputs still behave like the golden model.
    let mut gsim = sim::Simulator::new(&golden).unwrap();
    let mut dsim = sim::Simulator::new(&td.netlist).unwrap();
    let gpos = golden.primary_outputs();
    let dpos = td.netlist.primary_outputs();
    let pairs: Vec<(usize, usize)> = gpos
        .iter()
        .enumerate()
        .filter_map(|(gk, &gpo)| {
            let name = &golden.cell(gpo).unwrap().name;
            let dpo = td.netlist.find_cell(name)?;
            let dk = dpos.iter().position(|&c| c == dpo)?;
            Some((gk, dk))
        })
        .collect();
    assert_eq!(pairs.len(), gpos.len());
    for pat in sim::PatternGen::random(golden.primary_inputs().len(), 64, 17) {
        gsim.set_inputs(&pat);
        dsim.set_inputs(&pat);
        gsim.comb_eval();
        dsim.comb_eval();
        let g = gsim.outputs();
        let d = dsim.outputs();
        for &(gk, dk) in &pairs {
            assert_eq!(g[gk], d[dk], "behaviour drifted after 10 ECOs");
        }
        gsim.step();
        dsim.step();
    }
}

#[test]
fn interface_summary_counts_crossings() {
    let td = implement_paper_design(PaperDesign::NineSym, TilingOptions::fast(34)).unwrap();
    let mut total_crossings = 0;
    for (id, _) in td.plan.iter() {
        let s = tiling::interface::tile_interface(&td.device, &td.plan, &td.rrg, &td.routing, id)
            .unwrap();
        total_crossings += s.crossings;
        assert!(s.interface_nodes <= s.crossings);
    }
    // A connected design split into ~10 tiles must cross boundaries.
    assert!(total_crossings > 0);
}

#[test]
fn timing_after_eco_stays_reasonable() {
    let mut td = implement_paper_design(PaperDesign::C880, TilingOptions::fast(35)).unwrap();
    let before = td.timing().unwrap().critical_ns;
    let victim = td
        .netlist
        .cells()
        .find(|(_, c)| c.lut_function().is_some())
        .map(|(id, _)| id)
        .unwrap();
    let tt = td
        .netlist
        .cell(victim)
        .unwrap()
        .lut_function()
        .unwrap()
        .complement();
    td.netlist.set_lut_function(victim, tt).unwrap();
    TiledFlow::default()
        .reimplement(&mut td, &[victim], &[])
        .unwrap();
    let after = td.timing().unwrap().critical_ns;
    // The paper observes tiled-ECO timing deltas within the noise of
    // small placement changes; a 3x blowup would indicate broken
    // routing bookkeeping.
    assert!(after < before * 3.0, "timing exploded: {before} -> {after}");
    assert!(after > 0.0);

    // Post-ECO normalization: every routed net's paths are indexed by
    // netlist sink order and run source pin -> sink pin contiguously.
    for (net_id, tree) in td.routing.iter() {
        let net = td.netlist.net(net_id).unwrap();
        let Some(driver) = net.driver else { continue };
        let src = td.rrg.source_node(td.placement.loc_of(driver).unwrap());
        if tree.paths.len() != net.sinks.len() {
            continue; // untouched partial trees may differ; skip
        }
        for (k, s) in net.sinks.iter().enumerate() {
            let pin = td
                .rrg
                .sink_node(td.placement.loc_of(s.cell).unwrap(), s.pin);
            assert_eq!(tree.paths[k][0], src, "net {net_id} path {k} root");
            assert_eq!(
                *tree.paths[k].last().unwrap(),
                pin,
                "net {net_id} path {k} tip"
            );
        }
    }
}

#[test]
fn quick_eco_hierarchy_granularity_orders_effort() {
    // whole-design >= real functional blocks >= tiled, on c499 (which
    // has several functional blocks).
    let mut td = implement_paper_design(PaperDesign::C499, TilingOptions::fast(36)).unwrap();
    let victim = td
        .netlist
        .cells()
        .find(|(_, c)| c.lut_function().is_some())
        .map(|(id, _)| id)
        .unwrap();
    let whole = tiling::flow_effort(
        &td,
        &mut QuickEcoFlow {
            whole_design_as_block: true,
        },
        &[victim],
    )
    .unwrap();
    let blocks = tiling::flow_effort(
        &td,
        &mut QuickEcoFlow {
            whole_design_as_block: false,
        },
        &[victim],
    )
    .unwrap();
    let tt = td
        .netlist
        .cell(victim)
        .unwrap()
        .lut_function()
        .unwrap()
        .complement();
    td.netlist.set_lut_function(victim, tt).unwrap();
    let tiled = TiledFlow::default()
        .reimplement(&mut td, &[victim], &[])
        .unwrap()
        .effort;
    // Placement effort is monotone in the movable-cell count (routing
    // expansions can go either way: better placements route easier).
    assert!(whole.place_moves >= blocks.place_moves);
    assert!(blocks.total() > tiled.total());
}

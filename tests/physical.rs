//! Physical-design invariants: timing sanity, wirelength accounting,
//! repeated-ECO robustness, and interface bookkeeping.

use fpga_debug_tiling::prelude::*;
use fpga_debug_tiling::{implement_paper_design, sim, tiling};

#[test]
fn routed_timing_beats_worst_case_estimate() {
    let td = implement_paper_design(PaperDesign::NineSym, TilingOptions::fast(31)).unwrap();
    let routed = td.timing().unwrap();
    assert!(routed.critical_ns > 0.0);
    // Critical path must include at least input, one LUT, and output.
    assert!(routed.critical_path.len() >= 3);
    // And fmax is the reciprocal.
    let f = routed.fmax_mhz();
    assert!((f - 1000.0 / routed.critical_ns).abs() < 1e-6);
}

#[test]
fn wirelength_accounting_is_consistent() {
    let td = implement_paper_design(PaperDesign::NineSym, TilingOptions::fast(32)).unwrap();
    let total = td.routing.total_wirelength();
    let sum: usize = td.routing.iter().map(|(_, t)| t.wirelength()).sum();
    assert_eq!(total, sum);
    assert!(total > 0);
    // Every routed net's first path starts at its driver pin.
    for (net_id, tree) in td.routing.iter() {
        let net = td.netlist.net(net_id).unwrap();
        let Some(driver) = net.driver else { continue };
        let src = td.rrg.source_node(td.placement.loc_of(driver).unwrap());
        assert!(
            tree.paths.iter().any(|p| p.first() == Some(&src)),
            "net {net_id} has no path rooted at its driver"
        );
    }
}

#[test]
fn ten_consecutive_ecos_keep_the_design_consistent() {
    // Stress: alternate function changes and observation-tap
    // insertions across many tiles; the design must stay feasible,
    // valid, and functionally correct (modulo the deliberate change
    // being reverted each time).
    let mut td = implement_paper_design(PaperDesign::Sand, TilingOptions::fast(33)).unwrap();
    let golden = td.netlist.clone();
    let luts: Vec<CellId> = td
        .netlist
        .cells()
        .filter(|(_, c)| c.lut_function().is_some())
        .map(|(id, _)| id)
        .collect();
    for k in 0..10usize {
        let victim = luts[(k * 37) % luts.len()];
        if k % 2 == 0 {
            // Flip a function and flip it back (two ECOs bundled into
            // one physical re-implementation, like a real fix-up).
            let tt = *td.netlist.cell(victim).unwrap().lut_function().unwrap();
            td.netlist
                .set_lut_function(victim, tt.complement())
                .unwrap();
            td.netlist.set_lut_function(victim, tt).unwrap();
            TiledFlow::default()
                .reimplement(&mut td, &[victim], &[])
                .unwrap();
        } else {
            // Insert an observation tap (PO only, no logic).
            let net = td.netlist.cell_output(victim).unwrap();
            let rep = sim::testlogic::insert_observation_tap(
                &mut td.netlist,
                net,
                &format!("stress{k}"),
                false,
            )
            .unwrap();
            TiledFlow::default()
                .reimplement(&mut td, &[victim], &rep.added)
                .unwrap();
        }
        assert!(td.routing.is_feasible(), "infeasible after ECO {k}");
        td.netlist.validate().unwrap();
    }
    // Original outputs still behave like the golden model.
    let mut gsim = sim::Simulator::new(&golden).unwrap();
    let mut dsim = sim::Simulator::new(&td.netlist).unwrap();
    let gpos = golden.primary_outputs();
    let dpos = td.netlist.primary_outputs();
    let pairs: Vec<(usize, usize)> = gpos
        .iter()
        .enumerate()
        .filter_map(|(gk, &gpo)| {
            let name = &golden.cell(gpo).unwrap().name;
            let dpo = td.netlist.find_cell(name)?;
            let dk = dpos.iter().position(|&c| c == dpo)?;
            Some((gk, dk))
        })
        .collect();
    assert_eq!(pairs.len(), gpos.len());
    for pat in sim::PatternGen::random(golden.primary_inputs().len(), 64, 17) {
        gsim.set_inputs(&pat);
        dsim.set_inputs(&pat);
        gsim.comb_eval();
        dsim.comb_eval();
        let g = gsim.outputs();
        let d = dsim.outputs();
        for &(gk, dk) in &pairs {
            assert_eq!(g[gk], d[dk], "behaviour drifted after 10 ECOs");
        }
        gsim.step();
        dsim.step();
    }
}

#[test]
fn interface_summary_counts_crossings() {
    let td = implement_paper_design(PaperDesign::NineSym, TilingOptions::fast(34)).unwrap();
    let mut total_crossings = 0;
    for (id, _) in td.plan.iter() {
        let s = tiling::interface::tile_interface(&td.device, &td.plan, &td.rrg, &td.routing, id)
            .unwrap();
        total_crossings += s.crossings;
        assert!(s.interface_nodes <= s.crossings);
    }
    // A connected design split into ~10 tiles must cross boundaries.
    assert!(total_crossings > 0);
}

#[test]
fn timing_after_eco_stays_reasonable() {
    let mut td = implement_paper_design(PaperDesign::C880, TilingOptions::fast(35)).unwrap();
    let before = td.timing().unwrap().critical_ns;
    let victim = td
        .netlist
        .cells()
        .find(|(_, c)| c.lut_function().is_some())
        .map(|(id, _)| id)
        .unwrap();
    let tt = td
        .netlist
        .cell(victim)
        .unwrap()
        .lut_function()
        .unwrap()
        .complement();
    td.netlist.set_lut_function(victim, tt).unwrap();
    TiledFlow::default()
        .reimplement(&mut td, &[victim], &[])
        .unwrap();
    let after = td.timing().unwrap().critical_ns;
    // The paper observes tiled-ECO timing deltas within the noise of
    // small placement changes; a 3x blowup would indicate broken
    // routing bookkeeping.
    assert!(after < before * 3.0, "timing exploded: {before} -> {after}");
    assert!(after > 0.0);

    // Post-ECO normalization: every routed net's paths are indexed by
    // netlist sink order and run source pin -> sink pin contiguously.
    for (net_id, tree) in td.routing.iter() {
        let net = td.netlist.net(net_id).unwrap();
        let Some(driver) = net.driver else { continue };
        let src = td.rrg.source_node(td.placement.loc_of(driver).unwrap());
        if tree.paths.len() != net.sinks.len() {
            continue; // untouched partial trees may differ; skip
        }
        for (k, s) in net.sinks.iter().enumerate() {
            let pin = td
                .rrg
                .sink_node(td.placement.loc_of(s.cell).unwrap(), s.pin);
            assert_eq!(tree.paths[k][0], src, "net {net_id} path {k} root");
            assert_eq!(
                *tree.paths[k].last().unwrap(),
                pin,
                "net {net_id} path {k} tip"
            );
        }
    }
}

#[test]
fn quick_eco_hierarchy_granularity_orders_effort() {
    // whole-design >= real functional blocks >= tiled, on c499 (which
    // has several functional blocks).
    let mut td = implement_paper_design(PaperDesign::C499, TilingOptions::fast(36)).unwrap();
    let victim = td
        .netlist
        .cells()
        .find(|(_, c)| c.lut_function().is_some())
        .map(|(id, _)| id)
        .unwrap();
    let whole = tiling::flow_effort(
        &td,
        &mut QuickEcoFlow {
            whole_design_as_block: true,
        },
        &[victim],
    )
    .unwrap();
    let blocks = tiling::flow_effort(
        &td,
        &mut QuickEcoFlow {
            whole_design_as_block: false,
        },
        &[victim],
    )
    .unwrap();
    let tt = td
        .netlist
        .cell(victim)
        .unwrap()
        .lut_function()
        .unwrap()
        .complement();
    td.netlist.set_lut_function(victim, tt).unwrap();
    let tiled = TiledFlow::default()
        .reimplement(&mut td, &[victim], &[])
        .unwrap()
        .effort;
    // Placement effort is monotone in the movable-cell count (routing
    // expansions can go either way: better placements route easier).
    assert!(whole.place_moves >= blocks.place_moves);
    assert!(blocks.total() > tiled.total());
}

#[test]
fn incremental_eco_reroutes_fewer_nets_than_tile_clearing() {
    // The truly incremental ECO path keeps every surviving route
    // installed: a function-only change re-routes nothing at all, and
    // a tap insertion re-routes only the nets that gained sinks. Tile
    // clearing pays for every net crossing the affected tiles.
    let base = implement_paper_design(PaperDesign::NineSym, TilingOptions::fast(37)).unwrap();
    let luts: Vec<CellId> = base
        .netlist
        .cells()
        .filter(|(_, c)| c.lut_function().is_some())
        .map(|(id, _)| id)
        .collect();
    let victim = luts[luts.len() / 2];

    let run_func = |incremental: bool| {
        let mut td = base.clone();
        td.options.incremental_routing = incremental;
        let tt = *td.netlist.cell(victim).unwrap().lut_function().unwrap();
        td.netlist
            .set_lut_function(victim, tt.complement())
            .unwrap();
        let out = TiledFlow::default()
            .reimplement(&mut td, &[victim], &[])
            .unwrap();
        assert!(td.routing.is_feasible());
        out
    };
    let inc = run_func(true);
    let full = run_func(false);
    assert_eq!(
        inc.rerouted_nets, 0,
        "function-only ECO must keep all routes"
    );
    assert_eq!(inc.effort.route_expansions, 0);
    assert!(
        full.rerouted_nets > 0,
        "tile clearing re-routes the tile's nets"
    );
    assert!(inc.rerouted_nets < full.rerouted_nets);

    let run_tap = |incremental: bool| {
        let mut td = base.clone();
        td.options.incremental_routing = incremental;
        let net = td.netlist.cell_output(victim).unwrap();
        let rep =
            sim::testlogic::insert_observation_tap(&mut td.netlist, net, "cmp_tap", true).unwrap();
        let out = TiledFlow::default()
            .reimplement(&mut td, &[victim], &rep.added)
            .unwrap();
        assert!(td.routing.is_feasible());
        td.netlist.validate().unwrap();
        out
    };
    let inc_tap = run_tap(true);
    let full_tap = run_tap(false);
    // The tapped net plus the new tap cells' nets — a handful, not a tile.
    assert!(inc_tap.rerouted_nets >= 1);
    assert!(
        inc_tap.rerouted_nets < full_tap.rerouted_nets,
        "incremental tap re-routed {} nets, tile clearing {}",
        inc_tap.rerouted_nets,
        full_tap.rerouted_nets
    );
    assert!(inc_tap.effort.route_expansions < full_tap.effort.route_expansions);
}

#[test]
fn incremental_eco_survivors_stay_frozen_and_drc_clean() {
    // After an incremental tap ECO the surviving route trees outside
    // the affected tiles must be byte-identical to the pre-ECO state
    // (the locked-interface contract), and the whole design must still
    // pass the static design-rule audit.
    let mut td = implement_paper_design(PaperDesign::Styr, TilingOptions::fast(38)).unwrap();
    assert!(td.options.incremental_routing);
    let luts: Vec<CellId> = td
        .netlist
        .cells()
        .filter(|(_, c)| c.lut_function().is_some())
        .map(|(id, _)| id)
        .collect();
    let victim = luts[luts.len() / 3];
    let before_placement = td.placement.clone();
    let before_routing = td.routing.clone();

    let net = td.netlist.cell_output(victim).unwrap();
    let rep =
        sim::testlogic::insert_observation_tap(&mut td.netlist, net, "frozen_tap", true).unwrap();
    let out = TiledFlow::default()
        .reimplement(&mut td, &[victim], &rep.added)
        .unwrap();
    assert!(out.confined, "tap ECO should stay on the incremental path");
    assert!(out.rerouted_nets >= 1);

    // Confinement audit: placement and routing outside the affected
    // tiles are untouched; interface pins did not move.
    let findings =
        tiling::audit_confined_eco(&td, &out.affected.tiles, &before_placement, &before_routing);
    assert!(findings.is_empty(), "confinement violated: {findings:?}");

    // The surviving trees plus the freshly routed connections must be
    // drc-clean as a whole design (no dangling segments, no overuse,
    // no phantom pins).
    let drc = tiling::check_design(&td).unwrap();
    assert!(drc.is_empty(), "post-ECO drc findings: {drc:?}");
    assert!(td.routing.is_feasible());
    td.netlist.validate().unwrap();
}

#[test]
fn incremental_congestion_fallback_converges() {
    // Starve the channel so the one-shot incremental pass cannot
    // thread a burst of new connections between frozen survivor trees.
    // The flow must detect the congestion, fall back to tile clearing
    // (visible as re-placing far more than just the added cells), and
    // still converge to a feasible routed design.
    // At the fast-options default of 12 tracks this same burst stays
    // on the incremental path; at 8 the frozen survivors leave too
    // little channel and the one-shot pass congests deterministically.
    let mut opts = TilingOptions::fast(39);
    opts.tracks = 8;
    let mut td = implement_paper_design(PaperDesign::NineSym, opts).unwrap();
    assert!(td.options.incremental_routing);

    // Tap the highest-fanout nets in one bundled ECO: many new
    // connections landing in the same neighbourhood.
    let mut by_fanout: Vec<(usize, CellId)> = td
        .netlist
        .cells()
        .filter(|(_, c)| c.lut_function().is_some())
        .map(|(id, _)| {
            let net = td.netlist.cell_output(id).unwrap();
            (td.netlist.net(net).unwrap().sinks.len(), id)
        })
        .collect();
    by_fanout.sort();
    by_fanout.reverse();
    let mut seeds = Vec::new();
    let mut added = Vec::new();
    for (k, &(_, cell)) in by_fanout.iter().take(6).enumerate() {
        let net = td.netlist.cell_output(cell).unwrap();
        let rep = sim::testlogic::insert_observation_tap(
            &mut td.netlist,
            net,
            &format!("burst{k}"),
            true,
        )
        .unwrap();
        seeds.push(cell);
        added.extend(rep.added);
    }

    let out = TiledFlow::default()
        .reimplement(&mut td, &seeds, &added)
        .unwrap();
    // Fallback proof: the incremental path only ever places the added
    // cells; tile clearing re-places every cell in the cleared tiles.
    assert!(
        out.replaced_cells > added.len(),
        "expected tile-clearing fallback, got incremental outcome \
         (replaced {} cells for {} added)",
        out.replaced_cells,
        added.len()
    );
    assert!(td.routing.is_feasible());
    td.netlist.validate().unwrap();
}

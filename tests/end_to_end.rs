//! End-to-end integration: the full paper flow on multiple designs.

use fpga_debug_tiling::prelude::*;
use fpga_debug_tiling::{implement_paper_design, sim, tiling};

fn fast(seed: u64) -> TilingOptions {
    TilingOptions::fast(seed)
}

#[test]
fn implement_inject_debug_repair_9sym() {
    let mut td = implement_paper_design(PaperDesign::NineSym, fast(101)).unwrap();
    let golden = td.netlist.clone();
    let error = sim::inject::random_error(&mut td.netlist, 7).unwrap();
    let mut events: Vec<DebugEvent> = Vec::new();
    let out = DebugSession::new(&mut td, &golden)
        .seed(5)
        .on_event(|e| events.push(e.clone()))
        .run(&error)
        .unwrap();
    assert!(out.mismatch.is_some());
    assert!(out.repaired);
    assert!(td.routing.is_feasible());
    assert!(out.ecos >= 2); // at least one tap batch plus the fix
                            // The event stream narrates the iteration in phase order.
    let detected = events
        .iter()
        .position(|e| matches!(e, DebugEvent::Detected { .. }))
        .expect("Detected event");
    let localized = events
        .iter()
        .position(|e| matches!(e, DebugEvent::Localized { .. }))
        .expect("Localized event");
    let corrected = events
        .iter()
        .position(|e| matches!(e, DebugEvent::Corrected { .. }))
        .expect("Corrected event");
    assert!(detected < localized && localized < corrected);
    // Ledger phases reconcile with the flat counters.
    assert_eq!(out.effort, out.ledger.total());
    assert_eq!(out.ecos, out.ledger.total_ecos());
}

#[test]
fn implement_inject_debug_repair_sequential_styr() {
    let mut td = implement_paper_design(PaperDesign::Styr, fast(102)).unwrap();
    assert!(td.netlist.is_sequential());
    let golden = td.netlist.clone();
    let error = sim::inject::random_error(&mut td.netlist, 77).unwrap();
    let out = DebugSession::new(&mut td, &golden)
        .seed(55)
        .run(&error)
        .unwrap();
    // Sequential detection uses an LFSR stream; a deep-state bug can
    // escape, in which case the loop reports repaired-without-detect.
    if out.mismatch.is_some() {
        assert!(out.repaired);
        assert!(td.routing.is_feasible());
    }
}

#[test]
fn eco_locality_invariant_c499() {
    // After a one-LUT ECO, every net with no node inside the affected
    // region must be bit-identical, and every cell outside must sit
    // exactly where it was.
    let mut td = implement_paper_design(PaperDesign::C499, fast(103)).unwrap();
    let placement_before: Vec<(CellId, BelLoc)> = td.placement.iter().collect();
    let routes_before: Vec<(NetId, fpga::RouteTree)> =
        td.routing.iter().map(|(n, t)| (n, t.clone())).collect();

    // Pick the victim inside the smallest tile *that holds a LUT* so
    // the cleared region stays well under the coarse-granularity
    // threshold (a region covering >=20% of the device deliberately
    // falls back to a full re-route — see tiling::eco_flow).
    let victim = td
        .plan
        .iter()
        .filter_map(|(tid, t)| {
            td.netlist
                .cells()
                .find(|(id, c)| {
                    c.lut_function().is_some()
                        && td.plan.tile_of_cell(&td.placement, *id) == Some(tid)
                })
                .map(|(id, _)| (t.rect.area(), id))
        })
        .min_by_key(|&(area, _)| area)
        .map(|(_, id)| id)
        .expect("some tile holds a LUT");
    let tt = td
        .netlist
        .cell(victim)
        .unwrap()
        .lut_function()
        .unwrap()
        .complement();
    td.netlist.set_lut_function(victim, tt).unwrap();
    let out = TiledFlow::default()
        .reimplement(&mut td, &[victim], &[])
        .unwrap();
    assert!(td.routing.is_feasible());
    // Placement outside untouched — holds on every path, including
    // the coarse fallback (which only re-routes).
    for (cell, loc) in placement_before {
        let outside = match loc.coord() {
            Some(c) => !out
                .affected
                .tiles
                .iter()
                .any(|&t| td.plan.tile(t).unwrap().rect.contains(c)),
            None => true, // IOBs never move in an ECO
        };
        if outside {
            assert_eq!(td.placement.loc_of(cell), Some(loc), "cell {cell} moved");
        }
    }
    let region_clbs: usize = out
        .affected
        .tiles
        .iter()
        .map(|&t| td.plan.tile(t).unwrap().rect.area())
        .sum();
    if region_clbs as f64 >= 0.20 * td.device.num_clbs() as f64 {
        // Coarse fallback ran (documented): routing locality waived.
        return;
    }

    let region =
        tiling::interface::RegionSet::from_tiles(&td.device, &td.plan, &out.affected.tiles);
    // Routing outside untouched (nets not touching the region).
    let mut checked = 0;
    for (net, tree) in routes_before {
        let touches = tree
            .nodes()
            .iter()
            .any(|&n| region.touches_node(&td.rrg, n));
        if !touches {
            assert_eq!(td.routing.route(net), Some(&tree), "net {net} perturbed");
            checked += 1;
        }
    }
    assert!(
        checked > 10,
        "locality check must cover many nets, got {checked}"
    );
}

#[test]
fn functional_equivalence_preserved_by_physical_eco() {
    // A physical-only ECO (re-place and re-route, no logic change)
    // must not alter design behaviour: emulate before vs after.
    let mut td = implement_paper_design(PaperDesign::C880, fast(104)).unwrap();
    let golden = td.netlist.clone();
    // Touch a tile with a no-op change (same function re-set).
    let victim = td
        .netlist
        .cells()
        .find(|(_, c)| c.lut_function().is_some())
        .map(|(id, _)| id)
        .unwrap();
    let tt = *td.netlist.cell(victim).unwrap().lut_function().unwrap();
    td.netlist.set_lut_function(victim, tt).unwrap();
    TiledFlow::default()
        .reimplement(&mut td, &[victim], &[])
        .unwrap();
    let m = sim::emulate::first_mismatch(
        &golden,
        &td.netlist,
        sim::PatternGen::random(golden.primary_inputs().len(), 128, 9),
    )
    .unwrap();
    assert_eq!(m, None, "physical ECO changed behaviour");
}

#[test]
fn observation_logic_figures_in_affected_tiles() {
    let mut td = implement_paper_design(PaperDesign::Sand, fast(105)).unwrap();
    // Insert an event counter (bulky test logic) triggered by an
    // internal net — the paper's "large counter" scenario.
    let (seed_cell, net) = {
        let (id, c) = td
            .netlist
            .cells()
            .find(|(_, c)| c.lut_function().is_some())
            .unwrap();
        (id, c.output.unwrap())
    };
    let rep = sim::testlogic::insert_event_counter(&mut td.netlist, net, 8, "cnt").unwrap();
    let clbs = sim::testlogic::clb_cost(&td.netlist, &rep);
    assert!(clbs >= 4, "8-bit counter is a real block of logic");
    let out = TiledFlow::default()
        .reimplement(&mut td, &[seed_cell], &rep.added)
        .unwrap();
    assert!(td.routing.is_feasible());
    // Every added logic cell landed inside the affected region.
    for &c in &rep.added {
        let cell = td.netlist.cell(c).unwrap();
        if cell.is_logic() {
            let t = td
                .plan
                .tile_of_cell(&td.placement, c)
                .expect("placed on a CLB");
            assert!(
                out.affected.contains(t),
                "added cell {c} outside affected tiles"
            );
        }
    }
    td.netlist.validate().unwrap();
}

#[test]
fn control_point_lets_emulation_force_state() {
    let mut td = implement_paper_design(PaperDesign::NineSym, fast(106)).unwrap();
    let (seed_cell, net) = {
        let (id, c) = td
            .netlist
            .cells()
            .find(|(_, c)| c.lut_function().is_some())
            .unwrap();
        (id, c.output.unwrap())
    };
    let cp = sim::testlogic::insert_control_point(&mut td.netlist, net, "cp").unwrap();
    let mut added = cp.report.added.clone();
    // New PIs occupy pads; the mux is logic.
    TiledFlow::default()
        .reimplement(&mut td, &[seed_cell], &added)
        .unwrap();
    added.clear();
    assert!(td.routing.is_feasible());
    // The mux must be placed and routed.
    let mux_net = td.netlist.cell_output(cp.mux).unwrap();
    assert!(td.routing.route(mux_net).is_some());
    td.netlist.validate().unwrap();
}

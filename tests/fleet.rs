//! Fleet-level guarantees of the `debugd` orchestrator.
//!
//! * **Determinism:** N campaigns over shared artifacts produce
//!   bit-identical report documents and event streams whether they
//!   run serially or fanned out over the work-stealing pool.
//! * **Fault containment:** a panicking worker task (injected via
//!   the request-level test hook) is caught, the queue drains, and
//!   the failure is *reported* — the orchestrator neither hangs nor
//!   loses sibling campaigns.
//! * **Protocol:** the file-queue server round-trips requests into
//!   reports, event streams, archives, and telemetry.
//!
//! One artifact store is shared across all tests (it dedups), so the
//! expensive implement() is paid once per process.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use debugd::{
    run_batch, ArtifactStore, CampaignRequest, CampaignStatus, FlowKind, ServeOptions, StrategyKind,
};

fn store() -> &'static ArtifactStore {
    static STORE: OnceLock<ArtifactStore> = OnceLock::new();
    STORE.get_or_init(ArtifactStore::new)
}

/// A deterministic mixed batch on the smallest design: both
/// strategies, two flows, error budgets 1 and 2.
fn mixed_requests(n: usize) -> Vec<CampaignRequest> {
    (0..n)
        .map(|i| CampaignRequest {
            id: format!("c{i:02}"),
            strategy: if i % 2 == 0 {
                StrategyKind::LinearBatches
            } else {
                StrategyKind::BinarySearch
            },
            flow: if (i / 2) % 2 == 1 {
                FlowKind::QuickEco
            } else {
                FlowKind::Tiled
            },
            error_seeds: (0..1 + (i as u64 % 2))
                .map(|e| 31 + 5 * i as u64 + e)
                .collect(),
            ..Default::default()
        })
        .collect()
}

#[test]
fn fleet_reports_are_bit_identical_to_serial() {
    let requests = mixed_requests(4);
    let serial = run_batch(store(), &requests, 1);
    let fleet = run_batch(store(), &requests, 4);
    assert_eq!(serial.results.len(), requests.len());
    assert_eq!(fleet.results.len(), requests.len());
    for (s, f) in serial.results.iter().zip(&fleet.results) {
        assert_eq!(s.status, CampaignStatus::Completed, "{}", s.id);
        assert_eq!(f.status, CampaignStatus::Completed, "{}", f.id);
        assert_eq!(s.id, f.id, "results must come back in request order");
        assert!(
            s.report_json == f.report_json,
            "campaign {} report differs between 1 and 4 workers",
            s.id
        );
        assert!(
            s.events == f.events,
            "campaign {} event stream differs between 1 and 4 workers",
            s.id
        );
        // The documents are real reports, not empty shells.
        assert!(s.report_json.contains("\"status\": \"completed\""));
        assert!(!s.events.is_empty());
    }
    // Every campaign hit one shared artifact: exactly one build ever
    // happens for the default key, however many batches ran.
    let (builds, hits) = store().stats();
    assert_eq!(builds, 1, "one implement() for the whole fleet");
    assert!(
        hits >= 7,
        "every other campaign shares the Arc (got {hits} hits)"
    );
}

#[test]
fn injected_panic_is_drained_and_reported() {
    let mut requests = mixed_requests(4);
    // Poison one campaign mid-queue.
    requests[2].inject_panic = true;
    requests[2].id = "poisoned".into();
    let outcome = run_batch(store(), &requests, 3);
    // The queue drained: every campaign has a result, in order.
    assert_eq!(outcome.results.len(), requests.len());
    for (req, res) in requests.iter().zip(&outcome.results) {
        assert_eq!(req.id, res.id);
        if req.inject_panic {
            match &res.status {
                CampaignStatus::Panicked(msg) => {
                    assert!(msg.contains("injected fault"), "payload surfaced: {msg}");
                }
                other => panic!("poisoned campaign reported {other:?}"),
            }
            assert!(res.report_json.contains("\"status\": \"panicked\""));
        } else {
            assert_eq!(res.status, CampaignStatus::Completed, "{}", res.id);
        }
    }
    assert_eq!(outcome.telemetry.panicked, 1);
    assert_eq!(outcome.telemetry.completed, requests.len() - 1);
    assert_eq!(outcome.telemetry.campaigns, requests.len());
}

#[test]
fn file_queue_serves_reports_events_and_telemetry() {
    let root = std::env::temp_dir().join(format!("debugd-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(root.join("requests")).unwrap();
    std::fs::write(
        root.join("requests/01-ok.json"),
        r#"{"id": "ok-1", "design": "9sym", "flow": "quick-eco"}"#,
    )
    .unwrap();
    std::fs::write(
        root.join("requests/02-bad.json"),
        r#"{"design": "9sym"}"#, // no id -> rejected
    )
    .unwrap();
    let summary = debugd::serve(
        &root,
        &ServeOptions {
            workers: 2,
            once: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(summary.campaigns, 1);
    assert_eq!(summary.rejected, 1);

    let report = std::fs::read_to_string(root.join("reports/ok-1.json")).unwrap();
    assert!(report.contains("\"status\": \"completed\""));
    assert!(report.contains("\"design\": \"9sym\""));
    let events = std::fs::read_to_string(root.join("events/ok-1.jsonl")).unwrap();
    assert!(events.lines().count() > 0);
    assert!(events.contains("\"event\": \"error_injected\""));
    let rejected = std::fs::read_to_string(root.join("reports/02-bad.json")).unwrap();
    assert!(rejected.contains("\"status\": \"rejected\""));
    let telemetry = std::fs::read_to_string(root.join("telemetry.json")).unwrap();
    assert!(telemetry.contains("\"campaigns\": 1"));
    assert!(telemetry.contains("\"rejected\": 1"));
    // Processed requests moved out of the queue.
    assert!(!root.join("requests/01-ok.json").exists());
    assert!(root.join("archive/01-ok.json").exists());
    assert!(root.join("archive/02-bad.json").exists());
    let _ = std::fs::remove_dir_all(&root);
}

/// Waits for `path` to appear, panicking after a generous deadline
/// (the poll server needs one scan plus one campaign to produce it).
fn wait_for(path: &std::path::Path, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while !path.exists() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The long-running poll mode (not `--once`): staggered requests are
/// drained incrementally across scans, the stop file shuts the loop
/// down, and the scan counter lands in both the summary and the
/// `metrics.prom` exposition.
#[test]
fn poll_mode_drains_staggered_requests_until_stopped() {
    let root = std::env::temp_dir().join(format!("debugd-poll-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(root.join("requests")).unwrap();
    // First request is already queued when the server starts.
    std::fs::write(
        root.join("requests/01-first.json"),
        r#"{"id": "first", "design": "9sym", "flow": "quick-eco"}"#,
    )
    .unwrap();
    let server_root = root.clone();
    let server = std::thread::spawn(move || {
        debugd::serve(
            &server_root,
            &ServeOptions {
                workers: 2,
                once: false,
                poll: Duration::from_millis(25),
            },
        )
        .unwrap()
    });
    // The second request arrives only after the first completed — a
    // later scan must pick it up, proving the loop actually polls.
    wait_for(&root.join("reports/first.json"), "first report");
    std::fs::write(
        root.join("requests/02-second.json"),
        r#"{"id": "second", "design": "9sym", "flow": "quick-eco"}"#,
    )
    .unwrap();
    wait_for(&root.join("reports/second.json"), "second report");
    std::fs::write(root.join("stop"), "").unwrap();
    let summary = server.join().unwrap();

    assert_eq!(summary.campaigns, 2);
    assert_eq!(summary.rejected, 0);
    assert!(
        summary.scans >= 2,
        "staggered requests need at least two scans (got {})",
        summary.scans
    );
    for (i, id) in ["first", "second"].iter().enumerate() {
        let report = std::fs::read_to_string(root.join(format!("reports/{id}.json"))).unwrap();
        assert!(report.contains("\"status\": \"completed\""), "{id}");
        assert!(root.join(format!("archive/0{}-{id}.json", i + 1)).exists());
    }
    // Drain order followed arrival order: the first campaign's report
    // existed before the second request was even written (enforced by
    // the wait above), and both event streams were persisted.
    assert!(root.join("events/first.jsonl").exists());
    assert!(root.join("events/second.jsonl").exists());
    let prom = std::fs::read_to_string(root.join("metrics.prom")).unwrap();
    assert!(
        prom.contains("debugd_poll_scans_total"),
        "poll loop must export its scan counter"
    );
    let scans_line = prom
        .lines()
        .find(|l| l.starts_with("debugd_poll_scans_total"))
        .unwrap();
    let exported: u64 = scans_line
        .split_whitespace()
        .last()
        .unwrap()
        .parse()
        .unwrap();
    // metrics.prom is rendered at the end of every scan, so the file
    // trails the final count by at most the stop-file scan.
    assert!(
        exported >= 2 && exported <= summary.scans as u64,
        "exported {exported} scans vs summary {}",
        summary.scans
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Every `DebugEvent` JSONL row carries a monotonic `seq` field:
/// 0, 1, 2, ... in stream order, so consumers can detect reordering
/// or loss after the rows leave the process.
#[test]
fn event_streams_carry_monotonic_seq_numbers() {
    let requests = mixed_requests(2);
    let outcome = run_batch(store(), &requests, 2);
    for result in &outcome.results {
        assert!(!result.events.is_empty(), "{}", result.id);
        for (i, line) in result.events.iter().enumerate() {
            assert!(
                line.starts_with(&format!("{{\"seq\": {i}, ")),
                "campaign {} event {i} lost its seq prefix: {line}",
                result.id
            );
        }
    }
}

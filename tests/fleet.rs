//! Fleet-level guarantees of the `debugd` orchestrator.
//!
//! * **Determinism:** N campaigns over shared artifacts produce
//!   bit-identical report documents and event streams whether they
//!   run serially or fanned out over the work-stealing pool.
//! * **Fault containment:** a panicking worker task (injected via
//!   the request-level test hook) is caught, the queue drains, and
//!   the failure is *reported* — the orchestrator neither hangs nor
//!   loses sibling campaigns.
//! * **Protocol:** the file-queue server round-trips requests into
//!   reports, event streams, archives, and telemetry.
//!
//! One artifact store is shared across all tests (it dedups), so the
//! expensive implement() is paid once per process.

use std::sync::OnceLock;

use debugd::{
    run_batch, ArtifactStore, CampaignRequest, CampaignStatus, FlowKind, ServeOptions, StrategyKind,
};

fn store() -> &'static ArtifactStore {
    static STORE: OnceLock<ArtifactStore> = OnceLock::new();
    STORE.get_or_init(ArtifactStore::new)
}

/// A deterministic mixed batch on the smallest design: both
/// strategies, two flows, error budgets 1 and 2.
fn mixed_requests(n: usize) -> Vec<CampaignRequest> {
    (0..n)
        .map(|i| CampaignRequest {
            id: format!("c{i:02}"),
            strategy: if i % 2 == 0 {
                StrategyKind::LinearBatches
            } else {
                StrategyKind::BinarySearch
            },
            flow: if (i / 2) % 2 == 1 {
                FlowKind::QuickEco
            } else {
                FlowKind::Tiled
            },
            error_seeds: (0..1 + (i as u64 % 2))
                .map(|e| 31 + 5 * i as u64 + e)
                .collect(),
            ..Default::default()
        })
        .collect()
}

#[test]
fn fleet_reports_are_bit_identical_to_serial() {
    let requests = mixed_requests(4);
    let serial = run_batch(store(), &requests, 1);
    let fleet = run_batch(store(), &requests, 4);
    assert_eq!(serial.results.len(), requests.len());
    assert_eq!(fleet.results.len(), requests.len());
    for (s, f) in serial.results.iter().zip(&fleet.results) {
        assert_eq!(s.status, CampaignStatus::Completed, "{}", s.id);
        assert_eq!(f.status, CampaignStatus::Completed, "{}", f.id);
        assert_eq!(s.id, f.id, "results must come back in request order");
        assert!(
            s.report_json == f.report_json,
            "campaign {} report differs between 1 and 4 workers",
            s.id
        );
        assert!(
            s.events == f.events,
            "campaign {} event stream differs between 1 and 4 workers",
            s.id
        );
        // The documents are real reports, not empty shells.
        assert!(s.report_json.contains("\"status\": \"completed\""));
        assert!(!s.events.is_empty());
    }
    // Every campaign hit one shared artifact: exactly one build ever
    // happens for the default key, however many batches ran.
    let (builds, hits) = store().stats();
    assert_eq!(builds, 1, "one implement() for the whole fleet");
    assert!(
        hits >= 7,
        "every other campaign shares the Arc (got {hits} hits)"
    );
}

#[test]
fn injected_panic_is_drained_and_reported() {
    let mut requests = mixed_requests(4);
    // Poison one campaign mid-queue.
    requests[2].inject_panic = true;
    requests[2].id = "poisoned".into();
    let outcome = run_batch(store(), &requests, 3);
    // The queue drained: every campaign has a result, in order.
    assert_eq!(outcome.results.len(), requests.len());
    for (req, res) in requests.iter().zip(&outcome.results) {
        assert_eq!(req.id, res.id);
        if req.inject_panic {
            match &res.status {
                CampaignStatus::Panicked(msg) => {
                    assert!(msg.contains("injected fault"), "payload surfaced: {msg}");
                }
                other => panic!("poisoned campaign reported {other:?}"),
            }
            assert!(res.report_json.contains("\"status\": \"panicked\""));
        } else {
            assert_eq!(res.status, CampaignStatus::Completed, "{}", res.id);
        }
    }
    assert_eq!(outcome.telemetry.panicked, 1);
    assert_eq!(outcome.telemetry.completed, requests.len() - 1);
    assert_eq!(outcome.telemetry.campaigns, requests.len());
}

#[test]
fn file_queue_serves_reports_events_and_telemetry() {
    let root = std::env::temp_dir().join(format!("debugd-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(root.join("requests")).unwrap();
    std::fs::write(
        root.join("requests/01-ok.json"),
        r#"{"id": "ok-1", "design": "9sym", "flow": "quick-eco"}"#,
    )
    .unwrap();
    std::fs::write(
        root.join("requests/02-bad.json"),
        r#"{"design": "9sym"}"#, // no id -> rejected
    )
    .unwrap();
    let summary = debugd::serve(
        &root,
        &ServeOptions {
            workers: 2,
            once: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(summary.campaigns, 1);
    assert_eq!(summary.rejected, 1);

    let report = std::fs::read_to_string(root.join("reports/ok-1.json")).unwrap();
    assert!(report.contains("\"status\": \"completed\""));
    assert!(report.contains("\"design\": \"9sym\""));
    let events = std::fs::read_to_string(root.join("events/ok-1.jsonl")).unwrap();
    assert!(events.lines().count() > 0);
    assert!(events.contains("\"event\": \"error_injected\""));
    let rejected = std::fs::read_to_string(root.join("reports/02-bad.json")).unwrap();
    assert!(rejected.contains("\"status\": \"rejected\""));
    let telemetry = std::fs::read_to_string(root.join("telemetry.json")).unwrap();
    assert!(telemetry.contains("\"campaigns\": 1"));
    assert!(telemetry.contains("\"rejected\": 1"));
    // Processed requests moved out of the queue.
    assert!(!root.join("requests/01-ok.json").exists());
    assert!(root.join("archive/01-ok.json").exists());
    assert!(root.join("archive/02-bad.json").exists());
    let _ = std::fs::remove_dir_all(&root);
}

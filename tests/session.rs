//! Session-level integration: the four physical flows driven through
//! one `ReimplFlow` trait, binary-search localization beating linear
//! batching on a real implemented design, and the `DebugEvent`
//! stream's ordering invariants (detect ≺ localize ≺ confirm ≺
//! correct, per error) with a ledger that reconciles exactly.

use fpga_debug_tiling::prelude::*;
use fpga_debug_tiling::{implement_paper_design, sim, tiling};
use netlist::TruthTable;

/// A `len`-LUT inverter chain with one PI and one PO, plus an empty
/// hierarchy — the cleanest possible deep suspect cone.
fn chain_design(len: usize) -> (netlist::Netlist, netlist::Hierarchy) {
    let mut nl = netlist::Netlist::new("chain");
    let pi = nl.add_input("a").unwrap();
    let mut net = nl.cell_output(pi).unwrap();
    for k in 0..len {
        let c = nl
            .add_lut(format!("inv{k}"), TruthTable::not(), &[net])
            .unwrap();
        net = nl.cell_output(c).unwrap();
    }
    nl.add_output("y", net).unwrap();
    let hier = netlist::Hierarchy::new("chain");
    (nl, hier)
}

/// The session-level sibling of `tiling_beats_the_baselines_on_a_small_change`:
/// the *same* planted error is debugged end-to-end (detect → localize
/// → confirm → correct) through all four flows behind
/// `&mut dyn ReimplFlow`, and the tiled flow spends the least effort.
#[test]
fn session_tiled_flow_beats_rival_flows_on_a_debug_iteration() {
    let td0 = implement_paper_design(PaperDesign::NineSym, TilingOptions::fast(201)).unwrap();
    let golden = td0.netlist.clone();

    let mut totals: Vec<(&'static str, u64)> = Vec::new();
    for flow in tiling::standard_flows() {
        let mut td = td0.clone();
        // Deterministic: the same error in every trial.
        let victim = bench_harness_victim(&td);
        let error = sim::inject::inject(
            &mut td.netlist,
            victim,
            sim::inject::DesignErrorKind::Complement,
        )
        .unwrap();
        let out = DebugSession::new(&mut td, &golden)
            .seed(9)
            .flow(flow)
            .run(&error)
            .unwrap();
        assert!(out.mismatch.is_some(), "{}: undetected", out.flow);
        assert!(out.repaired, "{}: not repaired", out.flow);
        assert!(td.routing.is_feasible(), "{}: infeasible", out.flow);
        totals.push((out.flow, out.effort.total()));
    }

    let total_of = |name: &str| {
        totals
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, t)| t)
            .unwrap()
    };
    let tiled = total_of("tiled");
    assert!(
        tiled < total_of("full"),
        "tiled {tiled} vs full {}",
        total_of("full")
    );
    assert!(
        tiled < total_of("quick_eco"),
        "tiled {tiled} vs quick_eco {}",
        total_of("quick_eco")
    );
    assert!(
        tiled <= total_of("incremental"),
        "tiled {tiled} vs incremental {}",
        total_of("incremental")
    );
}

fn bench_harness_victim(td: &TiledDesign) -> netlist::CellId {
    let luts: Vec<netlist::CellId> = td
        .netlist
        .cells()
        .filter(|(_, c)| c.lut_function().is_some())
        .map(|(id, _)| id)
        .collect();
    luts[luts.len() / 2]
}

/// The acceptance experiment for the `BinarySearch` strategy: on a
/// design whose suspect cone spans many tap batches, bisection
/// localizes the *identical* cell while inserting strictly fewer taps
/// and performing strictly fewer ECOs than linear batching.
#[test]
fn binary_search_beats_linear_batches_on_a_deep_cone() {
    let (nl, hier) = chain_design(96);
    let td0 = tiling::implement(nl, hier, TilingOptions::fast(202)).unwrap();
    let golden = td0.netlist.clone();
    // Error deep in the chain: linear batching must walk ~11 batches.
    let victim = golden.find_cell("inv85").unwrap();

    let run = |strategy: Box<dyn LocalizationStrategy>| {
        let mut td = td0.clone();
        let error = sim::inject::inject(
            &mut td.netlist,
            victim,
            sim::inject::DesignErrorKind::Complement,
        )
        .unwrap();
        let out = DebugSession::new(&mut td, &golden)
            .seed(3)
            .strategy(strategy)
            .run(&error)
            .unwrap();
        assert!(out.repaired, "{}: not repaired", out.strategy);
        assert!(td.routing.is_feasible());
        out
    };

    let linear = run(Box::<LinearBatches>::default());
    let binary = run(Box::new(BinarySearch::new()));

    assert_eq!(linear.localized, Some(victim), "linear missed the bug");
    assert_eq!(
        binary.localized, linear.localized,
        "strategies disagree on the error site"
    );
    assert!(
        linear.taps_inserted > LinearBatches::DEFAULT_BATCH,
        "test needs a cone spanning >= 2 tap batches, got {} taps",
        linear.taps_inserted
    );
    assert!(
        binary.taps_inserted < linear.taps_inserted,
        "binary {} taps !< linear {} taps",
        binary.taps_inserted,
        linear.taps_inserted
    );
    assert!(
        binary.ecos < linear.ecos,
        "binary {} ECOs !< linear {} ECOs",
        binary.ecos,
        linear.ecos
    );
}

/// Indices of the events matching `pred`, in emission order.
fn indices_of(events: &[DebugEvent], pred: impl Fn(&DebugEvent) -> bool) -> Vec<usize> {
    events
        .iter()
        .enumerate()
        .filter(|(_, e)| pred(e))
        .map(|(i, _)| i)
        .collect()
}

/// The single-error protocol must narrate its phases in order —
/// detect ≺ suspects ≺ tap/observe pairs ≺ localized ≺ confirmed ≺
/// corrected — and the per-phase `EffortLedger` must reconcile
/// exactly with the outcome's flat counters.
#[test]
fn event_stream_respects_phase_order_and_ledger_reconciles() {
    let (nl, hier) = chain_design(24);
    let mut td = tiling::implement(nl, hier, TilingOptions::fast(204)).unwrap();
    let golden = td.netlist.clone();
    let victim = golden.find_cell("inv15").unwrap();
    let error = sim::inject::inject(
        &mut td.netlist,
        victim,
        sim::inject::DesignErrorKind::Complement,
    )
    .unwrap();
    let mut events: Vec<DebugEvent> = Vec::new();
    let out = DebugSession::new(&mut td, &golden)
        .seed(6)
        .on_event(|e| events.push(e.clone()))
        .run(&error)
        .unwrap();
    assert!(out.repaired);

    let detected = indices_of(&events, |e| matches!(e, DebugEvent::Detected { .. }));
    let suspects = indices_of(&events, |e| {
        matches!(e, DebugEvent::SuspectsComputed { .. })
    });
    let taps = indices_of(&events, |e| matches!(e, DebugEvent::TapEco { .. }));
    let observed = indices_of(&events, |e| matches!(e, DebugEvent::Observed { .. }));
    let localized = indices_of(&events, |e| matches!(e, DebugEvent::Localized { .. }));
    let confirmed = indices_of(&events, |e| matches!(e, DebugEvent::Confirmed { .. }));
    let corrected = indices_of(&events, |e| matches!(e, DebugEvent::Corrected { .. }));
    assert_eq!(detected.len(), 1);
    assert_eq!(suspects.len(), 1);
    assert_eq!(localized.len(), 1);
    assert_eq!(confirmed.len(), 1);
    assert_eq!(corrected.len(), 1);
    assert!(!taps.is_empty(), "localization must tap at least once");
    assert!(detected[0] < suspects[0], "detection precedes the cone");
    assert!(suspects[0] < taps[0], "the cone precedes localization");
    assert_eq!(taps.len(), observed.len(), "every tap ECO gets observed");
    for (t, o) in taps.iter().zip(&observed) {
        assert!(t < o, "tap ECO {t} must precede its observation {o}");
    }
    assert!(*observed.last().unwrap() < localized[0]);
    assert!(localized[0] < confirmed[0], "localize precedes confirm");
    assert!(confirmed[0] < corrected[0], "confirm precedes correct");
    assert_eq!(corrected[0], events.len() - 1, "correction concludes");

    // Ledger reconciliation: phases sum to the flat totals, and
    // detection (pure emulation) charges no physical effort.
    let phase_effort: u64 = Phase::ALL
        .iter()
        .map(|&p| out.ledger.phase(p).effort.total())
        .sum();
    assert_eq!(phase_effort, out.effort.total());
    let phase_ecos: usize = Phase::ALL.iter().map(|&p| out.ledger.phase(p).ecos).sum();
    assert_eq!(phase_ecos, out.ecos);
    assert_eq!(out.ledger.phase(Phase::Detect).effort, CadEffort::default());
    assert_eq!(taps.len(), out.ledger.phase(Phase::Localize).ecos);
}

/// The concurrent protocol keeps the same order per error: all
/// detections (one per cluster), then the cone split, then the shared
/// tap rounds, then one localization + confirmation per cluster, and
/// a single correction last; the per-cluster ledgers apportion every
/// phase of the global ledger exactly.
#[test]
fn concurrent_event_stream_orders_clusters_and_apportions_ledger() {
    // An 8-LUT backbone fanning into two 4-LUT branches.
    let mut nl = netlist::Netlist::new("bb");
    let pi = nl.add_input("a").unwrap();
    let mut net = nl.cell_output(pi).unwrap();
    for k in 0..8 {
        let c = nl
            .add_lut(format!("bb{k}"), TruthTable::not(), &[net])
            .unwrap();
        net = nl.cell_output(c).unwrap();
    }
    let mut victims = Vec::new();
    for b in 0..2 {
        let mut bnet = net;
        for k in 0..4 {
            let c = nl
                .add_lut(format!("br{b}_{k}"), TruthTable::not(), &[bnet])
                .unwrap();
            bnet = nl.cell_output(c).unwrap();
            if k == 1 {
                victims.push(c);
            }
        }
        nl.add_output(format!("y{b}"), bnet).unwrap();
    }
    let hier = netlist::Hierarchy::new("bb");
    let mut td = tiling::implement(nl, hier, TilingOptions::fast(205)).unwrap();
    let golden = td.netlist.clone();
    let errors: Vec<_> = victims
        .iter()
        .map(|&v| {
            sim::inject::inject(&mut td.netlist, v, sim::inject::DesignErrorKind::Complement)
                .unwrap()
        })
        .collect();
    let mut events: Vec<DebugEvent> = Vec::new();
    let out = DebugSession::new(&mut td, &golden)
        .seed(8)
        .on_event(|e| events.push(e.clone()))
        .run_concurrent(&errors)
        .unwrap();
    assert!(out.repaired);
    assert_eq!(out.clusters.len(), 2);

    let detected = indices_of(&events, |e| matches!(e, DebugEvent::Detected { .. }));
    let split = indices_of(&events, |e| matches!(e, DebugEvent::ConeSplit { .. }));
    let taps = indices_of(&events, |e| matches!(e, DebugEvent::TapEco { .. }));
    let localized = indices_of(&events, |e| matches!(e, DebugEvent::Localized { .. }));
    let confirmed = indices_of(&events, |e| matches!(e, DebugEvent::Confirmed { .. }));
    let corrected = indices_of(&events, |e| matches!(e, DebugEvent::Corrected { .. }));
    assert_eq!(detected.len(), 2, "one detection per cluster");
    assert_eq!(split.len(), 1, "one cone split for the campaign");
    assert_eq!(localized.len(), 2, "one localization per cluster");
    assert_eq!(confirmed.len(), 2, "one confirmation per cluster");
    assert_eq!(corrected.len(), 1, "one shared corrective ECO");
    assert!(detected.iter().all(|&d| d < split[0]));
    assert!(taps.iter().all(|&t| split[0] < t && t < localized[0]));
    assert!(localized.iter().all(|&l| l < confirmed[0]));
    assert!(confirmed.iter().all(|&c| c < corrected[0]));
    assert_eq!(corrected[0], events.len() - 1);

    // Per-phase apportioning: for every phase, the cluster ledgers
    // sum exactly to the campaign ledger (no effort lost or minted).
    for p in Phase::ALL {
        let split_effort: u64 = out
            .clusters
            .iter()
            .map(|c| c.ledger.phase(p).effort.total())
            .sum();
        assert_eq!(split_effort, out.ledger.phase(p).effort.total(), "{p}");
    }
    let phase_ecos: usize = Phase::ALL.iter().map(|&p| out.ledger.phase(p).ecos).sum();
    assert_eq!(phase_ecos, out.ecos);
}

//! Session-level integration: the four physical flows driven through
//! one `ReimplFlow` trait, and binary-search localization beating
//! linear batching on a real implemented design.

use fpga_debug_tiling::prelude::*;
use fpga_debug_tiling::{implement_paper_design, sim, tiling};
use netlist::TruthTable;

/// A `len`-LUT inverter chain with one PI and one PO, plus an empty
/// hierarchy — the cleanest possible deep suspect cone.
fn chain_design(len: usize) -> (netlist::Netlist, netlist::Hierarchy) {
    let mut nl = netlist::Netlist::new("chain");
    let pi = nl.add_input("a").unwrap();
    let mut net = nl.cell_output(pi).unwrap();
    for k in 0..len {
        let c = nl
            .add_lut(format!("inv{k}"), TruthTable::not(), &[net])
            .unwrap();
        net = nl.cell_output(c).unwrap();
    }
    nl.add_output("y", net).unwrap();
    let hier = netlist::Hierarchy::new("chain");
    (nl, hier)
}

/// The session-level sibling of `tiling_beats_the_baselines_on_a_small_change`:
/// the *same* planted error is debugged end-to-end (detect → localize
/// → confirm → correct) through all four flows behind
/// `&mut dyn ReimplFlow`, and the tiled flow spends the least effort.
#[test]
fn session_tiled_flow_beats_rival_flows_on_a_debug_iteration() {
    let td0 = implement_paper_design(PaperDesign::NineSym, TilingOptions::fast(201)).unwrap();
    let golden = td0.netlist.clone();

    let mut totals: Vec<(&'static str, u64)> = Vec::new();
    for flow in tiling::standard_flows() {
        let mut td = td0.clone();
        // Deterministic: the same error in every trial.
        let victim = bench_harness_victim(&td);
        let error = sim::inject::inject(
            &mut td.netlist,
            victim,
            sim::inject::DesignErrorKind::Complement,
        )
        .unwrap();
        let out = DebugSession::new(&mut td, &golden)
            .seed(9)
            .flow(flow)
            .run(&error)
            .unwrap();
        assert!(out.mismatch.is_some(), "{}: undetected", out.flow);
        assert!(out.repaired, "{}: not repaired", out.flow);
        assert!(td.routing.is_feasible(), "{}: infeasible", out.flow);
        totals.push((out.flow, out.effort.total()));
    }

    let total_of = |name: &str| {
        totals
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, t)| t)
            .unwrap()
    };
    let tiled = total_of("tiled");
    assert!(
        tiled < total_of("full"),
        "tiled {tiled} vs full {}",
        total_of("full")
    );
    assert!(
        tiled < total_of("quick_eco"),
        "tiled {tiled} vs quick_eco {}",
        total_of("quick_eco")
    );
    assert!(
        tiled <= total_of("incremental"),
        "tiled {tiled} vs incremental {}",
        total_of("incremental")
    );
}

fn bench_harness_victim(td: &TiledDesign) -> netlist::CellId {
    let luts: Vec<netlist::CellId> = td
        .netlist
        .cells()
        .filter(|(_, c)| c.lut_function().is_some())
        .map(|(id, _)| id)
        .collect();
    luts[luts.len() / 2]
}

/// The acceptance experiment for the `BinarySearch` strategy: on a
/// design whose suspect cone spans many tap batches, bisection
/// localizes the *identical* cell while inserting strictly fewer taps
/// and performing strictly fewer ECOs than linear batching.
#[test]
fn binary_search_beats_linear_batches_on_a_deep_cone() {
    let (nl, hier) = chain_design(96);
    let td0 = tiling::implement(nl, hier, TilingOptions::fast(202)).unwrap();
    let golden = td0.netlist.clone();
    // Error deep in the chain: linear batching must walk ~11 batches.
    let victim = golden.find_cell("inv85").unwrap();

    let run = |strategy: Box<dyn LocalizationStrategy>| {
        let mut td = td0.clone();
        let error = sim::inject::inject(
            &mut td.netlist,
            victim,
            sim::inject::DesignErrorKind::Complement,
        )
        .unwrap();
        let out = DebugSession::new(&mut td, &golden)
            .seed(3)
            .strategy(strategy)
            .run(&error)
            .unwrap();
        assert!(out.repaired, "{}: not repaired", out.strategy);
        assert!(td.routing.is_feasible());
        out
    };

    let linear = run(Box::<LinearBatches>::default());
    let binary = run(Box::new(BinarySearch::new()));

    assert_eq!(linear.localized, Some(victim), "linear missed the bug");
    assert_eq!(
        binary.localized, linear.localized,
        "strategies disagree on the error site"
    );
    assert!(
        linear.taps_inserted > LinearBatches::DEFAULT_BATCH,
        "test needs a cone spanning >= 2 tap batches, got {} taps",
        linear.taps_inserted
    );
    assert!(
        binary.taps_inserted < linear.taps_inserted,
        "binary {} taps !< linear {} taps",
        binary.taps_inserted,
        linear.taps_inserted
    );
    assert!(
        binary.ecos < linear.ecos,
        "binary {} ECOs !< linear {} ECOs",
        binary.ecos,
        linear.ecos
    );
}

//! Property tests on the ECO machinery and affected-tile algebra.

use fpga_debug_tiling::prelude::*;
use proptest::prelude::*;

fn fixture() -> Netlist {
    let mut nl = Netlist::new("p");
    let a = nl.add_input("a").unwrap();
    let b = nl.add_input("b").unwrap();
    let na = nl.cell_output(a).unwrap();
    let nb = nl.cell_output(b).unwrap();
    let u = nl.add_lut("u", TruthTable::and(2), &[na, nb]).unwrap();
    let v = nl
        .add_lut("v", TruthTable::xor(2), &[nl.cell_output(u).unwrap(), nb])
        .unwrap();
    nl.add_output("y", nl.cell_output(v).unwrap()).unwrap();
    nl
}

proptest! {
    /// Injecting any design error and applying its repair op restores
    /// the original netlist function exactly.
    #[test]
    fn inject_then_repair_is_identity(seed: u64) {
        let golden = fixture();
        let mut dut = golden.clone();
        let err = sim::inject::random_error(&mut dut, seed).unwrap();
        // The bug actually changed the function table.
        prop_assert_ne!(err.original, err.buggy);
        netlist::eco::apply(&mut dut, &sim::inject::repair_op(&err)).unwrap();
        let cell = dut.cell(err.cell).unwrap();
        prop_assert_eq!(cell.lut_function(), Some(&err.original));
        // Behaviourally identical again.
        let m = sim::emulate::first_mismatch(&golden, &dut, PatternGen::exhaustive(2)).unwrap();
        prop_assert_eq!(m, None);
    }

    /// Whole-function errors are always detectable exhaustively; a
    /// single flipped minterm may legitimately escape when the flipped
    /// input row is unreachable (here: v's row u=1,b=0 cannot occur
    /// because u = a AND b). Detection must agree with reachability.
    #[test]
    fn injected_errors_detectability_matches_reachability(seed: u64) {
        let golden = fixture();
        let mut dut = golden.clone();
        let err = sim::inject::random_error(&mut dut, seed).unwrap();
        let m = sim::emulate::first_mismatch(&golden, &dut, PatternGen::exhaustive(2)).unwrap();
        match err.kind {
            sim::inject::DesignErrorKind::Complement => {
                prop_assert!(m.is_some(), "complement must always be visible");
            }
            _ => {
                // If undetected, the mutation must be on the internal
                // cell v with its unreachable row as the only change.
                if m.is_none() {
                    let v = golden.find_cell("v").unwrap();
                    prop_assert_eq!(err.cell, v, "masked error not on v: {:?}", err.kind);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// Affected-tile sets grow monotonically with the logic demand and
    /// never shrink below the seed tiles.
    #[test]
    fn affected_set_is_monotone(extra_a in 0usize..20, extra_b in 0usize..20) {
        use tiling::affected::{AffectedSet, ExpansionPolicy};
        let bundle = PaperDesign::NineSym.generate().unwrap();
        let td = tiling::implement(bundle.netlist, bundle.hierarchy, TilingOptions::fast(77))
            .unwrap();
        let seed_cell = td
            .netlist
            .cells()
            .find(|(_, c)| c.lut_function().is_some())
            .map(|(id, _)| id)
            .unwrap();
        let (lo, hi) = if extra_a <= extra_b { (extra_a, extra_b) } else { (extra_b, extra_a) };
        let small = AffectedSet::compute(
            &td.plan, &td.placement, &[seed_cell], lo, ExpansionPolicy::MostFree,
        ).unwrap();
        let large = AffectedSet::compute(
            &td.plan, &td.placement, &[seed_cell], hi, ExpansionPolicy::MostFree,
        ).unwrap();
        prop_assert!(large.tiles.len() >= small.tiles.len());
        prop_assert!(!small.tiles.is_empty());
        // The seed tile is always first.
        prop_assert_eq!(small.tiles[0], large.tiles[0]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// BLIF round-trips preserve simulated behaviour on random
    /// single-LUT circuits.
    #[test]
    fn blif_roundtrip_preserves_behaviour(bits: u64, row_raw: u64) {
        let tt = TruthTable::from_bits(4, bits).unwrap();
        let mut nl = Netlist::new("rt");
        let ins: Vec<NetId> = (0..4)
            .map(|i| {
                let c = nl.add_input(format!("i{i}")).unwrap();
                nl.cell_output(c).unwrap()
            })
            .collect();
        let u = nl.add_lut("u", tt, &ins).unwrap();
        nl.add_output("y", nl.cell_output(u).unwrap()).unwrap();
        let text = netlist::blif::write(&nl);
        let back = netlist::blif::parse(&text).unwrap();
        let mut s1 = Simulator::new(&nl).unwrap();
        let mut s2 = Simulator::new(&back).unwrap();
        let row = row_raw % 16;
        let inputs: Vec<bool> = (0..4).map(|k| row >> k & 1 == 1).collect();
        s1.set_inputs(&inputs);
        s2.set_inputs(&inputs);
        s1.comb_eval();
        s2.comb_eval();
        prop_assert_eq!(s1.outputs(), s2.outputs());
    }
}

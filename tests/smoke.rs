//! Fast facade smoke test: the full implement flow on the paper's
//! smallest design, with light effort settings. This keeps the
//! facade's happy path covered in every CI run even when the
//! paper-scale tests are `#[ignore]`d.

use fpga_debug_tiling::prelude::*;

#[test]
fn facade_quickstart_implements_and_routes() {
    let td =
        fpga_debug_tiling::implement_paper_design(PaperDesign::NineSym, TilingOptions::fast(1))
            .expect("9sym implements with fast options");
    assert!(td.routing.is_feasible(), "routing must be feasible");
    assert!(td.plan.len() >= 2, "design is actually tiled");
    assert!(td.initial_effort.total() > 0, "effort metering is live");
}

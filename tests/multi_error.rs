//! Acceptance test for simultaneous multi-error diagnosis
//! (`tiling::diagnosis`): three errors with overlapping suspect cones
//! on a 64-LUT design, localized concurrently through the tiled flow
//! for fewer total taps and ECOs than three sequential single-error
//! campaigns — under both localization strategies.

use fpga_debug_tiling::prelude::*;
use fpga_debug_tiling::{sim, tiling};
use netlist::TruthTable;

const BACKBONE: usize = 40;
const BRANCHES: usize = 3;
const BRANCH_LEN: usize = 8;
const ERR_DEPTH: usize = 5;

/// A 40-LUT backbone chain fanning out into three 8-LUT branch
/// chains (64 LUTs total), each branch ending in its own primary
/// output. Every branch's suspect cone contains the whole backbone,
/// so the three cones overlap in a 40-cell shared core.
fn overlapping_cone_design() -> (netlist::Netlist, netlist::Hierarchy, Vec<netlist::CellId>) {
    let mut nl = netlist::Netlist::new("triplet");
    let pi = nl.add_input("a").unwrap();
    let mut net = nl.cell_output(pi).unwrap();
    for k in 0..BACKBONE {
        let c = nl
            .add_lut(format!("bb{k}"), TruthTable::not(), &[net])
            .unwrap();
        net = nl.cell_output(c).unwrap();
    }
    let mut victims = Vec::new();
    for b in 0..BRANCHES {
        let mut bnet = net;
        for k in 0..BRANCH_LEN {
            let c = nl
                .add_lut(format!("br{b}_{k}"), TruthTable::not(), &[bnet])
                .unwrap();
            bnet = nl.cell_output(c).unwrap();
            if k == ERR_DEPTH {
                victims.push(c);
            }
        }
        nl.add_output(format!("y{b}"), bnet).unwrap();
    }
    (nl, netlist::Hierarchy::new("triplet"), victims)
}

fn plant(td: &mut TiledDesign, cell: netlist::CellId) -> sim::inject::InjectedError {
    sim::inject::inject(
        &mut td.netlist,
        cell,
        sim::inject::DesignErrorKind::Complement,
    )
    .unwrap()
}

/// Runs the experiment for one strategy: concurrent diagnosis of all
/// three errors versus three sequential single-error campaigns, both
/// through `TiledFlow`. Asserts correctness of every localization and
/// returns ((concurrent taps, ECOs), (sequential taps, ECOs)).
fn compare(
    td0: &TiledDesign,
    golden: &netlist::Netlist,
    victims: &[netlist::CellId],
    fresh: &dyn Fn() -> Box<dyn LocalizationStrategy>,
) -> ((usize, usize), (usize, usize)) {
    // Concurrent: all three errors live at once.
    let mut td = td0.clone();
    let errors: Vec<_> = victims.iter().map(|&v| plant(&mut td, v)).collect();
    let conc = DebugSession::new(&mut td, golden)
        .strategy(fresh())
        .flow(TiledFlow::default())
        .seed(11)
        .run_concurrent(&errors)
        .unwrap();
    assert!(conc.repaired, "concurrent campaign left the DUT buggy");
    assert!(td.routing.is_feasible());
    assert_eq!(conc.clusters.len(), BRANCHES, "one cluster per output");
    assert_eq!(
        conc.shared_core_cells, BACKBONE,
        "backbone must be the shared core"
    );
    let mut found = conc.localized_cells();
    found.sort_unstable();
    let mut planted = victims.to_vec();
    planted.sort_unstable();
    assert_eq!(found, planted, "every error localized to its exact cell");
    for c in &conc.clusters {
        assert!(c.matched_error.is_some());
        assert!(c.repaired);
    }

    // Sequential baseline: three independent single-error campaigns.
    let (mut staps, mut secos) = (0usize, 0usize);
    for &victim in victims {
        let mut td = td0.clone();
        let error = plant(&mut td, victim);
        let out = DebugSession::new(&mut td, golden)
            .strategy(fresh())
            .flow(TiledFlow::default())
            .seed(11)
            .run(&error)
            .unwrap();
        assert!(out.repaired);
        assert_eq!(out.localized, Some(victim), "sequential missed the bug");
        staps += out.taps_inserted;
        secos += out.ecos;
    }
    ((conc.taps_inserted, conc.ecos), (staps, secos))
}

#[test]
fn three_overlapping_errors_cost_less_concurrently_than_sequentially() {
    let (nl, hier, victims) = overlapping_cone_design();
    assert!(nl.num_luts() >= 64, "design must be at least 64 LUTs");
    let td0 = tiling::implement(nl, hier, TilingOptions::fast(303)).unwrap();
    let golden = td0.netlist.clone();

    type StrategyFactory = Box<dyn Fn() -> Box<dyn LocalizationStrategy>>;
    let strategies: [(&str, StrategyFactory); 2] = [
        ("linear", Box::new(|| Box::new(LinearBatches::default()))),
        ("binary_search", Box::new(|| Box::new(BinarySearch::new()))),
    ];
    for (name, fresh) in &strategies {
        let ((ctaps, cecos), (staps, secos)) = compare(&td0, &golden, &victims, fresh);
        assert!(
            ctaps < staps,
            "{name}: concurrent {ctaps} taps !< sequential {staps}"
        );
        assert!(
            cecos < secos,
            "{name}: concurrent {cecos} ECOs !< sequential {secos}"
        );
    }
}

//! Acceptance test for simultaneous multi-error diagnosis
//! (`tiling::diagnosis`): three errors with overlapping suspect cones
//! on a 64-LUT design, localized concurrently through the tiled flow
//! for fewer total taps and ECOs than three sequential single-error
//! campaigns — under both localization strategies.

use fpga_debug_tiling::prelude::*;
use fpga_debug_tiling::{sim, tiling};
use netlist::TruthTable;

const BACKBONE: usize = 40;
const BRANCHES: usize = 3;
const BRANCH_LEN: usize = 8;
const ERR_DEPTH: usize = 5;

/// A 40-LUT backbone chain fanning out into three 8-LUT branch
/// chains (64 LUTs total), each branch ending in its own primary
/// output. Every branch's suspect cone contains the whole backbone,
/// so the three cones overlap in a 40-cell shared core.
fn overlapping_cone_design() -> (netlist::Netlist, netlist::Hierarchy, Vec<netlist::CellId>) {
    let mut nl = netlist::Netlist::new("triplet");
    let pi = nl.add_input("a").unwrap();
    let mut net = nl.cell_output(pi).unwrap();
    for k in 0..BACKBONE {
        let c = nl
            .add_lut(format!("bb{k}"), TruthTable::not(), &[net])
            .unwrap();
        net = nl.cell_output(c).unwrap();
    }
    let mut victims = Vec::new();
    for b in 0..BRANCHES {
        let mut bnet = net;
        for k in 0..BRANCH_LEN {
            let c = nl
                .add_lut(format!("br{b}_{k}"), TruthTable::not(), &[bnet])
                .unwrap();
            bnet = nl.cell_output(c).unwrap();
            if k == ERR_DEPTH {
                victims.push(c);
            }
        }
        nl.add_output(format!("y{b}"), bnet).unwrap();
    }
    (nl, netlist::Hierarchy::new("triplet"), victims)
}

fn plant(td: &mut TiledDesign, cell: netlist::CellId) -> sim::inject::InjectedError {
    sim::inject::inject(
        &mut td.netlist,
        cell,
        sim::inject::DesignErrorKind::Complement,
    )
    .unwrap()
}

/// Runs the experiment for one strategy: concurrent diagnosis of all
/// three errors versus three sequential single-error campaigns, both
/// through `TiledFlow`. Asserts correctness of every localization and
/// returns ((concurrent taps, ECOs), (sequential taps, ECOs)).
fn compare(
    td0: &TiledDesign,
    golden: &netlist::Netlist,
    victims: &[netlist::CellId],
    fresh: &dyn Fn() -> Box<dyn LocalizationStrategy>,
) -> ((usize, usize), (usize, usize)) {
    // Concurrent: all three errors live at once.
    let mut td = td0.clone();
    let errors: Vec<_> = victims.iter().map(|&v| plant(&mut td, v)).collect();
    let conc = DebugSession::new(&mut td, golden)
        .strategy(fresh())
        .flow(TiledFlow::default())
        .seed(11)
        .run_concurrent(&errors)
        .unwrap();
    assert!(conc.repaired, "concurrent campaign left the DUT buggy");
    assert!(td.routing.is_feasible());
    assert_eq!(conc.clusters.len(), BRANCHES, "one cluster per output");
    assert_eq!(
        conc.shared_core_cells, BACKBONE,
        "backbone must be the shared core"
    );
    let mut found = conc.localized_cells();
    found.sort_unstable();
    let mut planted = victims.to_vec();
    planted.sort_unstable();
    assert_eq!(found, planted, "every error localized to its exact cell");
    for c in &conc.clusters {
        assert!(c.matched_error.is_some());
        assert!(c.repaired);
    }

    // Sequential baseline: three independent single-error campaigns.
    let (mut staps, mut secos) = (0usize, 0usize);
    for &victim in victims {
        let mut td = td0.clone();
        let error = plant(&mut td, victim);
        let out = DebugSession::new(&mut td, golden)
            .strategy(fresh())
            .flow(TiledFlow::default())
            .seed(11)
            .run(&error)
            .unwrap();
        assert!(out.repaired);
        assert_eq!(out.localized, Some(victim), "sequential missed the bug");
        staps += out.taps_inserted;
        secos += out.ecos;
    }
    ((conc.taps_inserted, conc.ecos), (staps, secos))
}

// ---------------------------------------------------------------------
// Deep sequential design: the rows where whole-sweep pruning used to
// lose to serial (see ROADMAP's windowed-pruning item, now closed).
// ---------------------------------------------------------------------

const TRUNK: usize = 16;
const SEQ_BRANCHES: usize = 4;
const TRUNK_ERR: usize = 8;

/// A deep sequential pipeline: a 16-stage trunk (NOT-LUT + FF per
/// stage) fanning out into four branches of four LUTs with two
/// interior FFs each, every branch ending in its own primary output.
///
/// Three errors with *staggered failure onsets*:
/// * `e0` in branch 0 between its FFs' fanin (first fails at pattern 2),
/// * `e1` in branch 1 past its FFs (first fails at pattern 0),
/// * `eT` mid-trunk (reaches all four outputs simultaneously at
///   pattern 10 — equal FF counts per branch keep the serial
///   passing-split sound for the trunk campaign).
///
/// Outputs y2/y3 fail only through `eT`, on the same pattern, with
/// the trunk state registers dominating both — the FSM fan-out shape
/// the cluster merge folds back together. Every output eventually
/// fails, so whole-sweep clean-cone subtraction prunes *nothing*
/// here; only the per-cluster windows recover the serial path's
/// sharpness.
///
/// Returns (netlist, hierarchy, victims = [e0, e1, eT]).
fn deep_sequential_design() -> (netlist::Netlist, netlist::Hierarchy, Vec<netlist::CellId>) {
    let mut nl = netlist::Netlist::new("pipeline");
    let pi = nl.add_input("a").unwrap();
    let mut net = nl.cell_output(pi).unwrap();
    let mut victims = vec![netlist::CellId::new(0); 3];
    for k in 0..TRUNK {
        let c = nl
            .add_lut(format!("tr{k}"), TruthTable::not(), &[net])
            .unwrap();
        net = nl.cell_output(c).unwrap();
        if k == TRUNK_ERR {
            victims[2] = c;
        }
        let ff = nl.add_ff(format!("trff{k}"), false, net).unwrap();
        net = nl.cell_output(ff).unwrap();
    }
    for b in 0..SEQ_BRANCHES {
        let mut bnet = net;
        for k in 0..2 {
            let c = nl
                .add_lut(format!("sb{b}_{k}"), TruthTable::not(), &[bnet])
                .unwrap();
            bnet = nl.cell_output(c).unwrap();
            if b == 0 && k == 1 {
                victims[0] = c;
            }
        }
        for k in 0..2 {
            let ff = nl.add_ff(format!("sbff{b}_{k}"), false, bnet).unwrap();
            bnet = nl.cell_output(ff).unwrap();
        }
        for k in 2..4 {
            let c = nl
                .add_lut(format!("sb{b}_{k}"), TruthTable::not(), &[bnet])
                .unwrap();
            bnet = nl.cell_output(c).unwrap();
            if b == 1 && k == 2 {
                victims[1] = c;
            }
        }
        nl.add_output(format!("y{b}"), bnet).unwrap();
    }
    (nl, netlist::Hierarchy::new("pipeline"), victims)
}

/// The deep-sequential analog of [`compare`]: concurrent diagnosis of
/// the three staggered errors versus three sequential campaigns.
fn compare_sequential(
    td0: &TiledDesign,
    golden: &netlist::Netlist,
    victims: &[netlist::CellId],
    fresh: &dyn Fn() -> Box<dyn LocalizationStrategy>,
) -> ((usize, usize), (usize, usize)) {
    let patterns = PatternSpec::Random { count: 48 };
    let mut td = td0.clone();
    let errors: Vec<_> = victims.iter().map(|&v| plant(&mut td, v)).collect();
    let conc = DebugSession::new(&mut td, golden)
        .strategy(fresh())
        .flow(TiledFlow::default())
        .patterns(patterns)
        .seed(23)
        .run_concurrent(&errors)
        .unwrap();
    assert!(conc.repaired, "concurrent campaign left the DUT buggy");
    assert!(td.routing.is_feasible());
    // y2/y3 fail only through the trunk error, on the same pattern,
    // behind the same state registers: merged into one cluster.
    assert_eq!(
        conc.clusters.len(),
        SEQ_BRANCHES - 1,
        "FSM fan-out clusters must merge"
    );
    let mut found = conc.localized_cells();
    found.sort_unstable();
    let mut planted = victims.to_vec();
    planted.sort_unstable();
    assert_eq!(found, planted, "every error localized to its exact cell");
    for c in &conc.clusters {
        assert!(c.matched_error.is_some());
        assert!(c.repaired);
    }
    // The merged trunk cluster's window is the trunk error's arrival
    // (8 trunk FFs + 2 branch FFs); the branch clusters fail earlier.
    let windows: Vec<usize> = conc.clusters.iter().map(|c| c.window).collect();
    assert!(windows.contains(&10), "trunk cluster window: {windows:?}");

    let (mut staps, mut secos) = (0usize, 0usize);
    for &victim in victims {
        let mut td = td0.clone();
        let error = plant(&mut td, victim);
        let out = DebugSession::new(&mut td, golden)
            .strategy(fresh())
            .flow(TiledFlow::default())
            .patterns(patterns)
            .seed(23)
            .run(&error)
            .unwrap();
        assert!(out.repaired);
        assert_eq!(out.localized, Some(victim), "sequential missed the bug");
        staps += out.taps_inserted;
        secos += out.ecos;
    }
    ((conc.taps_inserted, conc.ecos), (staps, secos))
}

#[test]
fn deep_sequential_errors_cost_less_concurrently_than_sequentially() {
    let (nl, hier, victims) = deep_sequential_design();
    assert!(nl.is_sequential(), "design must be sequential");
    let td0 = tiling::implement(nl, hier, TilingOptions::fast(404)).unwrap();
    let golden = td0.netlist.clone();

    type StrategyFactory = Box<dyn Fn() -> Box<dyn LocalizationStrategy>>;
    let strategies: [(&str, StrategyFactory); 2] = [
        ("linear", Box::new(|| Box::new(LinearBatches::default()))),
        ("binary_search", Box::new(|| Box::new(BinarySearch::new()))),
    ];
    for (name, fresh) in &strategies {
        let ((ctaps, cecos), (staps, secos)) = compare_sequential(&td0, &golden, &victims, fresh);
        // Serial localization runs through the same evidence layer
        // (free PO-onset seeding, causal alibi pruning), so per-error
        // tap costs equalize on disjoint error sites — and with the
        // shared-core screening batch piggybacked onto the first
        // strategy round's ECO, the concurrent path no longer pays an
        // extra tap round for it: concurrent taps are no worse than
        // sequential outright, and still win on physical ECOs (shared
        // batches amortize, the sequential baseline re-implements per
        // campaign).
        assert!(
            ctaps <= staps,
            "{name}: concurrent {ctaps} taps !<= sequential {staps}"
        );
        assert!(
            cecos < secos,
            "{name}: concurrent {cecos} ECOs !< sequential {secos}"
        );
    }
}

/// Nested-cone pipeline: an 18-stage trunk (NOT-LUT + FF per stage)
/// with outputs tapped after stages 5, 11 and 17, each through two
/// branch LUTs and a compensating FF chain (13/7/1 FFs) so that the
/// latency from any trunk stage to *every* output downstream of it is
/// identical (19 − stage). Three trunk errors at stages 2, 8 and 14
/// then surface at patterns 17, 11 and 5 respectively.
///
/// This is the shape that demands *causal* windows: within the
/// stage-8 cluster's `[0, 11]` window, the stage-2 error's wavefront
/// has already crossed trunk stages 6..=9 — suspects of the stage-8
/// cluster — so a flat window would blame the first wavefront cell it
/// meets instead of the real site, which a divergence-onset check
/// against each suspect's FF distance rejects.
fn nested_pipeline_design() -> (netlist::Netlist, netlist::Hierarchy, Vec<netlist::CellId>) {
    let mut nl = netlist::Netlist::new("nested");
    let pi = nl.add_input("a").unwrap();
    let mut net = nl.cell_output(pi).unwrap();
    let mut victims = Vec::new();
    let mut taps = Vec::new();
    for k in 0..18 {
        let c = nl
            .add_lut(format!("tr{k}"), TruthTable::not(), &[net])
            .unwrap();
        net = nl.cell_output(c).unwrap();
        if [2, 8, 14].contains(&k) {
            victims.push(c);
        }
        let ff = nl.add_ff(format!("trff{k}"), false, net).unwrap();
        net = nl.cell_output(ff).unwrap();
        if [5, 11, 17].contains(&k) {
            taps.push(net);
        }
    }
    for (i, &tnet) in taps.iter().enumerate() {
        let mut bnet = tnet;
        for k in 0..2 {
            let c = nl
                .add_lut(format!("nb{i}_{k}"), TruthTable::not(), &[bnet])
                .unwrap();
            bnet = nl.cell_output(c).unwrap();
        }
        for k in 0..(13 - 6 * i) {
            let ff = nl.add_ff(format!("nbff{i}_{k}"), false, bnet).unwrap();
            bnet = nl.cell_output(ff).unwrap();
        }
        nl.add_output(format!("y{i}"), bnet).unwrap();
    }
    (nl, netlist::Hierarchy::new("nested"), victims)
}

#[test]
fn staggered_trunk_errors_localize_exactly_under_causal_windows() {
    let (nl, hier, victims) = nested_pipeline_design();
    let td0 = tiling::implement(nl, hier, TilingOptions::fast(505)).unwrap();
    let golden = td0.netlist.clone();
    type StrategyFactory = Box<dyn Fn() -> Box<dyn LocalizationStrategy>>;
    let strategies: [(&str, StrategyFactory); 2] = [
        ("linear", Box::new(|| Box::new(LinearBatches::default()))),
        ("binary_search", Box::new(|| Box::new(BinarySearch::new()))),
    ];
    for (name, fresh) in &strategies {
        let mut td = td0.clone();
        let errors: Vec<_> = victims.iter().map(|&v| plant(&mut td, v)).collect();
        let conc = DebugSession::new(&mut td, &golden)
            .strategy(fresh())
            .flow(TiledFlow::default())
            .patterns(PatternSpec::Random { count: 48 })
            .seed(31)
            .run_concurrent(&errors)
            .unwrap();
        assert!(conc.repaired, "{name}: campaign left the DUT buggy");
        assert_eq!(conc.clusters.len(), 3, "{name}: one cluster per output");
        // Staggered onsets: the deepest tap sees the downstream error
        // first, the shallowest only the upstream one, much later.
        let mut windows: Vec<usize> = conc.clusters.iter().map(|c| c.window).collect();
        windows.sort_unstable();
        assert_eq!(windows, vec![5, 11, 17], "{name}: staggered windows");
        let mut found = conc.localized_cells();
        found.sort_unstable();
        let mut planted = victims.to_vec();
        planted.sort_unstable();
        assert_eq!(
            found, planted,
            "{name}: every staggered trunk error must localize to its exact cell"
        );
    }
}

/// A shared sequential trunk (LUT → FF) fanning into two 2-LUT
/// branches, each with its own output. Two *independent* errors in
/// the branches fail both outputs on the same pattern — at clustering
/// time indistinguishable from one FSM error behind the trunk
/// register. Returns (netlist, hierarchy, trunk LUT, branch victims).
fn shared_trunk_design() -> (
    netlist::Netlist,
    netlist::Hierarchy,
    netlist::CellId,
    Vec<netlist::CellId>,
) {
    let mut nl = netlist::Netlist::new("trunk");
    let pi = nl.add_input("a").unwrap();
    let t0 = nl
        .add_lut("t0", TruthTable::not(), &[nl.cell_output(pi).unwrap()])
        .unwrap();
    let ff = nl
        .add_ff("state", false, nl.cell_output(t0).unwrap())
        .unwrap();
    let q = nl.cell_output(ff).unwrap();
    let mut victims = Vec::new();
    for b in 0..2 {
        let b0 = nl
            .add_lut(format!("b{b}_0"), TruthTable::not(), &[q])
            .unwrap();
        victims.push(b0);
        let b1 = nl
            .add_lut(
                format!("b{b}_1"),
                TruthTable::not(),
                &[nl.cell_output(b0).unwrap()],
            )
            .unwrap();
        nl.add_output(format!("y{b}"), nl.cell_output(b1).unwrap())
            .unwrap();
    }
    (nl, netlist::Hierarchy::new("trunk"), t0, victims)
}

/// The deferred FSM-cluster merge (PR 4's documented limitation,
/// closed): two independent same-onset errors behind a shared
/// sequential trunk used to merge into one cluster whose cone
/// intersection shed both sites — localization came back `None` and
/// only the corrective ECO repaired. The merge decision now waits for
/// screening evidence: the tap on the dominating state register comes
/// back clean (the trunk never carried any corruption), the clusters
/// stay apart, and *both* sites localize exactly.
#[test]
fn independent_same_onset_errors_behind_a_shared_trunk_stay_apart() {
    let (nl, hier, _, victims) = shared_trunk_design();
    let td0 = tiling::implement(nl, hier, TilingOptions::fast(606)).unwrap();
    let golden = td0.netlist.clone();
    let mut td = td0.clone();
    let errors: Vec<_> = victims.iter().map(|&v| plant(&mut td, v)).collect();
    let conc = DebugSession::new(&mut td, &golden)
        .patterns(PatternSpec::Random { count: 32 })
        .seed(17)
        .run_concurrent(&errors)
        .unwrap();
    assert!(conc.repaired);
    // Same onset, shared dominating register — but the register is
    // clean, so the deferred merge keeps one cluster per output.
    assert_eq!(conc.clusters.len(), 2, "clean trunk forbids the merge");
    let windows: Vec<usize> = conc.clusters.iter().map(|c| c.window).collect();
    assert_eq!(windows[0], windows[1], "the trap: identical onsets");
    let mut found = conc.localized_cells();
    found.sort_unstable();
    let mut planted = victims.clone();
    planted.sort_unstable();
    assert_eq!(
        found, planted,
        "both independent sites must localize exactly"
    );
    for c in &conc.clusters {
        assert!(c.matched_error.is_some());
        assert!(c.confirmed_by_control);
        assert!(c.repaired);
    }
}

/// The converse guard: one genuine FSM error *upstream* of the same
/// trunk register still merges — the screening tap sees the register
/// diverge, proving the corruption flowed through the trunk — and the
/// single merged cluster localizes the trunk cell once.
#[test]
fn genuine_fsm_error_behind_the_trunk_still_merges() {
    let (nl, hier, t0, _) = shared_trunk_design();
    let td0 = tiling::implement(nl, hier, TilingOptions::fast(607)).unwrap();
    let golden = td0.netlist.clone();
    let mut td = td0.clone();
    let error = plant(&mut td, t0);
    let conc = DebugSession::new(&mut td, &golden)
        .patterns(PatternSpec::Random { count: 32 })
        .seed(17)
        .run_concurrent(&[error])
        .unwrap();
    assert!(conc.repaired);
    assert_eq!(
        conc.clusters.len(),
        1,
        "a diverging register folds the fan-out clusters"
    );
    assert_eq!(conc.clusters[0].localized, Some(t0));
    assert!(conc.clusters[0].repaired);
}

#[test]
fn three_overlapping_errors_cost_less_concurrently_than_sequentially() {
    let (nl, hier, victims) = overlapping_cone_design();
    assert!(nl.num_luts() >= 64, "design must be at least 64 LUTs");
    let td0 = tiling::implement(nl, hier, TilingOptions::fast(303)).unwrap();
    let golden = td0.netlist.clone();

    type StrategyFactory = Box<dyn Fn() -> Box<dyn LocalizationStrategy>>;
    let strategies: [(&str, StrategyFactory); 2] = [
        ("linear", Box::new(|| Box::new(LinearBatches::default()))),
        ("binary_search", Box::new(|| Box::new(BinarySearch::new()))),
    ];
    for (name, fresh) in &strategies {
        let ((ctaps, cecos), (staps, secos)) = compare(&td0, &golden, &victims, fresh);
        // See the deep-sequential test for the tap-accounting note:
        // the shared evidence layer equalizes per-error taps on
        // disjoint sites, so the concurrent claim is "at most the
        // one screening tap more, strictly fewer physical ECOs".
        assert!(
            ctaps <= staps + 1,
            "{name}: concurrent {ctaps} taps !<= sequential {staps} + screening"
        );
        assert!(
            cecos < secos,
            "{name}: concurrent {cecos} ECOs !< sequential {secos}"
        );
    }
}

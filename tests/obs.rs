//! Observability-layer integration: the spans and counters the `obs`
//! crate records while a session runs must reconcile **exactly** with
//! the session's own `EffortLedger` — per phase, not just in total —
//! on both the serial and the concurrent diagnosis paths. The fleet
//! path's deterministic counter section must be byte-identical
//! whatever the worker count (the metrics extension of the PR 7
//! report/event invariant).

use fpga_debug_tiling::prelude::*;
use fpga_debug_tiling::{implement_paper_design, sim, tiling};
use obs::{MetricsRegistry, Tracer};
use tiling::effort::Phase;

/// Middle LUT of the implemented design — the deterministic victim
/// the session tests use.
fn victim(td: &TiledDesign) -> netlist::CellId {
    let luts: Vec<netlist::CellId> = td
        .netlist
        .cells()
        .filter(|(_, c)| c.lut_function().is_some())
        .map(|(id, _)| id)
        .collect();
    luts[luts.len() / 2]
}

/// Asserts that for every phase, the tracer's span effort totals and
/// the registry's `session_phase_effort_units_total` counter both
/// equal that phase's ledger entry exactly.
fn assert_reconciled(tracer: &Tracer, registry: &MetricsRegistry, ledger: &tiling::EffortLedger) {
    let spans = tracer.spans();
    let snap = registry.snapshot();
    for phase in Phase::ALL {
        let ledger_units = ledger.phase(phase).effort.total();
        let span_units: u64 = spans
            .iter()
            .filter(|s| s.cat == "phase" && s.name == phase.name())
            .map(|s| s.effort_units)
            .sum();
        assert_eq!(
            span_units,
            ledger_units,
            "{} spans disagree with the ledger",
            phase.name()
        );
        let counter = snap.value_u64(
            "session_phase_effort_units_total",
            &[("phase", phase.name())],
        );
        assert_eq!(
            counter,
            ledger_units,
            "{} counter disagrees with the ledger",
            phase.name()
        );
    }
    // Detect is never charged, but its region must still be traced
    // (a zero-effort span proves the phase ran, not that it's free).
    assert!(
        spans.iter().any(|s| s.name == Phase::Detect.name()),
        "no detect span recorded"
    );
}

#[test]
fn serial_session_spans_and_counters_reconcile_with_the_ledger() {
    let td0 = implement_paper_design(PaperDesign::NineSym, TilingOptions::fast(201)).unwrap();
    let golden = td0.netlist.clone();
    let mut td = td0.clone();
    let target = victim(&td);
    let error = sim::inject::inject(
        &mut td.netlist,
        target,
        sim::inject::DesignErrorKind::Complement,
    )
    .unwrap();

    let tracer = Tracer::new();
    let registry = MetricsRegistry::new();
    let track = tracer.track("serial session");
    let out = DebugSession::new(&mut td, &golden)
        .seed(9)
        .flow(TiledFlow::default())
        .trace(&tracer, track)
        .metrics(&registry)
        .run(&error)
        .unwrap();
    assert!(out.repaired);
    assert_reconciled(&tracer, &registry, &out.ledger);

    // The exports carry what was recorded: the Chrome trace has
    // thread-name metadata plus complete events, and the prometheus
    // text exposes the phase counter family.
    let chrome = tracer.to_chrome_trace();
    assert!(chrome.contains("\"ph\": \"M\"") && chrome.contains("\"ph\": \"X\""));
    assert!(registry
        .render_prometheus()
        .contains("session_phase_effort_units_total"));
}

#[test]
fn concurrent_session_spans_and_counters_reconcile_with_the_ledger() {
    let td0 = implement_paper_design(PaperDesign::NineSym, TilingOptions::fast(201)).unwrap();
    let golden = td0.netlist.clone();
    let mut td = td0.clone();
    let errors = sim::inject::random_distinct_errors(&mut td.netlist, &[31, 32]).unwrap();

    let tracer = Tracer::new();
    let registry = MetricsRegistry::new();
    let track = tracer.track("concurrent session");
    let out = DebugSession::new(&mut td, &golden)
        .seed(7)
        .flow(TiledFlow::default())
        .trace(&tracer, track)
        .metrics(&registry)
        .run_concurrent(&errors)
        .unwrap();
    assert!(!out.clusters.is_empty());
    assert_reconciled(&tracer, &registry, &out.ledger);
}

#[test]
fn fleet_deterministic_metrics_are_byte_identical_across_worker_counts() {
    let requests: Vec<debugd::CampaignRequest> = (0..4)
        .map(|i| debugd::CampaignRequest {
            id: format!("m{i:02}"),
            error_seeds: vec![31 + 5 * i as u64],
            ..Default::default()
        })
        .collect();
    // Separate stores: artifact build/hit counters are part of the
    // deterministic section, so both sides must pay the same builds.
    let serial_store = debugd::ArtifactStore::new();
    let serial_registry = MetricsRegistry::new();
    debugd::run_batch_observed(&serial_store, &requests, 1, &serial_registry, None);
    let pooled_store = debugd::ArtifactStore::new();
    let pooled_registry = MetricsRegistry::new();
    debugd::run_batch_observed(&pooled_store, &requests, 4, &pooled_registry, None);
    // The `sim_*` counters are process-global deltas; sibling tests in
    // this harness simulate concurrently, so only the bins (which run
    // batches alone in their process — the `fleet` bin asserts the
    // full section) can pin them. Everything else must match exactly.
    let strip_sim = |s: String| {
        s.lines()
            .filter(|l| !l.contains("sim_"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip_sim(serial_registry.render_deterministic()),
        strip_sim(pooled_registry.render_deterministic()),
        "deterministic metrics section must not depend on worker count"
    );
}

//! Property-based tests on the core data structures and invariants.

use fpga_debug_tiling::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Truth tables
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn tt_complement_is_involutive(arity in 0usize..=6, bits: u64) {
        let t = TruthTable::from_bits(arity, bits).unwrap();
        prop_assert_eq!(t.complement().complement(), t);
    }

    #[test]
    fn tt_cofactors_reconstruct_shannon(arity in 1usize..=6, bits: u64, var_raw: usize) {
        let t = TruthTable::from_bits(arity, bits).unwrap();
        let var = var_raw % arity;
        let f0 = t.cofactor(var, false);
        let f1 = t.cofactor(var, true);
        // f(x) = x ? f1 : f0 for every row.
        for row in 0..(1u64 << arity) {
            let reduced = {
                let low = row & ((1 << var) - 1);
                let high = (row >> (var + 1)) << var;
                low | high
            };
            let expect = if row >> var & 1 == 1 { f1.eval_row(reduced) } else { f0.eval_row(reduced) };
            prop_assert_eq!(t.eval_row(row), expect);
        }
    }

    #[test]
    fn tt_swap_vars_is_involutive(arity in 2usize..=6, bits: u64, a_raw: usize, b_raw: usize) {
        let t = TruthTable::from_bits(arity, bits).unwrap();
        let (a, b) = (a_raw % arity, b_raw % arity);
        prop_assert_eq!(t.with_swapped_vars(a, b).with_swapped_vars(a, b), t);
    }

    #[test]
    fn tt_flip_row_changes_exactly_one(arity in 0usize..=6, bits: u64, row_raw: u64) {
        let t = TruthTable::from_bits(arity, bits).unwrap();
        let row = row_raw % (1 << arity);
        let f = t.with_flipped_row(row);
        prop_assert_eq!((f.bits() ^ t.bits()).count_ones(), 1);
    }
}

// ---------------------------------------------------------------------
// Pattern generators
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn lfsr_patterns_have_declared_width_and_count(
        width in 1usize..=16,
        count in 0usize..=64,
        seed: u64,
    ) {
        let pats: Vec<Vec<bool>> = PatternGen::lfsr(width, count, seed).collect();
        prop_assert_eq!(pats.len(), count);
        prop_assert!(pats.iter().all(|p| p.len() == width));
        // LFSR states are never all-zero.
        prop_assert!(pats.iter().all(|p| p.iter().any(|&b| b)));
    }

    #[test]
    fn random_patterns_are_reproducible(width in 1usize..=24, seed: u64) {
        let a: Vec<_> = PatternGen::random(width, 16, seed).collect();
        let b: Vec<_> = PatternGen::random(width, 16, seed).collect();
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------
// Geometry
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn rect_union_contains_both(
        ax0 in 0u16..20, ay0 in 0u16..20, aw in 0u16..10, ah in 0u16..10,
        bx0 in 0u16..20, by0 in 0u16..20, bw in 0u16..10, bh in 0u16..10,
    ) {
        let a = Rect::new(ax0, ay0, ax0 + aw, ay0 + ah);
        let b = Rect::new(bx0, by0, bx0 + bw, by0 + bh);
        let u = a.union(&b);
        for c in a.iter().chain(b.iter()) {
            prop_assert!(u.contains(c));
        }
        prop_assert!(u.area() >= a.area().max(b.area()));
    }

    #[test]
    fn adjacency_is_symmetric_and_disjoint(
        ax0 in 0u16..12, ay0 in 0u16..12, aw in 0u16..5, ah in 0u16..5,
        bx0 in 0u16..12, by0 in 0u16..12, bw in 0u16..5, bh in 0u16..5,
    ) {
        let a = Rect::new(ax0, ay0, ax0 + aw, ay0 + ah);
        let b = Rect::new(bx0, by0, bx0 + bw, by0 + bh);
        prop_assert_eq!(a.is_adjacent(&b), b.is_adjacent(&a));
        if a.is_adjacent(&b) {
            prop_assert!(!a.intersects(&b));
        }
    }
}

// ---------------------------------------------------------------------
// RRG structural invariants on random device shapes
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn rrg_roundtrip_and_symmetry(w in 2u16..7, h in 2u16..7, t in 1u16..5) {
        let dev = Device::new(w, h, t, 2).unwrap();
        let rrg = RoutingGraph::new(&dev);
        let mut nbrs = Vec::new();
        let mut back = Vec::new();
        for i in 0..rrg.num_nodes() {
            let id = fpga::NodeId::default_for_test(i as u32);
            let kind = rrg.node(id);
            // Wire-wire edges must be symmetric.
            if matches!(kind, fpga::NodeKind::ChanX { .. } | fpga::NodeKind::ChanY { .. }) {
                rrg.neighbors(id, &mut nbrs);
                let snapshot = nbrs.clone();
                for &n in &snapshot {
                    let nk = rrg.node(n);
                    if matches!(nk, fpga::NodeKind::ChanX { .. } | fpga::NodeKind::ChanY { .. }) {
                        rrg.neighbors(n, &mut back);
                        prop_assert!(back.contains(&id));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Placement invariants under random constraints
// ---------------------------------------------------------------------

fn chain_netlist(luts: usize) -> Netlist {
    let mut nl = Netlist::new("chain");
    let a = nl.add_input("a").unwrap();
    let mut prev = nl.cell_output(a).unwrap();
    for i in 0..luts {
        let u = nl
            .add_lut(format!("u{i}"), TruthTable::not(), &[prev])
            .unwrap();
        prev = nl.cell_output(u).unwrap();
    }
    nl.add_output("y", prev).unwrap();
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn placement_respects_random_regions(
        luts in 2usize..10,
        rx in 0u16..4,
        ry in 0u16..4,
        seed: u64,
    ) {
        let nl = chain_netlist(luts);
        let dev = Device::new(8, 8, 4, 2).unwrap();
        let region = Rect::new(rx, ry, rx + 3, ry + 3);
        let mut cons = place::Constraints::free();
        for (id, c) in nl.cells() {
            if c.is_logic() {
                cons.confine(id, region);
            }
        }
        let out = place::place(&nl, &dev, &cons, None, &place::PlacerConfig::fast(seed)).unwrap();
        for (id, c) in nl.cells() {
            if c.is_logic() {
                let loc = out.placement.loc_of(id).unwrap();
                prop_assert!(region.contains(loc.coord().unwrap()));
            }
        }
        // No two cells share a BEL (placement DB invariant).
        let mut seen = std::collections::BTreeSet::new();
        for (_, loc) in out.placement.iter() {
            prop_assert!(seen.insert(loc));
        }
    }
}

// ---------------------------------------------------------------------
// Routing invariants on random placements
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn routed_paths_connect_correct_pins(luts in 2usize..8, seed: u64) {
        let nl = chain_netlist(luts);
        let dev = Device::new(8, 8, 6, 2).unwrap();
        let out = place::place(
            &nl,
            &dev,
            &place::Constraints::free(),
            None,
            &place::PlacerConfig::fast(seed),
        )
        .unwrap();
        let rrg = RoutingGraph::new(&dev);
        let mut routing = Routing::new(rrg.num_nodes());
        route::route_design(&nl, &out.placement, &rrg, &mut routing, &route::RouteOptions::default())
            .unwrap();
        prop_assert!(routing.is_feasible());
        for (net_id, net) in nl.nets() {
            let Some(tree) = routing.route(net_id) else { continue };
            let driver = net.driver.unwrap();
            let src = rrg.source_node(out.placement.loc_of(driver).unwrap());
            for (k, sink) in net.sinks.iter().enumerate() {
                let pin = rrg.sink_node(out.placement.loc_of(sink.cell).unwrap(), sink.pin);
                let path = &tree.paths[k];
                prop_assert_eq!(path[0], src);
                prop_assert_eq!(*path.last().unwrap(), pin);
                // Consecutive nodes are RRG neighbours.
                let mut nbrs = Vec::new();
                for w in path.windows(2) {
                    rrg.neighbors(w[0], &mut nbrs);
                    prop_assert!(nbrs.contains(&w[1]), "broken path edge");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Suspect-cone algebra (multi-error diagnosis)
// ---------------------------------------------------------------------

fn cone_of(cells: &[usize]) -> SuspectCone {
    cells.iter().map(|&i| netlist::CellId::new(i)).collect()
}

/// A `bb`-cell backbone chain fanning into `branches` chains of
/// `blen` cells, each with its own output — the canonical
/// overlapping-cone shape.
fn backbone_netlist(bb: usize, branches: usize, blen: usize) -> Netlist {
    let mut nl = Netlist::new("bb");
    let a = nl.add_input("a").unwrap();
    let mut net = nl.cell_output(a).unwrap();
    for k in 0..bb {
        let c = nl
            .add_lut(format!("bb{k}"), TruthTable::not(), &[net])
            .unwrap();
        net = nl.cell_output(c).unwrap();
    }
    for b in 0..branches {
        let mut bnet = net;
        for k in 0..blen {
            let c = nl
                .add_lut(format!("br{b}_{k}"), TruthTable::not(), &[bnet])
                .unwrap();
            bnet = nl.cell_output(c).unwrap();
        }
        nl.add_output(format!("y{b}"), bnet).unwrap();
    }
    nl
}

proptest! {
    #[test]
    fn cone_union_intersect_are_lattice_ops(
        a in prop::collection::vec(0usize..320, 0usize..40),
        b in prop::collection::vec(0usize..320, 0usize..40),
        c in prop::collection::vec(0usize..320, 0usize..40),
    ) {
        let (a, b, c) = (cone_of(&a), cone_of(&b), cone_of(&c));
        // Commutative, associative, idempotent.
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.intersect(&b).intersect(&c), a.intersect(&b.intersect(&c)));
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert_eq!(a.intersect(&a), a.clone());
        // Intersection distributes over union.
        prop_assert_eq!(
            a.intersect(&b.union(&c)),
            a.intersect(&b).union(&a.intersect(&c))
        );
        // Inclusion–exclusion holds for the popcounts.
        prop_assert_eq!(
            a.union(&b).len() + a.intersect(&b).len(),
            a.len() + b.len()
        );
        // `intersects` agrees with the materialized intersection.
        prop_assert_eq!(a.intersects(&b), !a.intersect(&b).is_empty());
    }

    #[test]
    fn cone_in_place_ops_agree_with_functional(
        a in prop::collection::vec(0usize..320, 0usize..40),
        b in prop::collection::vec(0usize..320, 0usize..40),
    ) {
        let (a, b) = (cone_of(&a), cone_of(&b));
        let mut s = a.clone();
        s.subtract_with(&b);
        prop_assert_eq!(&s, &a.subtract(&b));
        let mut u = a.clone();
        u.union_with(&b);
        prop_assert_eq!(&u, &a.union(&b));
        let mut i = a.clone();
        i.intersect_with(&b);
        prop_assert_eq!(&i, &a.intersect(&b));
        // Normalization survives in-place editing: growing through a
        // larger universe and shrinking back keeps `==` meaning set
        // equality.
        let mut via = a.clone();
        via.union_with(&b);
        via.subtract_with(&b);
        prop_assert_eq!(via, a.subtract(&b));
    }

    #[test]
    fn cone_subtract_complements_intersect(
        a in prop::collection::vec(0usize..320, 0usize..40),
        b in prop::collection::vec(0usize..320, 0usize..40),
    ) {
        let (a, b) = (cone_of(&a), cone_of(&b));
        let diff = a.subtract(&b);
        // a splits into (a ∖ b) ⊎ (a ∩ b).
        prop_assert_eq!(diff.union(&a.intersect(&b)), a.clone());
        prop_assert!(diff.intersect(&b).is_empty());
        prop_assert!(a.subtract(&a).is_empty());
        // Per-cell membership matches the set definition (and the
        // normalization invariant keeps == meaning set equality).
        for cell in a.iter() {
            prop_assert_eq!(diff.contains(cell), !b.contains(cell));
        }
    }

    #[test]
    fn cone_partition_is_a_disjoint_cover(
        a in prop::collection::vec(0usize..128, 0usize..24),
        b in prop::collection::vec(0usize..128, 0usize..24),
        c in prop::collection::vec(0usize..128, 0usize..24),
    ) {
        let cones = [cone_of(&a), cone_of(&b), cone_of(&c)];
        let p = ConePartition::split(&cones);
        // Regions are pairwise disjoint…
        for (i, x) in p.exclusive.iter().enumerate() {
            prop_assert!(x.intersect(&p.shared).is_empty());
            for y in p.exclusive.iter().skip(i + 1) {
                prop_assert!(x.intersect(y).is_empty());
            }
        }
        // …cover exactly the input union…
        let mut union = SuspectCone::new();
        for cone in &cones {
            union.union_with(cone);
        }
        prop_assert_eq!(p.coverage(), union.clone());
        // …and classify each cell by how many cones implicate it.
        for cell in union.iter() {
            let owners = cones.iter().filter(|k| k.contains(cell)).count();
            prop_assert_eq!(p.shared.contains(cell), owners >= 2);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn fanin_cones_are_monotone_and_closed(
        bb in 1usize..8,
        branches in 1usize..4,
        blen in 1usize..5,
        s1_raw: usize,
        s2_raw: usize,
    ) {
        let nl = backbone_netlist(bb, branches, blen);
        let luts: Vec<netlist::CellId> = nl
            .cells()
            .filter(|(_, c)| c.lut_function().is_some())
            .map(|(id, _)| id)
            .collect();
        let s1 = luts[s1_raw % luts.len()];
        let s2 = luts[s2_raw % luts.len()];
        let c1 = SuspectCone::fanin(&nl, &[s1]);
        let c2 = SuspectCone::fanin(&nl, &[s2]);
        let c12 = SuspectCone::fanin(&nl, &[s1, s2]);
        // Monotone in the seed set: cone(S) ⊆ cone(S ∪ T)…
        prop_assert_eq!(c1.union(&c12), c12.clone());
        // …and in fact distributes over seed union.
        prop_assert_eq!(c1.union(&c2), c12);
        // Closed under fanin: every member's own cone stays inside.
        for cell in c1.iter().filter(|&c| nl.cell(c).unwrap().lut_function().is_some()) {
            let inner = SuspectCone::fanin(&nl, &[cell]);
            prop_assert_eq!(inner.union(&c1), c1.clone());
        }
    }
}

// ---------------------------------------------------------------------
// Windowed per-cluster pruning soundness (multi-error diagnosis)
// ---------------------------------------------------------------------

/// Sequential variant of [`backbone_netlist`]: every backbone and
/// branch LUT is followed by a flip-flop, and all branches share the
/// same layout. Identical branch structure means a divergence at any
/// cell reaches *every* output in its fanout after the same number of
/// cycles — the regime in which the windowed alibi (like the serial
/// passing-split it mirrors) is exact rather than heuristic.
fn seq_backbone_netlist(bb: usize, branches: usize, blen: usize) -> Netlist {
    let mut nl = Netlist::new("seqbb");
    let a = nl.add_input("a").unwrap();
    let mut net = nl.cell_output(a).unwrap();
    for k in 0..bb {
        let c = nl
            .add_lut(format!("bb{k}"), TruthTable::not(), &[net])
            .unwrap();
        net = nl.cell_output(c).unwrap();
        let ff = nl.add_ff(format!("bbff{k}"), false, net).unwrap();
        net = nl.cell_output(ff).unwrap();
    }
    for b in 0..branches {
        let mut bnet = net;
        for k in 0..blen {
            let c = nl
                .add_lut(format!("br{b}_{k}"), TruthTable::not(), &[bnet])
                .unwrap();
            bnet = nl.cell_output(c).unwrap();
            let ff = nl.add_ff(format!("brff{b}_{k}"), false, bnet).unwrap();
            bnet = nl.cell_output(ff).unwrap();
        }
        nl.add_output(format!("y{b}"), bnet).unwrap();
    }
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn windowed_cluster_pruning_keeps_a_guilty_cell(
        bb in 3usize..6,
        branches in 1usize..4,
        blen in 1usize..4,
        k in 1usize..4,
        seed: u64,
    ) {
        use fpga_debug_tiling::tiling::{cluster_failures, collect_responses};

        let golden = seq_backbone_netlist(bb, branches, blen);
        let mut dut = golden.clone();
        // bb >= 3 guarantees at least k eligible LUTs.
        let seeds: Vec<u64> = (0..k as u64).map(|i| seed.wrapping_add(i)).collect();
        let errors =
            fpga_debug_tiling::sim::inject::random_distinct_errors(&mut dut, &seeds).unwrap();
        let matrix =
            collect_responses(&golden, &dut, PatternGen::random(1, 48, seed)).unwrap();
        let evidence = EvidenceBase::from_sweep(&golden, &matrix);
        for cl in cluster_failures(&golden, &matrix) {
            // The window is the earliest failure of the union signature.
            prop_assert_eq!(Some(cl.window), cl.signature.first_failing());
            let pruned = evidence.prune_cone(&cl.cone, &evidence.causal_window(&cl));
            // Pruning only ever shrinks the cluster's cone…
            prop_assert_eq!(&pruned.union(&cl.cone), &cl.cone);
            // …and never exonerates every culprit: whatever mix of
            // errors is live, the cell whose divergence caused this
            // cluster's first failure survives the windowed alibi.
            prop_assert!(
                errors.iter().any(|e| pruned.contains(e.cell)),
                "cluster pruned away every injected error"
            );
        }
    }
}

// ---------------------------------------------------------------------
// EvidenceBase invariants
// ---------------------------------------------------------------------

/// One randomly-generated update against an `EvidenceBase` cell.
#[derive(Debug, Clone)]
enum EvidenceOp {
    /// An exact physical measurement (`None` = clean everywhere).
    Record(Option<usize>),
    /// A whole-sweep assumption.
    Assume(bool),
    /// A derived screening exoneration.
    Exonerate(usize),
}

fn evidence_op(raw: u32) -> EvidenceOp {
    // Small onsets on purpose: collisions between bounds are the
    // interesting regime.
    let v = (raw % 16) as usize;
    match raw % 4 {
        0 => EvidenceOp::Record(Some(v)),
        1 => EvidenceOp::Record((v > 3).then_some(v)),
        2 => EvidenceOp::Assume(raw % 8 < 4),
        _ => EvidenceOp::Exonerate(v),
    }
}

proptest! {
    #[test]
    fn evidence_bounds_never_contradict(
        ops in prop::collection::vec(0u32..4096, 1usize..24),
    ) {
        // Any interleaving of measurements, assumptions and derived
        // exonerations keeps the onset bounds consistent: a cell is
        // never simultaneously "diverged by p" and "clean through
        // >= p" (diverged-by below clean-through is rejected), so no
        // window can ever read both verdicts.
        let cell = netlist::CellId::new(7);
        let mut ev = EvidenceBase::new();
        // Measurements merge by earliest onset (divergence cannot be
        // un-observed); this mirror tracks what the bounds must pin.
        let mut measured: Option<Option<usize>> = None;
        for &raw in &ops {
            match evidence_op(raw) {
                EvidenceOp::Record(onset) => {
                    ev.record(cell, onset);
                    measured = Some(match measured {
                        None => onset,
                        Some(Some(a)) => Some(onset.map_or(a, |b| a.min(b))),
                        Some(None) => onset,
                    });
                }
                EvidenceOp::Assume(d) => ev.assume(cell, d),
                EvidenceOp::Exonerate(w) => ev.exonerate_through(cell, w),
            }
            prop_assert!(ev.bounds_consistent(cell), "contradictory bounds");
            if let (Some(p), Some(c)) = (ev.diverged_by(cell), ev.clean_through(cell)) {
                prop_assert!(c < p, "clean-through {c} reaches diverged-by {p}");
            }
            // Measurements win over every derived bound, in any
            // interleaving: once measured, the bounds are pinned.
            match measured {
                Some(Some(p)) => {
                    prop_assert_eq!(ev.diverged_by(cell), Some(p));
                    prop_assert_eq!(ev.clean_through(cell), p.checked_sub(1));
                }
                Some(None) => {
                    prop_assert_eq!(
                        ev.verdict(cell, EvidenceBase::WHOLE_SWEEP),
                        Some(false),
                        "a measured-clean net must stay clean"
                    );
                }
                None => {}
            }
            // The two verdict readings can never disagree on one
            // window.
            for w in 0..20 {
                let v = ev.verdict(cell, w);
                if v == Some(true) {
                    prop_assert!(ev.diverged_by(cell).is_some_and(|p| p <= w));
                }
                if v == Some(false) {
                    prop_assert!(ev.clean_through(cell).is_some_and(|c| c >= w));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Packed simulator vs the scalar oracle
// ---------------------------------------------------------------------
//
// The scalar `Simulator` is the semantic reference; every packed
// sweep must be bit-exact against it — outputs, internal nets, FF
// state, fault lanes and divergence onsets alike. Pattern counts are
// drawn past 64 so the chunked path crosses word boundaries, and the
// stimulus is biased (`prop::bool::weighted`) so divergence words are
// sparse and onsets land away from lane 0.

use fpga_debug_tiling::sim::{inject, PackedSimulator, LANES};

/// Number of primary inputs every random combinational DAG uses.
const RAND_PIS: usize = 5;

/// A random combinational DAG: `RAND_PIS` inputs feeding one LUT per
/// truth-table word, each LUT's fanins drawn from all earlier nets,
/// with the last and a middle net observed as outputs.
fn random_comb_netlist(tts: &[u64]) -> Netlist {
    let mut nl = Netlist::new("randcomb");
    let mut nets: Vec<NetId> = (0..RAND_PIS)
        .map(|i| {
            let c = nl.add_input(format!("i{i}")).unwrap();
            nl.cell_output(c).unwrap()
        })
        .collect();
    for (k, &bits) in tts.iter().enumerate() {
        let arity = 1 + bits as usize % 3;
        let ins: Vec<NetId> = (0..arity)
            .map(|j| nets[(bits >> (7 * j + 3)) as usize % nets.len()])
            .collect();
        let tt = TruthTable::from_bits(arity, bits).unwrap();
        let c = nl.add_lut(format!("u{k}"), tt, &ins).unwrap();
        nets.push(nl.cell_output(c).unwrap());
    }
    nl.add_output("ylast", *nets.last().unwrap()).unwrap();
    nl.add_output("ymid", nets[nets.len() / 2]).unwrap();
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn packed_comb_eval_matches_scalar_on_every_net(
        tts in prop::collection::vec(prop::bits::u64::masked(u64::MAX), 1usize..8),
        pats in prop::collection::vec(
            prop::collection::vec(prop::bool::weighted(0.3), RAND_PIS..=RAND_PIS),
            1usize..150,
        ),
    ) {
        let nl = random_comb_netlist(&tts);
        let mut scalar = Simulator::new(&nl).unwrap();
        let mut packed = PackedSimulator::new(&nl).unwrap();
        for (c, chunk) in pats.chunks(LANES).enumerate() {
            packed.load_patterns(chunk);
            packed.comb_eval();
            for (lane, pat) in chunk.iter().enumerate() {
                scalar.set_inputs(pat);
                scalar.comb_eval();
                for (net_id, _) in nl.nets() {
                    prop_assert_eq!(
                        packed.net_word(net_id) >> lane & 1 == 1,
                        scalar.net_value(net_id),
                        "net {:?}, pattern {}", net_id, c * LANES + lane
                    );
                }
            }
        }
    }

    #[test]
    fn packed_stream_matches_scalar_outputs_and_ff_state(
        bb in 1usize..5,
        branches in 1usize..3,
        blen in 1usize..4,
        pats in prop::collection::vec(
            prop::collection::vec(prop::bool::weighted(0.5), 1usize..=1),
            1usize..40,
        ),
    ) {
        let nl = seq_backbone_netlist(bb, branches, blen);
        let mut scalar = Simulator::new(&nl).unwrap();
        let mut packed = PackedSimulator::new(&nl).unwrap();
        for pat in &pats {
            scalar.set_inputs(pat);
            scalar.comb_eval();
            packed.broadcast_inputs(pat);
            packed.comb_eval();
            let want = scalar.outputs();
            for (j, &w) in want.iter().enumerate() {
                prop_assert_eq!(packed.output_word(j) & 1 == 1, w);
            }
            for (id, _) in nl.cells() {
                prop_assert_eq!(
                    packed.ff_word(id).map(|w| w & 1 == 1),
                    scalar.ff_state(id),
                    "FF {:?}", id
                );
            }
            scalar.step();
            packed.step();
        }
        prop_assert_eq!(packed.cycles(), scalar.cycles());
    }

    #[test]
    fn packed_fault_lanes_match_a_complemented_netlist(
        tts in prop::collection::vec(prop::bits::u64::masked(u64::MAX), 1usize..6),
        mask_raw in prop::bits::u64::masked(u64::MAX),
        pats in prop::collection::vec(
            prop::collection::vec(prop::bool::weighted(0.5), RAND_PIS..=RAND_PIS),
            1usize..=LANES,
        ),
        cell_raw: usize,
    ) {
        let nl = random_comb_netlist(&tts);
        let luts: Vec<CellId> = nl
            .cells()
            .filter(|(_, c)| c.lut_function().is_some())
            .map(|(id, _)| id)
            .collect();
        let cell = luts[cell_raw % luts.len()];
        let mut faulty_nl = nl.clone();
        inject::inject(&mut faulty_nl, cell, inject::DesignErrorKind::Complement).unwrap();

        let mut packed = PackedSimulator::new(&nl).unwrap();
        let lanes = packed.load_patterns(&pats);
        let mask = mask_raw & lanes;
        packed.set_fault_lanes(cell, mask).unwrap();
        packed.comb_eval();

        let mut clean = Simulator::new(&nl).unwrap();
        let mut faulted = Simulator::new(&faulty_nl).unwrap();
        for (lane, pat) in pats.iter().enumerate() {
            let oracle = if mask >> lane & 1 == 1 { &mut faulted } else { &mut clean };
            oracle.set_inputs(pat);
            oracle.comb_eval();
            let want = oracle.outputs();
            for (j, &w) in want.iter().enumerate() {
                prop_assert_eq!(
                    packed.output_word(j) >> lane & 1 == 1,
                    w,
                    "output {}, lane {}", j, lane
                );
            }
        }
    }

    #[test]
    fn packed_divergence_onsets_match_scalar_oracle(
        tts in prop::collection::vec(prop::bits::u64::masked(u64::MAX), 2usize..8),
        k in 1usize..=2,
        seed: u64,
        pats in prop::collection::vec(
            prop::collection::vec(prop::bool::weighted(0.4), RAND_PIS..=RAND_PIS),
            1usize..150,
        ),
    ) {
        let golden = random_comb_netlist(&tts);
        let mut dut = golden.clone();
        let seeds: Vec<u64> = (0..k as u64).map(|i| seed.wrapping_add(i)).collect();
        inject::random_distinct_errors(&mut dut, &seeds).unwrap();
        let nets: Vec<NetId> = golden
            .cells()
            .filter(|(_, c)| c.lut_function().is_some())
            .map(|(id, _)| golden.cell_output(id).unwrap())
            .collect();

        let got =
            fpga_debug_tiling::sim::emulate::net_first_divergences(&golden, &dut, &nets, &pats)
                .unwrap();

        let mut g = Simulator::new(&golden).unwrap();
        let mut d = Simulator::new(&dut).unwrap();
        let mut want: Vec<Option<usize>> = vec![None; nets.len()];
        for (p, pat) in pats.iter().enumerate() {
            g.set_inputs(pat);
            g.comb_eval();
            d.set_inputs(pat);
            d.comb_eval();
            for (i, &net) in nets.iter().enumerate() {
                if want[i].is_none() && g.net_value(net) != d.net_value(net) {
                    want[i] = Some(p);
                }
            }
        }
        prop_assert_eq!(got, want);
    }
}

// The sequential (stream-mode) counterpart of the onset check, on the
// same backbone shape the windowed-pruning property uses.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn packed_stream_onsets_match_scalar_oracle(
        bb in 1usize..5,
        branches in 1usize..3,
        blen in 1usize..4,
        seed: u64,
        pats in prop::collection::vec(
            prop::collection::vec(prop::bool::weighted(0.5), 1usize..=1),
            1usize..48,
        ),
    ) {
        let golden = seq_backbone_netlist(bb, branches, blen);
        let mut dut = golden.clone();
        inject::random_distinct_errors(&mut dut, &[seed]).unwrap();
        let nets: Vec<NetId> = golden
            .cells()
            .filter(|(_, c)| c.lut_function().is_some())
            .map(|(id, _)| golden.cell_output(id).unwrap())
            .collect();

        let got =
            fpga_debug_tiling::sim::emulate::net_first_divergences(&golden, &dut, &nets, &pats)
                .unwrap();

        let mut g = Simulator::new(&golden).unwrap();
        let mut d = Simulator::new(&dut).unwrap();
        let mut want: Vec<Option<usize>> = vec![None; nets.len()];
        for (p, pat) in pats.iter().enumerate() {
            g.set_inputs(pat);
            g.comb_eval();
            d.set_inputs(pat);
            d.comb_eval();
            for (i, &net) in nets.iter().enumerate() {
                if want[i].is_none() && g.net_value(net) != d.net_value(net) {
                    want[i] = Some(p);
                }
            }
            g.step();
            d.step();
        }
        prop_assert_eq!(got, want);
    }
}

// ---------------------------------------------------------------------
// Localization soundness on the packed combinational path
// ---------------------------------------------------------------------
//
// `windowed_cluster_pruning_keeps_a_guilty_cell` above exercises the
// stream-mode (sequential) sweep; this combinational twin drives the
// 64-lane chunked path across a word boundary (100 patterns). Guilt
// retention is asserted only for a single live error: with several,
// errors can cancel along one branch (e.g. two complements in
// series), leaving a clean output that falsely alibis the shared
// culprit — the documented heuristic limit of the alibi. Multi-error
// draws still check that pruning shrinks and that every cluster
// keeps a non-empty, investigatable cone.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn comb_cluster_pruning_keeps_a_guilty_cell(
        bb in 3usize..6,
        branches in 1usize..4,
        blen in 1usize..4,
        k in 1usize..4,
        seed: u64,
    ) {
        use fpga_debug_tiling::tiling::{cluster_failures, collect_responses};

        let golden = backbone_netlist(bb, branches, blen);
        let mut dut = golden.clone();
        let seeds: Vec<u64> = (0..k as u64).map(|i| seed.wrapping_add(i)).collect();
        let errors = inject::random_distinct_errors(&mut dut, &seeds).unwrap();
        let matrix =
            collect_responses(&golden, &dut, PatternGen::random(1, 100, seed)).unwrap();
        let evidence = EvidenceBase::from_sweep(&golden, &matrix);
        for cl in cluster_failures(&golden, &matrix) {
            prop_assert_eq!(Some(cl.window), cl.signature.first_failing());
            let pruned = evidence.prune_cone(&cl.cone, &evidence.causal_window(&cl));
            // Pruning only ever shrinks the cluster's cone and never
            // empties it — the failing output's own driver has depth
            // 0 and onset == window, so it always survives.
            prop_assert_eq!(&pruned.union(&cl.cone), &cl.cone);
            prop_assert!(!pruned.is_empty(), "cluster pruned to nothing");
            if k == 1 {
                // One live error: no cross-error cancellation, the
                // alibi is exact, and the culprit survives in every
                // cluster it caused.
                prop_assert!(
                    errors.iter().any(|e| pruned.contains(e.cell)),
                    "cluster pruned away the injected error"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Simulation vs direct interpretation
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn simulator_matches_truth_table_semantics(bits: u64, row_raw: u64) {
        let tt = TruthTable::from_bits(4, bits).unwrap();
        let mut nl = Netlist::new("p");
        let ins: Vec<NetId> = (0..4)
            .map(|i| {
                let c = nl.add_input(format!("i{i}")).unwrap();
                nl.cell_output(c).unwrap()
            })
            .collect();
        let u = nl.add_lut("u", tt, &ins).unwrap();
        nl.add_output("y", nl.cell_output(u).unwrap()).unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        let row = row_raw % 16;
        let inputs: Vec<bool> = (0..4).map(|k| row >> k & 1 == 1).collect();
        sim.set_inputs(&inputs);
        sim.comb_eval();
        prop_assert_eq!(sim.outputs()[0], tt.eval_row(row));
    }
}

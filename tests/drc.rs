//! DRC malformed-fixture acceptance tests: each fixture corrupts one
//! structural invariant of an otherwise healthy implementation and
//! asserts (a) the analyzer reports the expected [`Rule`] and (b) the
//! session pre-flight surfaces it as a typed [`TilingError::Drc`] —
//! never a panic or a livelock deep inside a debug campaign.

use fpga_debug_tiling::prelude::*;
use fpga_debug_tiling::{sim, tiling};
use tiling::drc::{Rule, Severity};
use tiling::TiledFlow;

/// A 16-LUT inverter chain with a mid-chain branch output — small
/// enough that every fixture implements in milliseconds, big enough
/// to span several tiles and multi-segment routes.
fn little_design() -> (netlist::Netlist, netlist::Hierarchy) {
    let mut nl = netlist::Netlist::new("fixture");
    let pi = nl.add_input("a").unwrap();
    let mut net = nl.cell_output(pi).unwrap();
    for k in 0..16 {
        let c = nl
            .add_lut(format!("u{k}"), TruthTable::not(), &[net])
            .unwrap();
        net = nl.cell_output(c).unwrap();
        if k == 7 {
            nl.add_output("mid", net).unwrap();
        }
    }
    nl.add_output("y", net).unwrap();
    (nl, netlist::Hierarchy::new("fixture"))
}

fn implement_fixture() -> TiledDesign {
    let (nl, hier) = little_design();
    tiling::implement(nl, hier, TilingOptions::fast(7)).unwrap()
}

/// Plants a real error on the clean design (so the session has a
/// campaign to run), then corrupts the design and asserts the session
/// rejects it with `TilingError::Drc` naming `rule` before any
/// simulation or tile clearing happens.
fn assert_session_rejects(
    mut td: TiledDesign,
    golden: &netlist::Netlist,
    error: &sim::inject::InjectedError,
    corrupt: impl FnOnce(&mut TiledDesign),
    rule: Rule,
) {
    corrupt(&mut td);

    let findings = tiling::check_design(&td).unwrap();
    assert!(
        findings.iter().any(|f| f.rule == rule),
        "analyzer missed {rule}: {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.rule == rule && f.severity == Severity::Error),
        "{rule} must be error-severity to trip the pre-flight"
    );

    let result = DebugSession::new(&mut td, golden)
        .flow(TiledFlow::default())
        .seed(7)
        .run(error);
    match result {
        Err(TilingError::Drc { findings }) => {
            assert!(
                findings.iter().any(|f| f.rule == rule),
                "session error dropped the {rule} finding: {findings:?}"
            );
        }
        other => panic!("expected TilingError::Drc, got {other:?}"),
    }
}

/// Injects the canonical mid-chain error on a fresh implementation
/// and returns everything `assert_session_rejects` needs.
fn planted_fixture() -> (TiledDesign, netlist::Netlist, sim::inject::InjectedError) {
    let mut td = implement_fixture();
    let golden = td.netlist.clone();
    let victim = td.netlist.find_cell("u3").unwrap();
    let error = sim::inject::inject(
        &mut td.netlist,
        victim,
        sim::inject::DesignErrorKind::Complement,
    )
    .unwrap();
    (td, golden, error)
}

#[test]
fn cyclic_netlist_is_rejected_not_diverged_on() {
    let (td, golden, error) = planted_fixture();
    assert_session_rejects(
        td,
        &golden,
        &error,
        |td| {
            // Two fresh LUTs feeding each other: a = !b, b = !a.
            let a = td.netlist.add_net("loop_a").unwrap();
            let b = td.netlist.add_net("loop_b").unwrap();
            td.netlist
                .add_lut_driving("loop_u1", TruthTable::not(), &[b], a)
                .unwrap();
            td.netlist
                .add_lut_driving("loop_u2", TruthTable::not(), &[a], b)
                .unwrap();
        },
        Rule::CombinationalLoop,
    );
}

#[test]
fn multi_driven_net_is_rejected() {
    let (td, golden, error) = planted_fixture();
    assert_session_rejects(
        td,
        &golden,
        &error,
        |td| {
            // Re-point a second LUT's output at a net that already
            // has a driver (only reachable through the import escape
            // hatch).
            let luts: Vec<CellId> = td
                .netlist
                .cells()
                .filter(|(_, c)| c.lut_function().is_some())
                .map(|(id, _)| id)
                .collect();
            let victim_net = td.netlist.cell(luts[0]).unwrap().output.unwrap();
            td.netlist.force_driver(luts[1], victim_net).unwrap();
        },
        Rule::MultiDrivenNet,
    );
}

#[test]
fn dangling_route_segment_is_rejected() {
    let (td, golden, error) = planted_fixture();
    assert_session_rejects(
        td,
        &golden,
        &error,
        |td| {
            // Truncate the longest routed path so it dead-ends on a
            // channel wire instead of a sink pin.
            let (net, tree) = td
                .routing
                .iter()
                .max_by_key(|(_, t)| t.paths.iter().map(Vec::len).max().unwrap_or(0))
                .map(|(n, t)| (n, t.clone()))
                .unwrap();
            let mut broken = tree;
            let path = broken.paths.iter_mut().max_by_key(|p| p.len()).unwrap();
            assert!(path.len() > 2, "fixture needs a multi-segment route");
            path.pop();
            td.routing.set_route(net, broken);
        },
        Rule::DanglingRouteSegment,
    );
}

#[test]
fn moved_outside_cell_fails_the_eco_audit() {
    let td = {
        let mut td = implement_fixture();
        let before_placement = td.placement.clone();
        let before_routing = td.routing.clone();

        // Declare tile 0 the ECO region, then move a cell in a
        // *different* tile between the snapshots: the locked tile
        // interface was not actually locked.
        let region = TileId(0);
        let outsider = td
            .netlist
            .cells()
            .map(|(id, _)| id)
            .find(|&id| {
                td.plan
                    .tile_of_cell(&td.placement, id)
                    .is_some_and(|t| t != region)
            })
            .expect("fixture spans more than one tile");
        let from = td.placement.unplace(outsider).unwrap();
        let free = td
            .device
            .all_clb_bels()
            .find(|&loc| td.placement.is_free(loc) && loc != from)
            .expect("fixture device has a spare CLB slot");
        td.placement.place(outsider, free).unwrap();

        let findings =
            tiling::audit_confined_eco(&td, &[region], &before_placement, &before_routing);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == Rule::UnlockedInterfacePin),
            "audit missed the moved outside cell: {findings:?}"
        );
        td
    };

    // The same design with the move *inside* the declared region is
    // clean: the audit complains about broken locks, not about ECOs.
    let all_tiles: Vec<TileId> = td.plan.iter().map(|(id, _)| id).collect();
    let before_placement = td.placement.clone();
    let before_routing = td.routing.clone();
    assert!(
        tiling::audit_confined_eco(&td, &all_tiles, &before_placement, &before_routing).is_empty()
    );
}

#[test]
fn clean_fixture_passes_preflight_and_localizes() {
    let (mut td, golden, error) = planted_fixture();
    let out = DebugSession::new(&mut td, &golden)
        .flow(TiledFlow::default())
        .seed(7)
        .run(&error)
        .unwrap();
    assert_eq!(out.localized, Some(error.cell));
}

//! The nine evaluation designs: size calibration against Table 1,
//! structural sanity, and BLIF round-tripping.
//!
//! NOTE: the structural tests all run in seconds and stay enabled.
//! The *paper-scale implementation* tests at the bottom (placing and
//! routing the ~900-CLB MIPS R2000 and ~1050-CLB DES cores) exceed
//! the ~60 s budget in debug builds and are `#[ignore]`d; run them
//! with `cargo test --release -- --ignored`.

use fpga_debug_tiling::implement_paper_design;
use fpga_debug_tiling::prelude::*;

#[test]
fn all_nine_designs_generate_and_validate() {
    for design in PaperDesign::ALL {
        let bundle = design.generate().unwrap();
        bundle.netlist.validate().unwrap();
        assert_eq!(
            bundle.netlist.is_sequential(),
            design.is_sequential(),
            "{design}"
        );
        // Mapped to 4-LUTs only.
        assert!(
            bundle
                .netlist
                .cells()
                .all(|(_, c)| c.lut_function().is_none_or(|t| t.arity() <= 4)),
            "{design} has wide LUTs after mapping"
        );
    }
}

#[test]
fn clb_counts_match_table1_within_tolerance() {
    for design in PaperDesign::ALL {
        let bundle = design.generate().unwrap();
        let got = bundle.clbs();
        let target = design.paper_clbs();
        let lo = target * 90 / 100;
        let hi = target * 112 / 100;
        assert!(
            (lo..=hi).contains(&got),
            "{design}: {got} CLBs vs paper {target} (allowed {lo}..={hi})"
        );
    }
}

#[test]
fn blif_roundtrip_preserves_structure() {
    for design in PaperDesign::SMALL {
        let bundle = design.generate().unwrap();
        let text = netlist::blif::write(&bundle.netlist);
        let back = netlist::blif::parse(&text).unwrap();
        back.validate().unwrap();
        assert_eq!(back.num_luts(), bundle.netlist.num_luts(), "{design}");
        assert_eq!(back.num_ffs(), bundle.netlist.num_ffs(), "{design}");
        assert_eq!(
            back.primary_outputs().len(),
            bundle.netlist.primary_outputs().len(),
            "{design}"
        );
    }
}

#[test]
fn des_is_functionally_des() {
    // The generated DES netlist (2 rounds for speed) must agree with
    // the software reference on random blocks, via real simulation.
    let key = 0x0F15_71C9_47D9_E859;
    let (raw, _h) = synth::des::generate(key, 2).unwrap();
    let mapped = synth::mapper::map_to_lut4(&raw).unwrap();
    let mut sim = sim::Simulator::new(&mapped).unwrap();
    for pt in [0u64, 0x0123_4567_89AB_CDEF, 0xFFFF_0000_FF00_00FF] {
        // pt[i] carries spec bit i+1 (MSB first).
        let inputs: Vec<bool> = (0..64).map(|i| pt >> (63 - i) & 1 == 1).collect();
        sim.set_inputs(&inputs);
        sim.comb_eval();
        let outs = sim.outputs();
        let mut ct = 0u64;
        for (i, &b) in outs.iter().enumerate() {
            ct |= u64::from(b) << (63 - i);
        }
        assert_eq!(ct, synth::des::reference_encrypt(pt, key, 2), "pt={pt:#x}");
    }
}

#[test]
fn mips_alu_add_through_simulation() {
    let bundle = PaperDesign::MipsR2000.generate().unwrap();
    let mut sim = sim::Simulator::new(&bundle.netlist).unwrap();
    // addi r1, r0, 42 : op=0b1000 (imm), rs=0, rd=1, imm=42.
    let instr: u64 = 0b1000 | (1 << 10) | (42 << 16);
    for i in 0..32 {
        sim.set_input(i, instr >> i & 1 == 1);
    }
    sim.step(); // latch IR
    sim.step(); // execute/writeback
    sim.comb_eval();
    let outs = sim.outputs();
    let result: u64 = (0..32).map(|i| u64::from(outs[i]) << i).sum();
    assert_eq!(result, 42);
}

#[test]
fn nine_sym_output_is_the_symmetric_function() {
    let bundle = PaperDesign::NineSym.generate().unwrap();
    let mut sim = sim::Simulator::new(&bundle.netlist).unwrap();
    let y_pos = {
        let pos = bundle.netlist.primary_outputs();
        pos.iter()
            .position(|&c| bundle.netlist.cell(c).unwrap().name == "y")
            .unwrap()
    };
    for pattern in sim::PatternGen::random(9, 200, 3) {
        sim.set_inputs(&pattern);
        sim.comb_eval();
        let ones = pattern.iter().filter(|&&b| b).count();
        let expect = (3..=6).contains(&ones);
        assert_eq!(sim.outputs()[y_pos], expect, "pattern {pattern:?}");
    }
}

#[test]
fn hierarchy_back_annotation_covers_all_logic() {
    for design in [PaperDesign::C880, PaperDesign::Planet1] {
        let bundle = design.generate().unwrap();
        for (id, cell) in bundle.netlist.cells() {
            if cell.is_logic() {
                assert!(
                    bundle.hierarchy.node_of_cell(id).is_some(),
                    "{design}: cell {id} has no hierarchy link"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Paper-scale implementations (ignored: > ~60 s in debug builds).
// Escape hatch: `cargo test --release -- --ignored`.
// ---------------------------------------------------------------------

/// Options sized for the two big cores: wide channel for the
/// register-file / S-box fanout, and the bench harness's annealing
/// and router budgets — `fast`'s short schedule leaves more
/// congestion than PathFinder can negotiate away at this scale.
fn paper_scale_options(seed: u64) -> TilingOptions {
    TilingOptions {
        tracks: 20,
        placer: place::PlacerConfig {
            max_temps: 120,
            ..Default::default()
        },
        router: route::RouteOptions {
            max_iterations: 45,
            ..Default::default()
        },
        ..TilingOptions::fast(seed)
    }
}

/// Both paper-scale implements, paid once per test process: the two
/// P&R runs go through `parallel::join` so whichever `--ignored`
/// test runs first fans them over two cores, and the other test just
/// reads the shared result.
fn paper_scale_implementations() -> &'static (
    Result<TiledDesign, tiling::TilingError>,
    Result<TiledDesign, tiling::TilingError>,
) {
    static BOTH: std::sync::OnceLock<(
        Result<TiledDesign, tiling::TilingError>,
        Result<TiledDesign, tiling::TilingError>,
    )> = std::sync::OnceLock::new();
    BOTH.get_or_init(|| {
        parallel::join(
            || implement_paper_design(PaperDesign::MipsR2000, paper_scale_options(11)),
            || implement_paper_design(PaperDesign::Des, paper_scale_options(12)),
        )
    })
}

#[test]
#[ignore = "paper-scale P&R (~900 CLBs); run with `cargo test --release -- --ignored`"]
fn mips_r2000_implements_with_tiling() {
    let (mips, _) = paper_scale_implementations();
    let td = mips.as_ref().unwrap();
    assert!(td.routing.is_feasible());
    assert!(td.plan.len() >= 4, "paper-scale design must be tiled");
}

#[test]
#[ignore = "paper-scale P&R (~1050 CLBs); run with `cargo test --release -- --ignored`"]
fn des_implements_with_tiling() {
    let (_, des) = paper_scale_implementations();
    let td = des.as_ref().unwrap();
    assert!(td.routing.is_feasible());
    assert!(td.plan.len() >= 4, "paper-scale design must be tiled");
}

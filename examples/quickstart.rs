//! Quickstart: implement a benchmark with tiling, plant a design
//! error, and run one complete debugging session — detection,
//! localization via observation-tap ECOs, and correction — watching
//! the typed event stream and comparing the tiled CAD effort against
//! the full re-place-and-route baseline.
//!
//! Run with: `cargo run --release --example quickstart`

// CLI/example output goes to stdout by design.
#![allow(clippy::print_stdout)]

use fpga_debug_tiling::prelude::*;
use fpga_debug_tiling::{implement_paper_design, sim, tiling};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== fpga-debug-tiling quickstart ==\n");

    // 1. Generate the paper's 9sym benchmark and implement it:
    //    place with 20% slack, route, partition into ~10 tiles,
    //    lock every interface.
    let mut td = implement_paper_design(PaperDesign::NineSym, TilingOptions::default())?;
    let stats = td.netlist.stats();
    println!("design     : {} ({stats})", td.netlist.name());
    println!("device     : {}", td.device);
    println!(
        "tiles      : {} (mean {:.1} used CLBs/tile)",
        td.plan.len(),
        td.mean_used_clbs_per_tile()
    );
    println!("area ovhd  : {:.3}", td.area_overhead());
    println!(
        "cut nets   : {}",
        td.plan.cut_nets(&td.netlist, &td.placement)
    );
    println!("initial implementation effort: {}\n", td.initial_effort);

    // 2. Plant a design error (a wrong minterm in some LUT) — this is
    //    the bug the emulation session will hunt.
    let golden = td.netlist.clone();
    let error = sim::inject::random_error(&mut td.netlist, 0xBEEF)?;
    println!(
        "planted error: cell {} ({:?})\n",
        td.netlist.cell(error.cell)?.name,
        error.kind
    );

    // 3. One full debugging session iteration, narrated by its event
    //    stream. Strategy and physical flow are pluggable; these are
    //    the paper-shaped defaults (linear 8-tap batches through the
    //    tiled flow).
    let outcome = DebugSession::new(&mut td, &golden)
        .strategy(LinearBatches::default())
        .flow(TiledFlow::default())
        .seed(42)
        .on_event(|event| match event {
            DebugEvent::Detected {
                pattern_index,
                output_name,
            } => println!("[detect]   divergence at pattern #{pattern_index} on `{output_name}`"),
            DebugEvent::SuspectsComputed {
                structural,
                candidates,
            } => println!("[localize] {structural} structural suspects, {candidates} candidates"),
            DebugEvent::TapEco { cells, effort } => {
                println!(
                    "[localize] tapped {} cell(s), ECO cost {effort}",
                    cells.len()
                );
            }
            DebugEvent::Observed { diverging } => {
                println!("[localize] {} tapped net(s) diverged", diverging.len());
            }
            DebugEvent::Localized { cell } => println!("[localize] converged on {cell:?}"),
            DebugEvent::Confirmed { confirmed, .. } => {
                println!("[confirm]  control point agrees: {confirmed}");
            }
            DebugEvent::Corrected { repaired } => println!("[correct]  repaired: {repaired}"),
            _ => {}
        })
        .run(&error)?;

    let mismatch = outcome.mismatch.as_ref().expect("error must be detectable");
    println!("\n-- session summary --");
    println!(
        "first divergence at pattern #{} on `{}`",
        mismatch.pattern_index, mismatch.output_name
    );
    match outcome.localized {
        Some(c) => println!("localized to cell   : {}", golden.cell(c)?.name),
        None => println!("localized to cell   : (tap batch containment)"),
    }
    println!("\nper-phase ledger:");
    println!("{}", outcome.ledger);

    // 4. Effort comparison: a flow without change tracking pays one
    //    full re-place-and-route per ECO (every tap batch and the fix
    //    each need a new bitstream).
    let full = tiling::full_replace_effort(&td)?;
    let non_tiled_total = CadEffort {
        place_moves: full.place_moves * outcome.ecos as u64,
        route_expansions: full.route_expansions * outcome.ecos as u64,
    };
    println!(
        "\n-- CAD effort ({} physical ECOs this iteration) --",
        outcome.ecos
    );
    println!("tiled debug iteration : {}", outcome.effort);
    println!("one full re-P&R       : {}", full);
    println!("non-tiled iteration   : {}", non_tiled_total);
    println!(
        "iteration speedup     : {:.1}x",
        non_tiled_total.speedup_over(&outcome.effort)
    );
    assert!(outcome.repaired);
    Ok(())
}

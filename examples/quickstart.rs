//! Quickstart: implement a benchmark with tiling, plant a design
//! error, and run one complete debugging iteration — detection,
//! localization via observation-tap ECOs, and correction — comparing
//! the tiled CAD effort against the full re-place-and-route baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use fpga_debug_tiling::prelude::*;
use fpga_debug_tiling::{implement_paper_design, sim, tiling};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== fpga-debug-tiling quickstart ==\n");

    // 1. Generate the paper's 9sym benchmark and implement it:
    //    place with 20% slack, route, partition into ~10 tiles,
    //    lock every interface.
    let mut td = implement_paper_design(PaperDesign::NineSym, TilingOptions::default())?;
    let stats = td.netlist.stats();
    println!("design     : {} ({stats})", td.netlist.name());
    println!("device     : {}", td.device);
    println!(
        "tiles      : {} (mean {:.1} used CLBs/tile)",
        td.plan.len(),
        td.mean_used_clbs_per_tile()
    );
    println!("area ovhd  : {:.3}", td.area_overhead());
    println!(
        "cut nets   : {}",
        td.plan.cut_nets(&td.netlist, &td.placement)
    );
    println!("initial implementation effort: {}\n", td.initial_effort);

    // 2. Plant a design error (a wrong minterm in some LUT) — this is
    //    the bug the emulation session will hunt.
    let golden = td.netlist.clone();
    let error = sim::inject::random_error(&mut td.netlist, 0xBEEF)?;
    println!(
        "planted error: cell {} ({:?})",
        td.netlist.cell(error.cell)?.name,
        error.kind
    );

    // 3. One full debugging iteration.
    let outcome = tiling::run_debug_iteration(&mut td, &golden, &error, 42)?;
    let mismatch = outcome.mismatch.as_ref().expect("error must be detectable");
    println!("\n-- detection --");
    println!(
        "first divergence at pattern #{} on output `{}`",
        mismatch.pattern_index, mismatch.output_name
    );
    println!("-- localization --");
    println!("structural suspects : {}", outcome.initial_suspects);
    println!("observation taps    : {}", outcome.taps_inserted);
    match outcome.localized {
        Some(c) => println!("localized to cell   : {}", golden.cell(c)?.name),
        None => println!("localized to cell   : (tap batch containment)"),
    }
    println!("-- correction --");
    println!("repaired            : {}", outcome.repaired);
    println!("tiles cleared (sum) : {}", outcome.tiles_cleared);

    // 4. Effort comparison: a flow without change tracking pays one
    //    full re-place-and-route per ECO (every tap batch and the fix
    //    each need a new bitstream).
    let full = tiling::full_replace_effort(&td)?;
    let non_tiled_total = fpga_debug_tiling::prelude::CadEffort {
        place_moves: full.place_moves * outcome.ecos as u64,
        route_expansions: full.route_expansions * outcome.ecos as u64,
    };
    println!(
        "\n-- CAD effort ({} physical ECOs this iteration) --",
        outcome.ecos
    );
    println!("tiled debug iteration : {}", outcome.effort);
    println!("one full re-P&R       : {}", full);
    println!("non-tiled iteration   : {}", non_tiled_total);
    println!(
        "iteration speedup     : {:.1}x",
        non_tiled_total.speedup_over(&outcome.effort)
    );
    assert!(outcome.repaired);
    Ok(())
}

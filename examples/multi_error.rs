//! Multi-error triage: plant several design errors at once and watch
//! one concurrent debugging campaign untangle them — failure
//! clustering, suspect-cone partitioning (exclusive regions vs the
//! shared core), frontier screening into the shared `EvidenceBase`,
//! shared observation-tap batches read back per causal window,
//! fault-simulation blame attribution, per-error confirmation, and a
//! single corrective ECO — then compare against the paper's protocol
//! of one sequential campaign per error (which now rides the same
//! evidence layer, so the comparison is strictly about sharing).
//!
//! Run with: `cargo run --release --example multi_error`

// CLI/example output goes to stdout by design.
#![allow(clippy::print_stdout)]

use fpga_debug_tiling::prelude::*;
use fpga_debug_tiling::{sim, tiling};
use netlist::TruthTable;

/// A 30-LUT backbone fanning into three 6-LUT branches, each driving
/// its own output: every branch's suspect cone contains the whole
/// backbone, so three branch errors have heavily overlapping cones —
/// the shape the concurrent scheduler is built for.
fn build_design() -> (netlist::Netlist, netlist::Hierarchy, Vec<netlist::CellId>) {
    let mut nl = netlist::Netlist::new("triage");
    let pi = nl.add_input("a").unwrap();
    let mut net = nl.cell_output(pi).unwrap();
    for k in 0..30 {
        let c = nl
            .add_lut(format!("bb{k}"), TruthTable::not(), &[net])
            .unwrap();
        net = nl.cell_output(c).unwrap();
    }
    let mut victims = Vec::new();
    for b in 0..3 {
        let mut bnet = net;
        for k in 0..6 {
            let c = nl
                .add_lut(format!("br{b}_{k}"), TruthTable::not(), &[bnet])
                .unwrap();
            bnet = nl.cell_output(c).unwrap();
            if k == 3 {
                victims.push(c);
            }
        }
        nl.add_output(format!("y{b}"), bnet).unwrap();
    }
    (nl, netlist::Hierarchy::new("triage"), victims)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== multi-error triage ==\n");

    let (nl, hier, victims) = build_design();
    let td0 = tiling::implement(nl, hier, TilingOptions::fast(77))?;
    let golden = td0.netlist.clone();
    println!(
        "design: {} LUTs, 3 outputs; planting 3 errors with overlapping cones\n",
        golden.num_luts()
    );

    // Concurrent campaign: all three errors live at once.
    let mut td = td0.clone();
    let errors: Vec<_> = victims
        .iter()
        .map(|&v| sim::inject::inject(&mut td.netlist, v, sim::inject::DesignErrorKind::Complement))
        .collect::<Result<_, _>>()?;
    let conc = DebugSession::new(&mut td, &golden)
        .seed(5)
        .on_event(|event| match event {
            DebugEvent::Detected { output_name, .. } => {
                println!("[detect]    `{output_name}` diverges");
            }
            DebugEvent::ConeSplit {
                clusters,
                exclusive,
                shared,
            } => println!(
                "[partition] {clusters} clusters; exclusive regions {exclusive:?}, shared core {shared} cells"
            ),
            DebugEvent::TapEco { cells, .. } => {
                println!("[localize]  tap ECO on {} cells", cells.len());
            }
            DebugEvent::Attribution {
                cell,
                cluster,
                score,
            } => println!(
                "[blame]     ambiguous divergence at cell {} -> cluster {cluster} (score {score:.2})",
                cell.index()
            ),
            DebugEvent::Localized { cell: Some(c) } => println!("[localize]  error site: cell {}", c.index()),
            DebugEvent::Confirmed { confirmed, .. } => {
                println!("[confirm]   control point agrees: {confirmed}");
            }
            DebugEvent::Corrected { repaired } => {
                println!("[correct]   one corrective ECO, repaired: {repaired}");
            }
            _ => {}
        })
        .run_concurrent(&errors)?;
    assert!(conc.repaired);

    // The paper's protocol: one fresh campaign per error.
    let (mut staps, mut secos) = (0usize, 0usize);
    for error in &errors {
        let mut td = td0.clone();
        let replant = sim::inject::inject(&mut td.netlist, error.cell, error.kind)?;
        let out = DebugSession::new(&mut td, &golden).seed(5).run(&replant)?;
        assert!(out.repaired);
        staps += out.taps_inserted;
        secos += out.ecos;
    }

    println!("\nper-error attribution:");
    for (k, cl) in conc.clusters.iter().enumerate() {
        println!(
            "  cluster {k}: outputs {:?} -> localized {:?}, matched planted error {:?}, repaired {}",
            cl.outputs
                .iter()
                .map(|&po| golden.cell(po).map(|c| c.name.clone()).unwrap_or_default())
                .collect::<Vec<_>>(),
            cl.localized.map(|c| c.index()),
            cl.matched_error,
            cl.repaired,
        );
    }
    println!(
        "\nconcurrent : {} taps, {} ECOs (requested {} taps; sharing + caching saved {})",
        conc.taps_inserted,
        conc.ecos,
        conc.taps_requested(),
        conc.taps_requested() - conc.taps_inserted,
    );
    println!("sequential : {staps} taps, {secos} ECOs (3 independent campaigns)");
    Ok(())
}

//! Debugging the paper's largest design: the 1050-CLB key-specific
//! DES datapath. Demonstrates that tiled debugging stays cheap even
//! when the design is ~20x larger than the MCNC circuits — and that
//! on a cone this deep, binary-search localization needs only
//! O(log n) observation-tap ECOs where linear batching pays O(n/8).
//!
//! Run with: `cargo run --release --example debug_des`
//! (release strongly recommended — this places ~2000 LUTs).

// CLI/example output goes to stdout by design.
#![allow(clippy::print_stdout)]

use fpga_debug_tiling::prelude::*;
use fpga_debug_tiling::{sim, synth, tiling};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== key-specific DES debugging ==\n");

    // Generate an 8-round key-specific DES (paper size: ~1050 CLBs)
    // and check it against the software reference before tiling.
    let key = 0x1334_5779_9BBC_DFF1;
    let (raw, hier) = synth::des::generate(key, 8)?;
    let (netlist, hierarchy) = synth::mapper::map_to_lut4_with_hierarchy(&raw, &hier)?;
    println!(
        "DES mapped: {} ({} CLBs)",
        netlist.stats(),
        netlist.stats().clb_estimate()
    );

    let options = TilingOptions {
        // The 32x32-CLB DES needs a wide channel; 18 tracks leaves
        // routing slack for the multi-cluster tap batches (several
        // probe taps + shared-core screening pads land in one ECO now
        // that every failure cluster localizes concurrently).
        tracks: 18,
        placer: place::PlacerConfig {
            max_temps: 60,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut td = tiling::implement(netlist, hierarchy, options)?;
    println!("device    : {}", td.device);
    println!("tiles     : {}", td.plan.len());
    println!("area ovhd : {:.3}", td.area_overhead());
    println!("initial implementation: {}\n", td.initial_effort);

    // Corrupt one S-box output LUT in round 3 — a realistic
    // "mis-transcribed table" design error.
    let victim = td
        .netlist
        .cells()
        .find(|(id, c)| {
            c.lut_function().is_some()
                && td
                    .hierarchy
                    .functional_block_of(*id)
                    .and_then(|b| td.hierarchy.name(b).ok())
                    .is_some_and(|n| n == "round3")
        })
        .map(|(id, _)| id)
        .expect("round3 has LUTs");
    let golden = td.netlist.clone();
    let error = sim::inject::inject(
        &mut td.netlist,
        victim,
        sim::inject::DesignErrorKind::FlipRow { row: 5 },
    )?;
    println!(
        "planted: flipped one minterm of {}",
        golden.cell(victim)?.name
    );

    // Hunt it with a session: binary-search localization (the suspect
    // cone of a DES round is hundreds of cells deep) through the
    // tiled physical flow, LFSR stimulus on the 64-bit plaintext port.
    let outcome = DebugSession::new(&mut td, &golden)
        .strategy(BinarySearch::new())
        .flow(TiledFlow::default())
        .seed(0xD0E5)
        .run(&error)?;
    match &outcome.mismatch {
        Some(m) => println!(
            "detected at pattern #{} on `{}`; {} suspects, {} taps ({} localization ECOs)",
            m.pattern_index,
            m.output_name,
            outcome.initial_suspects,
            outcome.taps_inserted,
            outcome.ledger.phase(Phase::Localize).ecos,
        ),
        None => println!("undetected by 512 LFSR patterns (rare single-minterm escape)"),
    }
    println!("repaired  : {}", outcome.repaired);
    println!(
        "\nper-phase ledger ({} / {}):",
        outcome.strategy, outcome.flow
    );
    println!("{}", outcome.ledger);

    let full = tiling::full_replace_effort(&td)?;
    println!("\nfull re-P&R : {}", full);
    println!("speedup     : {:.1}x", full.speedup_over(&outcome.effort));
    assert!(outcome.repaired);
    Ok(())
}

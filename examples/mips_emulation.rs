//! Emulating the MIPS R2000 datapath and instrumenting it in place.
//!
//! Shows the emulation substrate itself: clocking the processor
//! netlist with instruction stimuli, then inserting a MISR signature
//! register over the ALU result bus as a *tiled ECO* — the kind of
//! observation logic a real debug session drops into a suspect area.
//!
//! Run with: `cargo run --release --example mips_emulation`

// CLI/example output goes to stdout by design.
#![allow(clippy::print_stdout)]

use fpga_debug_tiling::prelude::*;
use fpga_debug_tiling::{sim, tiling};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== MIPS R2000 emulation ==\n");
    let bundle = PaperDesign::MipsR2000.generate()?;
    println!(
        "core: {} ({} CLBs vs paper's 900)",
        bundle.netlist.stats(),
        bundle.clbs()
    );

    // --- Pure emulation first: run the netlist as a processor. -----
    let mut sim0 = Simulator::new(&bundle.netlist)?;
    let set_bus = |sim: &mut Simulator, base: usize, width: usize, value: u64| {
        for i in 0..width {
            sim.set_input(base + i, value >> i & 1 == 1);
        }
    };
    // Encoding (see synth::mips): op[0..4] rs[4..7] rt[7..10] rd[10..13]
    // shamt[13..18] imm[16..32]; op=0b1000 selects the immediate.
    // r1 <- r0 + 5  (opb = imm because op[3] is set; sum select 000)
    let instr: u64 = 0b1000 | (1 << 10) | (5 << 16);
    set_bus(&mut sim0, 0, 32, instr); // instr bus is PIs 0..32
    set_bus(&mut sim0, 32, 32, 0); // din bus
    sim0.step(); // latch IR
    sim0.step(); // execute + write back
    sim0.comb_eval();
    // result[0..32] are the first 32 POs.
    let outs = sim0.outputs();
    let result: u64 = (0..32).map(|i| u64::from(outs[i]) << i).sum();
    println!("executed `addi r1, r0, 5` -> result bus = {result}");
    assert_eq!(result, 5, "ALU immediate add must work");

    // --- Implement with tiling. -------------------------------------
    // Register-file fanout needs a wide channel: at 18 tracks the
    // initial route converges but leaves no slack for the MISR ECO
    // (its seeds span half the tiles, so the re-placed region is
    // large and its confined routing congests unrecoverably). 20
    // tracks plus a full annealing schedule routes both comfortably.
    let options = TilingOptions {
        tracks: 20,
        placer: place::PlacerConfig {
            max_temps: 120,
            ..Default::default()
        },
        router: route::RouteOptions {
            max_iterations: 90,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut td = tiling::implement(bundle.netlist, bundle.hierarchy, options)?;
    println!(
        "\ndevice: {} | tiles: {} | area ovhd {:.3}",
        td.device,
        td.plan.len(),
        td.area_overhead()
    );
    println!("initial implementation: {}", td.initial_effort);

    // --- Insert a MISR over the ALU result bus as a tiled ECO. ------
    let taps: Vec<NetId> = (0..8)
        .map(|i| {
            let po = td
                .netlist
                .find_cell(&format!("result[{i}]"))
                .expect("result PO");
            td.netlist.cell(po).unwrap().inputs[0]
        })
        .collect();
    let seeds: Vec<CellId> = taps
        .iter()
        .filter_map(|&n| td.netlist.net(n).ok().and_then(|net| net.driver))
        .collect();
    let report = sim::testlogic::insert_misr(&mut td.netlist, &taps, "alu")?;
    let clbs = sim::testlogic::clb_cost(&td.netlist, &report);
    println!(
        "\ninserting {}-tap MISR ({clbs} CLBs of test logic)...",
        taps.len()
    );
    // The insertion is one ECO through the unified flow surface — the
    // same `ReimplFlow` trait a debug session drives.
    let outcome = TiledFlow::default().reimplement(&mut td, &seeds, &report.added)?;
    println!(
        "affected tiles: {}/{} ({:.0}%)",
        outcome.affected.tiles.len(),
        td.plan.len(),
        100.0 * outcome.affected.fraction_of(&td.plan)
    );
    println!("ECO effort    : {}", outcome.effort);
    println!(
        "vs initial    : {:.1}x cheaper",
        td.initial_effort.speedup_over(&outcome.effort)
    );
    assert!(td.routing.is_feasible());

    // The signature register is now live: clock a few instructions and
    // read the signature outputs.
    let mut sim1 = Simulator::new(&td.netlist)?;
    set_bus(&mut sim1, 0, 32, instr);
    for _ in 0..4 {
        sim1.step();
    }
    sim1.comb_eval();
    let pos = td.netlist.primary_outputs();
    let sig: String = pos
        .iter()
        .filter(|&&po| td.netlist.cell(po).unwrap().name.starts_with("alu_sig"))
        .map(|&po| {
            let n = td.netlist.cell(po).unwrap().inputs[0];
            if sim1.net_value(n) {
                '1'
            } else {
                '0'
            }
        })
        .collect();
    println!("MISR signature after 4 cycles: {sig}");
    Ok(())
}

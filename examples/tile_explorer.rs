//! Exploring the tiling trade-off space on one design (c880).
//!
//! Sweeps the tile count and prints, for each granularity: interface
//! pressure (cut nets), per-tile slack, the Figure-3-style affected
//! fraction for a 5-CLB insertion, and the ECO speedup for a one-LUT
//! change — the tension §3.2 describes between small tiles (fast
//! ECOs, many interfaces) and large tiles (few interfaces, slow ECOs).
//!
//! Run with: `cargo run --release --example tile_explorer`

// CLI/example output goes to stdout by design.
#![allow(clippy::print_stdout)]

use fpga_debug_tiling::prelude::*;
use fpga_debug_tiling::{implement_paper_design, tiling};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== tile-size exploration on c880 ==\n");
    println!(
        "{:>6} {:>9} {:>10} {:>12} {:>14} {:>10}",
        "tiles", "cut nets", "slack/tile", "affected(5)", "ECO effort", "speedup"
    );

    for target in [4usize, 9, 16, 25] {
        let mut options = TilingOptions::fast(7);
        options.target_tiles = target;
        let mut td = implement_paper_design(PaperDesign::C880, options)?;

        let cut = td.plan.cut_nets(&td.netlist, &td.placement);
        let slack: f64 = td.total_free_clbs() as f64 / td.plan.len() as f64;
        let affected5 = tiling::testpoints::affected_fraction(&td, 5)?;

        // One-LUT functional change in some tile.
        let victim = td
            .netlist
            .cells()
            .find(|(_, c)| c.lut_function().is_some())
            .map(|(id, _)| id)
            .expect("luts exist");
        let tt = td
            .netlist
            .cell(victim)?
            .lut_function()
            .unwrap()
            .complement();
        td.netlist.set_lut_function(victim, tt)?;
        let full = tiling::flow_effort(&td, &mut FullReplaceFlow, &[victim])?;
        let eco = TiledFlow::default().reimplement(&mut td, &[victim], &[])?;

        println!(
            "{:>6} {:>9} {:>10.1} {:>11.0}% {:>14} {:>9.1}x",
            td.plan.len(),
            cut,
            slack,
            100.0 * affected5,
            eco.effort.total(),
            full.speedup_over(&eco.effort)
        );
        assert!(td.routing.is_feasible());
    }
    println!("\nsmaller tiles -> cheaper ECOs but more locked interfaces;");
    println!("larger tiles  -> fewer interfaces but ECO cost approaches full re-P&R.");
    Ok(())
}

//! Offline stand-in for the `rand` crate (API subset of rand 0.8).
//!
//! Provides [`rngs::SmallRng`] (a SplitMix64 generator), the [`Rng`]
//! extension trait with `gen`, `gen_range`, and `gen_bool`, and
//! [`SeedableRng::seed_from_u64`]. Deterministic by construction:
//! every generator is seeded explicitly, which is exactly what the
//! workspace needs for reproducible placement, pattern generation,
//! and error injection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Identical seeds yield
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's native
/// output (the `rng.gen()` surface).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                let draw = (rng.next_u64() as u128 * span) >> 64;
                self.start + draw as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                lo + draw as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Extension trait with the user-facing sampling methods.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete small generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64). Passes
    /// casual statistical scrutiny and is more than adequate for
    /// simulated annealing, test patterns, and error injection.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn reproducible_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u16..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_covers_full_span() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

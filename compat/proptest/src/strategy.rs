//! Value-generation strategies for `name in strategy` bindings.

use core::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::Rng;

/// A source of generated values. The stub's strategies sample
/// directly (no shrinking trees).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize);

/// Strategy produced by [`any`](crate::arbitrary::any): uniform over
/// the whole type.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    pub(crate) _marker: core::marker::PhantomData<T>,
}

impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

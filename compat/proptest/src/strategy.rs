//! Value-generation strategies for `name in strategy` bindings.

use core::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::Rng;

/// A source of generated values. The stub's strategies sample
/// directly (no shrinking trees).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize);

/// Strategy produced by [`any`](crate::arbitrary::any): uniform over
/// the whole type.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    pub(crate) _marker: core::marker::PhantomData<T>,
}

impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy returned by [`weighted`].
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted {
        probability: f64,
    }

    /// A `bool` that is `true` with the given probability — the
    /// stub's equivalent of `proptest::bool::weighted`. Biased input
    /// bits make packed-vs-scalar differential sweeps interesting:
    /// skewed stimulus produces sparse divergence words whose onsets
    /// land away from lane 0.
    pub fn weighted(probability: f64) -> Weighted {
        Weighted {
            probability: probability.clamp(0.0, 1.0),
        }
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn sample(&self, rng: &mut SmallRng) -> bool {
            rng.gen_bool(self.probability)
        }
    }
}

/// Bit-set strategies, mirroring `proptest::bits`.
pub mod bits {
    /// `u64` bit-set strategies (`proptest::bits::u64`).
    pub mod u64 {
        use crate::strategy::Strategy;
        use rand::rngs::SmallRng;
        use rand::Rng;

        /// Strategy returned by [`masked`].
        #[derive(Debug, Clone, Copy)]
        pub struct Masked {
            mask: u64,
        }

        /// A `u64` whose set bits are a random subset of `mask` (each
        /// masked bit kept with probability 1/2) — the stub's
        /// equivalent of `proptest::bits::u64::masked`. Used to draw
        /// lane masks for packed-simulator fault-injection tests.
        pub fn masked(mask: u64) -> Masked {
            Masked { mask }
        }

        impl Strategy for Masked {
            type Value = u64;
            fn sample(&self, rng: &mut SmallRng) -> u64 {
                rng.gen::<u64>() & self.mask
            }
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::Strategy;
    use rand::rngs::SmallRng;

    /// Strategy returned by [`vec()`]: `len` values drawn from
    /// `element`, with `len` drawn from `size`.
    #[derive(Debug, Clone, Copy)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// A `Vec` whose length is sampled from `size` (any strategy
    /// producing `usize`, e.g. a range) and whose elements are
    /// sampled from `element` — the stub's equivalent of
    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy, R: Strategy<Value = usize>>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: Strategy<Value = usize>> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

//! Type-driven generation for `name: Type` bindings.

use rand::rngs::SmallRng;
use rand::Rng;

/// Types that can be generated uniformly from an RNG (the stub's
/// equivalent of proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one uniformly distributed value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty => $u:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                (rng.gen::<u64>() as $u) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen::<u64>() & 1 == 1
    }
}

/// Returns the strategy generating any value of `T`, mirroring
/// `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> crate::strategy::Any<T> {
    crate::strategy::Any {
        _marker: core::marker::PhantomData,
    }
}

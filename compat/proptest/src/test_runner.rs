//! Configuration and per-case RNG derivation for the [`proptest!`]
//! macro.
//!
//! [`proptest!`]: crate::proptest

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Controls how many cases each property runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream proptest's 256, chosen so the
    /// deterministic (non-shrinking) stub keeps CI fast while still
    /// exploring a meaningful slice of each input space.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case: carries the assertion message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps an assertion failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Derives the deterministic RNG for one case of one property: the
/// seed mixes an FNV-1a hash of the test name with the case index, so
/// every (test, case) pair replays identically across runs.
pub fn case_rng(test_name: &str, case: u32) -> SmallRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(hash ^ (u64::from(case) << 32 | u64::from(case)))
}

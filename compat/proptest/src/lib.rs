//! Offline stand-in for the `proptest` property-testing crate.
//!
//! Supports the subset of the proptest 1.x surface the workspace's
//! tests use:
//!
//! * the [`proptest!`] macro with `#[test] fn name(..) { .. }` items
//!   whose parameters are either `name in strategy` (range
//!   strategies) or `name: Type` (type-driven generation), plus the
//!   `#![proptest_config(..)]` inner attribute;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`];
//! * [`test_runner::ProptestConfig::with_cases`];
//! * [`strategy::collection::vec`] (as `prop::collection::vec` from
//!   the prelude) for sized `Vec` generation;
//! * [`strategy::bool::weighted`] (as `prop::bool::weighted`) and
//!   [`strategy::bits`] (as `prop::bits::u64::masked`) for biased
//!   bits and lane-mask subsets — added for the packed-vs-scalar
//!   simulator differential tests.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from
//! the test name and case index), so failures reproduce on rerun.
//! Shrinking is intentionally not implemented: a failing case panics
//! with its case index and the assertion message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod strategy;
pub mod test_runner;

/// Everything the tests import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of `proptest::prelude::prop` (the `prop::collection::…`
    /// path tests conventionally use).
    pub mod prop {
        pub use crate::strategy::{bits, bool, collection};
    }
}

/// Declares deterministic property tests.
///
/// Accepts an optional `#![proptest_config(expr)]` inner attribute
/// followed by `#[test] fn` items whose parameters are `name in
/// strategy` or `name: Type`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: expands each `fn` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident ( $($params:tt)* ) $body:block
     $($rest:tt)*
    ) => {
        // The item's attributes — including the user-written `#[test]`
        // plus any `#[ignore]`/`#[should_panic]`/docs — are re-emitted
        // verbatim on the generated zero-argument test fn.
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut proptest_rng =
                    $crate::test_runner::case_rng(stringify!($name), case);
                $crate::__proptest_bindings!(proptest_rng, $($params)*);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    ::std::panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case + 1, config.cases, stringify!($name), e
                    );
                }
            }
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: binds one parameter list.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strategy:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::sample(&($strategy), &mut $rng);
        $crate::__proptest_bindings!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident in $strategy:expr) => {
        let $name = $crate::strategy::Strategy::sample(&($strategy), &mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bindings!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (with an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+), l, r
        );
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{}\n  both: {:?}",
            ::std::format!($($fmt)+), l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn range_strategy_respects_bounds(x in 3usize..10, y in 0u16..=4, seed: u64) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            let _ = seed;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_is_applied(value: u64) {
            // 5 cases, each deterministic on rerun.
            prop_assert_eq!(value, value);
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use crate::test_runner::case_rng;
        use rand::Rng;
        let a = case_rng("t", 3).gen::<u64>();
        let b = case_rng("t", 3).gen::<u64>();
        let c = case_rng("t", 4).gen::<u64>();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_info() {
        // Mirrors the expansion of a failing proptest body (the
        // macro's `#[test]` output can't be nested inside a test fn).
        let config = ProptestConfig::with_cases(2);
        for case in 0..config.cases {
            let _rng = crate::test_runner::case_rng("always_fails", case);
            let outcome: Result<(), TestCaseError> = (|| {
                prop_assert!(1 == 2, "intentional");
                Ok(())
            })();
            if let Err(e) = outcome {
                panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e);
            }
        }
    }
}

//! Scoped work-stealing parallelism on `std::thread::scope` — the
//! offline stand-in for the *role* rayon would play in this
//! workspace (no crates.io access; see `compat/README.md`).
//!
//! Three entry points:
//!
//! * [`join`] — run two closures, the second on its own scoped
//!   thread, and return both results;
//! * [`scope`] — a fixed-size work-stealing worker pool whose tasks
//!   may borrow the caller's stack (`'env`), spawned dynamically
//!   while the scope body runs;
//! * [`map`] — order-preserving parallel map over an owned `Vec`.
//!
//! The pool is deliberately tiny and `unsafe`-free: each worker owns
//! a deque behind a mutex, [`Scope::spawn`] deals tasks round-robin,
//! idle workers steal from the front of their neighbours' deques
//! (FIFO steal order keeps big early tasks moving first), and a
//! single condvar parks idle workers. Tasks cannot themselves spawn
//! into the scope — nested parallelism opens a nested [`scope`] or
//! [`join`], which is how the diagnosis kernels use it under a
//! campaign fleet.
//!
//! A panicking task never poisons the pool: the worker catches the
//! unwind, keeps draining its queue, and the first payload is
//! re-raised from [`scope`] *after* every remaining task has run —
//! so a fleet survives one bad campaign, finishes the rest, and the
//! caller still sees the failure. [`scope_with_stats`] additionally
//! reports per-worker busy time, task/steal/panic counts, and the
//! peak queue depth — the raw material for fleet telemetry.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A queued unit of work: boxed so it can borrow the scope's
/// environment.
type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Worker-visible shared state guarded by one mutex (queue contents
/// live in per-worker mutexes; this tracks only the counters the
/// condvar protocol needs).
#[derive(Debug, Default)]
struct State {
    /// Tasks pushed but not yet claimed by a worker.
    queued: usize,
    /// Tasks claimed and currently executing.
    running: usize,
    /// Set once the scope body has returned and the pool drained.
    shutdown: bool,
    /// High-water mark of `queued` (telemetry).
    peak_queued: usize,
}

/// Everything the workers and the scope handle share.
struct Registry<'env> {
    /// One deque per worker; owners pop the back, thieves the front.
    queues: Vec<Mutex<VecDeque<Task<'env>>>>,
    state: Mutex<State>,
    signal: Condvar,
    /// Round-robin dealing cursor for [`Scope::spawn`].
    next: AtomicUsize,
    /// Tasks stolen from a non-owner queue (telemetry).
    steals: AtomicUsize,
    /// Panic payloads captured from tasks, re-raised after the drain.
    panics: Mutex<Vec<Box<dyn std::any::Any + Send>>>,
}

impl<'env> Registry<'env> {
    fn new(workers: usize) -> Self {
        Self {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            state: Mutex::new(State::default()),
            signal: Condvar::new(),
            next: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
            panics: Mutex::new(Vec::new()),
        }
    }

    /// Pushes a task (round-robin) and wakes one parked worker.
    fn push(&self, task: Task<'env>) {
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[slot].lock().unwrap().push_back(task);
        let mut st = self.state.lock().unwrap();
        st.queued += 1;
        st.peak_queued = st.peak_queued.max(st.queued);
        drop(st);
        self.signal.notify_one();
    }

    /// Claims one task for worker `w`: own queue from the back,
    /// otherwise steal a neighbour's front. Blocks on the condvar
    /// while the pool is empty; returns `None` on shutdown.
    fn claim(&self, w: usize) -> Option<Task<'env>> {
        {
            let mut st = self.state.lock().unwrap();
            loop {
                if st.queued > 0 {
                    st.queued -= 1;
                    st.running += 1;
                    break;
                }
                if st.shutdown {
                    return None;
                }
                st = self.signal.wait(st).unwrap();
            }
        }
        // A claim ticket is held: at least one pushed task is
        // unclaimed somewhere. Scan until it (or a sibling)
        // appears — pushes land in their queue *before* `queued`
        // is bumped, so this terminates.
        loop {
            if let Some(task) = self.queues[w].lock().unwrap().pop_back() {
                return Some(task);
            }
            let mut found = None;
            for (v, q) in self.queues.iter().enumerate() {
                if v == w {
                    continue;
                }
                if let Some(task) = q.lock().unwrap().pop_front() {
                    found = Some(task);
                    break;
                }
            }
            if let Some(task) = found {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(task);
            }
            std::hint::spin_loop();
        }
    }

    /// Marks one claimed task finished and wakes the drain waiter.
    fn finish(&self) {
        let mut st = self.state.lock().unwrap();
        st.running -= 1;
        if st.queued == 0 && st.running == 0 {
            drop(st);
            self.signal.notify_all();
        }
    }

    /// Blocks until no task is queued or running.
    fn wait_idle(&self) {
        let mut st = self.state.lock().unwrap();
        while st.queued > 0 || st.running > 0 {
            st = self.signal.wait(st).unwrap();
        }
    }

    /// Releases every worker from [`claim`](Self::claim).
    fn shutdown(&self) {
        self.state.lock().unwrap().shutdown = true;
        self.signal.notify_all();
    }
}

/// Handle for spawning tasks into a running [`scope`].
pub struct Scope<'reg, 'env> {
    registry: &'reg Registry<'env>,
}

impl<'reg, 'env> Scope<'reg, 'env> {
    /// Queues `task` for the worker pool. Tasks run in work-stealing
    /// order (no FIFO guarantee across the pool); a panicking task is
    /// recorded and re-raised by [`scope`] after the drain.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'env) {
        self.registry.push(Box::new(task));
    }

    /// `(queued, running)` snapshot — fleet telemetry samples this as
    /// its queue-depth gauge.
    pub fn pending(&self) -> (usize, usize) {
        let st = self.registry.state.lock().unwrap();
        (st.queued, st.running)
    }
}

/// What one [`scope_with_stats`] run observed — the raw material for
/// fleet telemetry (worker utilization, queue depth, steal rate).
#[derive(Debug, Clone, Default)]
pub struct PoolStats {
    /// Tasks executed, per worker.
    pub tasks_per_worker: Vec<usize>,
    /// Time spent inside tasks, per worker.
    pub busy_per_worker: Vec<Duration>,
    /// Wall-clock from pool start to full drain.
    pub wall: Duration,
    /// Tasks claimed from a non-owner queue.
    pub steals: usize,
    /// Tasks that panicked (their payloads were re-raised).
    pub panics: usize,
    /// High-water mark of the queued-task count.
    pub peak_queued: usize,
    /// Per-worker `(start, end)` busy intervals, offsets from pool
    /// start — the raw material tracing reconstructs worker tracks
    /// from (one interval per executed task, in execution order).
    pub busy_segments: Vec<Vec<(Duration, Duration)>>,
}

impl PoolStats {
    /// Mean fraction of the wall time workers spent executing tasks.
    pub fn utilization(&self) -> f64 {
        if self.busy_per_worker.is_empty() || self.wall.is_zero() {
            return 0.0;
        }
        let busy: f64 = self.busy_per_worker.iter().map(Duration::as_secs_f64).sum();
        busy / (self.wall.as_secs_f64() * self.busy_per_worker.len() as f64)
    }

    /// Total time spent inside tasks, summed over workers.
    pub fn busy_total(&self) -> Duration {
        self.busy_per_worker.iter().sum()
    }
}

/// Runs `f` with a [`Scope`] backed by `workers` work-stealing
/// threads, waits for every spawned task to finish, and returns `f`'s
/// result. Tasks may borrow anything that outlives the `scope` call.
///
/// If any task panicked, the first payload is re-raised — after all
/// remaining tasks have run to completion, so sibling work is never
/// abandoned.
///
/// ```
/// let items = [1u64, 2, 3, 4];
/// let sum = std::sync::atomic::AtomicU64::new(0);
/// parallel::scope(2, |s| {
///     for &x in &items {
///         let sum = &sum;
///         s.spawn(move || {
///             sum.fetch_add(x * x, std::sync::atomic::Ordering::Relaxed);
///         });
///     }
/// });
/// assert_eq!(sum.into_inner(), 30);
/// ```
pub fn scope<'env, R>(workers: usize, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
    scope_with_stats(workers, f).0
}

/// [`scope`] plus the pool's [`PoolStats`].
pub fn scope_with_stats<'env, R>(
    workers: usize,
    f: impl FnOnce(&Scope<'_, 'env>) -> R,
) -> (R, PoolStats) {
    let workers = workers.max(1);
    let registry = Registry::new(workers);
    let tasks: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();
    let busy: Vec<Mutex<Duration>> = (0..workers).map(|_| Mutex::new(Duration::ZERO)).collect();
    let segments: Vec<Mutex<Vec<(Duration, Duration)>>> =
        (0..workers).map(|_| Mutex::new(Vec::new())).collect();
    let start = Instant::now();
    let result = std::thread::scope(|ts| {
        for w in 0..workers {
            let registry = &registry;
            let tasks = &tasks;
            let busy = &busy;
            let segments = &segments;
            ts.spawn(move || {
                while let Some(task) = registry.claim(w) {
                    let seg_start = start.elapsed();
                    let t0 = Instant::now();
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                        registry.panics.lock().unwrap().push(payload);
                    }
                    *busy[w].lock().unwrap() += t0.elapsed();
                    segments[w]
                        .lock()
                        .unwrap()
                        .push((seg_start, start.elapsed()));
                    tasks[w].fetch_add(1, Ordering::Relaxed);
                    registry.finish();
                }
            });
        }
        let r = f(&Scope {
            registry: &registry,
        });
        registry.wait_idle();
        registry.shutdown();
        r
    });
    let panics = std::mem::take(&mut *registry.panics.lock().unwrap());
    let stats = PoolStats {
        tasks_per_worker: tasks.iter().map(|t| t.load(Ordering::Relaxed)).collect(),
        busy_per_worker: busy.iter().map(|b| *b.lock().unwrap()).collect(),
        wall: start.elapsed(),
        steals: registry.steals.load(Ordering::Relaxed),
        panics: panics.len(),
        peak_queued: registry.state.lock().unwrap().peak_queued,
        busy_segments: segments
            .iter()
            .map(|s| std::mem::take(&mut *s.lock().unwrap()))
            .collect(),
    };
    if let Some(first) = panics.into_iter().next() {
        resume_unwind(first);
    }
    (result, stats)
}

/// Runs `a` inline and `b` on a scoped thread, returning both results
/// (rayon-style `join`). A panic on either side propagates.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().unwrap_or_else(|p| resume_unwind(p));
        (ra, rb)
    })
}

/// Order-preserving parallel map: applies `f` to every item on a
/// `workers`-wide [`scope`], returning results in input order.
/// `workers <= 1` (or one item) runs inline with no threads — the
/// bit-identical serial reference path.
pub fn map<T, R>(workers: usize, items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R>
where
    T: Send,
    R: Send,
{
    map_with_stats(workers, items, f).0
}

/// [`map`] plus the pool's [`PoolStats`]. The inline (`workers <= 1`
/// or single-item) path synthesizes one-worker stats so telemetry
/// derived from them stays well-defined.
pub fn map_with_stats<T, R>(
    workers: usize,
    items: Vec<T>,
    f: impl Fn(T) -> R + Sync,
) -> (Vec<R>, PoolStats)
where
    T: Send,
    R: Send,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        let start = Instant::now();
        let results: Vec<R> = items.into_iter().map(f).collect();
        let wall = start.elapsed();
        let stats = PoolStats {
            tasks_per_worker: vec![n],
            busy_per_worker: vec![wall],
            wall,
            steals: 0,
            panics: 0,
            peak_queued: usize::from(n > 0),
            busy_segments: vec![if n > 0 {
                vec![(Duration::ZERO, wall)]
            } else {
                Vec::new()
            }],
        };
        return (results, stats);
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let f = &f;
    let ((), stats) = scope_with_stats(workers.min(n), |s| {
        for (item, slot) in items.into_iter().zip(slots.iter_mut()) {
            s.spawn(move || *slot = Some(f(item)));
        }
    });
    let results = slots
        .into_iter()
        .map(|r| r.expect("scope drained every task"))
        .collect();
    (results, stats)
}

/// Worker count for "use the whole machine": the `FLEET_WORKERS` env
/// var when set (clamped to at least 1), else
/// [`std::thread::available_parallelism`].
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("FLEET_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_order_and_results() {
        for workers in [1, 2, 4, 9] {
            let out = map(workers, (0u64..100).collect(), |x| x * x);
            assert_eq!(out, (0u64..100).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn scope_runs_borrowing_tasks() {
        let total = AtomicU64::new(0);
        let data: Vec<u64> = (1..=64).collect();
        let total = &total;
        scope(4, |s| {
            for &x in &data {
                s.spawn(move || {
                    total.fetch_add(x, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 64 * 65 / 2);
    }

    #[test]
    fn uneven_tasks_get_stolen() {
        // One long task dealt to worker 0 plus many short ones: with
        // round-robin dealing and stealing, the short tasks all run
        // even while the long one occupies its owner.
        let done = AtomicUsize::new(0);
        let (_, stats) = scope_with_stats(4, |s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(30));
                done.fetch_add(1, Ordering::Relaxed);
            });
            for _ in 0..63 {
                s.spawn(|| {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 64);
        assert_eq!(stats.tasks_per_worker.iter().sum::<usize>(), 64);
        assert_eq!(stats.panics, 0);
        assert!(stats.peak_queued >= 1);
    }

    #[test]
    fn panicking_task_drains_then_propagates() {
        let done = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            scope(2, |s| {
                s.spawn(|| panic!("injected worker panic"));
                for _ in 0..40 {
                    s.spawn(|| {
                        done.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(caught.is_err(), "scope must re-raise the task panic");
        // Every sibling task still ran: the queue was drained, not
        // abandoned, before the panic propagated.
        assert_eq!(done.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn join_returns_both_and_nests() {
        let (a, (b, c)) = join(|| 1 + 1, || join(|| 2 + 2, || 3 + 3));
        assert_eq!((a, b, c), (2, 4, 6));
    }

    #[test]
    fn map_runs_inside_scope_tasks() {
        // Nested parallelism: campaign tasks open their own inner
        // pools (fault-sim batches) without deadlocking the outer one.
        let outer = map(3, vec![10u64, 20, 30], |base| {
            map(2, (0..8u64).collect(), |k| base + k)
                .iter()
                .sum::<u64>()
        });
        assert_eq!(outer, vec![108, 188, 268]);
    }

    #[test]
    fn stats_report_utilization() {
        let (_, stats) = scope_with_stats(2, |s| {
            for _ in 0..8 {
                s.spawn(|| std::thread::sleep(Duration::from_millis(2)));
            }
        });
        assert!(stats.utilization() > 0.0);
        assert!(stats.wall >= Duration::from_millis(2));
        assert_eq!(stats.busy_per_worker.len(), 2);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    /// Handcrafted stats = a deterministic fake clock: the aggregation
    /// math (utilization, busy totals) must be exact arithmetic over
    /// the recorded durations, independent of any real timer.
    #[test]
    fn utilization_math_is_exact_over_fake_clock_durations() {
        let stats = PoolStats {
            tasks_per_worker: vec![3, 1],
            busy_per_worker: vec![Duration::from_millis(60), Duration::from_millis(20)],
            wall: Duration::from_millis(100),
            steals: 2,
            panics: 0,
            peak_queued: 4,
            busy_segments: vec![
                vec![(Duration::ZERO, Duration::from_millis(60))],
                vec![(Duration::from_millis(10), Duration::from_millis(30))],
            ],
        };
        // (60 + 20) ms busy over 100 ms x 2 workers = 0.4 exactly.
        assert!((stats.utilization() - 0.4).abs() < 1e-12);
        assert_eq!(stats.busy_total(), Duration::from_millis(80));
        assert_eq!(stats.steals, 2);
        assert_eq!(stats.peak_queued, 4);
        // Segment totals agree with the per-worker busy durations.
        let seg_busy: Duration = stats
            .busy_segments
            .iter()
            .flatten()
            .map(|(s, e)| *e - *s)
            .sum();
        assert_eq!(seg_busy, Duration::from_millis(80));
    }

    #[test]
    fn utilization_degenerate_cases_are_zero() {
        let empty = PoolStats::default();
        assert_eq!(empty.utilization(), 0.0);
        let zero_wall = PoolStats {
            tasks_per_worker: vec![1],
            busy_per_worker: vec![Duration::from_millis(5)],
            wall: Duration::ZERO,
            ..Default::default()
        };
        assert_eq!(zero_wall.utilization(), 0.0);
    }

    /// The `workers <= 1` inline map path never touches the pool: it
    /// must synthesize one-worker stats with zero steals and a single
    /// busy segment spanning the whole wall time.
    #[test]
    fn inline_map_path_reports_zero_steals_and_one_segment() {
        let (out, stats) = map_with_stats(1, (0u64..16).collect(), |x| x + 1);
        assert_eq!(out, (1u64..17).collect::<Vec<_>>());
        assert_eq!(stats.steals, 0, "inline path cannot steal");
        assert_eq!(stats.panics, 0);
        assert_eq!(stats.tasks_per_worker, vec![16]);
        assert_eq!(stats.peak_queued, 1);
        assert_eq!(stats.busy_per_worker.len(), 1);
        assert_eq!(stats.busy_per_worker[0], stats.wall);
        assert_eq!(stats.busy_segments.len(), 1);
        assert_eq!(stats.busy_segments[0], vec![(Duration::ZERO, stats.wall)]);
        // Single-item inputs take the inline path at any width.
        let (_, single) = map_with_stats(8, vec![41u64], |x| x + 1);
        assert_eq!(single.steals, 0);
        assert_eq!(single.tasks_per_worker, vec![1]);
        // ... and so does the empty input.
        let (none, empty) = map_with_stats(8, Vec::<u64>::new(), |x| x + 1);
        assert!(none.is_empty());
        assert_eq!(empty.peak_queued, 0);
        assert_eq!(empty.busy_segments, vec![Vec::new()]);
    }

    #[test]
    fn pooled_runs_record_busy_segments_per_worker() {
        let (_, stats) = scope_with_stats(3, |s| {
            for _ in 0..9 {
                s.spawn(|| std::thread::sleep(Duration::from_millis(1)));
            }
        });
        assert_eq!(stats.busy_segments.len(), 3);
        let segs: usize = stats.busy_segments.iter().map(Vec::len).sum();
        assert_eq!(segs, 9, "one busy segment per executed task");
        for (w, segments) in stats.busy_segments.iter().enumerate() {
            assert_eq!(segments.len(), stats.tasks_per_worker[w]);
            for &(start, end) in segments {
                assert!(start <= end);
                assert!(end <= stats.wall + Duration::from_millis(50));
            }
        }
    }
}

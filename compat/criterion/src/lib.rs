//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API the workspace's
//! benches use: [`Criterion::benchmark_group`], group
//! [`sample_size`](BenchmarkGroup::sample_size) /
//! [`bench_function`](BenchmarkGroup::bench_function) /
//! [`finish`](BenchmarkGroup::finish), bencher
//! [`iter`](Bencher::iter) / [`iter_batched`](Bencher::iter_batched),
//! [`BatchSize`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Each benchmark runs `sample_size` timed iterations and prints the
//! mean wall time — enough to compare flows locally. Statistical
//! machinery (outlier analysis, HTML reports) is intentionally out of
//! scope. Set `CRITERION_STUB_SAMPLES` to override the sample count,
//! e.g. `CRITERION_STUB_SAMPLES=1` for a smoke run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How per-iteration setup output is batched (accepted for API
/// compatibility; the stub times routine calls individually either
/// way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup values: many per batch.
    SmallInput,
    /// Large setup values: one per batch.
    LargeInput,
    /// Per-iteration batching.
    PerIteration,
}

/// Times closures handed to [`BenchmarkGroup::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` `sample_size` times, timing each call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.total += start.elapsed();
            self.iters += 1;
            drop(black_box(out));
        }
    }

    /// Runs `setup` (untimed) then `routine` (timed) `sample_size`
    /// times.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.total += start.elapsed();
            self.iters += 1;
            drop(black_box(out));
        }
    }
}

/// A named group of benchmarks sharing a sample count.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one named benchmark and prints its mean wall time.
    // Console reporting is this shim's whole job (upstream criterion
    // prints the same line); the workspace print_stdout lint targets
    // forgotten debug prints, not this.
    #[allow(clippy::print_stdout)]
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = env_samples().unwrap_or(self.samples);
        let mut b = Bencher {
            samples,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.total / b.iters as u32
        };
        println!(
            "{}/{}: mean {:?} over {} iters",
            self.name, id, mean, b.iters
        );
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op kept
    /// for API compatibility).
    pub fn finish(&mut self) {}
}

fn env_samples() -> Option<usize> {
    std::env::var("CRITERION_STUB_SAMPLES").ok()?.parse().ok()
}

/// Top-level benchmark driver, one per bench binary.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Runs one stand-alone named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a function running the given benchmark functions in order
/// (criterion-compatible signature).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 3);
    }

    #[test]
    fn iter_batched_pairs_setup_with_routine() {
        let mut c = Criterion::default();
        let mut seen = Vec::new();
        let mut group = c.benchmark_group("g");
        group.sample_size(4).bench_function("batched", |b| {
            let mut k = 0;
            b.iter_batched(
                || {
                    k += 1;
                    k
                },
                |v| seen.push(v),
                BatchSize::LargeInput,
            );
        });
        assert_eq!(seen, vec![1, 2, 3, 4]);
    }
}

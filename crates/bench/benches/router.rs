//! Criterion bench of the PathFinder router on a placed design.

use criterion::{criterion_group, criterion_main, Criterion};
use place::{Constraints, PlacerConfig};

fn bench_router(c: &mut Criterion) {
    let bundle = synth::PaperDesign::NineSym.generate().expect("generate");
    let stats = bundle.netlist.stats();
    let device = fpga::Device::for_design(
        stats.luts,
        stats.ffs,
        stats.inputs + stats.outputs,
        0.20,
        11,
    )
    .expect("device");
    let placement = place::place(
        &bundle.netlist,
        &device,
        &Constraints::free(),
        None,
        &PlacerConfig::fast(3),
    )
    .expect("place")
    .placement;
    let rrg = fpga::RoutingGraph::new(&device);

    let mut group = c.benchmark_group("router");
    group.sample_size(10);
    group.bench_function("pathfinder_route_9sym_full", |b| {
        b.iter(|| {
            let mut routing = fpga::Routing::new(rrg.num_nodes());
            route::route_design(
                &bundle.netlist,
                &placement,
                &rrg,
                &mut routing,
                &route::RouteOptions::default(),
            )
            .expect("route")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_router);
criterion_main!(benches);

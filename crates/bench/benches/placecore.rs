//! Criterion bench of the two placement engines on the same design
//! and budget: pure annealing vs the analytical pipeline (quadratic
//! solve + tetris legalization + low-temperature polish).

use criterion::{criterion_group, criterion_main, Criterion};
use place::{run_placer, Constraints, PlaceEngine, PlacerConfig};

fn bench_placecore(c: &mut Criterion) {
    let bundle = synth::PaperDesign::NineSym.generate().expect("generate");
    let stats = bundle.netlist.stats();
    let device = fpga::Device::for_design(
        stats.luts,
        stats.ffs,
        stats.inputs + stats.outputs,
        0.20,
        11,
    )
    .expect("device");

    let mut group = c.benchmark_group("placecore");
    group.sample_size(10);
    for engine in [PlaceEngine::Annealing, PlaceEngine::Analytical] {
        group.bench_function(format!("{}_9sym_full", engine.label()), |b| {
            b.iter(|| {
                run_placer(
                    &bundle.netlist,
                    &device,
                    &Constraints::free(),
                    None,
                    &PlacerConfig::fast(3).with_engine(engine),
                )
                .expect("place")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_placecore);
criterion_main!(benches);

//! Criterion bench for the pattern-parallel simulation core: one
//! golden-vs-DUT divergence sweep over 4096 patterns on 9sym
//! (combinational, so the packed side fills all 64 lanes), scalar
//! oracle versus `sim::emulate::po_divergence_words`. The committed
//! cross-PR numbers live in `BENCH_sim.json` (the `simbench` bin);
//! this bench is for quick local A/B runs while touching the core.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sim::{PatternGen, Simulator};

fn bench_divergence_sweep(c: &mut Criterion) {
    let golden = synth::PaperDesign::NineSym
        .generate()
        .expect("generate")
        .netlist;
    let mut dut = golden.clone();
    sim::inject::random_error(&mut dut, 33).expect("inject");
    let n_pi = golden.primary_inputs().len();
    let n_po = golden.primary_outputs().len();
    let pats: Vec<Vec<bool>> = PatternGen::random(n_pi, 4096, 97).collect();
    let pairs: Vec<(usize, usize)> = (0..n_po).map(|k| (k, k)).collect();

    let mut group = c.benchmark_group("simcore_divergence_sweep");
    group.sample_size(10);

    group.bench_function("scalar_oracle_4096_patterns", |b| {
        b.iter(|| {
            let mut gsim = Simulator::new(&golden).expect("sim");
            let mut dsim = Simulator::new(&dut).expect("sim");
            let mut diffs = 0usize;
            for pat in &pats {
                gsim.set_inputs(pat);
                gsim.comb_eval();
                dsim.set_inputs(pat);
                dsim.comb_eval();
                diffs += usize::from(gsim.outputs() != dsim.outputs());
            }
            black_box(diffs)
        });
    });

    group.bench_function("packed_64_lane_4096_patterns", |b| {
        b.iter(|| {
            let (words, _) = sim::emulate::po_divergence_words(&golden, &dut, &pairs, pats.clone())
                .expect("sweep");
            black_box(words)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_divergence_sweep);
criterion_main!(benches);

//! Criterion bench behind Figure 5: the wall-clock cost of one tiled
//! ECO versus one full re-place-and-route, on 9sym — both invoked
//! through the unified [`tiling::ReimplFlow`] trait.

use criterion::{criterion_group, criterion_main, Criterion};
use tiling::{FullReplaceFlow, ReimplFlow, TiledFlow};

fn bench_eco_vs_full(c: &mut Criterion) {
    let td0 =
        bench_harness::implement_design(synth::PaperDesign::NineSym, 10, 7).expect("implement");

    let mut group = c.benchmark_group("fig5_eco_vs_full");
    group.sample_size(10);

    group.bench_function("tiled_eco_one_lut_change", |b| {
        b.iter_batched(
            || {
                let mut td = td0.clone();
                let victim = bench_harness::apply_canonical_change(&mut td).expect("change");
                (td, victim)
            },
            |(mut td, victim)| {
                TiledFlow::default()
                    .reimplement(&mut td, &[victim], &[])
                    .expect("eco")
            },
            criterion::BatchSize::LargeInput,
        );
    });

    group.bench_function("full_replace_and_route", |b| {
        b.iter_batched(
            || {
                let mut td = td0.clone();
                let victim = bench_harness::apply_canonical_change(&mut td).expect("change");
                (td, victim)
            },
            |(mut td, victim)| {
                FullReplaceFlow
                    .reimplement(&mut td, &[victim], &[])
                    .expect("full")
            },
            criterion::BatchSize::LargeInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_eco_vs_full);
criterion_main!(benches);

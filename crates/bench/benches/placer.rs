//! Criterion bench of the simulated-annealing placer (the dominant
//! back-end cost in every flow Figure 5 compares).

use criterion::{criterion_group, criterion_main, Criterion};
use place::{Constraints, PlacerConfig};

fn bench_placer(c: &mut Criterion) {
    let bundle = synth::PaperDesign::NineSym.generate().expect("generate");
    let stats = bundle.netlist.stats();
    let device = fpga::Device::for_design(
        stats.luts,
        stats.ffs,
        stats.inputs + stats.outputs,
        0.20,
        11,
    )
    .expect("device");

    let mut group = c.benchmark_group("placer");
    group.sample_size(10);
    group.bench_function("sa_place_9sym_full", |b| {
        b.iter(|| {
            place::place(
                &bundle.netlist,
                &device,
                &Constraints::free(),
                None,
                &PlacerConfig::fast(3),
            )
            .expect("place")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_placer);
criterion_main!(benches);

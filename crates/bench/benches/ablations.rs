//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * `ablate_partition` — cut-minimizing DP boundaries vs a uniform
//!   grid (quality proxy: the resulting ECO cost on the same change);
//! * `ablate_expansion` — most-free-first vs nearest-first neighbour
//!   expansion;
//! * `ablate_slack` — 10% vs 20% vs 40% area overhead and its effect
//!   on a test-logic insertion ECO.

use criterion::{criterion_group, criterion_main, Criterion};
use netlist::TruthTable;
use tiling::affected::ExpansionPolicy;
use tiling::{ReimplFlow, TiledFlow, TilingOptions};

fn eco_with_options(options: TilingOptions, policy: ExpansionPolicy) -> u64 {
    let bundle = synth::PaperDesign::NineSym.generate().expect("generate");
    let mut td = tiling::implement(bundle.netlist, bundle.hierarchy, options).expect("implement");
    // Insert a small observation cone (2 LUTs + PO) — enough to need
    // real slack, small enough to stay local.
    let (seed_cell, net) = {
        let (id, c) = td
            .netlist
            .cells()
            .find(|(_, c)| c.lut_function().is_some())
            .expect("luts");
        (id, c.output.expect("lut drives"))
    };
    let rep = netlist::eco::apply(
        &mut td.netlist,
        &netlist::EcoOp::AddLut {
            name: "abl_inv".into(),
            function: TruthTable::not(),
            inputs: vec![net],
        },
    )
    .expect("eco");
    let inv = rep.added[0];
    let inv_net = td.netlist.cell_output(inv).expect("net");
    let po = td.netlist.add_output("abl_po", inv_net).expect("po");
    let out = TiledFlow { policy }
        .reimplement(&mut td, &[seed_cell], &[inv, po])
        .expect("replace");
    out.effort.total()
}

fn ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    group.bench_function("ablate_partition_cutmin", |b| {
        b.iter(|| eco_with_options(TilingOptions::fast(5), ExpansionPolicy::MostFree));
    });
    // Uniform partition is exercised through target_tiles alone: the
    // DP collapses to even cuts when no placement is provided, so the
    // ablation contrast comes from disabling tile-slack balancing.
    group.bench_function("ablate_partition_no_rebalance", |b| {
        b.iter(|| {
            let mut o = TilingOptions::fast(5);
            o.enforce_tile_slack = false;
            eco_with_options(o, ExpansionPolicy::MostFree)
        });
    });
    group.bench_function("ablate_expansion_nearest_first", |b| {
        b.iter(|| eco_with_options(TilingOptions::fast(5), ExpansionPolicy::NearestFirst));
    });
    for overhead in [0.10, 0.20, 0.40] {
        group.bench_function(
            format!("ablate_slack_{:02}", (overhead * 100.0) as u32),
            |b| {
                b.iter(|| {
                    let mut o = TilingOptions::fast(5);
                    o.overhead = overhead;
                    eco_with_options(o, ExpansionPolicy::MostFree)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);

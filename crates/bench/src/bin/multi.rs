//! Simultaneous multi-error diagnosis sweep (new capability — the
//! paper's protocol is strictly one error at a time).
//!
//! For k = 1..4 simultaneous design errors on three designs, the same
//! planted errors are debugged two ways through the tiled flow:
//!
//! * **concurrent** — one `DebugSession::run_concurrent` campaign:
//!   failing outputs are clustered into per-error footprints (FSM
//!   fan-out clusters merged behind their dominating state
//!   registers), each cluster is pruned within its own `[0,
//!   first_fail]` observation window, and the `tiling::diagnosis`
//!   scheduler merges every cluster's tap requests into shared
//!   batches through the windowed verdict cache;
//! * **sequential** — k independent single-error campaigns on fresh
//!   copies of the design (the paper's loop, k times over).
//!
//! The report shows observation taps and physical ECOs *per error*
//! dropping as k grows: shared test logic amortizes, the sequential
//! baseline cannot. (`cfnd` counts localized clusters / clusters;
//! `sfnd` counts serial campaigns that localized / planted errors.
//! A single-output design folds several errors into one cluster.
//! Both paths localize through the shared `diagnosis::evidence`
//! layer — causal windows, alibi pruning, free PO-onset seeding — so
//! the serial rows on the FSM designs, which the old whole-sweep
//! passing-split failed to localize at all, now pinpoint cells too.)
//!
//! Besides the human-readable table, the sweep emits
//! **`BENCH_multi.json`** — taps/ECOs per (design, k), concurrent vs
//! serial, plus cluster/localization counts — so the performance
//! trajectory is tracked across PRs instead of living only in stdout.
//!
//! Run: `cargo run --release -p bench-harness --bin multi`
//! (pass `--quick` for the smallest design and k ≤ 2 — the mode CI
//! runs end-to-end).

use std::fmt::Write as _;

use bench_harness::implement_design;
use sim::inject::inject;
use synth::PaperDesign;
use tiling::flows::TiledFlow;
use tiling::session::DebugSession;

/// One (design, k) comparison row.
struct Row {
    design: &'static str,
    k: usize,
    clusters: usize,
    localized: usize,
    conc_taps: usize,
    conc_ecos: usize,
    seq_localized: usize,
    seq_taps: usize,
    seq_ecos: usize,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let designs: &[PaperDesign] = if quick {
        &[PaperDesign::NineSym]
    } else {
        &[PaperDesign::NineSym, PaperDesign::Styr, PaperDesign::Sand]
    };
    let max_k = if quick { 2 } else { 4 };

    println!("Multi-error diagnosis: concurrent vs k sequential campaigns (tiled flow)");
    println!(
        "{:<12} {:>2} {:>5} {:>5} | {:>10} {:>10} | {:>10} {:>10} | {:>9} {:>9}",
        "design",
        "k",
        "cfnd",
        "sfnd",
        "conc taps",
        "conc ECOs",
        "seq taps",
        "seq ECOs",
        "taps/err",
        "ECOs/err"
    );

    let mut rows: Vec<Row> = Vec::new();
    for &design in designs {
        let td0 = implement_design(design, 10, 41)?;
        let golden = td0.netlist.clone();
        for k in 1..=max_k {
            // Plant k distinct random errors, all live at once.
            let mut td = td0.clone();
            let seeds: Vec<u64> = (0..k as u64).map(|i| 31 + i).collect();
            let errors = sim::inject::random_distinct_errors(&mut td.netlist, &seeds)?;
            let conc = DebugSession::new(&mut td, &golden)
                .flow(TiledFlow::default())
                .seed(7)
                .run_concurrent(&errors)?;

            // Sequential baseline: the same errors, one fresh
            // single-error campaign each. Serial localization now
            // runs through the same diagnosis::evidence layer, so
            // its localized count is tracked per row too (the old
            // whole-sweep passing-split failed to localize at all on
            // the FSM designs).
            let (mut slocalized, mut staps, mut secos) = (0usize, 0usize, 0usize);
            for error in &errors {
                let mut td = td0.clone();
                let replant = inject(&mut td.netlist, error.cell, error.kind)?;
                let out = DebugSession::new(&mut td, &golden)
                    .flow(TiledFlow::default())
                    .seed(7)
                    .run(&replant)?;
                slocalized += usize::from(out.localized.is_some());
                staps += out.taps_inserted;
                secos += out.ecos;
            }

            let found = conc
                .clusters
                .iter()
                .filter(|c| c.localized.is_some())
                .count();
            println!(
                "{:<12} {:>2} {:>2}/{:<2} {:>2}/{:<2} | {:>10} {:>10} | {:>10} {:>10} | {:>4}v{:<4} {:>4}v{:<4}",
                design.name(),
                k,
                found,
                conc.clusters.len(),
                slocalized,
                k,
                conc.taps_inserted,
                conc.ecos,
                staps,
                secos,
                ratio(conc.taps_inserted, k),
                ratio(staps, k),
                ratio(conc.ecos, k),
                ratio(secos, k),
            );
            rows.push(Row {
                design: design.name(),
                k,
                clusters: conc.clusters.len(),
                localized: found,
                conc_taps: conc.taps_inserted,
                conc_ecos: conc.ecos,
                seq_localized: slocalized,
                seq_taps: staps,
                seq_ecos: secos,
            });
        }
    }
    println!("\n(taps/err and ECOs/err: concurrent vs sequential, per planted error)");

    // The full sweep writes the committed snapshot; --quick runs
    // (CI, local smoke) write a sibling file so they never clobber
    // the tracked cross-PR trajectory.
    let path = if quick {
        "BENCH_multi.quick.json"
    } else {
        "BENCH_multi.json"
    };
    std::fs::write(path, render_json(quick, &rows))?;
    println!("machine-readable results written to {path}");
    Ok(())
}

/// Per-error average, one decimal.
fn ratio(total: usize, k: usize) -> String {
    format!("{:.1}", total as f64 / k as f64)
}

/// Renders the sweep as JSON (hand-rolled: every value is a number,
/// a bool, or a design name — no escaping needed, and the offline
/// workspace carries no serde stand-in).
fn render_json(quick: bool, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"multi\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"design\": \"{}\", \"k\": {}, \"clusters\": {}, \"localized\": {}, \
             \"concurrent\": {{\"taps\": {}, \"ecos\": {}}}, \
             \"serial\": {{\"taps\": {}, \"ecos\": {}, \"localized\": {}}}}}",
            r.design,
            r.k,
            r.clusters,
            r.localized,
            r.conc_taps,
            r.conc_ecos,
            r.seq_taps,
            r.seq_ecos,
            r.seq_localized
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

//! Simultaneous multi-error diagnosis sweep (new capability — the
//! paper's protocol is strictly one error at a time).
//!
//! For k = 1..4 simultaneous design errors on three designs, the same
//! planted errors are debugged two ways through the tiled flow:
//!
//! * **concurrent** — one `DebugSession::run_concurrent` campaign:
//!   failing outputs are clustered into per-error footprints (FSM
//!   fan-out clusters merged behind their dominating state
//!   registers), each cluster is pruned within its own `[0,
//!   first_fail]` observation window, and the `tiling::diagnosis`
//!   scheduler merges every cluster's tap requests into shared
//!   batches through the windowed verdict cache;
//! * **sequential** — k independent single-error campaigns on fresh
//!   copies of the design (the paper's loop, k times over).
//!
//! The report shows observation taps and physical ECOs *per error*
//! dropping as k grows: shared test logic amortizes, the sequential
//! baseline cannot. (`cfnd` counts localized clusters / clusters;
//! `sfnd` counts serial campaigns that localized / planted errors.
//! A single-output design folds several errors into one cluster.
//! Both paths localize through the shared `diagnosis::evidence`
//! layer — causal windows, alibi pruning, free PO-onset seeding — so
//! the serial rows on the FSM designs, which the old whole-sweep
//! passing-split failed to localize at all, now pinpoint cells too.)
//!
//! Besides the human-readable table, the sweep emits
//! **`BENCH_multi.json`** — taps/ECOs per (design, k), concurrent vs
//! serial, plus cluster/localization counts — so the performance
//! trajectory is tracked across PRs instead of living only in stdout.
//!
//! The design×k grid fans out over the `parallel` work-stealing
//! pool (one task per grid cell, implements shared per design);
//! campaigns are deterministic, so the pooled sweep's JSON is
//! byte-identical to a serial one — pass `--check-serial` to re-run
//! the grid on one worker and assert exactly that (CI does, in quick
//! mode).
//!
//! Run: `cargo run --release -p bench-harness --bin multi`
//! (pass `--quick` for the smallest design and k ≤ 2 — the mode CI
//! runs end-to-end).
//!
//! Pass `--trace <base>` to record the sweep through the `obs` layer:
//! `<base>.trace.json` (Chrome trace-event JSON, one track per grid
//! cell plus one per pool worker — loadable at ui.perfetto.dev),
//! `<base>.trace.jsonl` (raw span rows), and `<base>.metrics.prom`
//! (Prometheus text exposition of the session/sim counters). A bare
//! stem collects under the gitignored `artifacts/` directory.

// CLI/example output goes to stdout by design.
#![allow(clippy::print_stdout)]

use std::fmt::Write as _;

use bench_harness::implement_design;
use obs::{MetricsRegistry, Tracer, TrackId};
use sim::inject::inject;
use synth::PaperDesign;
use tiling::flows::TiledFlow;
use tiling::session::DebugSession;
use tiling::TiledDesign;

/// One (design, k) comparison row.
#[derive(PartialEq)]
struct Row {
    design: &'static str,
    k: usize,
    clusters: usize,
    localized: usize,
    conc_taps: usize,
    conc_ecos: usize,
    seq_localized: usize,
    seq_taps: usize,
    seq_ecos: usize,
}

/// Runs one (design, k) grid cell: the concurrent campaign and its
/// k-sequential baseline on fresh clones of the shared implement.
fn run_cell(
    design: PaperDesign,
    td0: &TiledDesign,
    golden: &netlist::Netlist,
    k: usize,
    observe: Option<(&Tracer, TrackId, &MetricsRegistry)>,
) -> Result<Row, tiling::TilingError> {
    // Plant k distinct random errors, all live at once.
    let mut td = td0.clone();
    let seeds: Vec<u64> = (0..k as u64).map(|i| 31 + i).collect();
    let errors = sim::inject::random_distinct_errors(&mut td.netlist, &seeds)?;
    let mut session = DebugSession::new(&mut td, golden)
        .flow(TiledFlow::default())
        .seed(7);
    if let Some((tracer, track, registry)) = observe {
        session = session.trace(tracer, track).metrics(registry);
    }
    let conc = session.run_concurrent(&errors)?;

    // Sequential baseline: the same errors, one fresh
    // single-error campaign each. Serial localization now
    // runs through the same diagnosis::evidence layer, so
    // its localized count is tracked per row too (the old
    // whole-sweep passing-split failed to localize at all on
    // the FSM designs).
    let (mut slocalized, mut staps, mut secos) = (0usize, 0usize, 0usize);
    for error in &errors {
        let mut td = td0.clone();
        let replant = inject(&mut td.netlist, error.cell, error.kind)?;
        let mut session = DebugSession::new(&mut td, golden)
            .flow(TiledFlow::default())
            .seed(7);
        if let Some((tracer, track, registry)) = observe {
            session = session.trace(tracer, track).metrics(registry);
        }
        let out = session.run(&replant)?;
        slocalized += usize::from(out.localized.is_some());
        staps += out.taps_inserted;
        secos += out.ecos;
    }

    let found = conc
        .clusters
        .iter()
        .filter(|c| c.localized.is_some())
        .count();
    Ok(Row {
        design: design.name(),
        k,
        clusters: conc.clusters.len(),
        localized: found,
        conc_taps: conc.taps_inserted,
        conc_ecos: conc.ecos,
        seq_localized: slocalized,
        seq_taps: staps,
        seq_ecos: secos,
    })
}

/// Sweeps the whole design×k grid on a `workers`-wide pool: one
/// implement per design (itself fanned out), then one pool task per
/// grid cell. Row order is design-major, k-minor — identical to the
/// old serial loop, because `parallel::map` preserves input order.
fn sweep(
    designs: &[PaperDesign],
    max_k: usize,
    workers: usize,
    observe: Option<(&Tracer, &MetricsRegistry)>,
) -> Result<Vec<Row>, tiling::TilingError> {
    let implemented = parallel::map(workers, designs.to_vec(), |design| {
        implement_design(design, 10, 41).map(|td| (td.netlist.clone(), td))
    });
    let mut artifacts = Vec::with_capacity(designs.len());
    for r in implemented {
        let (golden, td) = r?;
        artifacts.push((golden, td));
    }
    let jobs: Vec<(usize, usize)> = (0..designs.len())
        .flat_map(|d| (1..=max_k).map(move |k| (d, k)))
        .collect();
    // One trace track per grid cell, allocated up front in job order
    // so track ids stay deterministic however the pool schedules.
    let tracks: Option<Vec<TrackId>> = observe.map(|(tracer, _)| {
        jobs.iter()
            .map(|&(d, k)| tracer.track(&format!("{} k={k}", designs[d].name())))
            .collect()
    });
    let t0_us = observe.map(|(tracer, _)| tracer.now_us()).unwrap_or(0);
    let artifacts = &artifacts;
    let tracks = &tracks;
    let jobs: Vec<(usize, (usize, usize))> = jobs.into_iter().enumerate().collect();
    let (rows, stats) = parallel::map_with_stats(workers, jobs, |(i, (d, k))| {
        let (golden, td0) = &artifacts[d];
        let cell_obs = match (observe, tracks) {
            (Some((tracer, registry)), Some(ids)) => Some((tracer, ids[i], registry)),
            _ => None,
        };
        run_cell(designs[d], td0, golden, k, cell_obs)
    });
    if let Some((tracer, _)) = observe {
        tracer.pool_tracks("worker", &stats, t0_us);
    }
    rows.into_iter().collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check_serial = args.iter().any(|a| a == "--check-serial");
    let trace_base = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1).cloned());
    let designs: &[PaperDesign] = if quick {
        &[PaperDesign::NineSym]
    } else {
        &[PaperDesign::NineSym, PaperDesign::Styr, PaperDesign::Sand]
    };
    let max_k = if quick { 2 } else { 4 };

    let workers = parallel::default_workers();
    let tracer = trace_base.as_deref().map(|_| Tracer::new());
    let registry = trace_base.as_deref().map(|_| MetricsRegistry::new());
    let observe = match (&tracer, &registry) {
        (Some(t), Some(r)) => Some((t, r)),
        _ => None,
    };
    let sim_before = sim::counters::snapshot();
    let place_before = place::counters::snapshot();
    let route_before = route::counters::snapshot();
    let rows = sweep(designs, max_k, workers, observe)?;
    if let Some(reg) = &registry {
        let sim_delta = sim::counters::snapshot().delta_since(&sim_before);
        reg.counter_add("sim_sweeps_total", &[], sim_delta.sweeps);
        reg.counter_add("sim_net_words_total", &[], sim_delta.net_words);
        reg.counter_add("sim_lanes_loaded_total", &[], sim_delta.lanes_loaded);
        let place_delta = place::counters::snapshot().delta_since(&place_before);
        reg.counter_add(
            "place_moves_evaluated_total",
            &[("engine", "annealing")],
            place_delta.moves_annealing,
        );
        reg.counter_add(
            "place_moves_evaluated_total",
            &[("engine", "analytical")],
            place_delta.moves_analytical,
        );
        reg.counter_add("place_cg_iterations_total", &[], place_delta.cg_iterations);
        let route_delta = route::counters::snapshot().delta_since(&route_before);
        reg.counter_add(
            "route_nets_ripped_total",
            &[("mode", "incremental")],
            route_delta.nets_ripped_incremental,
        );
        reg.counter_add(
            "route_nets_ripped_total",
            &[("mode", "full")],
            route_delta.nets_ripped_full,
        );
    }
    if check_serial {
        // The pooled sweep must be a pure reordering of the serial
        // one: same rows, same bytes out. (The serial reference runs
        // unobserved so the trace only carries the pooled sweep.)
        let serial = sweep(designs, max_k, 1, None)?;
        assert!(
            rows == serial && render_json(quick, &rows) == render_json(quick, &serial),
            "pooled sweep diverged from the serial reference"
        );
        println!("(pooled sweep verified byte-identical to the serial path)");
    }
    if let (Some(base), Some(tracer), Some(reg)) = (&trace_base, &tracer, &registry) {
        let base = obs::artifact_base(base)?;
        let base = base.display();
        std::fs::write(format!("{base}.trace.json"), tracer.to_chrome_trace())?;
        std::fs::write(format!("{base}.trace.jsonl"), tracer.to_jsonl())?;
        std::fs::write(format!("{base}.metrics.prom"), reg.render_prometheus())?;
        println!("trace + metrics artifacts written to {base}.*");
    }

    println!("Multi-error diagnosis: concurrent vs k sequential campaigns (tiled flow)");
    println!(
        "{:<12} {:>2} {:>5} {:>5} | {:>10} {:>10} | {:>10} {:>10} | {:>9} {:>9}",
        "design",
        "k",
        "cfnd",
        "sfnd",
        "conc taps",
        "conc ECOs",
        "seq taps",
        "seq ECOs",
        "taps/err",
        "ECOs/err"
    );
    for r in &rows {
        println!(
            "{:<12} {:>2} {:>2}/{:<2} {:>2}/{:<2} | {:>10} {:>10} | {:>10} {:>10} | {:>4}v{:<4} {:>4}v{:<4}",
            r.design,
            r.k,
            r.localized,
            r.clusters,
            r.seq_localized,
            r.k,
            r.conc_taps,
            r.conc_ecos,
            r.seq_taps,
            r.seq_ecos,
            ratio(r.conc_taps, r.k),
            ratio(r.seq_taps, r.k),
            ratio(r.conc_ecos, r.k),
            ratio(r.seq_ecos, r.k),
        );
    }
    println!("\n(taps/err and ECOs/err: concurrent vs sequential, per planted error)");

    // The full sweep writes the committed snapshot; --quick runs
    // (CI, local smoke) write a sibling file so they never clobber
    // the tracked cross-PR trajectory.
    let path = if quick {
        "BENCH_multi.quick.json"
    } else {
        "BENCH_multi.json"
    };
    std::fs::write(path, render_json(quick, &rows))?;
    println!("machine-readable results written to {path}");
    Ok(())
}

/// Per-error average, one decimal.
fn ratio(total: usize, k: usize) -> String {
    format!("{:.1}", total as f64 / k as f64)
}

/// Renders the sweep as JSON (hand-rolled: every value is a number,
/// a bool, or a design name — no escaping needed, and the offline
/// workspace carries no serde stand-in).
fn render_json(quick: bool, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"multi\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"design\": \"{}\", \"k\": {}, \"clusters\": {}, \"localized\": {}, \
             \"concurrent\": {{\"taps\": {}, \"ecos\": {}}}, \
             \"serial\": {{\"taps\": {}, \"ecos\": {}, \"localized\": {}}}}}",
            r.design,
            r.k,
            r.clusters,
            r.localized,
            r.conc_taps,
            r.conc_ecos,
            r.seq_taps,
            r.seq_ecos,
            r.seq_localized
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

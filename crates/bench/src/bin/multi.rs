//! Simultaneous multi-error diagnosis sweep (new capability — the
//! paper's protocol is strictly one error at a time).
//!
//! For k = 1..4 simultaneous design errors on three designs, the same
//! planted errors are debugged two ways through the tiled flow:
//!
//! * **concurrent** — one `DebugSession::run_concurrent` campaign:
//!   failing outputs are clustered into per-error footprints, the
//!   `tiling::diagnosis` scheduler merges every cluster's tap
//!   requests into shared batches (screening the overlapping cone
//!   core first), and one corrective ECO repairs everything;
//! * **sequential** — k independent single-error campaigns on fresh
//!   copies of the design (the paper's loop, k times over).
//!
//! The report shows observation taps and physical ECOs *per error*
//! dropping as k grows: shared test logic amortizes, the sequential
//! baseline cannot. (On deep sequential designs the sequential
//! baseline is very cheap in absolute terms — stopping at the first
//! mismatching cycle prunes its suspect cone with the passing-output
//! split at that single cycle, while the concurrent sweep can only
//! subtract outputs that stay clean across the *whole* window; see
//! ROADMAP's windowed-pruning open item. The `found` column counts
//! localized clusters / planted errors: a single-output design folds
//! several errors into one cluster, and an FSM error fans out into
//! several.)
//!
//! Run: `cargo run --release -p bench-harness --bin multi`
//! (pass `--quick` for the smallest design and k ≤ 2 — the mode CI
//! runs end-to-end).

use bench_harness::implement_design;
use sim::inject::inject;
use synth::PaperDesign;
use tiling::flows::TiledFlow;
use tiling::session::DebugSession;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let designs: &[PaperDesign] = if quick {
        &[PaperDesign::NineSym]
    } else {
        &[PaperDesign::NineSym, PaperDesign::Styr, PaperDesign::Sand]
    };
    let max_k = if quick { 2 } else { 4 };

    println!("Multi-error diagnosis: concurrent vs k sequential campaigns (tiled flow)");
    println!(
        "{:<12} {:>2} {:>5} | {:>10} {:>10} | {:>10} {:>10} | {:>9} {:>9}",
        "design",
        "k",
        "found",
        "conc taps",
        "conc ECOs",
        "seq taps",
        "seq ECOs",
        "taps/err",
        "ECOs/err"
    );

    for &design in designs {
        let td0 = implement_design(design, 10, 41)?;
        let golden = td0.netlist.clone();
        for k in 1..=max_k {
            // Plant k distinct random errors, all live at once.
            let mut td = td0.clone();
            let seeds: Vec<u64> = (0..k as u64).map(|i| 31 + i).collect();
            let errors = sim::inject::random_distinct_errors(&mut td.netlist, &seeds)?;
            let conc = DebugSession::new(&mut td, &golden)
                .flow(TiledFlow::default())
                .seed(7)
                .run_concurrent(&errors)?;

            // Sequential baseline: the same errors, one fresh
            // single-error campaign each.
            let (mut staps, mut secos) = (0usize, 0usize);
            for error in &errors {
                let mut td = td0.clone();
                let replant = inject(&mut td.netlist, error.cell, error.kind)?;
                let out = DebugSession::new(&mut td, &golden)
                    .flow(TiledFlow::default())
                    .seed(7)
                    .run(&replant)?;
                staps += out.taps_inserted;
                secos += out.ecos;
            }

            let found = conc
                .clusters
                .iter()
                .filter(|c| c.localized.is_some())
                .count();
            println!(
                "{:<12} {:>2} {:>2}/{:<2} | {:>10} {:>10} | {:>10} {:>10} | {:>4}v{:<4} {:>4}v{:<4}",
                design.name(),
                k,
                found,
                k,
                conc.taps_inserted,
                conc.ecos,
                staps,
                secos,
                ratio(conc.taps_inserted, k),
                ratio(staps, k),
                ratio(conc.ecos, k),
                ratio(secos, k),
            );
        }
    }
    println!("\n(taps/err and ECOs/err: concurrent vs sequential, per planted error)");
    Ok(())
}

/// Per-error average, one decimal.
fn ratio(total: usize, k: usize) -> String {
    format!("{:.1}", total as f64 / k as f64)
}

//! Static design-rule lint over the bundled paper designs, debugd
//! request files, and seeded-malformed fixtures.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench-harness --bin drc -- --all
//! cargo run --release -p bench-harness --bin drc -- 9sym c499 "MIPS R2000"
//! cargo run --release -p bench-harness --bin drc -- --requests <dir>
//! cargo run --release -p bench-harness --bin drc -- --fixture cyclic
//! ```
//!
//! Design mode implements each named design (paper options: ten-tile
//! partition, 20% slack) and runs every [`drc`] layer over the result
//! via [`tiling::check_design`]. Requests mode parses and validates
//! every `*.json` file in a directory as a [`CampaignRequest`] —
//! exactly the gate `debugd` applies before spending a worker slot.
//! Fixture mode corrupts the smallest design in a named way (`cyclic`,
//! `multi-driven`, `dangling-route`) and lints it; CI asserts these
//! exit nonzero so the analyzer itself stays honest.
//!
//! Exit status: nonzero when any finding or invalid request is
//! reported, zero when everything is clean.

// CLI/example output goes to stdout by design.
#![allow(clippy::print_stdout)]

use std::path::Path;
use std::process::ExitCode;

use debugd::request::CampaignRequest;
use synth::PaperDesign;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let problems = match args.first().map(String::as_str) {
        Some("--requests") => match args.get(1) {
            Some(dir) => lint_requests(Path::new(dir)),
            None => usage("--requests needs a directory"),
        },
        Some("--fixture") => match args.get(1) {
            Some(kind) => lint_fixture(kind),
            None => usage("--fixture needs a kind (cyclic, multi-driven, dangling-route)"),
        },
        Some("--all") | None => lint_designs(&PaperDesign::ALL),
        Some(_) => {
            let mut designs = Vec::new();
            for name in &args {
                match PaperDesign::ALL.iter().find(|d| d.name() == name) {
                    Some(d) => designs.push(*d),
                    None => return usage_code(&format!("unknown design \"{name}\"")),
                }
            }
            lint_designs(&designs)
        }
    };
    if problems == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> usize {
    eprintln!("drc: {msg}");
    1
}

fn usage_code(msg: &str) -> ExitCode {
    usage(msg);
    ExitCode::FAILURE
}

/// Implements and lints each design; returns the total finding count.
fn lint_designs(designs: &[PaperDesign]) -> usize {
    let mut total = 0;
    for &design in designs {
        match bench_harness::implement_design(design, 10, 1) {
            Ok(td) => match tiling::check_design(&td) {
                Ok(findings) => {
                    total += findings.len();
                    report(design.name(), &findings);
                }
                Err(e) => {
                    total += 1;
                    println!("{:<12} ERROR {e}", design.name());
                }
            },
            Err(e) => {
                total += 1;
                println!("{:<12} ERROR implement failed: {e}", design.name());
            }
        }
    }
    total
}

fn report(name: &str, findings: &[drc::Finding]) {
    if findings.is_empty() {
        println!("{name:<12} clean");
    } else {
        println!("{name:<12} {} finding(s)", findings.len());
        for f in findings {
            println!("  {f}");
        }
    }
}

/// Parses and validates every `*.json` request in `dir`; returns the
/// number of rejected (or unreadable) files.
fn lint_requests(dir: &Path) -> usize {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => return usage(&format!("cannot read {}: {e}", dir.display())),
    };
    let mut paths: Vec<_> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return usage(&format!("no *.json requests in {}", dir.display()));
    }
    let mut rejected = 0;
    for path in &paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        let verdict = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| {
                CampaignRequest::from_json(&text)
                    .and_then(|req| req.validate().map(|()| req))
                    .map_err(|e| e.to_string())
            });
        match verdict {
            Ok(req) => println!("{name:<28} ok ({})", req.id),
            Err(e) => {
                rejected += 1;
                println!("{name:<28} REJECTED {e}");
            }
        }
    }
    rejected
}

/// Builds a deliberately malformed design and lints it. Each fixture
/// starts from a clean implementation of the smallest design and
/// breaks exactly one invariant, so a zero-finding run here means the
/// analyzer has gone blind, not that the fixture is healthy.
fn lint_fixture(kind: &str) -> usize {
    let mut td = match bench_harness::implement_design(PaperDesign::NineSym, 10, 1) {
        Ok(td) => td,
        Err(e) => return usage(&format!("fixture base implement failed: {e}")),
    };
    match kind {
        // Two fresh LUTs feeding each other: a = !b, b = !a.
        "cyclic" => {
            let a = td.netlist.add_net("drc_fixture_a").unwrap();
            let b = td.netlist.add_net("drc_fixture_b").unwrap();
            td.netlist
                .add_lut_driving("drc_fixture_u1", netlist::TruthTable::not(), &[b], a)
                .unwrap();
            td.netlist
                .add_lut_driving("drc_fixture_u2", netlist::TruthTable::not(), &[a], b)
                .unwrap();
        }
        // Re-point a second LUT's output at a net that already has a
        // driver (only reachable through the import escape hatch).
        "multi-driven" => {
            let luts: Vec<netlist::CellId> = td
                .netlist
                .cells()
                .filter(|(_, c)| c.lut_function().is_some())
                .map(|(id, _)| id)
                .collect();
            let victim_net = td.netlist.cell(luts[0]).unwrap().output.unwrap();
            td.netlist.force_driver(luts[1], victim_net).unwrap();
        }
        // Truncate one routed net so a branch dead-ends on a wire
        // instead of a sink pin.
        "dangling-route" => {
            let (net, tree) = td
                .routing
                .iter()
                .find(|(_, t)| t.paths.iter().any(|p| p.len() > 2))
                .map(|(n, t)| (n, t.clone()))
                .expect("9sym has a multi-segment route");
            let mut broken = tree;
            for path in &mut broken.paths {
                if path.len() > 2 {
                    path.pop();
                    break;
                }
            }
            td.routing.set_route(net, broken);
        }
        other => {
            return usage(&format!(
                "unknown fixture \"{other}\" (cyclic, multi-driven, dangling-route)"
            ));
        }
    }
    match tiling::check_design(&td) {
        Ok(findings) => {
            report(&format!("fixture:{kind}"), &findings);
            findings.len()
        }
        Err(e) => {
            println!("fixture:{kind} ERROR {e}");
            1
        }
    }
}

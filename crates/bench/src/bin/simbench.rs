//! Pattern-parallel simulation core: packed vs the scalar oracle.
//!
//! Two workloads per design, both straight from the debugging flow:
//!
//! * **detect** — golden-vs-DUT output-divergence sweep (the
//!   evidence-collection pass behind `collect_responses`). The packed
//!   side runs the production `sim::emulate::po_divergence_words`
//!   path; the scalar side replays the pre-packing per-pattern loop.
//!   Combinational designs get 64 patterns per topo pass; sequential
//!   designs run stream-mode (chunk width 1, see `sim::packed`), so
//!   their rows are marked `parallel: false` and are exempt from the
//!   CI speedup gate.
//! * **faultsim** — candidate scoring: complement each of up to 64
//!   LUT candidates and record which outputs ever diverge from the
//!   fault-free design plus the first diverging pattern. Packed runs
//!   pattern-parallel per candidate on combinational designs and
//!   candidate-parallel (64 fault machines per stream pass) on
//!   sequential ones — both 64-lane, so every faultsim row gates.
//!
//! Both sides fold their divergence results into a fingerprint that
//! must agree bit-for-bit — the bench aborts on any mismatch, so the
//! committed numbers double as a cross-implementation equivalence
//! check on real designs.
//!
//! The full sweep writes **`BENCH_sim.json`** (the committed
//! cross-PR snapshot: patterns/sec scalar vs packed per row);
//! `--quick` writes `BENCH_sim.quick.json` — the mode CI's test job
//! smoke-runs — so quick runs never clobber the tracked trajectory.
//!
//! Run: `cargo run --release -p bench-harness --bin simbench`
//!
//! Pass `--trace <base>` to record the sweep through the `obs` layer:
//! `<base>.trace.json` (Chrome trace-event JSON with one span per
//! (design, workload) row — loadable at ui.perfetto.dev),
//! `<base>.trace.jsonl` (raw span rows), and `<base>.metrics.prom`
//! (the packed core's sweep/word/lane counters plus per-row pattern
//! totals). A bare stem collects under the gitignored `artifacts/`
//! directory.

// CLI/example output goes to stdout by design.
#![allow(clippy::print_stdout)]

use std::fmt::Write as _;
use std::time::Instant;

use netlist::{CellId, Netlist};
use obs::{MetricsRegistry, Tracer};
use sim::inject::{inject, random_error, DesignErrorKind};
use sim::{PackedSimulator, PatternGen, Simulator, LANES};
use synth::PaperDesign;

/// One (design, workload) comparison row.
struct Row {
    design: &'static str,
    workload: &'static str,
    sequential: bool,
    /// Whether the packed side fills all 64 lanes (the CI speedup
    /// gate applies only to these rows).
    parallel: bool,
    patterns: usize,
    candidates: usize,
    /// FNV-1a fold of the divergence results, asserted equal between
    /// the scalar and packed sides before the row is emitted.
    fingerprint: u64,
    scalar_pps: f64,
    packed_pps: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let trace_base = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1).cloned());
    let designs: &[PaperDesign] = if quick {
        &[PaperDesign::NineSym, PaperDesign::Styr]
    } else {
        &[
            PaperDesign::NineSym,
            PaperDesign::C499,
            PaperDesign::C880,
            PaperDesign::Styr,
            PaperDesign::Sand,
            PaperDesign::S9234,
        ]
    };

    println!("Pattern-parallel simulation: scalar oracle vs 64-lane packed core");
    println!(
        "{:<10} {:<9} {:>4} {:>9} {:>5} | {:>12} {:>12} {:>8}",
        "design", "workload", "seq", "patterns", "cand", "scalar p/s", "packed p/s", "speedup"
    );

    let observe = trace_base
        .as_deref()
        .map(|_| (Tracer::new(), MetricsRegistry::new()));
    let track = observe.as_ref().map(|(tracer, _)| tracer.track("simbench"));
    let sim_before = sim::counters::snapshot();

    let mut rows: Vec<Row> = Vec::new();
    for &design in designs {
        let golden = design.generate()?.netlist;
        let seq = golden.is_sequential();
        let n_pi = golden.primary_inputs().len();
        let (detect_pats, fault_pats, max_cand) = match (quick, seq) {
            (true, false) => (512, 512, 32),
            (true, true) => (512, 256, 32),
            (false, false) => (4096, 2048, 64),
            (false, true) => (1024, 512, 64),
        };

        let mut dut = golden.clone();
        random_error(&mut dut, 33)?;
        let pats: Vec<Vec<bool>> = PatternGen::random(n_pi, detect_pats, 97).collect();
        let t_row = observe
            .as_ref()
            .map(|(tracer, _)| tracer.now_us())
            .unwrap_or(0);
        rows.push(detect_row(design, &golden, &dut, &pats)?);
        row_span(
            &observe,
            track,
            t_row,
            rows.last().expect("row just pushed"),
        );

        let pats: Vec<Vec<bool>> = PatternGen::random(n_pi, fault_pats, 97).collect();
        let t_row = observe
            .as_ref()
            .map(|(tracer, _)| tracer.now_us())
            .unwrap_or(0);
        rows.push(faultsim_row(design, &golden, &pats, max_cand)?);
        row_span(
            &observe,
            track,
            t_row,
            rows.last().expect("row just pushed"),
        );
        for r in &rows[rows.len() - 2..] {
            println!(
                "{:<10} {:<9} {:>4} {:>9} {:>5} | {:>12.0} {:>12.0} {:>7.1}x",
                r.design,
                r.workload,
                if r.sequential { "y" } else { "n" },
                r.patterns,
                r.candidates,
                r.scalar_pps,
                r.packed_pps,
                r.packed_pps / r.scalar_pps,
            );
        }
    }

    let path = if quick {
        "BENCH_sim.quick.json"
    } else {
        "BENCH_sim.json"
    };
    std::fs::write(path, render_json(quick, &rows))?;
    println!("machine-readable results written to {path}");

    if let (Some(base), Some((tracer, registry))) = (&trace_base, &observe) {
        let sim_delta = sim::counters::snapshot().delta_since(&sim_before);
        registry.counter_add("sim_sweeps_total", &[], sim_delta.sweeps);
        registry.counter_add("sim_net_words_total", &[], sim_delta.net_words);
        registry.counter_add("sim_lanes_loaded_total", &[], sim_delta.lanes_loaded);
        let base = obs::artifact_base(base)?;
        let base = base.display();
        std::fs::write(format!("{base}.trace.json"), tracer.to_chrome_trace())?;
        std::fs::write(format!("{base}.trace.jsonl"), tracer.to_jsonl())?;
        std::fs::write(format!("{base}.metrics.prom"), registry.render_prometheus())?;
        println!("trace + metrics artifacts written to {base}.*");
    }
    Ok(())
}

/// Emits one trace span and the per-workload pattern counter for the
/// row just computed (no-op when the sweep runs untraced).
fn row_span(
    observe: &Option<(Tracer, MetricsRegistry)>,
    track: Option<obs::TrackId>,
    start_us: u64,
    row: &Row,
) {
    let (Some((tracer, registry)), Some(track)) = (observe, track) else {
        return;
    };
    tracer.complete(
        track,
        &format!("{} {}", row.design, row.workload),
        "workload",
        start_us,
        row.patterns as u64,
    );
    registry.counter_add(
        "simbench_patterns_total",
        &[("workload", row.workload)],
        row.patterns as u64,
    );
}

// ---------------------------------------------------------------------
// detect: golden-vs-DUT divergence sweep
// ---------------------------------------------------------------------

fn detect_row(
    design: PaperDesign,
    golden: &Netlist,
    dut: &Netlist,
    pats: &[Vec<bool>],
) -> Result<Row, Box<dyn std::error::Error>> {
    let seq = golden.is_sequential();
    let pairs: Vec<(usize, usize)> = (0..golden.primary_outputs().len())
        .map(|k| (k, k))
        .collect();

    // Scalar oracle: the pre-packing per-pattern loop.
    let t = Instant::now();
    let mut gsim = Simulator::new(golden)?;
    let mut dsim = Simulator::new(dut)?;
    let mut words: Vec<Vec<u64>> = vec![vec![0; pats.len().div_ceil(LANES)]; pairs.len()];
    for (p, pat) in pats.iter().enumerate() {
        gsim.set_inputs(pat);
        gsim.comb_eval();
        dsim.set_inputs(pat);
        dsim.comb_eval();
        let (g, d) = (gsim.outputs(), dsim.outputs());
        for (k, w) in words.iter_mut().enumerate() {
            if g[k] != d[k] {
                w[p / LANES] |= 1u64 << (p % LANES);
            }
        }
        if seq {
            gsim.step();
            dsim.step();
        }
    }
    let scalar_pps = pats.len() as f64 / t.elapsed().as_secs_f64();
    let scalar_fp = fold_words(&words);

    // Packed: the production evidence-collection path.
    let t = Instant::now();
    let (pwords, count) = sim::emulate::po_divergence_words(golden, dut, &pairs, pats.to_vec())?;
    let packed_pps = count as f64 / t.elapsed().as_secs_f64();
    // `po_divergence_words` trims nothing but may leave short vectors
    // for clean tails; pad to the scalar layout before comparing.
    let mut pwords = pwords;
    for w in &mut pwords {
        w.resize(pats.len().div_ceil(LANES), 0);
    }
    let packed_fp = fold_words(&pwords);

    assert_eq!(
        scalar_fp,
        packed_fp,
        "{} detect: packed divergences differ from the scalar oracle",
        design.name()
    );
    Ok(Row {
        design: design.name(),
        workload: "detect",
        sequential: seq,
        parallel: !seq,
        patterns: pats.len(),
        candidates: 0,
        fingerprint: scalar_fp,
        scalar_pps,
        packed_pps,
    })
}

// ---------------------------------------------------------------------
// faultsim: complement-candidate scoring
// ---------------------------------------------------------------------

/// Per candidate: first pattern where any output diverges (`None` =
/// silent fault) and the per-output "ever diverged" bit set.
type Footprint = (Option<usize>, Vec<bool>);

fn faultsim_row(
    design: PaperDesign,
    golden: &Netlist,
    pats: &[Vec<bool>],
    max_cand: usize,
) -> Result<Row, Box<dyn std::error::Error>> {
    let seq = golden.is_sequential();
    let n_po = golden.primary_outputs().len();
    let luts: Vec<CellId> = golden
        .cells()
        .filter(|(_, c)| c.lut_function().is_some())
        .map(|(id, _)| id)
        .collect();
    // Evenly spaced through the design so footprints span shallow and
    // deep logic.
    let stride = (luts.len() / max_cand).max(1);
    let cands: Vec<CellId> = luts
        .iter()
        .copied()
        .step_by(stride)
        .take(max_cand)
        .collect();

    // Scalar oracle: one complemented clone + full re-simulation per
    // candidate (what `FaultAttribution` did before packing).
    let t = Instant::now();
    let mut gsim = Simulator::new(golden)?;
    let mut gtrace: Vec<Vec<bool>> = Vec::with_capacity(pats.len());
    for pat in pats {
        gsim.set_inputs(pat);
        gsim.comb_eval();
        gtrace.push(gsim.outputs());
        if seq {
            gsim.step();
        }
    }
    let mut scalar_fps: Vec<Footprint> = Vec::with_capacity(cands.len());
    for &cand in &cands {
        let mut faulty = golden.clone();
        inject(&mut faulty, cand, DesignErrorKind::Complement)?;
        let mut fsim = Simulator::new(&faulty)?;
        let mut onset = None;
        let mut hit = vec![false; n_po];
        for (p, pat) in pats.iter().enumerate() {
            fsim.set_inputs(pat);
            fsim.comb_eval();
            let out = fsim.outputs();
            for (k, h) in hit.iter_mut().enumerate() {
                if out[k] != gtrace[p][k] {
                    *h = true;
                    onset.get_or_insert(p);
                }
            }
            if seq {
                fsim.step();
            }
        }
        scalar_fps.push((onset, hit));
    }
    let evals = (pats.len() * cands.len()) as f64;
    let scalar_pps = evals / t.elapsed().as_secs_f64();

    // Packed: pattern-parallel per candidate (combinational) or 64
    // candidate fault machines per stream pass (sequential).
    let t = Instant::now();
    let packed_fps = if seq {
        packed_faultsim_seq(golden, &cands, pats, n_po)?
    } else {
        packed_faultsim_comb(golden, &cands, pats, n_po)?
    };
    let packed_pps = evals / t.elapsed().as_secs_f64();

    assert_eq!(
        scalar_fps,
        packed_fps,
        "{} faultsim: packed footprints differ from the scalar oracle",
        design.name()
    );
    Ok(Row {
        design: design.name(),
        workload: "faultsim",
        sequential: seq,
        parallel: true,
        patterns: pats.len(),
        candidates: cands.len(),
        fingerprint: fold_footprints(&scalar_fps),
        scalar_pps,
        packed_pps,
    })
}

/// Combinational candidate scoring: for each candidate, sweep the
/// pattern set 64 lanes at a time with the complement fault active in
/// every lane, diffing against the fault-free packed pass.
fn packed_faultsim_comb(
    golden: &Netlist,
    cands: &[CellId],
    pats: &[Vec<bool>],
    n_po: usize,
) -> Result<Vec<Footprint>, Box<dyn std::error::Error>> {
    let mut sim = PackedSimulator::new(golden)?;
    let chunks: Vec<&[Vec<bool>]> = pats.chunks(LANES).collect();
    let mut gwords: Vec<Vec<u64>> = vec![Vec::with_capacity(chunks.len()); n_po];
    for chunk in &chunks {
        sim.load_patterns(chunk);
        sim.comb_eval();
        for (k, w) in gwords.iter_mut().enumerate() {
            w.push(sim.output_word(k));
        }
    }
    let mut out = Vec::with_capacity(cands.len());
    for &cand in cands {
        sim.set_fault_lanes(cand, u64::MAX)?;
        let mut onset = None;
        let mut hit = vec![false; n_po];
        for (c, chunk) in chunks.iter().enumerate() {
            let lanes = sim.load_patterns(chunk);
            sim.comb_eval();
            for (k, h) in hit.iter_mut().enumerate() {
                let diff = (sim.output_word(k) ^ gwords[k][c]) & lanes;
                if diff != 0 {
                    *h = true;
                    let p = c * LANES + diff.trailing_zeros() as usize;
                    if onset.is_none_or(|o| p < o) {
                        onset = Some(p);
                    }
                }
            }
        }
        sim.clear_faults();
        out.push((onset, hit));
    }
    Ok(out)
}

/// Sequential candidate scoring: classic parallel-fault simulation —
/// lane `i` of one stream pass carries candidate `i`'s complement
/// fault, so each pass scores up to 64 machines against the
/// broadcast fault-free trace.
fn packed_faultsim_seq(
    golden: &Netlist,
    cands: &[CellId],
    pats: &[Vec<bool>],
    n_po: usize,
) -> Result<Vec<Footprint>, Box<dyn std::error::Error>> {
    // Fault-free stream first: one broadcast pass records each
    // output's golden bit per cycle, pre-broadcast to a full word.
    let mut sim = PackedSimulator::new(golden)?;
    let mut gtrace: Vec<Vec<u64>> = Vec::with_capacity(pats.len());
    for pat in pats {
        sim.broadcast_inputs(pat);
        sim.comb_eval();
        gtrace.push(
            (0..n_po)
                .map(|k| 0u64.wrapping_sub(sim.output_word(k) & 1))
                .collect(),
        );
        sim.step();
    }
    let mut out = Vec::new();
    for batch in cands.chunks(LANES) {
        sim.reset();
        sim.clear_faults();
        for (i, &cand) in batch.iter().enumerate() {
            sim.set_fault_lanes(cand, 1u64 << i)?;
        }
        let mut onsets: Vec<Option<usize>> = vec![None; batch.len()];
        let mut hits: Vec<u64> = vec![0; n_po];
        let mut seen: u64 = 0;
        for (p, pat) in pats.iter().enumerate() {
            sim.broadcast_inputs(pat);
            sim.comb_eval();
            let mut any = 0u64;
            for (k, h) in hits.iter_mut().enumerate() {
                let diff = sim.output_word(k) ^ gtrace[p][k];
                *h |= diff;
                any |= diff;
            }
            let mut newly = any & !seen;
            seen |= any;
            while newly != 0 {
                let i = newly.trailing_zeros() as usize;
                newly &= newly - 1;
                if i < onsets.len() {
                    onsets[i] = Some(p);
                }
            }
            sim.step();
        }
        for (i, onset) in onsets.into_iter().enumerate() {
            out.push((onset, hits.iter().map(|h| h >> i & 1 == 1).collect()));
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Fingerprints and JSON
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

fn fold_words(words: &[Vec<u64>]) -> u64 {
    let mut h = FNV_OFFSET;
    for w in words {
        for &x in w {
            h = fnv(h, x);
        }
        h = fnv(h, u64::MAX);
    }
    h
}

fn fold_footprints(fps: &[Footprint]) -> u64 {
    let mut h = FNV_OFFSET;
    for (onset, hit) in fps {
        h = fnv(h, onset.map_or(u64::MAX, |p| p as u64));
        for &b in hit {
            h = fnv(h, u64::from(b));
        }
    }
    h
}

/// Renders the sweep as JSON (hand-rolled like the other bench bins:
/// numbers, bools and design names only). Timing fields are last so
/// the deterministic prefix of each row is easy to eyeball in diffs.
fn render_json(quick: bool, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"sim\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"design\": \"{}\", \"workload\": \"{}\", \"sequential\": {}, \
             \"parallel\": {}, \"patterns\": {}, \"candidates\": {}, \
             \"fingerprint\": \"{:016x}\", \
             \"scalar_pps\": {:.0}, \"packed_pps\": {:.0}, \"speedup\": {:.2}}}",
            r.design,
            r.workload,
            r.sequential,
            r.parallel,
            r.patterns,
            r.candidates,
            r.fingerprint,
            r.scalar_pps,
            r.packed_pps,
            r.packed_pps / r.scalar_pps,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

//! Regenerates **Figure 5**: place-and-route speedup of the tiled
//! flow over full re-place-and-route, for tile sizes of 2.5%, 5%,
//! 15%, and 25% of the design, with the incremental and Quick_ECO
//! baselines for reference.
//!
//! All four flows run through the one [`tiling::ReimplFlow`] trait on
//! the same change — the paper's canonical small debugging edit: one
//! LUT's function modified, affecting one tile. Effort is
//! deterministic (placer moves + router expansions); speedups are
//! ratios.
//!
//! Run: `cargo run --release -p bench-harness --bin fig5`
//! (set `FAST_BENCH=1` to skip MIPS/DES, pass `--quick` for 9sym only).

// CLI/example output goes to stdout by design.
#![allow(clippy::print_stdout)]

use bench_harness::{apply_canonical_change, cli_designs, implement_design};
use tiling::{CadEffort, FullReplaceFlow, IncrementalFlow, QuickEcoFlow, ReimplFlow, TiledFlow};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let designs = cli_designs();
    // Tile size as % of design -> number of tiles.
    let sweeps: [(f64, usize); 4] = [(2.5, 40), (5.0, 20), (15.0, 7), (25.0, 4)];

    println!("Figure 5. Place-and-route speedup vs tile size (% of design)");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} | {:>9} {:>9}",
        "design", "2.5%", "5%", "15%", "25%", "incr", "quickECO"
    );

    let mut per_size: Vec<Vec<f64>> = vec![Vec::new(); sweeps.len()];
    for design in designs {
        let mut row = Vec::new();
        let mut incr_speedup = 0.0;
        let mut quick_speedup = 0.0;
        for (k, &(_, tiles)) in sweeps.iter().enumerate() {
            let mut td = implement_design(design, tiles, 55)?;
            let victim = apply_canonical_change(&mut td)?;
            let full = tiling::flow_effort(&td, &mut FullReplaceFlow, &[victim])?;
            if k == 0 {
                // Baselines measured once (tile size does not change
                // what the baselines do; incremental uses the window
                // around the change). Same trait, different flows.
                let mut incr_flow = IncrementalFlow::default();
                let mut quick_flow = QuickEcoFlow::default();
                let baselines: [(&mut dyn ReimplFlow, &mut f64); 2] = [
                    (&mut incr_flow, &mut incr_speedup),
                    (&mut quick_flow, &mut quick_speedup),
                ];
                for (flow, speedup) in baselines {
                    let effort: CadEffort = tiling::flow_effort(&td, flow, &[victim])?;
                    *speedup = full.speedup_over(&effort);
                }
            }
            let mut tiled = TiledFlow::default();
            let eco = tiled.reimplement(&mut td, &[victim], &[])?;
            let speedup = full.speedup_over(&eco.effort);
            per_size[k].push(speedup);
            row.push(speedup);
        }
        println!(
            "{:<12} {:>7.1}x {:>7.1}x {:>7.1}x {:>7.1}x | {:>8.1}x {:>8.1}x",
            design.name(),
            row[0],
            row[1],
            row[2],
            row[3],
            incr_speedup,
            quick_speedup
        );
    }

    println!(
        "\nsummary (paper: 5% avg 7.6 / med 2.6; 15% avg 2.1 / med 1.7; 25% avg 1.5 / med 1.3):"
    );
    for (k, (pct, _)) in sweeps.iter().enumerate() {
        let mut v = per_size[k].clone();
        if v.is_empty() {
            continue;
        }
        v.sort_by(f64::total_cmp);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let median = v[v.len() / 2];
        println!("  tile size {pct:>4}%: average {mean:>5.1}x, median {median:>5.1}x");
    }
    Ok(())
}

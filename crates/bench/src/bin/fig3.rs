//! Regenerates **Figure 3**: percentage of tiles affected as a
//! function of the size of newly introduced logic (1..=100 CLBs),
//! for all nine designs at 20% area overhead and ~10 tiles.
//!
//! Run: `cargo run --release -p bench-harness --bin fig3`
//! (set `FAST_BENCH=1` to skip MIPS/DES, pass `--quick` for 9sym only).

// CLI/example output goes to stdout by design.
#![allow(clippy::print_stdout)]

use bench_harness::{cli_designs, implement_design};
use tiling::testpoints::affected_fraction;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let designs = cli_designs();
    // The paper's x axis ticks: 1, 10, 19, ..., 100.
    let sizes: Vec<usize> = (0..12).map(|k| 1 + 9 * k).collect();

    println!("Figure 3. % affected tiles vs size of new logic (# CLBs)");
    print!("{:<6}", "size");
    for d in &designs {
        print!(" {:>10}", d.name());
    }
    println!();

    let tds: Vec<_> = designs
        .iter()
        .map(|&d| implement_design(d, 10, 33))
        .collect::<Result<_, _>>()?;

    for &size in &sizes {
        print!("{:<6}", size);
        for td in &tds {
            let f = affected_fraction(td, size)?;
            print!(" {:>9.0}%", 100.0 * f);
        }
        println!();
    }
    println!("\n(expected shape: rises with size; small designs saturate at 100%");
    println!(" quickly, the large designs stay fine-grained — cf. paper Fig. 3)");
    Ok(())
}

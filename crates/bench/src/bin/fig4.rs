//! Regenerates **Figure 4**: the maximum test-logic size (CLBs per
//! point) that still fits as the number of evenly distributed test
//! points grows (1..=100), same designs/overhead as Figure 3.
//!
//! Run: `cargo run --release -p bench-harness --bin fig4`
//! (set `FAST_BENCH=1` to skip MIPS/DES, pass `--quick` for 9sym only).

// CLI/example output goes to stdout by design.
#![allow(clippy::print_stdout)]

use bench_harness::{cli_designs, implement_design};
use tiling::testpoints::max_logic_per_point;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let designs = cli_designs();
    let points: Vec<usize> = (0..12).map(|k| 1 + 9 * k).collect();

    println!("Figure 4. Maximum test-logic size (# CLBs) vs # test points");
    print!("{:<8}", "points");
    for d in &designs {
        print!(" {:>10}", d.name());
    }
    println!();

    let tds: Vec<_> = designs
        .iter()
        .map(|&d| implement_design(d, 10, 44))
        .collect::<Result<_, _>>()?;

    for &n in &points {
        print!("{:<8}", n);
        for td in &tds {
            let m = max_logic_per_point(td, n)?;
            print!(" {:>10}", m);
        }
        println!();
    }
    println!("\n(expected shape: hyperbolic decay from ~slack-per-tile at one");
    println!(" point toward 0-2 CLBs at 100 points — cf. paper Fig. 4)");

    // §6.1 also discusses the *clustered* distribution: every test
    // point lands in the same tile, so capacity decays like a single
    // points×size insertion.
    println!("\nclustered variant (all points seed one tile):");
    print!("{:<8}", "points");
    for d in &designs {
        print!(" {:>10}", d.name());
    }
    println!();
    for &n in &[1usize, 10, 28, 55, 100] {
        print!("{:<8}", n);
        for td in &tds {
            let m = tiling::testpoints::max_logic_per_point_clustered(td, n)?;
            print!(" {:>10}", m);
        }
        println!();
    }
    Ok(())
}

//! Writes all nine generated benchmarks as BLIF files, so they can be
//! inspected or fed to external tools (ABC, VTR, ...).
//!
//! Usage: `cargo run --release -p bench-harness --bin dump_designs [dir]`
//! (default output directory: `./designs`)

// CLI/example output goes to stdout by design.
#![allow(clippy::print_stdout)]

use std::fs;
use std::path::PathBuf;

use synth::PaperDesign;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "designs".into())
        .into();
    fs::create_dir_all(&dir)?;
    for design in PaperDesign::ALL {
        let bundle = design.generate()?;
        let text = netlist::blif::write(&bundle.netlist);
        let name = design.name().replace(' ', "_").to_lowercase();
        let path = dir.join(format!("{name}.blif"));
        fs::write(&path, &text)?;
        let s = bundle.netlist.stats();
        println!(
            "{:<12} -> {} ({} LUTs, {} FFs, {} CLBs, depth {})",
            design.name(),
            path.display(),
            s.luts,
            s.ffs,
            bundle.clbs(),
            s.depth
        );
    }
    Ok(())
}

//! Regenerates **Table 1**: tiled physical layout statistics.
//!
//! For every design: `# CLBs`, the realized area overhead of the
//! slack-sized tiled layout, and the timing overhead of the tiled
//! layout versus a minimally-sized non-tiled implementation.
//!
//! Run: `cargo run --release -p bench-harness --bin table1`
//! (set `FAST_BENCH=1` to skip MIPS/DES; pass `--quick` for the
//! smallest design only — the mode CI runs end-to-end).

// CLI/example output goes to stdout by design.
#![allow(clippy::print_stdout)]

use bench_harness::{cli_designs, experiment_options, fmt_overhead};
use tiling::implement;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Table 1. Tiled Physical Layout Statistics");
    println!(
        "{:<12} {:>7} {:>14} {:>16} | paper: {:>6} {:>8} {:>8}",
        "design", "# CLBs", "area overhead", "timing overhead", "CLBs", "area", "timing"
    );
    for design in cli_designs() {
        let bundle = design.generate()?;
        let clbs = bundle.clbs();

        // Non-tiled reference: the *same* slack-sized device, placed
        // and routed without any tiling pressure (no partitioning, no
        // per-tile balancing), so the timing column isolates tiling's
        // effect rather than device-size differences.
        let tracks = bench_harness::tracks_for(design);
        let mut base_opts = experiment_options(11, 1, tracks);
        base_opts.enforce_tile_slack = false;
        let base = implement(bundle.netlist.clone(), bundle.hierarchy.clone(), base_opts)?;
        let base_t = base.timing()?.critical_ns;

        // Tiled layout: 20% slack, ten tiles, per-tile balance.
        let tiled = implement(
            bundle.netlist,
            bundle.hierarchy,
            experiment_options(11, 10, tracks),
        )?;
        let tiled_t = tiled.timing()?.critical_ns;

        let area_ovhd = tiled.area_overhead();
        let timing_ovhd = (tiled_t - base_t) / base_t;
        println!(
            "{:<12} {:>7} {:>14} {:>16} | paper: {:>6} {:>8.3} {:>8}",
            design.name(),
            clbs,
            fmt_overhead(area_ovhd),
            fmt_overhead(timing_ovhd),
            design.paper_clbs(),
            design.paper_area_overhead(),
            fmt_overhead(design.paper_timing_overhead()),
        );
    }
    Ok(())
}

//! Physical-implementation flow benchmark: analytical vs annealing
//! initial placement, and the four ECO re-implementation flows on the
//! same canonical change.
//!
//! Two sweeps per design:
//!
//! * **implement** — the full implement pipeline (partition, place,
//!   route, tile planning) once per placement engine. Effort is
//!   deterministic (placer moves — which for the analytical engine
//!   include its conjugate-gradient iterations — plus router
//!   expansions); final placement quality is the total bounding-box
//!   wirelength (HPWL). CI's release job gates on these rows: the
//!   analytical engine must land at >= 1.5x fewer implement effort
//!   units than pure annealing at equal-or-better HPWL.
//! * **eco** — the paper's canonical small debugging edit (one LUT's
//!   function complemented) priced by all four [`tiling::ReimplFlow`]s
//!   from the analytical implement, plus one observation-tap edit
//!   (new LUT + output pad) through the tiled flow to exercise the
//!   added-logic path. With truly incremental ECO routing the tiled
//!   flow's function-only row re-routes **zero** nets — the committed
//!   snapshot pins that down.
//!
//! Effort units and HPWL are deterministic for a given seed; wall
//! clock is not. The JSON therefore has a `deterministic` section the
//! CI freshness gate compares byte-for-byte against the committed
//! snapshot, and a `measured` section (milliseconds) that is
//! informational only — the same split `BENCH_fleet.json` uses.
//!
//! The full sweep writes **`BENCH_flow.json`** (the committed
//! cross-PR snapshot); `--quick` writes `BENCH_flow.quick.json` — the
//! mode CI's test job smoke-runs — so quick runs never clobber the
//! tracked trajectory.
//!
//! Run: `cargo run --release -p bench-harness --bin flowbench`

// CLI/example output goes to stdout by design.
#![allow(clippy::print_stdout)]

use std::fmt::Write as _;
use std::time::Instant;

use bench_harness::{canonical_victim, experiment_options, tracks_for};
use netlist::{CellId, TruthTable};
use place::PlaceEngine;
use synth::PaperDesign;
use tiling::{implement, standard_flows, TiledDesign, TilingError};

const SEED: u64 = 11;
const TARGET_TILES: usize = 10;

/// One implement run: a design taken through the full pipeline with
/// one placement engine.
struct ImplementRow {
    design: &'static str,
    engine: &'static str,
    place_moves: u64,
    route_expansions: u64,
    /// Total bounding-box wirelength of the final placement, the
    /// quality side of the speedup gate (formatted to one decimal so
    /// the committed snapshot compares exactly).
    hpwl: f64,
    tiles: usize,
    ms: f64,
}

/// One ECO run: a change priced by one re-implementation flow.
struct EcoRow {
    design: &'static str,
    flow: &'static str,
    /// "func" = complement one LUT (no connectivity change);
    /// "tap" = new observation LUT + output pad (added logic).
    change: &'static str,
    place_moves: u64,
    route_expansions: u64,
    rerouted_nets: usize,
    replaced_cells: usize,
    confined: bool,
    ms: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let designs: &[PaperDesign] = if quick {
        &[PaperDesign::NineSym, PaperDesign::Styr]
    } else {
        &[
            PaperDesign::NineSym,
            PaperDesign::C499,
            PaperDesign::C880,
            PaperDesign::Styr,
            PaperDesign::Sand,
            PaperDesign::S9234,
        ]
    };

    println!("Physical flow bench: implement per engine, ECO per flow");
    let mut implement_rows: Vec<ImplementRow> = Vec::new();
    let mut eco_rows: Vec<EcoRow> = Vec::new();

    for &design in designs {
        // ----- implement: annealing vs analytical ------------------
        let mut analytical_td: Option<TiledDesign> = None;
        for engine in [PlaceEngine::Annealing, PlaceEngine::Analytical] {
            let (td, row) = implement_once(design, engine)?;
            println!(
                "{:<10} implement/{:<10} {:>9} moves {:>10} exps  hpwl {:>8.1}  {:>7.0} ms",
                row.design, row.engine, row.place_moves, row.route_expansions, row.hpwl, row.ms
            );
            implement_rows.push(row);
            if engine == PlaceEngine::Analytical {
                analytical_td = Some(td);
            }
        }
        let td = analytical_td.expect("analytical implement ran");

        // ----- eco: the canonical change through all four flows ----
        let victim = canonical_victim(&td);
        let tt = td
            .netlist
            .cell(victim)?
            .lut_function()
            .expect("victim is a lut")
            .complement();
        for mut flow in standard_flows() {
            let mut trial = td.clone();
            trial.netlist.set_lut_function(victim, tt)?;
            let t = Instant::now();
            let out = flow.reimplement(&mut trial, &[victim], &[])?;
            let ms = t.elapsed().as_secs_f64() * 1e3;
            eco_rows.push(EcoRow {
                design: design.name(),
                flow: flow.name(),
                change: "func",
                place_moves: out.effort.place_moves,
                route_expansions: out.effort.route_expansions,
                rerouted_nets: out.rerouted_nets,
                replaced_cells: out.replaced_cells,
                confined: out.confined,
                ms,
            });
        }

        // ----- eco: an observation tap through the tiled flow ------
        eco_rows.push(tap_row(design, &td, victim)?);
        for r in &eco_rows[eco_rows.len() - 5..] {
            println!(
                "{:<10} eco/{:<12} {:<4} {:>9} moves {:>10} exps {:>5} nets  {:>7.0} ms",
                r.design,
                r.flow,
                r.change,
                r.place_moves,
                r.route_expansions,
                r.rerouted_nets,
                r.ms
            );
        }
    }

    let path = if quick {
        "BENCH_flow.quick.json"
    } else {
        "BENCH_flow.json"
    };
    std::fs::write(path, render_json(quick, &implement_rows, &eco_rows))?;
    println!("machine-readable results written to {path}");
    Ok(())
}

fn implement_once(
    design: PaperDesign,
    engine: PlaceEngine,
) -> Result<(TiledDesign, ImplementRow), TilingError> {
    let bundle = design.generate()?;
    let mut opts = experiment_options(SEED, TARGET_TILES, tracks_for(design));
    opts.placer.engine = engine;
    let t = Instant::now();
    let td = implement(bundle.netlist, bundle.hierarchy, opts)?;
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let hpwl = place::total_wirelength_cost(&td.netlist, &td.device, &td.placement);
    let row = ImplementRow {
        design: design.name(),
        engine: engine.label(),
        place_moves: td.initial_effort.place_moves,
        route_expansions: td.initial_effort.route_expansions,
        hpwl,
        tiles: td.plan.len(),
        ms,
    };
    Ok((td, row))
}

/// The added-logic ECO: tap the victim's output net with a new LUT
/// driving a new output pad, re-implemented by the tiled flow.
fn tap_row(
    design: PaperDesign,
    td: &TiledDesign,
    victim: CellId,
) -> Result<EcoRow, Box<dyn std::error::Error>> {
    let mut trial = td.clone();
    let net = trial.netlist.cell_output(victim)?;
    let rep = netlist::eco::apply(
        &mut trial.netlist,
        &netlist::EcoOp::AddLut {
            name: "flowbench_tap".into(),
            function: TruthTable::not(),
            inputs: vec![net],
        },
    )?;
    let obs = rep.added[0];
    let obs_net = trial.netlist.cell_output(obs)?;
    let po = trial.netlist.add_output("flowbench_tap_po", obs_net)?;
    let mut flow = tiling::TiledFlow::default();
    use tiling::ReimplFlow as _;
    let t = Instant::now();
    let out = flow.reimplement(&mut trial, &[victim], &[obs, po])?;
    let ms = t.elapsed().as_secs_f64() * 1e3;
    Ok(EcoRow {
        design: design.name(),
        flow: "tiled",
        change: "tap",
        place_moves: out.effort.place_moves,
        route_expansions: out.effort.route_expansions,
        rerouted_nets: out.rerouted_nets,
        replaced_cells: out.replaced_cells,
        confined: out.confined,
        ms,
    })
}

/// Renders the sweep as JSON (hand-rolled like the other bench bins).
/// Deterministic fields live under `"deterministic"` — CI's freshness
/// gate compares that object byte-for-byte — and wall-clock under
/// `"measured"`.
fn render_json(quick: bool, implement_rows: &[ImplementRow], eco_rows: &[EcoRow]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"flow\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"deterministic\": {\n    \"implement\": [\n");
    for (i, r) in implement_rows.iter().enumerate() {
        let _ = write!(
            out,
            "      {{\"design\": \"{}\", \"engine\": \"{}\", \"place_moves\": {}, \
             \"route_expansions\": {}, \"hpwl\": {:.1}, \"tiles\": {}}}",
            r.design, r.engine, r.place_moves, r.route_expansions, r.hpwl, r.tiles,
        );
        out.push_str(if i + 1 < implement_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("    ],\n    \"eco\": [\n");
    for (i, r) in eco_rows.iter().enumerate() {
        let _ = write!(
            out,
            "      {{\"design\": \"{}\", \"flow\": \"{}\", \"change\": \"{}\", \
             \"place_moves\": {}, \"route_expansions\": {}, \"rerouted_nets\": {}, \
             \"replaced_cells\": {}, \"confined\": {}}}",
            r.design,
            r.flow,
            r.change,
            r.place_moves,
            r.route_expansions,
            r.rerouted_nets,
            r.replaced_cells,
            r.confined,
        );
        out.push_str(if i + 1 < eco_rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("    ]\n  },\n  \"measured\": {\n    \"implement_ms\": [\n");
    for (i, r) in implement_rows.iter().enumerate() {
        let _ = write!(
            out,
            "      {{\"design\": \"{}\", \"engine\": \"{}\", \"ms\": {:.1}}}",
            r.design, r.engine, r.ms,
        );
        out.push_str(if i + 1 < implement_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("    ],\n    \"eco_ms\": [\n");
    for (i, r) in eco_rows.iter().enumerate() {
        let _ = write!(
            out,
            "      {{\"design\": \"{}\", \"flow\": \"{}\", \"change\": \"{}\", \"ms\": {:.1}}}",
            r.design, r.flow, r.change, r.ms,
        );
        out.push_str(if i + 1 < eco_rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("    ]\n  }\n}\n");
    out
}

//! Shared harness for regenerating the paper's tables and figures.
//!
//! Each table/figure has a binary (`table1`, `fig3`, `fig4`, `fig5`)
//! that prints the same rows/series the paper reports; the Criterion
//! benches under `benches/` time the underlying flows. Absolute
//! numbers differ from the 1996 testbed by construction — the *shape*
//! (who wins, by what factor, where curves cross) is the claim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use place::PlacerConfig;
use synth::PaperDesign;
use tiling::{implement, TiledDesign, TilingError, TilingOptions};

/// Channel width per design: denser designs need wider channels to
/// route at low slack (the XC4000 family likewise scaled its routing
/// with array size).
pub fn tracks_for(design: PaperDesign) -> u16 {
    if design.paper_clbs() >= 200 {
        18
    } else {
        11
    }
}

/// Standard options used by every experiment: 20% slack, the paper's
/// ten-tile partitions, deterministic seeds.
pub fn experiment_options(seed: u64, target_tiles: usize, tracks: u16) -> TilingOptions {
    TilingOptions {
        overhead: 0.20,
        target_tiles,
        tracks,
        placer: PlacerConfig {
            seed,
            max_temps: 120,
            ..Default::default()
        },
        router: route::RouteOptions {
            max_iterations: 45,
            ..Default::default()
        },
        enforce_tile_slack: true,
        incremental_routing: true,
    }
}

/// Implements one paper design with the experiment options.
///
/// # Errors
///
/// Propagates generation/implementation failures.
pub fn implement_design(
    design: PaperDesign,
    target_tiles: usize,
    seed: u64,
) -> Result<TiledDesign, TilingError> {
    let bundle = design.generate()?;
    implement(
        bundle.netlist,
        bundle.hierarchy,
        experiment_options(seed, target_tiles, tracks_for(design)),
    )
}

/// Picks the canonical "small debugging change" victim: the median
/// LUT by cell index (deterministic, mid-design).
pub fn canonical_victim(td: &TiledDesign) -> netlist::CellId {
    let luts: Vec<netlist::CellId> = td
        .netlist
        .cells()
        .filter(|(_, c)| c.lut_function().is_some())
        .map(|(id, _)| id)
        .collect();
    luts[luts.len() / 2]
}

/// Applies the canonical change (complement the victim's function).
///
/// # Errors
///
/// Propagates netlist edit failures.
pub fn apply_canonical_change(td: &mut TiledDesign) -> Result<netlist::CellId, TilingError> {
    let victim = canonical_victim(td);
    let tt = td
        .netlist
        .cell(victim)?
        .lut_function()
        .expect("victim is a lut")
        .complement();
    td.netlist.set_lut_function(victim, tt)?;
    Ok(victim)
}

/// The design subset to sweep, honoring a `FAST_BENCH` env toggle
/// (small designs only) for constrained environments.
pub fn sweep_designs() -> Vec<PaperDesign> {
    if std::env::var_os("FAST_BENCH").is_some() {
        PaperDesign::SMALL.to_vec()
    } else {
        PaperDesign::ALL.to_vec()
    }
}

/// Design subset for a bench binary, also honoring a `--quick` CLI
/// flag: with `--quick` only the smallest design runs, which is what
/// CI executes end-to-end to keep the harness exercised.
pub fn cli_designs() -> Vec<PaperDesign> {
    if std::env::args().any(|a| a == "--quick") {
        vec![PaperDesign::NineSym]
    } else {
        sweep_designs()
    }
}

/// Formats a ratio as the paper prints overheads (three decimals,
/// sign included).
pub fn fmt_overhead(x: f64) -> String {
    format!("{x:+.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_is_deterministic_lut() {
        let td = implement_design(PaperDesign::NineSym, 10, 1).unwrap();
        let a = canonical_victim(&td);
        let b = canonical_victim(&td);
        assert_eq!(a, b);
        assert!(td.netlist.cell(a).unwrap().lut_function().is_some());
    }

    #[test]
    fn options_are_paper_shaped() {
        let o = experiment_options(3, 10, 11);
        assert!((o.overhead - 0.20).abs() < 1e-9);
        assert_eq!(o.target_tiles, 10);
        assert!(tracks_for(PaperDesign::Des) > tracks_for(PaperDesign::NineSym));
    }

    #[test]
    fn flow_effort_prices_without_mutating() {
        let mut td = implement_design(PaperDesign::NineSym, 10, 2).unwrap();
        let victim = apply_canonical_change(&mut td).unwrap();
        let before: Vec<_> = td.placement.iter().collect();
        for mut flow in tiling::standard_flows() {
            let effort = tiling::flow_effort(&td, flow.as_mut(), &[victim]).unwrap();
            assert!(effort.total() > 0, "{}", flow.name());
        }
        let after: Vec<_> = td.placement.iter().collect();
        assert_eq!(before, after, "measurement mutated the design");
    }
}

//! Design-error injection and the ECOs that repair them.
//!
//! Emulation debugging hunts *design errors* — functional bugs in the
//! logic, not manufacturing faults. We model the three kinds the ECO
//! literature treats as canonical: a wrong minterm in a function, a
//! completely wrong gate, and swapped input connections. Every
//! injected error records its own corrective [`netlist::EcoOp`], so the
//! debug loop can close the detect → localize → correct cycle.

use netlist::{CellId, EcoOp, Netlist, NetlistError, TruthTable};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The kind of design error to plant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DesignErrorKind {
    /// Flip one output row of the LUT (single-minterm bug).
    FlipRow {
        /// Row to flip (masked into range).
        row: u64,
    },
    /// Swap two of the LUT's input variables (crossed wires in HDL).
    SwapVars {
        /// First variable.
        a: usize,
        /// Second variable.
        b: usize,
    },
    /// Replace the function outright (wrong operator).
    Complement,
}

/// A planted design error and everything needed to undo it.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedError {
    /// The buggy cell.
    pub cell: CellId,
    /// What was done to it.
    pub kind: DesignErrorKind,
    /// The correct (original) function.
    pub original: TruthTable,
    /// The buggy function now in the netlist.
    pub buggy: TruthTable,
}

/// Plants a design error in `cell` (must be a LUT).
///
/// # Errors
///
/// Returns [`NetlistError::KindMismatch`] for non-LUT cells, or the
/// underlying edit error.
pub fn inject(
    nl: &mut Netlist,
    cell: CellId,
    kind: DesignErrorKind,
) -> Result<InjectedError, NetlistError> {
    let original = *nl
        .cell(cell)?
        .lut_function()
        .ok_or(NetlistError::KindMismatch {
            cell,
            expected: "lut",
        })?;
    let arity = original.arity();
    let buggy = match kind {
        DesignErrorKind::FlipRow { row } => {
            let row = if arity == 0 {
                0
            } else {
                row & ((1 << arity) - 1)
            };
            original.with_flipped_row(row)
        }
        DesignErrorKind::SwapVars { a, b } => {
            let (a, b) = (a % arity.max(1), b % arity.max(1));
            original.with_swapped_vars(a, b)
        }
        DesignErrorKind::Complement => original.complement(),
    };
    nl.set_lut_function(cell, buggy)?;
    Ok(InjectedError {
        cell,
        kind,
        original,
        buggy,
    })
}

/// Picks a random interesting LUT and plants a random error in it.
///
/// "Interesting" means the mutation actually changes the function
/// (swapping variables of a symmetric gate would be a silent no-op).
///
/// # Errors
///
/// Returns [`NetlistError::UnknownCell`] if the design has no LUTs.
pub fn random_error(nl: &mut Netlist, seed: u64) -> Result<InjectedError, NetlistError> {
    random_error_excluding(nl, seed, &[])
}

/// Plants one random error per seed, each in a *distinct* cell —
/// the simultaneous-multi-error counterpart of [`random_error`],
/// consumed by concurrent debugging campaigns. Seeds are applied in
/// order, so each prefix of the seed slice plants the same errors.
///
/// # Errors
///
/// Returns [`NetlistError::UnknownCell`] when the design has fewer
/// eligible LUTs than seeds.
pub fn random_distinct_errors(
    nl: &mut Netlist,
    seeds: &[u64],
) -> Result<Vec<InjectedError>, NetlistError> {
    let mut errors: Vec<InjectedError> = Vec::with_capacity(seeds.len());
    let mut used: Vec<CellId> = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let e = random_error_excluding(nl, seed, &used)?;
        used.push(e.cell);
        errors.push(e);
    }
    Ok(errors)
}

fn random_error_excluding(
    nl: &mut Netlist,
    seed: u64,
    exclude: &[CellId],
) -> Result<InjectedError, NetlistError> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let luts: Vec<CellId> = nl
        .cells()
        .filter(|(id, c)| !exclude.contains(id) && c.lut_function().is_some_and(|t| t.arity() >= 1))
        .map(|(id, _)| id)
        .collect();
    if luts.is_empty() {
        return Err(NetlistError::UnknownCell(CellId::new(0)));
    }
    for _ in 0..256 {
        let cell = luts[rng.gen_range(0..luts.len())];
        let tt = *nl.cell(cell)?.lut_function().expect("filtered to luts");
        let kind = match rng.gen_range(0..3u32) {
            0 => DesignErrorKind::FlipRow {
                row: rng.gen_range(0..1u64 << tt.arity()),
            },
            1 if tt.arity() >= 2 => DesignErrorKind::SwapVars {
                a: rng.gen_range(0..tt.arity()),
                b: rng.gen_range(0..tt.arity()),
            },
            _ => DesignErrorKind::Complement,
        };
        // Dry-run the mutation to check it changes behaviour.
        let candidate = match kind {
            DesignErrorKind::FlipRow { row } => tt.with_flipped_row(row),
            DesignErrorKind::SwapVars { a, b } => tt.with_swapped_vars(a, b),
            DesignErrorKind::Complement => tt.complement(),
        };
        if candidate != tt {
            return inject(nl, cell, kind);
        }
    }
    // Fall back to a guaranteed-visible complement.
    inject(nl, luts[0], DesignErrorKind::Complement)
}

/// The engineering change that repairs an injected error.
pub fn repair_op(error: &InjectedError) -> EcoOp {
    EcoOp::ChangeLutFunction {
        cell: error.cell,
        function: error.original,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Netlist, CellId) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let u = nl
            .add_lut(
                "u",
                TruthTable::and(2),
                &[nl.cell_output(a).unwrap(), nl.cell_output(b).unwrap()],
            )
            .unwrap();
        nl.add_output("y", nl.cell_output(u).unwrap()).unwrap();
        (nl, u)
    }

    #[test]
    fn flip_row_changes_one_minterm() {
        let (mut nl, u) = fixture();
        let err = inject(&mut nl, u, DesignErrorKind::FlipRow { row: 3 }).unwrap();
        assert_eq!(err.buggy.bits() ^ err.original.bits(), 1 << 3);
        assert_eq!(nl.cell(u).unwrap().lut_function(), Some(&err.buggy));
    }

    #[test]
    fn repair_restores_original() {
        let (mut nl, u) = fixture();
        let err = inject(&mut nl, u, DesignErrorKind::Complement).unwrap();
        netlist::eco::apply(&mut nl, &repair_op(&err)).unwrap();
        assert_eq!(
            nl.cell(u).unwrap().lut_function(),
            Some(&TruthTable::and(2))
        );
    }

    #[test]
    fn random_error_is_behaviour_changing_and_deterministic() {
        let (mut nl1, _) = fixture();
        let e1 = random_error(&mut nl1, 7).unwrap();
        assert_ne!(e1.original, e1.buggy);
        let (mut nl2, _) = fixture();
        let e2 = random_error(&mut nl2, 7).unwrap();
        assert_eq!(e1, e2);
    }

    #[test]
    fn distinct_errors_hit_distinct_cells() {
        // Two eligible LUTs; two seeds must spread across both even
        // if the RNG favors one, and a third seed must fail.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let na = nl.cell_output(a).unwrap();
        let u = nl.add_lut("u", TruthTable::not(), &[na]).unwrap();
        let v = nl
            .add_lut("v", TruthTable::not(), &[nl.cell_output(u).unwrap()])
            .unwrap();
        nl.add_output("y", nl.cell_output(v).unwrap()).unwrap();
        let errors = random_distinct_errors(&mut nl, &[5, 5]).unwrap();
        assert_eq!(errors.len(), 2);
        assert_ne!(errors[0].cell, errors[1].cell);
        assert!(random_distinct_errors(&mut nl, &[1, 2, 3]).is_err());
        // A one-seed call plants exactly what random_error plants.
        let mut nl2 = Netlist::new("t2");
        let a2 = nl2.add_input("a").unwrap();
        let na2 = nl2.cell_output(a2).unwrap();
        nl2.add_lut("u", TruthTable::not(), &[na2]).unwrap();
        let mut nl3 = nl2.clone();
        let one = random_distinct_errors(&mut nl2, &[9]).unwrap();
        let lone = random_error(&mut nl3, 9).unwrap();
        assert_eq!(one[0], lone);
    }

    #[test]
    fn inject_rejects_non_lut() {
        let (mut nl, _) = fixture();
        let a = nl.find_cell("a").unwrap();
        assert!(inject(&mut nl, a, DesignErrorKind::Complement).is_err());
    }

    #[test]
    fn no_luts_is_an_error() {
        let mut nl = Netlist::new("empty");
        nl.add_input("a").unwrap();
        assert!(random_error(&mut nl, 1).is_err());
    }
}

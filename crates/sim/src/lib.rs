//! Emulation substrate: simulation, patterns, errors, and test logic.
//!
//! The paper's debugging loop needs four capabilities that its authors
//! got from real FPGA hardware; this crate supplies software stand-ins
//! with the same observable behaviour:
//!
//! * [`simulator::Simulator`] — cycle-accurate evaluation of a mapped
//!   netlist (the "emulator" clock), kept as the scalar differential
//!   oracle for the bit-packed [`packed::PackedSimulator`], which
//!   evaluates 64 lanes per topo pass and powers every sweep;
//! * [`patterns`] — test-pattern generation (exhaustive, LFSR,
//!   uniform random), paper step 10;
//! * [`inject`](mod@inject) — *design errors*: functional bugs planted in a
//!   netlist, plus the corrective ECO that repairs each one;
//! * [`testlogic`] — control and observation logic generators
//!   (observation taps, match counters, MISR signature registers,
//!   pattern drivers) — the logic whose insertion Figures 3 and 4
//!   cost out;
//! * [`emulate`] — golden-vs-DUT comparison with *primary-output-only*
//!   observability, which is exactly why observation logic must be
//!   inserted at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod emulate;
pub mod inject;
pub mod packed;
pub mod patterns;
pub mod simulator;
pub mod testlogic;

pub use counters::SimCounters;
pub use emulate::{first_mismatch, Mismatch};
pub use inject::{
    inject, random_distinct_errors, random_error, repair_op, DesignErrorKind, InjectedError,
};
pub use packed::{PackedSimulator, LANES};
pub use patterns::PatternGen;
pub use simulator::Simulator;

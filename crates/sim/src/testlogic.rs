//! Control and observation logic generators (paper §4).
//!
//! Emulation exposes only primary outputs, so detecting and localizing
//! an error requires *inserting logic*: observation taps and signature
//! registers to see internal state, and control points to force it.
//! Each generator below mutates the netlist and returns the
//! [`EcoReport`] of added cells — the seed set from which the tiling
//! flow computes affected tiles (Figures 3 and 4 sweep exactly this
//! insertion cost).

use netlist::{CellId, EcoReport, NetId, Netlist, NetlistError, TruthTable};

/// CLB cost of an ECO's added cells (XC4000 packing: 2 LUTs + 2 FFs
/// per CLB, packed independently).
pub fn clb_cost(nl: &Netlist, report: &EcoReport) -> usize {
    let mut luts = 0usize;
    let mut ffs = 0usize;
    for &c in &report.added {
        if let Ok(cell) = nl.cell(c) {
            if cell.lut_function().is_some() {
                luts += 1;
            } else if cell.is_sequential() {
                ffs += 1;
            }
        }
    }
    luts.max(ffs).div_ceil(2)
}

/// Inserts an observation tap: the net becomes visible at a new
/// primary output, optionally through a pipeline flip-flop.
///
/// # Errors
///
/// Propagates netlist editing errors (duplicate names, unknown net).
pub fn insert_observation_tap(
    nl: &mut Netlist,
    net: NetId,
    name: &str,
    registered: bool,
) -> Result<EcoReport, NetlistError> {
    let mut report = EcoReport::default();
    let tap_net = if registered {
        let ff = nl.add_ff(format!("{name}_obs_ff"), false, net)?;
        report.added.push(ff);
        nl.cell_output(ff)?
    } else {
        net
    };
    let po = nl.add_output(format!("{name}_obs"), tap_net)?;
    report.added.push(po);
    Ok(report)
}

/// Handles to the pieces of an inserted control point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlPoint {
    /// The multiplexer cell overriding the net.
    pub mux: CellId,
    /// New primary input carrying the forced value.
    pub force_value: CellId,
    /// New primary input enabling the override.
    pub force_enable: CellId,
    /// Added cells (for affected-tile analysis).
    pub report: EcoReport,
}

/// Inserts a control point on `net`: all original sinks now see
/// `force_en ? force_val : net`.
///
/// # Errors
///
/// Propagates netlist editing errors.
pub fn insert_control_point(
    nl: &mut Netlist,
    net: NetId,
    name: &str,
) -> Result<ControlPoint, NetlistError> {
    let sinks: Vec<_> = nl.net(net)?.sinks.clone();
    let force_value = nl.add_input(format!("{name}_force_val"))?;
    let force_enable = nl.add_input(format!("{name}_force_en"))?;
    let val_net = nl.cell_output(force_value)?;
    let en_net = nl.cell_output(force_enable)?;
    let mux = nl.add_lut(
        format!("{name}_ctl_mux"),
        TruthTable::mux2(),
        &[net, val_net, en_net],
    )?;
    let mux_net = nl.cell_output(mux)?;
    for s in &sinks {
        nl.set_pin(s.cell, s.pin, mux_net)?;
    }
    let report = EcoReport {
        added: vec![force_value, force_enable, mux],
        modified: sinks.iter().map(|s| s.cell).collect(),
        removed: Vec::new(),
    };
    Ok(ControlPoint {
        mux,
        force_value,
        force_enable,
        report,
    })
}

/// Inserts a `width`-bit event counter clocked by `trigger` (the
/// paper's "large counter" example of bulky test logic).
///
/// The count appears on new primary outputs `{name}_cnt[i]`.
///
/// # Errors
///
/// Propagates netlist editing errors.
pub fn insert_event_counter(
    nl: &mut Netlist,
    trigger: NetId,
    width: usize,
    name: &str,
) -> Result<EcoReport, NetlistError> {
    let mut report = EcoReport::default();
    let mut carry = trigger;
    for i in 0..width {
        // Create the FF first with a placeholder D (its own Q), then
        // close the loop through sum logic.
        let seed = nl.add_net(format!("{name}_cnt_seed{i}"))?;
        let ff = nl.add_ff(format!("{name}_cnt_ff{i}"), false, seed)?;
        report.added.push(ff);
        let q = nl.cell_output(ff)?;
        let sum = nl.add_lut(
            format!("{name}_cnt_sum{i}"),
            TruthTable::xor(2),
            &[q, carry],
        )?;
        report.added.push(sum);
        nl.set_pin(ff, 0, nl.cell_output(sum)?)?;
        if i + 1 < width {
            let c = nl.add_lut(
                format!("{name}_cnt_car{i}"),
                TruthTable::and(2),
                &[q, carry],
            )?;
            report.added.push(c);
            carry = nl.cell_output(c)?;
        }
        let po = nl.add_output(format!("{name}_cnt[{i}]"), q)?;
        report.added.push(po);
    }
    Ok(report)
}

/// Inserts a multiple-input signature register (MISR) over `taps`.
///
/// Each cycle the register folds the tapped values into a rotating
/// XOR signature, visible on `{name}_sig[i]` outputs. Detects any
/// single-cycle divergence on the tapped nets with high probability.
///
/// # Errors
///
/// Propagates netlist editing errors.
///
/// # Panics
///
/// Panics if `taps` is empty.
pub fn insert_misr(
    nl: &mut Netlist,
    taps: &[NetId],
    name: &str,
) -> Result<EcoReport, NetlistError> {
    assert!(!taps.is_empty(), "misr needs at least one tap");
    let mut report = EcoReport::default();
    let width = taps.len();
    // Create FFs with placeholder seeds.
    let mut ffs = Vec::with_capacity(width);
    let mut qs = Vec::with_capacity(width);
    for i in 0..width {
        let seed = nl.add_net(format!("{name}_sig_seed{i}"))?;
        let ff = nl.add_ff(format!("{name}_sig_ff{i}"), false, seed)?;
        report.added.push(ff);
        qs.push(nl.cell_output(ff)?);
        ffs.push(ff);
    }
    // d_i = tap_i XOR q_{i-1 mod width}.
    for i in 0..width {
        let prev = qs[(i + width - 1) % width];
        let x = nl.add_lut(
            format!("{name}_sig_x{i}"),
            TruthTable::xor(2),
            &[taps[i], prev],
        )?;
        report.added.push(x);
        nl.set_pin(ffs[i], 0, nl.cell_output(x)?)?;
        let po = nl.add_output(format!("{name}_sig[{i}]"), qs[i])?;
        report.added.push(po);
    }
    Ok(report)
}

/// Inserts a hardware LFSR pattern driver whose outputs can feed
/// control points (exhaustive-ish stimulus without tester bandwidth).
///
/// Returns the driver's output nets alongside the report.
///
/// # Errors
///
/// Propagates netlist editing errors.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn insert_lfsr_driver(
    nl: &mut Netlist,
    width: usize,
    name: &str,
) -> Result<(Vec<NetId>, EcoReport), NetlistError> {
    assert!(width > 0, "lfsr needs at least one bit");
    let mut report = EcoReport::default();
    let mut ffs = Vec::with_capacity(width);
    let mut qs = Vec::with_capacity(width);
    for i in 0..width {
        let seed = nl.add_net(format!("{name}_lfsr_seed{i}"))?;
        // Init to 1 on bit 0 so the register never sticks at zero.
        let ff = nl.add_ff(format!("{name}_lfsr_ff{i}"), i == 0, seed)?;
        report.added.push(ff);
        qs.push(nl.cell_output(ff)?);
        ffs.push(ff);
    }
    // Shift with XOR feedback from the last two stages.
    let fb = if width >= 2 {
        let x = nl.add_lut(
            format!("{name}_lfsr_fb"),
            TruthTable::xor(2),
            &[qs[width - 1], qs[width / 2]],
        )?;
        report.added.push(x);
        nl.cell_output(x)?
    } else {
        // 1-bit: toggle.
        let x = nl.add_lut(format!("{name}_lfsr_fb"), TruthTable::not(), &[qs[0]])?;
        report.added.push(x);
        nl.cell_output(x)?
    };
    nl.set_pin(ffs[0], 0, fb)?;
    for i in 1..width {
        nl.set_pin(ffs[i], 0, qs[i - 1])?;
    }
    Ok((qs, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::Simulator;

    fn fixture() -> (Netlist, NetId) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let na = nl.cell_output(a).unwrap();
        let u = nl.add_lut("u", TruthTable::not(), &[na]).unwrap();
        let nu = nl.cell_output(u).unwrap();
        nl.add_output("y", nu).unwrap();
        (nl, nu)
    }

    #[test]
    fn observation_tap_exposes_internal_net() {
        let (mut nl, nu) = fixture();
        insert_observation_tap(&mut nl, nu, "t0", false).unwrap();
        nl.validate().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_inputs(&[false]);
        sim.comb_eval();
        // Outputs: y and t0_obs, both reading the inverter.
        assert_eq!(sim.outputs(), vec![true, true]);
    }

    #[test]
    fn registered_tap_delays_one_cycle() {
        let (mut nl, nu) = fixture();
        insert_observation_tap(&mut nl, nu, "t0", true).unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_inputs(&[false]); // inverter output = 1
        sim.step();
        sim.comb_eval();
        let outs = sim.outputs();
        assert!(outs[1]); // captured last cycle
    }

    #[test]
    fn control_point_forces_value() {
        let (mut nl, nu) = fixture();
        let cp = insert_control_point(&mut nl, nu, "c0").unwrap();
        nl.validate().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        // PI order: a, c0_force_val, c0_force_en.
        sim.set_inputs(&[false, false, true]); // inverter says 1, force 0
        sim.comb_eval();
        assert_eq!(sim.outputs(), vec![false]);
        sim.set_inputs(&[false, false, false]); // force off
        sim.comb_eval();
        assert_eq!(sim.outputs(), vec![true]);
        assert_eq!(cp.report.added.len(), 3);
    }

    #[test]
    fn event_counter_counts_triggers() {
        let (mut nl, nu) = fixture();
        insert_event_counter(&mut nl, nu, 3, "e").unwrap();
        nl.validate().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        // Trigger (inverter out) is 1 while a=0.
        sim.set_inputs(&[false]);
        for _ in 0..5 {
            sim.step();
        }
        sim.comb_eval();
        let outs = sim.outputs();
        // outs: y, e_cnt[0..3]; count == 5 -> 101.
        assert_eq!(&outs[1..], &[true, false, true]);
    }

    #[test]
    fn misr_signature_changes_with_behaviour() {
        let (mut nl, nu) = fixture();
        insert_misr(&mut nl, &[nu], "m").unwrap();
        nl.validate().unwrap();
        let run = |input: bool| {
            let mut sim = Simulator::new(&nl).unwrap();
            sim.set_inputs(&[input]);
            for _ in 0..4 {
                sim.step();
            }
            sim.comb_eval();
            sim.outputs()
        };
        assert_ne!(run(false), run(true));
    }

    #[test]
    fn lfsr_driver_produces_changing_patterns() {
        let mut nl = Netlist::new("t");
        // Give the design something so validation is meaningful.
        let (qs, rep) = insert_lfsr_driver(&mut nl, 4, "p").unwrap();
        for (i, q) in qs.iter().enumerate() {
            nl.add_output(format!("o{i}"), *q).unwrap();
        }
        nl.validate().unwrap();
        assert!(rep.added.len() >= 5);
        let mut sim = Simulator::new(&nl).unwrap();
        let mut states = std::collections::BTreeSet::new();
        for _ in 0..8 {
            sim.comb_eval();
            states.insert(sim.outputs());
            sim.step();
        }
        assert!(states.len() >= 4, "lfsr should visit several states");
    }

    #[test]
    fn clb_cost_packs_pairs() {
        let (mut nl, nu) = fixture();
        let rep = insert_event_counter(&mut nl, nu, 4, "e").unwrap();
        // 4 FFs, 7 LUTs (4 sums + 3 carries) -> ceil(7/2) = 4 CLBs.
        assert_eq!(clb_cost(&nl, &rep), 4);
    }
}

//! Cycle-based netlist simulator.

use netlist::{CellId, CellKind, NetId, Netlist, NetlistError};

/// Cycle-accurate two-valued simulator over a mapped netlist.
///
/// Primary inputs are set as a vector in `primary_inputs()` order;
/// flip-flops hold explicit state clocked by [`Simulator::step`].
///
/// ```
/// use netlist::{Netlist, TruthTable};
/// use sim::Simulator;
/// # fn main() -> Result<(), netlist::NetlistError> {
/// let mut nl = Netlist::new("inv");
/// let a = nl.add_input("a")?;
/// let u = nl.add_lut("u", TruthTable::not(), &[nl.cell_output(a)?])?;
/// nl.add_output("y", nl.cell_output(u)?)?;
/// let mut sim = Simulator::new(&nl)?;
/// sim.set_inputs(&[true]);
/// sim.comb_eval();
/// assert_eq!(sim.outputs(), vec![false]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    nl: &'a Netlist,
    order: Vec<CellId>,
    pis: Vec<CellId>,
    pos: Vec<CellId>,
    /// Current value of every net.
    values: Vec<bool>,
    /// Flip-flop state, indexed by cell.
    state: Vec<bool>,
    /// Pending input vector (PI order).
    inputs: Vec<bool>,
    cycles: u64,
}

impl<'a> Simulator<'a> {
    /// Prepares a simulator (computes the evaluation order once).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalLoop`] for cyclic logic.
    pub fn new(nl: &'a Netlist) -> Result<Self, NetlistError> {
        let order = nl.topo_order()?;
        let pis = nl.primary_inputs();
        let pos = nl.primary_outputs();
        let mut state = vec![false; nl.cell_capacity()];
        for (id, cell) in nl.cells() {
            if let CellKind::Ff { init } = cell.kind {
                state[id.index()] = init;
            }
        }
        let inputs = vec![false; pis.len()];
        Ok(Self {
            nl,
            order,
            pis,
            pos,
            values: vec![false; nl.net_capacity()],
            state,
            inputs,
            cycles: 0,
        })
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.pis.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.pos.len()
    }

    /// Clock cycles stepped since construction/reset.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Sets the pending primary-input vector (PI order).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the PI count.
    pub fn set_inputs(&mut self, values: &[bool]) {
        assert_eq!(values.len(), self.inputs.len(), "input width mismatch");
        self.inputs.copy_from_slice(values);
    }

    /// Sets one input by index.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range index.
    pub fn set_input(&mut self, index: usize, value: bool) {
        self.inputs[index] = value;
    }

    /// Restores all flip-flops to their init values.
    pub fn reset(&mut self) {
        for (id, cell) in self.nl.cells() {
            if let CellKind::Ff { init } = cell.kind {
                self.state[id.index()] = init;
            }
        }
        self.cycles = 0;
    }

    /// Propagates the current inputs and FF state through the
    /// combinational network (no clock edge).
    pub fn comb_eval(&mut self) {
        let mut pi_idx = 0;
        for &id in &self.order {
            let cell = self.nl.cell(id).expect("order holds live cells");
            match &cell.kind {
                CellKind::Input => {
                    // `order` preserves PI insertion order for sources.
                    let v = self.inputs[self.pi_position(id, &mut pi_idx)];
                    if let Some(o) = cell.output {
                        self.values[o.index()] = v;
                    }
                }
                CellKind::Ff { .. } => {
                    if let Some(o) = cell.output {
                        self.values[o.index()] = self.state[id.index()];
                    }
                }
                CellKind::Lut(tt) => {
                    let mut row = 0u64;
                    for (k, &n) in cell.inputs.iter().enumerate() {
                        if self.values[n.index()] {
                            row |= 1 << k;
                        }
                    }
                    let v = tt.eval_row(row);
                    if let Some(o) = cell.output {
                        self.values[o.index()] = v;
                    }
                }
                CellKind::Output => {}
            }
        }
    }

    fn pi_position(&self, id: CellId, hint: &mut usize) -> usize {
        // PIs appear in `pis` order; use a moving hint then fall back
        // to a scan (ECO-modified netlists can reorder sources).
        if *hint < self.pis.len() && self.pis[*hint] == id {
            let k = *hint;
            *hint += 1;
            return k;
        }
        self.pis
            .iter()
            .position(|&p| p == id)
            .expect("input is a PI")
    }

    /// One clock cycle: combinational propagate, then latch all FFs.
    pub fn step(&mut self) {
        self.comb_eval();
        // Capture D values, then commit (two-phase for correctness).
        let mut pending: Vec<(CellId, bool)> = Vec::new();
        for (id, cell) in self.nl.cells() {
            if cell.is_sequential() {
                let d = cell.inputs[0];
                pending.push((id, self.values[d.index()]));
            }
        }
        for (id, v) in pending {
            self.state[id.index()] = v;
        }
        self.cycles += 1;
    }

    /// Current value of a net (valid after `comb_eval`/`step`).
    pub fn net_value(&self, net: NetId) -> bool {
        self.values.get(net.index()).copied().unwrap_or(false)
    }

    /// Current primary-output vector (PO order).
    pub fn outputs(&self) -> Vec<bool> {
        self.pos
            .iter()
            .map(|&po| {
                let cell = self.nl.cell(po).expect("po is live");
                cell.inputs
                    .first()
                    .map(|n| self.values[n.index()])
                    .unwrap_or(false)
            })
            .collect()
    }

    /// The flip-flop state of a sequential cell.
    pub fn ff_state(&self, cell: CellId) -> Option<bool> {
        let c = self.nl.cell(cell).ok()?;
        c.is_sequential().then(|| self.state[cell.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::TruthTable;

    #[test]
    fn combinational_truth() {
        let mut nl = Netlist::new("xor");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let u = nl
            .add_lut(
                "u",
                TruthTable::xor(2),
                &[nl.cell_output(a).unwrap(), nl.cell_output(b).unwrap()],
            )
            .unwrap();
        nl.add_output("y", nl.cell_output(u).unwrap()).unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        for (ai, bi, yi) in [
            (false, false, false),
            (true, false, true),
            (true, true, false),
        ] {
            sim.set_inputs(&[ai, bi]);
            sim.comb_eval();
            assert_eq!(sim.outputs(), vec![yi]);
        }
    }

    #[test]
    fn toggle_ff_divides_by_two() {
        let mut nl = Netlist::new("t");
        let seed = nl.add_net("seed").unwrap();
        let ff = nl.add_ff("q", false, seed).unwrap();
        let q = nl.cell_output(ff).unwrap();
        let inv = nl.add_lut("inv", TruthTable::not(), &[q]).unwrap();
        nl.set_pin(ff, 0, nl.cell_output(inv).unwrap()).unwrap();
        nl.add_output("out", q).unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        let mut seen = Vec::new();
        for _ in 0..4 {
            sim.comb_eval();
            seen.push(sim.outputs()[0]);
            sim.step();
        }
        assert_eq!(seen, vec![false, true, false, true]);
        assert_eq!(sim.cycles(), 4);
        sim.reset();
        assert_eq!(sim.cycles(), 0);
        assert_eq!(sim.ff_state(ff), Some(false));
    }

    #[test]
    fn counter_counts() {
        // 2-bit ripple-ish counter: b0 toggles, b1 ^= b0.
        let mut nl = Netlist::new("cnt");
        let s0 = nl.add_net("s0").unwrap();
        let ff0 = nl.add_ff("q0", false, s0).unwrap();
        let q0 = nl.cell_output(ff0).unwrap();
        let s1 = nl.add_net("s1").unwrap();
        let ff1 = nl.add_ff("q1", false, s1).unwrap();
        let q1 = nl.cell_output(ff1).unwrap();
        let inv = nl.add_lut("inv", TruthTable::not(), &[q0]).unwrap();
        nl.set_pin(ff0, 0, nl.cell_output(inv).unwrap()).unwrap();
        let x = nl.add_lut("x", TruthTable::xor(2), &[q0, q1]).unwrap();
        nl.set_pin(ff1, 0, nl.cell_output(x).unwrap()).unwrap();
        nl.add_output("o0", q0).unwrap();
        nl.add_output("o1", q1).unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        let mut counts = Vec::new();
        for _ in 0..5 {
            sim.comb_eval();
            let o = sim.outputs();
            counts.push(u8::from(o[0]) + 2 * u8::from(o[1]));
            sim.step();
        }
        assert_eq!(counts, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn net_values_are_observable() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let na = nl.cell_output(a).unwrap();
        let u = nl.add_lut("u", TruthTable::not(), &[na]).unwrap();
        let nu = nl.cell_output(u).unwrap();
        nl.add_output("y", nu).unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_inputs(&[true]);
        sim.comb_eval();
        assert!(sim.net_value(na));
        assert!(!sim.net_value(nu));
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        let mut nl = Netlist::new("t");
        nl.add_input("a").unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_inputs(&[true, false]);
    }
}

//! Test-pattern generation (paper step 10).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic stream of input vectors.
///
/// ```
/// use sim::PatternGen;
/// let pats: Vec<Vec<bool>> = PatternGen::exhaustive(2).collect();
/// assert_eq!(pats.len(), 4);
/// assert_eq!(pats[3], vec![true, true]);
/// ```
#[derive(Debug, Clone)]
pub enum PatternGen {
    /// All `2^width` vectors in counting order (capped at width 24).
    Exhaustive {
        /// Vector width.
        width: usize,
        /// Next row to emit.
        next: u64,
    },
    /// Uniform random vectors.
    Random {
        /// Vector width.
        width: usize,
        /// Remaining vectors.
        remaining: usize,
        /// Generator state.
        rng: SmallRng,
    },
    /// Fibonacci LFSR sequence (never emits the all-zero state first).
    Lfsr {
        /// Vector width (LFSR length).
        width: usize,
        /// Remaining vectors.
        remaining: usize,
        /// Current register state (nonzero).
        state: u64,
        /// Tap mask.
        taps: u64,
    },
}

impl PatternGen {
    /// All `2^width` input vectors.
    ///
    /// # Panics
    ///
    /// Panics for `width > 24` (16M vectors — use LFSR instead).
    pub fn exhaustive(width: usize) -> Self {
        assert!(width <= 24, "exhaustive beyond 24 inputs is impractical");
        Self::Exhaustive { width, next: 0 }
    }

    /// `count` uniform random vectors from `seed`.
    pub fn random(width: usize, count: usize, seed: u64) -> Self {
        Self::Random {
            width,
            remaining: count,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// `count` vectors from a maximal-ish LFSR (taps chosen per width
    /// from a small table; falls back to an xorshift-style recurrence).
    pub fn lfsr(width: usize, count: usize, seed: u64) -> Self {
        let w = width.clamp(1, 64);
        // Maximal-length tap masks for common widths (x^w + ... + 1).
        let taps: u64 = match w {
            1 => 0x1,
            2 => 0x3,
            3 => 0x6,
            4 => 0xC,
            5 => 0x14,
            6 => 0x30,
            7 => 0x60,
            8 => 0xB8,
            9 => 0x110,
            16 => 0xB400,
            24 => 0xE1_0000,
            32 => 0x8020_0003,
            _ => (1 << (w - 1)) | (1 << (w / 2)) | 1,
        };
        let mut state = seed | 1;
        state &= (u64::MAX) >> (64 - w);
        if state == 0 {
            state = 1;
        }
        Self::Lfsr {
            width,
            remaining: count,
            state,
            taps,
        }
    }

    /// Vector width produced.
    pub fn width(&self) -> usize {
        match self {
            Self::Exhaustive { width, .. }
            | Self::Random { width, .. }
            | Self::Lfsr { width, .. } => *width,
        }
    }

    /// Remaining vectors.
    pub fn remaining(&self) -> usize {
        match self {
            Self::Exhaustive { width, next } => ((1u64 << *width) - *next) as usize,
            Self::Random { remaining, .. } | Self::Lfsr { remaining, .. } => *remaining,
        }
    }

    fn bits_to_vec(bits: u64, width: usize) -> Vec<bool> {
        (0..width).map(|k| bits >> k & 1 == 1).collect()
    }
}

impl Iterator for PatternGen {
    type Item = Vec<bool>;

    fn next(&mut self) -> Option<Vec<bool>> {
        match self {
            Self::Exhaustive { width, next } => {
                if *next >= 1u64 << *width {
                    return None;
                }
                let v = Self::bits_to_vec(*next, *width);
                *next += 1;
                Some(v)
            }
            Self::Random {
                width,
                remaining,
                rng,
            } => {
                if *remaining == 0 {
                    return None;
                }
                *remaining -= 1;
                Some((0..*width).map(|_| rng.gen_bool(0.5)).collect())
            }
            Self::Lfsr {
                width,
                remaining,
                state,
                taps,
            } => {
                if *remaining == 0 {
                    return None;
                }
                *remaining -= 1;
                let v = Self::bits_to_vec(*state, (*width).min(64));
                // Galois step.
                let lsb = *state & 1 == 1;
                *state >>= 1;
                if lsb {
                    *state ^= *taps;
                }
                if *state == 0 {
                    *state = 1;
                }
                Some(v)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

impl ExactSizeIterator for PatternGen {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_covers_everything_once() {
        let pats: Vec<Vec<bool>> = PatternGen::exhaustive(3).collect();
        assert_eq!(pats.len(), 8);
        let mut seen: Vec<u8> = pats
            .iter()
            .map(|p| p.iter().enumerate().map(|(k, &b)| (b as u8) << k).sum())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<u8>>());
    }

    #[test]
    fn random_is_seeded() {
        let a: Vec<_> = PatternGen::random(8, 10, 5).collect();
        let b: Vec<_> = PatternGen::random(8, 10, 5).collect();
        let c: Vec<_> = PatternGen::random(8, 10, 6).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn lfsr_cycles_through_many_states() {
        let pats: Vec<Vec<bool>> = PatternGen::lfsr(8, 255, 1).collect();
        let mut unique: Vec<u8> = pats
            .iter()
            .map(|p| p.iter().enumerate().map(|(k, &b)| (b as u8) << k).sum())
            .collect();
        unique.sort_unstable();
        unique.dedup();
        // Maximal 8-bit LFSR visits all 255 nonzero states.
        assert_eq!(unique.len(), 255);
    }

    #[test]
    fn lfsr_never_hits_zero() {
        assert!(PatternGen::lfsr(5, 100, 0).all(|p| p.iter().any(|&b| b)));
    }

    #[test]
    fn size_hints() {
        let mut g = PatternGen::exhaustive(2);
        assert_eq!(g.len(), 4);
        g.next();
        assert_eq!(g.len(), 3);
    }
}

//! Bit-packed pattern-parallel simulator: 64 values per net per pass.
//!
//! [`Simulator`](crate::Simulator) stores one `bool` per net and walks
//! the topo order once per stimulus pattern. This module stores one
//! `u64` *word* per net instead, so a single topo pass evaluates 64
//! independent simulations at once — bit `l` of every word belongs to
//! *lane* `l`. What a lane means is the caller's choice, and the two
//! uses in this repo are:
//!
//! * **patterns as lanes** (combinational sweeps): lane `l` of a chunk
//!   carries stimulus pattern `base + l`, so a 512-pattern sweep takes
//!   8 topo passes instead of 512 ([`PackedSimulator::load_patterns`]);
//! * **machines as lanes** (sequential fault simulation): all lanes
//!   see the *same* stimulus stream
//!   ([`PackedSimulator::broadcast_inputs`]) but each lane simulates a
//!   different hypothesis machine — a per-lane complement fault
//!   planted with [`PackedSimulator::set_fault_lanes`] — which is how
//!   `FaultAttribution` scores 64 candidate sites in one stream pass.
//!
//! Sequential designs clock once per pattern *without* reset, so the
//! stimulus stream is a temporal sequence: pattern `i`'s flip-flop
//! state depends on pattern `i-1`, and lanes can never be time steps.
//! Stream sweeps over sequential designs therefore run this engine
//! with one-pattern chunks (bit-exact with the scalar oracle, same
//! per-pass cost), and the 64× parallelism comes from the machine
//! axis instead.
//!
//! LUT evaluation is word-wise truth-table selection: the `2^arity`
//! rows of the [`TruthTable`](netlist::TruthTable) are broadcast to
//! all-ones/all-zeros candidate words, then each input word
//! mask-selects between candidate halves (a Shannon mux tree), leaving
//! the output word after `arity` folding levels — about `2·2^arity`
//! ALU ops for 64 lanes.
//!
//! The scalar [`Simulator`](crate::Simulator) stays untouched as the
//! differential oracle: every packed consumer is pinned to it
//! bit-exactly by property tests (`tests/properties.rs`).

use netlist::{CellId, CellKind, NetId, Netlist, NetlistError};

/// Lanes per machine word (bits in a `u64`).
pub const LANES: usize = 64;

/// One compiled evaluation step (topo order position).
#[derive(Debug, Clone)]
enum Op {
    /// Copy primary-input word `pi` to net `out`.
    Input { pi: u32, out: u32 },
    /// Copy flip-flop state word of cell `cell` to net `out`.
    Ff { cell: u32, out: u32 },
    /// Word-wise LUT: mask-select over the truth table rows.
    Lut {
        bits: u64,
        arity: u8,
        ins: [u32; netlist::logic::MAX_ARITY],
        out: u32,
    },
}

/// Pattern-parallel (word-per-net) simulator over a mapped netlist.
///
/// The evaluation order is compiled once at construction into a flat
/// op list over structure-of-arrays `u64` arenas, so the per-chunk
/// walk touches no netlist data structures at all.
///
/// ```
/// use netlist::{Netlist, TruthTable};
/// use sim::PackedSimulator;
/// # fn main() -> Result<(), netlist::NetlistError> {
/// let mut nl = Netlist::new("inv");
/// let a = nl.add_input("a")?;
/// let u = nl.add_lut("u", TruthTable::not(), &[nl.cell_output(a)?])?;
/// nl.add_output("y", nl.cell_output(u)?)?;
/// let mut sim = PackedSimulator::new(&nl)?;
/// // Two patterns in lanes 0 and 1: a=0 and a=1.
/// let lanes = sim.load_patterns(&[vec![false], vec![true]]);
/// sim.comb_eval();
/// assert_eq!(sim.output_word(0) & lanes, 0b01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PackedSimulator<'a> {
    nl: &'a Netlist,
    ops: Vec<Op>,
    /// `(cell index, D-input net index)` per flip-flop.
    latches: Vec<(u32, u32)>,
    num_inputs: usize,
    /// First input net of each primary output (None = dangling PO).
    po_nets: Vec<Option<u32>>,
    /// One word per net (indexed by `NetId::index`).
    values: Vec<u64>,
    /// Flip-flop state, one word per cell (indexed by `CellId::index`).
    state: Vec<u64>,
    /// Pending input words (PI order).
    inputs: Vec<u64>,
    /// Per-net lane mask XORed into the driven word after evaluation —
    /// a complement fault in exactly those lanes.
    fault: Vec<u64>,
    /// Mux-tree scratch for LUT row candidates.
    scratch: [u64; 1 << netlist::logic::MAX_ARITY],
    cycles: u64,
}

impl<'a> PackedSimulator<'a> {
    /// Compiles the evaluation order (topo order, PI positions, PO
    /// nets, FF latch list) once.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalLoop`] for cyclic logic.
    pub fn new(nl: &'a Netlist) -> Result<Self, NetlistError> {
        let order = nl.topo_order()?;
        let pis = nl.primary_inputs();
        let mut ops = Vec::with_capacity(order.len());
        for &id in &order {
            let cell = nl.cell(id).expect("order holds live cells");
            let Some(out) = cell.output else {
                continue; // Output cells (and dangling) drive nothing.
            };
            let out = out.index() as u32;
            match &cell.kind {
                CellKind::Input => {
                    let pi = pis.iter().position(|&p| p == id).expect("input is a PI") as u32;
                    ops.push(Op::Input { pi, out });
                }
                CellKind::Ff { .. } => ops.push(Op::Ff {
                    cell: id.index() as u32,
                    out,
                }),
                CellKind::Lut(tt) => {
                    let mut ins = [0u32; netlist::logic::MAX_ARITY];
                    for (k, &n) in cell.inputs.iter().enumerate() {
                        ins[k] = n.index() as u32;
                    }
                    ops.push(Op::Lut {
                        bits: tt.bits(),
                        arity: tt.arity() as u8,
                        ins,
                        out,
                    });
                }
                CellKind::Output => {}
            }
        }
        let mut latches = Vec::new();
        let mut state = vec![0u64; nl.cell_capacity()];
        for (id, cell) in nl.cells() {
            if let CellKind::Ff { init } = cell.kind {
                state[id.index()] = broadcast(init);
                latches.push((id.index() as u32, cell.inputs[0].index() as u32));
            }
        }
        let po_nets = nl
            .primary_outputs()
            .iter()
            .map(|&po| {
                let cell = nl.cell(po).expect("po is live");
                cell.inputs.first().map(|n| n.index() as u32)
            })
            .collect();
        Ok(Self {
            nl,
            ops,
            latches,
            num_inputs: pis.len(),
            po_nets,
            values: vec![0u64; nl.net_capacity()],
            state,
            inputs: vec![0u64; pis.len()],
            fault: vec![0u64; nl.net_capacity()],
            scratch: [0u64; 1 << netlist::logic::MAX_ARITY],
            cycles: 0,
        })
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.po_nets.len()
    }

    /// Clock cycles stepped since construction/reset.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Transposes up to [`LANES`] stimulus patterns into the input
    /// words (pattern `l` of the chunk occupies lane `l`) and returns
    /// the valid-lane mask (`(1 << n) - 1` for `n` patterns).
    ///
    /// # Panics
    ///
    /// Panics if more than [`LANES`] patterns are given or any pattern
    /// width differs from the PI count (same contract as
    /// [`Simulator::set_inputs`](crate::Simulator::set_inputs)).
    pub fn load_patterns(&mut self, chunk: &[Vec<bool>]) -> u64 {
        for pat in chunk {
            assert_eq!(pat.len(), self.num_inputs, "input width mismatch");
        }
        self.load_patterns_padded(chunk)
    }

    /// Like [`load_patterns`](Self::load_patterns) but tolerates
    /// pattern widths that differ from the PI count: missing inputs
    /// are driven false, excess bits are ignored. This is the DUT-side
    /// convention — a DUT carrying extra debug-instrumentation PIs is
    /// driven inactive on them.
    pub fn load_patterns_padded(&mut self, chunk: &[Vec<bool>]) -> u64 {
        assert!(chunk.len() <= LANES, "at most {LANES} patterns per chunk");
        crate::counters::record_lanes(chunk.len() as u64);
        for (k, word) in self.inputs.iter_mut().enumerate() {
            let mut w = 0u64;
            for (l, pat) in chunk.iter().enumerate() {
                w |= u64::from(pat.get(k).copied().unwrap_or(false)) << l;
            }
            *word = w;
        }
        lane_mask(chunk.len())
    }

    /// Drives the *same* pattern on every lane (machines-as-lanes
    /// mode).
    ///
    /// # Panics
    ///
    /// Panics if the width differs from the PI count.
    pub fn broadcast_inputs(&mut self, pat: &[bool]) {
        assert_eq!(pat.len(), self.num_inputs, "input width mismatch");
        self.broadcast_inputs_padded(pat);
    }

    /// Like [`broadcast_inputs`](Self::broadcast_inputs) but missing
    /// inputs are driven false and excess bits ignored.
    pub fn broadcast_inputs_padded(&mut self, pat: &[bool]) {
        // Machines-as-lanes mode: one stimulus pattern drives all 64
        // lanes, so this counts as a single loaded lane.
        crate::counters::record_lanes(1);
        for (k, word) in self.inputs.iter_mut().enumerate() {
            *word = broadcast(pat.get(k).copied().unwrap_or(false));
        }
    }

    /// Sets one primary input's word directly (lane `l` = bit `l`) —
    /// how a control-point sweep drives `force_val` with the golden
    /// model's packed net value.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range index.
    pub fn set_input_word(&mut self, index: usize, word: u64) {
        self.inputs[index] = word;
    }

    /// Plants a complement fault on `cell`'s output in the lanes of
    /// `mask`: after every evaluation the driven word is XORed with
    /// `mask`, so those lanes simulate the machine with the cell's
    /// function complemented. Faults accumulate until
    /// [`clear_faults`](Self::clear_faults).
    ///
    /// # Errors
    ///
    /// Propagates the lookup error for unknown cells or cells that
    /// drive no net.
    pub fn set_fault_lanes(&mut self, cell: CellId, mask: u64) -> Result<(), NetlistError> {
        let net = self.nl.cell_output(cell)?;
        self.fault[net.index()] ^= mask;
        Ok(())
    }

    /// Removes all planted lane faults.
    pub fn clear_faults(&mut self) {
        self.fault.fill(0);
    }

    /// Restores all flip-flops to their init values (all lanes).
    pub fn reset(&mut self) {
        for (id, cell) in self.nl.cells() {
            if let CellKind::Ff { init } = cell.kind {
                self.state[id.index()] = broadcast(init);
            }
        }
        self.cycles = 0;
    }

    /// Propagates the current input words and FF state through the
    /// combinational network — one topo pass for all 64 lanes.
    pub fn comb_eval(&mut self) {
        crate::counters::record_sweep(self.ops.len() as u64);
        let Self {
            ops,
            values,
            state,
            inputs,
            fault,
            scratch,
            ..
        } = self;
        for op in ops.iter() {
            match *op {
                Op::Input { pi, out } => {
                    values[out as usize] = inputs[pi as usize] ^ fault[out as usize];
                }
                Op::Ff { cell, out } => {
                    values[out as usize] = state[cell as usize] ^ fault[out as usize];
                }
                Op::Lut {
                    bits,
                    arity,
                    ins,
                    out,
                } => {
                    // Broadcast each truth-table row to a candidate
                    // word, then mask-select with each input word —
                    // a Shannon mux tree folded LSB-variable first.
                    let arity = arity as usize;
                    let mut n = 1usize << arity;
                    for (r, slot) in scratch.iter_mut().enumerate().take(n) {
                        *slot = broadcast(bits >> r & 1 == 1);
                    }
                    for k in 0..arity {
                        let w = values[ins[k] as usize];
                        n >>= 1;
                        for j in 0..n {
                            scratch[j] = (scratch[2 * j] & !w) | (scratch[2 * j + 1] & w);
                        }
                    }
                    values[out as usize] = scratch[0] ^ fault[out as usize];
                }
            }
        }
    }

    /// One clock cycle for every lane: combinational propagate, then
    /// latch all FFs.
    pub fn step(&mut self) {
        self.comb_eval();
        for &(cell, d) in &self.latches {
            self.state[cell as usize] = self.values[d as usize];
        }
        self.cycles += 1;
    }

    /// Current word of a net (valid after `comb_eval`/`step`); lanes
    /// of unknown nets read as 0.
    pub fn net_word(&self, net: NetId) -> u64 {
        self.values.get(net.index()).copied().unwrap_or(0)
    }

    /// Current word of primary output `index` (PO order).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range index.
    pub fn output_word(&self, index: usize) -> u64 {
        self.po_nets[index].map_or(0, |n| self.values[n as usize])
    }

    /// The flip-flop state word of a sequential cell.
    pub fn ff_word(&self, cell: CellId) -> Option<u64> {
        let c = self.nl.cell(cell).ok()?;
        c.is_sequential().then(|| self.state[cell.index()])
    }
}

/// All-ones word for `true`, zero for `false`.
#[inline]
pub(crate) fn broadcast(bit: bool) -> u64 {
    0u64.wrapping_sub(u64::from(bit))
}

/// Valid-lane mask for a chunk of `n <= 64` patterns.
#[inline]
pub(crate) fn lane_mask(n: usize) -> u64 {
    debug_assert!(n <= LANES);
    if n == LANES {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PatternGen, Simulator};
    use netlist::TruthTable;

    /// Exhaustively checks a packed comb eval against the scalar
    /// oracle for every net.
    fn assert_matches_scalar(nl: &Netlist, pats: &[Vec<bool>]) {
        let mut packed = PackedSimulator::new(nl).unwrap();
        let lanes = packed.load_patterns(pats);
        packed.comb_eval();
        let mut scalar = Simulator::new(nl).unwrap();
        for (l, pat) in pats.iter().enumerate() {
            scalar.set_inputs(pat);
            scalar.comb_eval();
            for (net, _) in nl.nets() {
                assert_eq!(
                    packed.net_word(net) >> l & 1 == 1,
                    scalar.net_value(net),
                    "net {net:?} lane {l}"
                );
            }
        }
        assert_eq!(lanes, lane_mask(pats.len()));
    }

    #[test]
    fn combinational_lanes_match_scalar() {
        let mut nl = Netlist::new("mix");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let c = nl.add_input("c").unwrap();
        let (na, nb, nc) = (
            nl.cell_output(a).unwrap(),
            nl.cell_output(b).unwrap(),
            nl.cell_output(c).unwrap(),
        );
        let u = nl.add_lut("u", TruthTable::and(2), &[na, nb]).unwrap();
        let v = nl
            .add_lut(
                "v",
                TruthTable::mux2(),
                &[nc, na, nl.cell_output(u).unwrap()],
            )
            .unwrap();
        nl.add_output("y", nl.cell_output(v).unwrap()).unwrap();
        let pats: Vec<Vec<bool>> = PatternGen::exhaustive(3).collect();
        assert_matches_scalar(&nl, &pats);
    }

    #[test]
    fn sequential_stream_matches_scalar() {
        // Toggle FF driven by an enable input; stream mode = chunks
        // of one pattern, stepping between them.
        let mut nl = Netlist::new("seq");
        let en = nl.add_input("en").unwrap();
        let seed = nl.add_net("seed").unwrap();
        let ff = nl.add_ff("q", false, seed).unwrap();
        let q = nl.cell_output(ff).unwrap();
        let f = nl
            .add_lut("f", TruthTable::xor(2), &[nl.cell_output(en).unwrap(), q])
            .unwrap();
        nl.set_pin(ff, 0, nl.cell_output(f).unwrap()).unwrap();
        nl.add_output("out", q).unwrap();

        let mut packed = PackedSimulator::new(&nl).unwrap();
        let mut scalar = Simulator::new(&nl).unwrap();
        for pat in PatternGen::random(1, 32, 9) {
            packed.load_patterns(std::slice::from_ref(&pat));
            packed.comb_eval();
            scalar.set_inputs(&pat);
            scalar.comb_eval();
            assert_eq!(packed.output_word(0) & 1 == 1, scalar.outputs()[0]);
            packed.step();
            scalar.step();
            assert_eq!(
                packed.ff_word(ff).unwrap() & 1 == 1,
                scalar.ff_state(ff).unwrap()
            );
        }
        assert_eq!(packed.cycles(), 32);
        packed.reset();
        assert_eq!(packed.cycles(), 0);
        assert_eq!(packed.ff_word(ff), Some(0));
    }

    #[test]
    fn lane_faults_complement_exactly_those_lanes() {
        // One AND gate; complement it in lane 1 only and check lanes
        // 0 and 2 stay faithful while lane 1 inverts.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let u = nl
            .add_lut(
                "u",
                TruthTable::and(2),
                &[nl.cell_output(a).unwrap(), nl.cell_output(b).unwrap()],
            )
            .unwrap();
        nl.add_output("y", nl.cell_output(u).unwrap()).unwrap();
        let mut sim = PackedSimulator::new(&nl).unwrap();
        sim.set_fault_lanes(u, 0b10).unwrap();
        // All three lanes see a=1, b=1.
        sim.broadcast_inputs(&[true, true]);
        sim.comb_eval();
        assert_eq!(sim.output_word(0) & 0b111, 0b101);
        sim.clear_faults();
        sim.comb_eval();
        assert_eq!(sim.output_word(0) & 0b111, 0b111);
    }

    #[test]
    fn padded_loads_drive_missing_inputs_false() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let u = nl
            .add_lut(
                "u",
                TruthTable::or(2),
                &[nl.cell_output(a).unwrap(), nl.cell_output(b).unwrap()],
            )
            .unwrap();
        nl.add_output("y", nl.cell_output(u).unwrap()).unwrap();
        let mut sim = PackedSimulator::new(&nl).unwrap();
        // One-wide patterns: b falls off the end and reads false.
        sim.load_patterns_padded(&[vec![false], vec![true]]);
        sim.comb_eval();
        assert_eq!(sim.output_word(0) & 0b11, 0b10);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn strict_load_panics_on_width() {
        let mut nl = Netlist::new("t");
        nl.add_input("a").unwrap();
        let mut sim = PackedSimulator::new(&nl).unwrap();
        sim.load_patterns(&[vec![true, false]]);
    }
}

//! Process-global counters for the packed simulator.
//!
//! The packed engine is the workspace's hot loop: it runs deep inside
//! sessions, fault-attribution kernels, and bench bins, often on pool
//! workers, so threading a registry handle down to every
//! [`PackedSimulator`](crate::PackedSimulator) call site would put an
//! observability parameter on the innermost kernel APIs. Instead the
//! engine bumps three relaxed process-global atomics (two adds per
//! 64-lane topo pass — noise next to the op walk) and observers
//! scrape **deltas** at a scope boundary:
//!
//! ```
//! let before = sim::counters::snapshot();
//! // ... run simulations ...
//! let spent = sim::counters::snapshot().delta_since(&before);
//! assert_eq!(spent.sweeps, 0);
//! ```
//!
//! Totals are sums of per-call contributions, so a delta over a batch
//! is deterministic (order-independent) however the batch was
//! scheduled — which is what lets the fleet's metrics stay
//! byte-identical serial vs. pooled. Deltas are only attributable
//! when the scope owns all simulation in the process for its
//! duration (true for the bins and the `debugd` serve loop; not true
//! across concurrently running tests).

use std::sync::atomic::{AtomicU64, Ordering};

static SWEEPS: AtomicU64 = AtomicU64::new(0);
static NET_WORDS: AtomicU64 = AtomicU64::new(0);
static LANES_LOADED: AtomicU64 = AtomicU64::new(0);

/// A point-in-time copy of the simulator counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimCounters {
    /// Packed topo passes (`comb_eval` calls) — each evaluates 64
    /// lanes at once.
    pub sweeps: u64,
    /// Net *words* evaluated: ops walked per sweep, 64 lane-values
    /// each.
    pub net_words: u64,
    /// Stimulus lanes loaded (pattern-load and broadcast calls):
    /// `lanes_loaded / (sweeps * 64)` approximates lane occupancy.
    pub lanes_loaded: u64,
}

impl SimCounters {
    /// Counter movement since `earlier` (saturating).
    pub fn delta_since(&self, earlier: &Self) -> Self {
        Self {
            sweeps: self.sweeps.saturating_sub(earlier.sweeps),
            net_words: self.net_words.saturating_sub(earlier.net_words),
            lanes_loaded: self.lanes_loaded.saturating_sub(earlier.lanes_loaded),
        }
    }
}

/// Reads all counters (relaxed; exact once the workload quiesces).
pub fn snapshot() -> SimCounters {
    SimCounters {
        sweeps: SWEEPS.load(Ordering::Relaxed),
        net_words: NET_WORDS.load(Ordering::Relaxed),
        lanes_loaded: LANES_LOADED.load(Ordering::Relaxed),
    }
}

/// One packed topo pass over `ops` compiled ops.
pub(crate) fn record_sweep(ops: u64) {
    SWEEPS.fetch_add(1, Ordering::Relaxed);
    NET_WORDS.fetch_add(ops, Ordering::Relaxed);
}

/// `lanes` stimulus lanes loaded or broadcast.
pub(crate) fn record_lanes(lanes: u64) {
    LANES_LOADED.fetch_add(lanes, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_track_recorded_work() {
        // Lower bounds only: sibling tests in this binary may be
        // simulating concurrently (the counters are process-global).
        let before = snapshot();
        record_sweep(10);
        record_sweep(10);
        record_lanes(7);
        let d = snapshot().delta_since(&before);
        assert!(d.sweeps >= 2);
        assert!(d.net_words >= 20);
        assert!(d.lanes_loaded >= 7);
    }
}

//! Golden-vs-DUT emulation with primary-output-only observability.

use netlist::{NetId, Netlist, NetlistError};

use crate::patterns::PatternGen;
use crate::simulator::Simulator;

/// A detected divergence between golden model and device under test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Index of the stimulus vector that exposed the bug.
    pub pattern_index: usize,
    /// Clock cycle at which the divergence was observed.
    pub cycle: u64,
    /// Index of the diverging primary output (PO order).
    pub output_index: usize,
    /// Name of the diverging output cell.
    pub output_name: String,
    /// Which outputs matched (true) at the failing cycle — used by
    /// cone-intersection diagnosis.
    pub output_ok: Vec<bool>,
}

/// Runs `patterns` through both netlists and returns the first
/// primary-output divergence, if any.
///
/// Sequential designs are clocked once per pattern *without* reset in
/// between (patterns form a stimulus stream); combinational designs
/// are evaluated per pattern. Only primary outputs are compared —
/// internal nets are invisible, as on a real emulator.
///
/// # Errors
///
/// Propagates simulator construction failures (combinational loops).
///
/// # Panics
///
/// Panics if the two netlists disagree on PI/PO counts (they must be
/// the same design, one of them buggy).
pub fn first_mismatch(
    golden: &Netlist,
    dut: &Netlist,
    patterns: PatternGen,
) -> Result<Option<Mismatch>, NetlistError> {
    let mut gsim = Simulator::new(golden)?;
    let mut dsim = Simulator::new(dut)?;
    assert_eq!(
        gsim.num_inputs(),
        dsim.num_inputs(),
        "PI mismatch between golden and DUT"
    );
    assert_eq!(
        gsim.num_outputs(),
        dsim.num_outputs(),
        "PO mismatch between golden and DUT"
    );
    assert_eq!(
        patterns.width(),
        gsim.num_inputs(),
        "pattern width mismatch"
    );
    let sequential = golden.is_sequential() || dut.is_sequential();

    for (idx, pat) in patterns.enumerate() {
        gsim.set_inputs(&pat);
        dsim.set_inputs(&pat);
        gsim.comb_eval();
        dsim.comb_eval();
        let g = gsim.outputs();
        let d = dsim.outputs();
        if let Some(first_bad) = g.iter().zip(&d).position(|(a, b)| a != b) {
            let pos = golden.primary_outputs();
            let output_ok: Vec<bool> = g.iter().zip(&d).map(|(a, b)| a == b).collect();
            return Ok(Some(Mismatch {
                pattern_index: idx,
                cycle: gsim.cycles(),
                output_index: first_bad,
                output_name: golden.cell(pos[first_bad])?.name.clone(),
                output_ok,
            }));
        }
        if sequential {
            gsim.step();
            dsim.step();
        }
    }
    Ok(None)
}

/// Windowed response capture: sweeps `patterns` through both netlists
/// and records, per watched net, the index of the **first** pattern
/// on which its value diverges from golden (`None` = clean across the
/// whole sweep).
///
/// This is the observation primitive behind windowed multi-error
/// diagnosis: a tap verdict is no longer a single "ever diverged"
/// bit but the exact onset pattern, so one physical tap can be
/// re-read under any cluster's `[0, first_fail]` observation window
/// (diverged within the window iff the onset is `<= window`).
///
/// Sequential designs are clocked once per pattern without reset,
/// exactly like [`first_mismatch`] and the full-sweep detection in
/// `tiling::diagnosis` — pattern indices are therefore directly
/// comparable across detection and observation. The DUT may carry
/// extra primary inputs (debug instrumentation); they are driven
/// inactive. The sweep stops early once every watched net has
/// diverged.
///
/// # Errors
///
/// Propagates simulator construction failures (combinational loops).
pub fn net_first_divergences(
    golden: &Netlist,
    dut: &Netlist,
    nets: &[NetId],
    patterns: &[Vec<bool>],
) -> Result<Vec<Option<usize>>, NetlistError> {
    let mut gsim = Simulator::new(golden)?;
    let mut dsim = Simulator::new(dut)?;
    let sequential = golden.is_sequential() || dut.is_sequential();
    let mut onsets: Vec<Option<usize>> = vec![None; nets.len()];
    let mut undecided = nets.len();
    for (idx, pat) in patterns.iter().enumerate() {
        gsim.set_inputs(pat);
        let mut dpat = pat.clone();
        dpat.resize(dsim.num_inputs(), false);
        dsim.set_inputs(&dpat);
        gsim.comb_eval();
        dsim.comb_eval();
        for (k, &net) in nets.iter().enumerate() {
            if onsets[k].is_none() && gsim.net_value(net) != dsim.net_value(net) {
                onsets[k] = Some(idx);
                undecided -= 1;
            }
        }
        if undecided == 0 {
            break;
        }
        if sequential {
            gsim.step();
            dsim.step();
        }
    }
    Ok(onsets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{inject, DesignErrorKind};
    use netlist::TruthTable;

    /// Two independent output cones: y0 = a AND b, y1 = a XOR c.
    fn two_cone_design() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let c = nl.add_input("c").unwrap();
        let (na, nb, nc) = (
            nl.cell_output(a).unwrap(),
            nl.cell_output(b).unwrap(),
            nl.cell_output(c).unwrap(),
        );
        let u0 = nl.add_lut("u0", TruthTable::and(2), &[na, nb]).unwrap();
        let u1 = nl.add_lut("u1", TruthTable::xor(2), &[na, nc]).unwrap();
        nl.add_output("y0", nl.cell_output(u0).unwrap()).unwrap();
        nl.add_output("y1", nl.cell_output(u1).unwrap()).unwrap();
        nl
    }

    #[test]
    fn identical_designs_never_mismatch() {
        let nl = two_cone_design();
        let m = first_mismatch(&nl, &nl.clone(), PatternGen::exhaustive(3)).unwrap();
        assert_eq!(m, None);
    }

    #[test]
    fn planted_bug_is_detected_with_per_output_verdicts() {
        let golden = two_cone_design();
        let mut dut = golden.clone();
        let u1 = dut.find_cell("u1").unwrap();
        inject(&mut dut, u1, DesignErrorKind::Complement).unwrap();
        let m = first_mismatch(&golden, &dut, PatternGen::exhaustive(3))
            .unwrap()
            .expect("complemented gate must diverge");
        assert_eq!(m.output_name, "y1");
        // Per-output verdicts at the failing cycle: y0 clean, y1 bad
        // (the raw material the diagnosis evidence layer consumes).
        assert_eq!(m.output_ok, vec![true, false]);
    }

    #[test]
    fn sequential_divergence_found_over_time() {
        // Golden: toggle FF; DUT: stuck FF (feedback buffered, not inverted).
        let build = |invert: bool| {
            let mut nl = Netlist::new("seq");
            let en = nl.add_input("en").unwrap();
            let seed = nl.add_net("seed").unwrap();
            let ff = nl.add_ff("q", false, seed).unwrap();
            let q = nl.cell_output(ff).unwrap();
            let tt = if invert {
                TruthTable::xor(2)
            } else {
                TruthTable::var(2, 1)
            };
            let f = nl
                .add_lut("f", tt, &[nl.cell_output(en).unwrap(), q])
                .unwrap();
            nl.set_pin(ff, 0, nl.cell_output(f).unwrap()).unwrap();
            nl.add_output("out", q).unwrap();
            nl
        };
        let golden = build(true); // q ^= en
        let dut = build(false); // q stays q
        let m = first_mismatch(&golden, &dut, PatternGen::random(1, 20, 3)).unwrap();
        assert!(m.is_some());
    }

    #[test]
    fn first_divergences_report_exact_onsets() {
        let golden = two_cone_design();
        let mut dut = golden.clone();
        let u0 = dut.find_cell("u0").unwrap();
        // Flip only the row a=1,b=1: u0's net diverges first on the
        // exhaustive pattern with a=b=1 (index 3); u1 never diverges.
        inject(&mut dut, u0, DesignErrorKind::FlipRow { row: 3 }).unwrap();
        let n0 = golden.cell_output(golden.find_cell("u0").unwrap()).unwrap();
        let n1 = golden.cell_output(golden.find_cell("u1").unwrap()).unwrap();
        let pats: Vec<Vec<bool>> = PatternGen::exhaustive(3).collect();
        let onsets = net_first_divergences(&golden, &dut, &[n0, n1], &pats).unwrap();
        assert_eq!(onsets, vec![Some(3), None]);
    }

    #[test]
    fn single_minterm_bug_needs_the_right_pattern() {
        let golden = two_cone_design();
        let mut dut = golden.clone();
        let u0 = dut.find_cell("u0").unwrap();
        // Flip only the row a=1,b=1.
        inject(&mut dut, u0, DesignErrorKind::FlipRow { row: 3 }).unwrap();
        let m = first_mismatch(&golden, &dut, PatternGen::exhaustive(3))
            .unwrap()
            .expect("exhaustive patterns hit every minterm");
        // The failing stimulus must have a=b=1.
        let pat = PatternGen::exhaustive(3).nth(m.pattern_index).unwrap();
        assert!(pat[0] && pat[1]);
    }
}

//! Golden-vs-DUT emulation with primary-output-only observability.
//!
//! Every golden-vs-DUT comparison in the repo — first-mismatch
//! detection, full response sweeps, per-net divergence onsets, §4.1
//! control-point confirmation — funnels through the one packed
//! lockstep walker in this module (`sweep_pair`): combinational
//! designs evaluate 64 patterns per topo pass
//! ([`PackedSimulator`] lanes = patterns), sequential designs run the
//! stimulus stream in one-pattern chunks (lanes can never be time
//! steps — pattern `i`'s flip-flop state depends on pattern `i-1`),
//! which keeps every onset and verdict bit-exact with the scalar
//! [`Simulator`](crate::Simulator) oracle.

use netlist::{NetId, Netlist, NetlistError};

use crate::packed::{PackedSimulator, LANES};
use crate::patterns::PatternGen;

/// A detected divergence between golden model and device under test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Index of the stimulus vector that exposed the bug.
    pub pattern_index: usize,
    /// Clock cycle at which the divergence was observed.
    pub cycle: u64,
    /// Index of the diverging primary output (PO order).
    pub output_index: usize,
    /// Name of the diverging output cell.
    pub output_name: String,
    /// Which outputs matched (true) at the failing cycle — used by
    /// cone-intersection diagnosis.
    pub output_ok: Vec<bool>,
}

/// The one packed pattern loop behind every paired sweep.
///
/// Walks `golden` and `dut` in lockstep chunks — [`LANES`] patterns
/// per chunk for combinational designs, one per chunk for sequential
/// streams (clocking both sims between chunks, no reset) — and hands
/// each evaluated chunk to `visit(base, lane_mask, golden_sim,
/// dut_sim)`. `visit` returns `false` to stop the sweep early (the
/// clock does *not* advance past a stopped chunk, so
/// [`PackedSimulator::cycles`] reads like the scalar oracle's at the
/// moment of detection). Golden patterns are width-checked strictly;
/// the DUT may carry extra primary inputs (debug instrumentation),
/// driven inactive. Returns the number of patterns consumed.
fn sweep_pair<I, F>(
    golden: &Netlist,
    dut: &Netlist,
    patterns: I,
    mut visit: F,
) -> Result<usize, NetlistError>
where
    I: IntoIterator<Item = Vec<bool>>,
    F: FnMut(usize, u64, &PackedSimulator, &PackedSimulator) -> bool,
{
    let mut gsim = PackedSimulator::new(golden)?;
    let mut dsim = PackedSimulator::new(dut)?;
    let sequential = golden.is_sequential() || dut.is_sequential();
    let width = if sequential { 1 } else { LANES };
    let mut chunk: Vec<Vec<bool>> = Vec::with_capacity(width);
    let mut base = 0usize;
    let mut patterns = patterns.into_iter();
    loop {
        chunk.clear();
        chunk.extend(patterns.by_ref().take(width));
        if chunk.is_empty() {
            return Ok(base);
        }
        let lanes = gsim.load_patterns(&chunk);
        dsim.load_patterns_padded(&chunk);
        gsim.comb_eval();
        dsim.comb_eval();
        base += chunk.len();
        if !visit(base - chunk.len(), lanes, &gsim, &dsim) {
            return Ok(base);
        }
        if sequential {
            gsim.step();
            dsim.step();
        }
    }
}

/// Runs `patterns` through both netlists and returns the first
/// primary-output divergence, if any.
///
/// Sequential designs are clocked once per pattern *without* reset in
/// between (patterns form a stimulus stream); combinational designs
/// are evaluated 64 patterns per packed pass. Only primary outputs
/// are compared — internal nets are invisible, as on a real emulator.
///
/// # Errors
///
/// Propagates simulator construction failures (combinational loops).
///
/// # Panics
///
/// Panics if the two netlists disagree on PI/PO counts (they must be
/// the same design, one of them buggy).
pub fn first_mismatch(
    golden: &Netlist,
    dut: &Netlist,
    patterns: PatternGen,
) -> Result<Option<Mismatch>, NetlistError> {
    let pos = golden.primary_outputs();
    assert_eq!(
        golden.primary_inputs().len(),
        dut.primary_inputs().len(),
        "PI mismatch between golden and DUT"
    );
    assert_eq!(
        pos.len(),
        dut.primary_outputs().len(),
        "PO mismatch between golden and DUT"
    );
    assert_eq!(
        patterns.width(),
        golden.primary_inputs().len(),
        "pattern width mismatch"
    );
    let mut diffs = vec![0u64; pos.len()];
    let mut hit: Option<(usize, u64, usize, Vec<bool>)> = None;
    sweep_pair(golden, dut, patterns, |base, lanes, gsim, dsim| {
        let mut any = 0u64;
        for (j, diff) in diffs.iter_mut().enumerate() {
            *diff = (gsim.output_word(j) ^ dsim.output_word(j)) & lanes;
            any |= *diff;
        }
        if any == 0 {
            return true;
        }
        // The earliest diverging lane is the first failing pattern.
        let lane = any.trailing_zeros();
        let output_ok: Vec<bool> = diffs.iter().map(|&d| d >> lane & 1 == 0).collect();
        let first_bad = output_ok.iter().position(|&ok| !ok).expect("some diff");
        hit = Some((base + lane as usize, gsim.cycles(), first_bad, output_ok));
        false
    })?;
    let Some((pattern_index, cycle, first_bad, output_ok)) = hit else {
        return Ok(None);
    };
    Ok(Some(Mismatch {
        pattern_index,
        cycle,
        output_index: first_bad,
        output_name: golden.cell(pos[first_bad])?.name.clone(),
        output_ok,
    }))
}

/// Windowed response capture: sweeps `patterns` through both netlists
/// and records, per watched net, the index of the **first** pattern
/// on which its value diverges from golden (`None` = clean across the
/// whole sweep).
///
/// This is the observation primitive behind windowed multi-error
/// diagnosis: a tap verdict is no longer a single "ever diverged"
/// bit but the exact onset pattern, so one physical tap can be
/// re-read under any cluster's `[0, first_fail]` observation window
/// (diverged within the window iff the onset is `<= window`).
///
/// Onsets fall out of the packed words as
/// `(golden ^ dut).trailing_zeros()` scans: on combinational designs
/// a 64-pattern chunk is one topo pass, on sequential designs the
/// stream runs one-pattern chunks exactly like [`first_mismatch`] and
/// the full-sweep detection in `tiling::diagnosis` — pattern indices
/// are therefore directly comparable across detection and
/// observation. The DUT may carry extra primary inputs (debug
/// instrumentation); they are driven inactive. The sweep stops early
/// once every watched net has diverged.
///
/// # Errors
///
/// Propagates simulator construction failures (combinational loops).
pub fn net_first_divergences(
    golden: &Netlist,
    dut: &Netlist,
    nets: &[NetId],
    patterns: &[Vec<bool>],
) -> Result<Vec<Option<usize>>, NetlistError> {
    let mut onsets: Vec<Option<usize>> = vec![None; nets.len()];
    let mut undecided = nets.len();
    sweep_pair(
        golden,
        dut,
        patterns.iter().cloned(),
        |base, lanes, gsim, dsim| {
            for (onset, &net) in onsets.iter_mut().zip(nets) {
                if onset.is_none() {
                    let diff = (gsim.net_word(net) ^ dsim.net_word(net)) & lanes;
                    if diff != 0 {
                        *onset = Some(base + diff.trailing_zeros() as usize);
                        undecided -= 1;
                    }
                }
            }
            undecided != 0
        },
    )?;
    Ok(onsets)
}

/// Full-footprint sweep: for each `(golden PO index, DUT PO index)`
/// pair, the packed set of patterns on which the two outputs
/// diverge — `words[i]` holds bit `p % 64` of word `p / 64` set iff
/// pattern `p` failed — plus the number of patterns swept. This is
/// the word-level feed for `ResponseMatrix` signatures (which store
/// exactly this layout); unlike [`first_mismatch`] the sweep never
/// stops early, because multi-error diagnosis needs the whole
/// footprint.
///
/// # Errors
///
/// Propagates simulator construction failures (combinational loops).
#[allow(clippy::type_complexity)]
pub fn po_divergence_words(
    golden: &Netlist,
    dut: &Netlist,
    pairs: &[(usize, usize)],
    patterns: impl IntoIterator<Item = Vec<bool>>,
) -> Result<(Vec<Vec<u64>>, usize), NetlistError> {
    let mut words: Vec<Vec<u64>> = vec![Vec::new(); pairs.len()];
    let count = sweep_pair(golden, dut, patterns, |base, lanes, gsim, dsim| {
        // Chunks never straddle a word boundary: combinational chunks
        // are 64-aligned, sequential chunks are single patterns.
        let (wi, shift) = (base / 64, base % 64);
        for (w, &(gk, dk)) in words.iter_mut().zip(pairs) {
            let diff = (gsim.output_word(gk) ^ dsim.output_word(dk)) & lanes;
            if diff != 0 {
                if w.len() <= wi {
                    w.resize(wi + 1, 0);
                }
                w[wi] |= diff << shift;
            }
        }
        true
    })?;
    Ok((words, count))
}

/// Whether the paired primary outputs agree on every pattern
/// (early-exits on the first diverging chunk). The DUT may carry
/// extra primary inputs; they are driven inactive.
///
/// # Errors
///
/// Propagates simulator construction failures (combinational loops).
pub fn outputs_equivalent(
    golden: &Netlist,
    dut: &Netlist,
    pairs: &[(usize, usize)],
    patterns: impl IntoIterator<Item = Vec<bool>>,
) -> Result<bool, NetlistError> {
    let mut matched = true;
    sweep_pair(golden, dut, patterns, |_, lanes, gsim, dsim| {
        matched = pairs
            .iter()
            .all(|&(gk, dk)| (gsim.output_word(gk) ^ dsim.output_word(dk)) & lanes == 0);
        matched
    })?;
    Ok(matched)
}

/// §4.1 control-point confirmation sweep: the DUT's last two primary
/// inputs are a control point's `[force_val, force_en]` pair; each
/// chunk drives `force_val` with the golden model's word for
/// `forced_net` (per lane) and holds `force_en` active, then compares
/// the paired primary outputs. Returns whether every pattern matched
/// (early-exits on the first diverging chunk). Sequential designs
/// stream one-pattern chunks with both machines clocked in lockstep.
///
/// # Errors
///
/// Propagates simulator construction failures (combinational loops).
///
/// # Panics
///
/// Panics unless the DUT has exactly two more primary inputs than the
/// golden model (the control point's force pair).
pub fn forced_outputs_equivalent(
    golden: &Netlist,
    dut: &Netlist,
    forced_net: NetId,
    pairs: &[(usize, usize)],
    patterns: impl IntoIterator<Item = Vec<bool>>,
) -> Result<bool, NetlistError> {
    let mut gsim = PackedSimulator::new(golden)?;
    let mut dsim = PackedSimulator::new(dut)?;
    assert_eq!(
        dsim.num_inputs(),
        gsim.num_inputs() + 2,
        "control point adds two PIs"
    );
    let force_val = gsim.num_inputs();
    let sequential = golden.is_sequential() || dut.is_sequential();
    let width = if sequential { 1 } else { LANES };
    let mut chunk: Vec<Vec<bool>> = Vec::with_capacity(width);
    let mut patterns = patterns.into_iter();
    loop {
        chunk.clear();
        chunk.extend(patterns.by_ref().take(width));
        if chunk.is_empty() {
            return Ok(true);
        }
        let lanes = gsim.load_patterns(&chunk);
        gsim.comb_eval();
        dsim.load_patterns_padded(&chunk);
        dsim.set_input_word(force_val, gsim.net_word(forced_net));
        dsim.set_input_word(force_val + 1, u64::MAX);
        dsim.comb_eval();
        if pairs
            .iter()
            .any(|&(gk, dk)| (gsim.output_word(gk) ^ dsim.output_word(dk)) & lanes != 0)
        {
            return Ok(false);
        }
        if sequential {
            gsim.step();
            dsim.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{inject, DesignErrorKind};
    use netlist::TruthTable;

    /// Two independent output cones: y0 = a AND b, y1 = a XOR c.
    fn two_cone_design() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let c = nl.add_input("c").unwrap();
        let (na, nb, nc) = (
            nl.cell_output(a).unwrap(),
            nl.cell_output(b).unwrap(),
            nl.cell_output(c).unwrap(),
        );
        let u0 = nl.add_lut("u0", TruthTable::and(2), &[na, nb]).unwrap();
        let u1 = nl.add_lut("u1", TruthTable::xor(2), &[na, nc]).unwrap();
        nl.add_output("y0", nl.cell_output(u0).unwrap()).unwrap();
        nl.add_output("y1", nl.cell_output(u1).unwrap()).unwrap();
        nl
    }

    #[test]
    fn identical_designs_never_mismatch() {
        let nl = two_cone_design();
        let m = first_mismatch(&nl, &nl.clone(), PatternGen::exhaustive(3)).unwrap();
        assert_eq!(m, None);
    }

    #[test]
    fn planted_bug_is_detected_with_per_output_verdicts() {
        let golden = two_cone_design();
        let mut dut = golden.clone();
        let u1 = dut.find_cell("u1").unwrap();
        inject(&mut dut, u1, DesignErrorKind::Complement).unwrap();
        let m = first_mismatch(&golden, &dut, PatternGen::exhaustive(3))
            .unwrap()
            .expect("complemented gate must diverge");
        assert_eq!(m.output_name, "y1");
        // Per-output verdicts at the failing cycle: y0 clean, y1 bad
        // (the raw material the diagnosis evidence layer consumes).
        assert_eq!(m.output_ok, vec![true, false]);
    }

    #[test]
    fn sequential_divergence_found_over_time() {
        // Golden: toggle FF; DUT: stuck FF (feedback buffered, not inverted).
        let build = |invert: bool| {
            let mut nl = Netlist::new("seq");
            let en = nl.add_input("en").unwrap();
            let seed = nl.add_net("seed").unwrap();
            let ff = nl.add_ff("q", false, seed).unwrap();
            let q = nl.cell_output(ff).unwrap();
            let tt = if invert {
                TruthTable::xor(2)
            } else {
                TruthTable::var(2, 1)
            };
            let f = nl
                .add_lut("f", tt, &[nl.cell_output(en).unwrap(), q])
                .unwrap();
            nl.set_pin(ff, 0, nl.cell_output(f).unwrap()).unwrap();
            nl.add_output("out", q).unwrap();
            nl
        };
        let golden = build(true); // q ^= en
        let dut = build(false); // q stays q
        let m = first_mismatch(&golden, &dut, PatternGen::random(1, 20, 3)).unwrap();
        assert!(m.is_some());
    }

    #[test]
    fn first_divergences_report_exact_onsets() {
        let golden = two_cone_design();
        let mut dut = golden.clone();
        let u0 = dut.find_cell("u0").unwrap();
        // Flip only the row a=1,b=1: u0's net diverges first on the
        // exhaustive pattern with a=b=1 (index 3); u1 never diverges.
        inject(&mut dut, u0, DesignErrorKind::FlipRow { row: 3 }).unwrap();
        let n0 = golden.cell_output(golden.find_cell("u0").unwrap()).unwrap();
        let n1 = golden.cell_output(golden.find_cell("u1").unwrap()).unwrap();
        let pats: Vec<Vec<bool>> = PatternGen::exhaustive(3).collect();
        let onsets = net_first_divergences(&golden, &dut, &[n0, n1], &pats).unwrap();
        assert_eq!(onsets, vec![Some(3), None]);
    }

    #[test]
    fn single_minterm_bug_needs_the_right_pattern() {
        let golden = two_cone_design();
        let mut dut = golden.clone();
        let u0 = dut.find_cell("u0").unwrap();
        // Flip only the row a=1,b=1.
        inject(&mut dut, u0, DesignErrorKind::FlipRow { row: 3 }).unwrap();
        let m = first_mismatch(&golden, &dut, PatternGen::exhaustive(3))
            .unwrap()
            .expect("exhaustive patterns hit every minterm");
        // The failing stimulus must have a=b=1.
        let pat = PatternGen::exhaustive(3).nth(m.pattern_index).unwrap();
        assert!(pat[0] && pat[1]);
    }

    #[test]
    fn divergence_words_carry_the_whole_footprint() {
        let golden = two_cone_design();
        let mut dut = golden.clone();
        let u0 = dut.find_cell("u0").unwrap();
        inject(&mut dut, u0, DesignErrorKind::FlipRow { row: 3 }).unwrap();
        let pairs = [(0, 0), (1, 1)];
        let (words, count) =
            po_divergence_words(&golden, &dut, &pairs, PatternGen::exhaustive(3)).unwrap();
        assert_eq!(count, 8);
        // y0 fails exactly on the a=b=1 patterns (indices 3 and 7).
        assert_eq!(words[0], vec![(1 << 3) | (1 << 7)]);
        assert!(words[1].is_empty(), "y1 never diverges");
    }

    #[test]
    fn outputs_equivalent_detects_and_clears() {
        let golden = two_cone_design();
        let mut dut = golden.clone();
        let pairs = [(0, 0), (1, 1)];
        let pats = || PatternGen::exhaustive(3);
        assert!(outputs_equivalent(&golden, &dut, &pairs, pats()).unwrap());
        let u1 = dut.find_cell("u1").unwrap();
        inject(&mut dut, u1, DesignErrorKind::Complement).unwrap();
        assert!(!outputs_equivalent(&golden, &dut, &pairs, pats()).unwrap());
        // Comparing only the clean output's pair still matches.
        assert!(outputs_equivalent(&golden, &dut, &pairs[..1], pats()).unwrap());
    }
}

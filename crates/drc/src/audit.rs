//! The tiling-layer pass: per-tile slack accounting, and the post-ECO
//! locked-interface / frozen-route audit.

use std::collections::BTreeSet;

use fpga::{BelLoc, NodeId, NodeKind, Placement, RouteTree, Routing, RoutingGraph};
use netlist::{CellId, NetId, Netlist};

use crate::{Finding, Rule, Site, TileView};

/// The ECO region, as the audit sees it. The tiling core builds this
/// from its `RegionSet`; this crate deliberately knows nothing about
/// tile plans.
pub trait EcoRegion {
    /// Whether the region overlaps this RRG node at all (a node
    /// partially inside counts — the audit must skip, not compare,
    /// any route that so much as grazes the region).
    fn touches_node(&self, node: NodeId) -> bool;

    /// Whether a BEL location lies inside the region.
    fn contains_loc(&self, loc: BelLoc) -> bool;
}

/// One side of an ECO: the physical state before or after.
#[derive(Clone, Copy)]
pub struct EcoSnapshot<'a> {
    /// Cell placements on that side.
    pub placement: &'a Placement,
    /// Route trees on that side.
    pub routing: &'a Routing,
}

/// Slack accounting: a tile with negative slack (more CLBs of logic
/// than it has), or a design with no spare CLB anywhere for the next
/// ECO to land in.
pub(crate) fn check_tiles(tiles: &[TileView]) -> Vec<Finding> {
    let mut out = Vec::new();
    for t in tiles {
        if t.used_clbs > t.capacity_clbs {
            out.push(Finding::new(
                Rule::TileSlackDeficit,
                Site::Tile(t.id),
                format!(
                    "negative slack: {} CLBs of logic in a {}-CLB tile",
                    t.used_clbs, t.capacity_clbs
                ),
            ));
        }
    }
    if !tiles.is_empty() && tiles.iter().map(TileView::free_clbs).sum::<usize>() == 0 {
        out.push(Finding::new(
            Rule::TileSlackDeficit,
            Site::Design,
            "no tile has a free CLB; the next ECO cannot land".to_string(),
        ));
    }
    out
}

/// The post-ECO audit. See [`crate::Drc::audit_eco`] for the contract;
/// the skip conditions below mirror the "untouched" predicate the ECO
/// flow itself uses, so a net is only byte-compared when the flow was
/// obliged to freeze it.
pub(crate) fn audit_eco(
    nl: &Netlist,
    rrg: &RoutingGraph,
    region: &dyn EcoRegion,
    before: EcoSnapshot<'_>,
    after: EcoSnapshot<'_>,
) -> Vec<Finding> {
    let mut out = Vec::new();

    // Locked interfaces: every surviving cell that sat outside the
    // region must still sit on its pre-ECO BEL.
    let mut cells: Vec<(CellId, BelLoc)> = before.placement.iter().collect();
    cells.sort_by_key(|&(c, _)| c);
    for (cell, was) in cells {
        if region.contains_loc(was) {
            continue;
        }
        let Ok(c) = nl.cell(cell) else { continue };
        let now = after.placement.loc_of(cell);
        if now != Some(was) {
            let fate = match now {
                Some(l) => format!("moved to {l}"),
                None => "is now unplaced".to_string(),
            };
            out.push(Finding::new(
                Rule::UnlockedInterfacePin,
                Site::Cell(cell),
                format!(
                    "\"{}\" was locked outside the ECO region at {was} but {fate}",
                    c.name
                ),
            ));
        }
    }

    // Frozen routes: a pre-ECO route that never touches the region,
    // and whose terminals are all still live and unmoved, must survive
    // byte-identical. Anything else was legitimately re-routed.
    let mut routes: Vec<(NetId, &RouteTree)> = before.routing.iter().collect();
    routes.sort_by_key(|&(n, _)| n);
    for (net_id, tree) in routes {
        let Ok(net) = nl.net(net_id) else { continue };
        let nodes = tree.nodes();
        if nodes.iter().any(|&n| region.touches_node(n)) {
            continue;
        }
        let Some(driver) = net.driver else { continue };
        let Some(driver_loc) = after.placement.loc_of(driver) else {
            continue;
        };
        let source = rrg.source_node(driver_loc);
        if tree.paths.iter().any(|p| p.first() != Some(&source)) {
            continue;
        }
        let mut live_pins: BTreeSet<NodeId> = BTreeSet::new();
        let mut all_placed = true;
        for s in &net.sinks {
            match after.placement.loc_of(s.cell) {
                Some(l) => {
                    live_pins.insert(rrg.sink_node(l, s.pin));
                }
                None => {
                    all_placed = false;
                    break;
                }
            }
        }
        if !all_placed || !live_pins.iter().all(|p| nodes.contains(p)) {
            continue;
        }
        let stale_terminal = tree.paths.iter().any(|p| {
            let Some(&last) = p.last() else { return true };
            matches!(
                rrg.node(last),
                NodeKind::ChanX { .. } | NodeKind::ChanY { .. }
            ) || !live_pins.contains(&last)
        });
        if stale_terminal {
            continue;
        }
        if after.routing.route(net_id) != Some(tree) {
            out.push(Finding::new(
                Rule::FrozenRouteChanged,
                Site::Net(net_id),
                format!(
                    "net \"{}\" never touches the ECO region yet its route changed",
                    net.name
                ),
            ));
        }
    }

    out
}

//! The placement- and routing-layer passes.

use std::collections::BTreeSet;

use fpga::{BelLoc, NodeId, NodeKind, Placement, Routing, RoutingGraph};
use netlist::{CellKind, Netlist};
use place::Constraints;

use crate::{Finding, Rule, Site};

/// Placement rules: every live cell placed on a slot of its kind, no
/// placement entries for deleted cells.
pub(crate) fn check_placement(nl: &Netlist, placement: &Placement) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut placed = vec![false; nl.cell_capacity()];
    let mut entries: Vec<(netlist::CellId, BelLoc)> = placement.iter().collect();
    entries.sort_by_key(|&(c, _)| c);
    for (cell, loc) in entries {
        if cell.index() < placed.len() {
            placed[cell.index()] = true;
        }
        let Ok(c) = nl.cell(cell) else {
            out.push(Finding::new(
                Rule::OrphanCell,
                Site::Cell(cell),
                format!("placement entry at {loc} references a deleted cell"),
            ));
            continue;
        };
        let kind_ok = match (&c.kind, loc) {
            (CellKind::Lut(_), BelLoc::Clb { slot, .. }) => slot.is_lut(),
            (CellKind::Ff { .. }, BelLoc::Clb { slot, .. }) => slot.is_ff(),
            (CellKind::Input | CellKind::Output, BelLoc::Iob(_)) => true,
            _ => false,
        };
        if !kind_ok {
            out.push(Finding::new(
                Rule::BelCapacityExceeded,
                Site::Cell(cell),
                format!("\"{}\" ({}) cannot occupy {loc}", c.name, c.kind),
            ));
        }
    }
    for (id, cell) in nl.cells() {
        if !placed[id.index()] {
            out.push(Finding::new(
                Rule::OrphanCell,
                Site::Cell(id),
                format!("\"{}\" ({}) has no placement", cell.name, cell.kind),
            ));
        }
    }
    out
}

/// Checks lock/region constraints against the placement that came out
/// of a placer run (`reference` is the placement the run started
/// from; locked cells must not have moved relative to it).
pub(crate) fn check_constraints(
    constraints: &Constraints,
    reference: &Placement,
    placement: &Placement,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut entries: Vec<(netlist::CellId, BelLoc)> = placement.iter().collect();
    entries.sort_by_key(|&(c, _)| c);
    for (cell, loc) in entries {
        if constraints.is_locked(cell) && reference.loc_of(cell) != Some(loc) {
            out.push(Finding::new(
                Rule::ConstraintViolated,
                Site::Cell(cell),
                format!("locked cell moved to {loc}"),
            ));
        }
        if let Some(rects) = constraints.region_of(cell) {
            if let BelLoc::Clb { coord, .. } = loc {
                if !rects.iter().any(|r| r.contains(coord)) {
                    out.push(Finding::new(
                        Rule::ConstraintViolated,
                        Site::Cell(cell),
                        format!("confined cell placed at {loc}, outside its region"),
                    ));
                }
            }
        }
    }
    out
}

/// Routing rules: every net with placed terminals has a route tree
/// connecting its source pin to every placed sink pin; no path ends
/// on a bare wire or a pin no live sink owns; no RRG node carries two
/// nets.
pub(crate) fn check_routing(
    nl: &Netlist,
    placement: &Placement,
    routing: &Routing,
    rrg: &RoutingGraph,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for node in routing.overused_nodes() {
        out.push(Finding::new(
            Rule::DoubleBookedWire,
            Site::Node(node),
            format!(
                "RRG node {} carries {} nets",
                rrg.node(node),
                routing.occupancy(node)
            ),
        ));
    }
    // Routed nets: tree shape and terminal liveness.
    for (net_id, tree) in routing.iter() {
        let Ok(net) = nl.net(net_id) else {
            out.push(Finding::new(
                Rule::DanglingRouteSegment,
                Site::Net(net_id),
                "route tree for a deleted net".to_string(),
            ));
            continue;
        };
        let Some(driver) = net.driver else {
            out.push(Finding::new(
                Rule::DanglingRouteSegment,
                Site::Net(net_id),
                format!("net \"{}\" is routed but has no driver", net.name),
            ));
            continue;
        };
        let Some(driver_loc) = placement.loc_of(driver) else {
            out.push(Finding::new(
                Rule::DanglingRouteSegment,
                Site::Net(net_id),
                format!("net \"{}\" is routed but its driver is unplaced", net.name),
            ));
            continue;
        };
        let source = rrg.source_node(driver_loc);
        let live_pins: BTreeSet<NodeId> = net
            .sinks
            .iter()
            .filter_map(|s| placement.loc_of(s.cell).map(|l| rrg.sink_node(l, s.pin)))
            .collect();
        for (k, path) in tree.paths.iter().enumerate() {
            let (Some(&first), Some(&last)) = (path.first(), path.last()) else {
                out.push(Finding::new(
                    Rule::DanglingRouteSegment,
                    Site::Net(net_id),
                    format!("net \"{}\" path {k} is empty", net.name),
                ));
                continue;
            };
            if first != source {
                out.push(Finding::new(
                    Rule::DanglingRouteSegment,
                    Site::Net(net_id),
                    format!(
                        "net \"{}\" path {k} starts at {} instead of its source pin",
                        net.name,
                        rrg.node(first)
                    ),
                ));
            }
            let ends_on_wire = matches!(
                rrg.node(last),
                NodeKind::ChanX { .. } | NodeKind::ChanY { .. }
            );
            if ends_on_wire {
                out.push(Finding::new(
                    Rule::DanglingRouteSegment,
                    Site::Net(net_id),
                    format!(
                        "net \"{}\" path {k} dead-ends on channel wire {}",
                        net.name,
                        rrg.node(last)
                    ),
                ));
            } else if !live_pins.contains(&last) {
                out.push(Finding::new(
                    Rule::DanglingRouteSegment,
                    Site::Net(net_id),
                    format!(
                        "net \"{}\" path {k} ends on {}, which no live sink owns",
                        net.name,
                        rrg.node(last)
                    ),
                ));
            }
        }
    }
    // Connectivity: driver → every placed sink, for every net that
    // should be routed at all.
    for (net_id, net) in nl.nets() {
        let Some(driver) = net.driver else { continue };
        let Some(_driver_loc) = placement.loc_of(driver) else {
            continue;
        };
        let placed_sinks: Vec<(usize, NodeId)> = net
            .sinks
            .iter()
            .enumerate()
            .filter_map(|(k, s)| {
                placement
                    .loc_of(s.cell)
                    .map(|l| (k, rrg.sink_node(l, s.pin)))
            })
            .collect();
        if placed_sinks.is_empty() {
            continue;
        }
        let Some(tree) = routing.route(net_id) else {
            out.push(Finding::new(
                Rule::UnroutedSink,
                Site::Net(net_id),
                format!(
                    "net \"{}\" has {} placed sink(s) but no route",
                    net.name,
                    placed_sinks.len()
                ),
            ));
            continue;
        };
        let nodes = tree.nodes();
        for (k, pin) in placed_sinks {
            if !nodes.contains(&pin) {
                out.push(Finding::new(
                    Rule::UnroutedSink,
                    Site::Net(net_id),
                    format!(
                        "net \"{}\" sink {k} (pin {}) is not reached by the route tree",
                        net.name,
                        rrg.node(pin)
                    ),
                ));
            }
        }
    }
    out
}

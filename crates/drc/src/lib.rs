//! Static design-rule and invariant analysis.
//!
//! The paper's tiling argument rests on invariants that the rest of
//! this workspace only exercises *dynamically*: tile interfaces stay
//! locked, cross-boundary routes stay frozen across an ECO, and every
//! design layer (netlist, placement, routing, tiling) remains
//! internally consistent. This crate checks them *statically*, as a
//! library of pure passes over the design databases:
//!
//! * **netlist** — combinational loops (via SCC, so the whole cycle is
//!   reported, not just one stuck cell), multi-driven and floating
//!   nets, LUT-arity mismatches, unreachable logic, dangling
//!   observation-tap pads;
//! * **placement** — BEL/slot kind violations, per-tile capacity,
//!   orphaned cells, lock/region constraint violations;
//! * **routing** — route-tree connectivity driver → every placed sink,
//!   dangling route segments, double-booked RRG wires;
//! * **tiling** — per-tile slack accounting, and (across an ECO)
//!   locked-interface placements actually locked plus frozen
//!   cross-boundary routes byte-unchanged ([`Drc::audit_eco`]).
//!
//! Every violation is a typed [`Finding`] `{ rule, severity, site }`;
//! passes never panic on malformed input — malformed input is exactly
//! what they exist to describe. The crate sits *below* the tiling
//! core: it sees plain `netlist`/`fpga` databases plus small caller
//! -built views ([`TileView`], [`EcoRegion`]), so the core, the
//! `debugd` service, and the `drc` bin can all drive the same passes.
//!
//! ```
//! use drc::Drc;
//! let mut nl = netlist::Netlist::new("doc");
//! let a = nl.add_net("a").unwrap();
//! let b = nl.add_net("b").unwrap();
//! // A two-LUT combinational cycle: a = !b, b = !a.
//! nl.add_lut_driving("u1", netlist::TruthTable::not(), &[b], a).unwrap();
//! nl.add_lut_driving("u2", netlist::TruthTable::not(), &[a], b).unwrap();
//! let findings = Drc::new().check_netlist(&nl);
//! assert!(findings.iter().any(|f| f.rule == drc::Rule::CombinationalLoop));
//! ```

use std::fmt;

use fpga::{NodeId, Placement, Rect, Routing, RoutingGraph};
use netlist::{CellId, NetId, Netlist};
use obs::MetricsRegistry;

mod audit;
mod netlist_pass;
mod physical_pass;

pub use audit::{EcoRegion, EcoSnapshot};

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: the design works but carries dead weight or thin
    /// margins.
    Warning,
    /// The design violates a structural invariant; downstream passes
    /// may misbehave or the tiling guarantees do not hold.
    Error,
}

impl Severity {
    /// Lowercase label (`"warning"` / `"error"`).
    pub fn name(self) -> &'static str {
        match self {
            Self::Warning => "warning",
            Self::Error => "error",
        }
    }
}

/// The design rule a finding violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    // ---- netlist ------------------------------------------------------
    /// A cycle through combinational (LUT) cells.
    CombinationalLoop,
    /// Two live cells claim the same output net, or a net's driver
    /// record disagrees with its driver's output record.
    MultiDrivenNet,
    /// A net with sinks but no driver.
    FloatingNet,
    /// A LUT whose truth-table arity differs from its pin count.
    LutArityMismatch,
    /// Logic that reaches no primary output (dead weight that placers
    /// and tap budgets still pay for).
    UnreachableLogic,
    /// An output pad consuming a driverless net — the residue of a
    /// removed observation tap.
    DanglingTapPad,
    // ---- placement ----------------------------------------------------
    /// A cell on a BEL slot that cannot host its kind.
    BelCapacityExceeded,
    /// A lock or region constraint that placement did not honor.
    ConstraintViolated,
    /// A live cell with no placement, or a placement entry for a cell
    /// the netlist no longer contains.
    OrphanCell,
    // ---- routing ------------------------------------------------------
    /// A net whose route tree fails to connect the driver to every
    /// placed sink (including nets with no route at all).
    UnroutedSink,
    /// A route path that ends on a channel wire or on a pin that no
    /// live sink owns.
    DanglingRouteSegment,
    /// An RRG node occupied by more than one net.
    DoubleBookedWire,
    // ---- tiling -------------------------------------------------------
    /// A cell outside the ECO region moved — the locked tile
    /// interface was not actually locked.
    UnlockedInterfacePin,
    /// The route of a net entirely outside the ECO region changed —
    /// the frozen cross-boundary invariant was violated.
    FrozenRouteChanged,
    /// Per-tile slack accounting failed (a tile is past capacity, or
    /// the design has no free CLB anywhere for an ECO to land in).
    TileSlackDeficit,
}

impl Rule {
    /// Every rule, in declaration order.
    pub const ALL: [Rule; 15] = [
        Rule::CombinationalLoop,
        Rule::MultiDrivenNet,
        Rule::FloatingNet,
        Rule::LutArityMismatch,
        Rule::UnreachableLogic,
        Rule::DanglingTapPad,
        Rule::BelCapacityExceeded,
        Rule::ConstraintViolated,
        Rule::OrphanCell,
        Rule::UnroutedSink,
        Rule::DanglingRouteSegment,
        Rule::DoubleBookedWire,
        Rule::UnlockedInterfacePin,
        Rule::FrozenRouteChanged,
        Rule::TileSlackDeficit,
    ];

    /// Stable kebab-case name (doubles as the `rule` metrics label).
    pub fn name(self) -> &'static str {
        match self {
            Self::CombinationalLoop => "combinational-loop",
            Self::MultiDrivenNet => "multi-driven-net",
            Self::FloatingNet => "floating-net",
            Self::LutArityMismatch => "lut-arity-mismatch",
            Self::UnreachableLogic => "unreachable-logic",
            Self::DanglingTapPad => "dangling-tap-pad",
            Self::BelCapacityExceeded => "bel-capacity-exceeded",
            Self::ConstraintViolated => "constraint-violated",
            Self::OrphanCell => "orphan-cell",
            Self::UnroutedSink => "unrouted-sink",
            Self::DanglingRouteSegment => "dangling-route-segment",
            Self::DoubleBookedWire => "double-booked-wire",
            Self::UnlockedInterfacePin => "unlocked-interface-pin",
            Self::FrozenRouteChanged => "frozen-route-changed",
            Self::TileSlackDeficit => "tile-slack-deficit",
        }
    }

    /// The rule's fixed severity.
    pub fn severity(self) -> Severity {
        match self {
            Self::UnreachableLogic | Self::TileSlackDeficit => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where a finding points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Site {
    /// A netlist cell.
    Cell(CellId),
    /// A netlist net.
    Net(NetId),
    /// A routing-resource-graph node.
    Node(NodeId),
    /// A tile, by plan index.
    Tile(usize),
    /// The design as a whole.
    Design,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Cell(c) => write!(f, "cell {c}"),
            Self::Net(n) => write!(f, "net {n}"),
            Self::Node(n) => write!(f, "node {}", n.index()),
            Self::Tile(t) => write!(f, "tile {t}"),
            Self::Design => f.write_str("design"),
        }
    }
}

/// One design-rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Its severity (always `rule.severity()`).
    pub severity: Severity,
    /// Where it fired.
    pub site: Site,
    /// Human-readable specifics (names, counts, locations).
    pub detail: String,
}

impl Finding {
    /// Builds a finding for `rule` at `site`.
    pub fn new(rule: Rule, site: Site, detail: impl Into<String>) -> Self {
        Self {
            rule,
            severity: rule.severity(),
            site,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity.name(),
            self.rule,
            self.site,
            self.detail
        )
    }
}

/// A tile as the slack-accounting pass sees it: identity, geometry,
/// and CLB usage. Built by the caller (the tiling core knows the
/// plan; this crate deliberately does not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileView {
    /// Plan index.
    pub id: usize,
    /// CLB-grid rectangle the tile covers.
    pub rect: Rect,
    /// CLBs consumed by placed logic.
    pub used_clbs: usize,
    /// CLBs the tile offers.
    pub capacity_clbs: usize,
}

impl TileView {
    /// CLBs still free.
    pub fn free_clbs(&self) -> usize {
        self.capacity_clbs.saturating_sub(self.used_clbs)
    }
}

/// A whole design, as [`Drc::check_design`] sees it.
#[derive(Clone, Copy)]
pub struct DesignView<'a> {
    /// The logical netlist.
    pub netlist: &'a Netlist,
    /// Cell placements.
    pub placement: &'a Placement,
    /// Per-net route trees.
    pub routing: &'a Routing,
    /// The routing-resource graph the routes live in.
    pub rrg: &'a RoutingGraph,
    /// Tile usage summaries (empty slice skips the tiling pass).
    pub tiles: &'a [TileView],
}

/// The static analyzer. Stateless today; construction is kept so that
/// rule configuration has a place to land later.
#[derive(Debug, Clone, Copy, Default)]
pub struct Drc {
    _private: (),
}

impl Drc {
    /// A checker with the default rule set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs every layer's pass over a full design view. Findings come
    /// back ordered by layer (netlist, placement, routing, tiling) and
    /// deterministically within each layer.
    pub fn check_design(&self, view: &DesignView<'_>) -> Vec<Finding> {
        let mut findings = self.check_netlist(view.netlist);
        findings.extend(self.check_placement(view.netlist, view.placement));
        findings.extend(self.check_routing(view.netlist, view.placement, view.routing, view.rrg));
        findings.extend(self.check_tiles(view.tiles));
        findings
    }

    /// The netlist-layer pass: loops, multi-driven/floating nets, LUT
    /// arity, unreachable logic, dangling tap pads.
    pub fn check_netlist(&self, nl: &Netlist) -> Vec<Finding> {
        netlist_pass::check(nl)
    }

    /// The placement-layer pass: BEL slot kinds and orphaned cells.
    pub fn check_placement(&self, nl: &Netlist, placement: &Placement) -> Vec<Finding> {
        physical_pass::check_placement(nl, placement)
    }

    /// Checks a placement against the lock/region constraints a
    /// placer run was given: locked cells must sit where `reference`
    /// had them, confined cells must sit inside their region.
    pub fn check_constraints(
        &self,
        constraints: &place::Constraints,
        reference: &Placement,
        placement: &Placement,
    ) -> Vec<Finding> {
        physical_pass::check_constraints(constraints, reference, placement)
    }

    /// The routing-layer pass: connectivity driver → every placed
    /// sink, dangling segments, double-booked wires.
    pub fn check_routing(
        &self,
        nl: &Netlist,
        placement: &Placement,
        routing: &Routing,
        rrg: &RoutingGraph,
    ) -> Vec<Finding> {
        physical_pass::check_routing(nl, placement, routing, rrg)
    }

    /// The tiling-layer slack accounting: no tile past capacity, and
    /// at least one free CLB somewhere for an ECO to land in.
    pub fn check_tiles(&self, tiles: &[TileView]) -> Vec<Finding> {
        audit::check_tiles(tiles)
    }

    /// Audits one ECO against the paper's locked-interface contract:
    /// every cell that was outside the cleared region is still on its
    /// pre-ECO BEL ([`Rule::UnlockedInterfacePin`]), and every net
    /// whose pre-ECO route never touched the region — and whose
    /// terminals did not change — kept a byte-identical route tree
    /// ([`Rule::FrozenRouteChanged`]).
    ///
    /// `netlist` is the *post-ECO* netlist (the ECO edits it before
    /// re-implementation runs); nets or cells it no longer contains
    /// are skipped, as are nets whose live pin set changed — those are
    /// legitimately re-routed.
    pub fn audit_eco(
        &self,
        netlist: &Netlist,
        rrg: &RoutingGraph,
        region: &dyn EcoRegion,
        before: EcoSnapshot<'_>,
        after: EcoSnapshot<'_>,
    ) -> Vec<Finding> {
        audit::audit_eco(netlist, rrg, region, before, after)
    }
}

/// Records findings into a metrics registry: one
/// `drc_findings_total{rule=…}` bump per finding. Deterministic, so
/// the counters land in the registry's deterministic section.
pub fn record_findings(registry: &MetricsRegistry, findings: &[Finding]) {
    // Register the family even when the design is clean, so an
    // exposition showing zero reads as "checked, nothing found"
    // rather than "never ran".
    registry.counter_add("drc_findings_total", &[], 0);
    for f in findings {
        registry.counter_add("drc_findings_total", &[("rule", f.rule.name())], 1);
    }
}

/// The highest severity present, if any findings exist.
pub fn max_severity(findings: &[Finding]) -> Option<Severity> {
    findings.iter().map(|f| f.severity).max()
}

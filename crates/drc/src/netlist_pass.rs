//! The netlist-layer pass: graph-structural rules.

use netlist::{CellId, CellKind, Netlist};

use crate::{Finding, Rule, Site};

/// Runs every netlist rule, in rule order.
pub(crate) fn check(nl: &Netlist) -> Vec<Finding> {
    let mut findings = Vec::new();
    combinational_loops(nl, &mut findings);
    multi_driven(nl, &mut findings);
    floating_nets(nl, &mut findings);
    lut_arity(nl, &mut findings);
    unreachable_logic(nl, &mut findings);
    dangling_pads(nl, &mut findings);
    findings
}

/// Two cells claiming one output net, or a stale driver record.
fn multi_driven(nl: &Netlist, out: &mut Vec<Finding>) {
    let mut drivers: Vec<Vec<CellId>> = vec![Vec::new(); nl.net_capacity()];
    for (id, cell) in nl.cells() {
        if let Some(net) = cell.output {
            if net.index() < drivers.len() {
                drivers[net.index()].push(id);
            }
        }
    }
    for (id, net) in nl.nets() {
        let claimants = &drivers[id.index()];
        if claimants.len() > 1 {
            let names: Vec<&str> = claimants
                .iter()
                .filter_map(|&c| nl.cell(c).ok().map(|cell| cell.name.as_str()))
                .collect();
            out.push(Finding::new(
                Rule::MultiDrivenNet,
                Site::Net(id),
                format!(
                    "net \"{}\" is driven by {} cells: {}",
                    net.name,
                    claimants.len(),
                    names.join(", ")
                ),
            ));
        }
        if let Some(d) = net.driver {
            match nl.cell(d) {
                Err(_) => out.push(Finding::new(
                    Rule::MultiDrivenNet,
                    Site::Net(id),
                    format!("net \"{}\" records deleted cell {d} as driver", net.name),
                )),
                Ok(cell) if cell.output != Some(id) => out.push(Finding::new(
                    Rule::MultiDrivenNet,
                    Site::Net(id),
                    format!(
                        "net \"{}\" records \"{}\" as driver but that cell drives elsewhere",
                        net.name, cell.name
                    ),
                )),
                Ok(_) => {}
            }
        }
    }
}

/// Nets consumed by sinks but driven by nothing.
fn floating_nets(nl: &Netlist, out: &mut Vec<Finding>) {
    for (id, net) in nl.nets() {
        if net.driver.is_none() && !net.sinks.is_empty() {
            out.push(Finding::new(
                Rule::FloatingNet,
                Site::Net(id),
                format!(
                    "net \"{}\" has {} sink(s) but no driver",
                    net.name,
                    net.sinks.len()
                ),
            ));
        }
    }
}

/// LUTs whose truth-table arity disagrees with their pin count.
fn lut_arity(nl: &Netlist, out: &mut Vec<Finding>) {
    for (id, cell) in nl.cells() {
        if let Some(tt) = cell.lut_function() {
            if tt.arity() != cell.arity() {
                out.push(Finding::new(
                    Rule::LutArityMismatch,
                    Site::Cell(id),
                    format!(
                        "LUT \"{}\" has {} input pins but a {}-input function",
                        cell.name,
                        cell.arity(),
                        tt.arity()
                    ),
                ));
            }
        }
    }
}

/// Logic outside the fanin cone of every primary output.
fn unreachable_logic(nl: &Netlist, out: &mut Vec<Finding>) {
    let mut reachable = vec![false; nl.cell_capacity()];
    for c in nl.fanin_cone(&nl.primary_outputs()) {
        if c.index() < reachable.len() {
            reachable[c.index()] = true;
        }
    }
    for (id, cell) in nl.cells() {
        if cell.is_logic() && !reachable[id.index()] {
            out.push(Finding::new(
                Rule::UnreachableLogic,
                Site::Cell(id),
                format!(
                    "\"{}\" ({}) reaches no primary output",
                    cell.name, cell.kind
                ),
            ));
        }
    }
}

/// Output pads consuming nothing, or consuming a driverless net — the
/// residue PR 1's leaked-tap-pad seed bug left behind.
fn dangling_pads(nl: &Netlist, out: &mut Vec<Finding>) {
    for (id, cell) in nl.cells() {
        if !matches!(cell.kind, CellKind::Output) {
            continue;
        }
        let Some(&input) = cell.inputs.first() else {
            out.push(Finding::new(
                Rule::DanglingTapPad,
                Site::Cell(id),
                format!("pad \"{}\" consumes no net", cell.name),
            ));
            continue;
        };
        match nl.net(input) {
            Err(_) => out.push(Finding::new(
                Rule::DanglingTapPad,
                Site::Cell(id),
                format!("pad \"{}\" consumes deleted net {input}", cell.name),
            )),
            Ok(net) if net.driver.is_none() => out.push(Finding::new(
                Rule::DanglingTapPad,
                Site::Cell(id),
                format!(
                    "pad \"{}\" consumes driverless net \"{}\"",
                    cell.name, net.name
                ),
            )),
            Ok(_) => {}
        }
    }
}

/// Cycles through combinational cells, found as strongly connected
/// components of the LUT-only subgraph (flip-flops cut the edges).
/// Reports the *whole* cycle per finding — richer than
/// `Netlist::topo_order`'s single stuck cell.
fn combinational_loops(nl: &Netlist, out: &mut Vec<Finding>) {
    let cap = nl.cell_capacity();
    // LUT-only adjacency, by dense cell index.
    let mut is_lut = vec![false; cap];
    for (id, cell) in nl.cells() {
        is_lut[id.index()] = matches!(cell.kind, CellKind::Lut(_));
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); cap];
    for (id, cell) in nl.cells() {
        if !is_lut[id.index()] {
            continue;
        }
        let Some(net) = cell.output.and_then(|n| nl.net(n).ok()) else {
            continue;
        };
        for s in &net.sinks {
            if s.cell.index() < cap && is_lut[s.cell.index()] {
                adj[id.index()].push(s.cell.index());
            }
        }
    }

    // Iterative Tarjan SCC.
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; cap];
    let mut lowlink = vec![0usize; cap];
    let mut on_stack = vec![false; cap];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    // (node, next child position) call frames.
    let mut frames: Vec<(usize, usize)> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    for root in 0..cap {
        if !is_lut[root] || index[root] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&(v, child)) = frames.last() {
            if child < adj[v].len() {
                let w = adj[v][child];
                frames.last_mut().expect("frame just read").1 = child + 1;
                if index[w] == UNSET {
                    frames.push((w, 0));
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    // A loop: more than one cell, or a self edge.
                    if scc.len() > 1 || adj[v].contains(&v) {
                        scc.sort_unstable();
                        sccs.push(scc);
                    }
                }
            }
        }
    }

    sccs.sort();
    for scc in sccs {
        let mut names: Vec<String> = scc
            .iter()
            .take(6)
            .filter_map(|&i| nl.cell(CellId::new(i)).ok().map(|c| c.name.clone()))
            .collect();
        if scc.len() > 6 {
            names.push(format!("… {} more", scc.len() - 6));
        }
        out.push(Finding::new(
            Rule::CombinationalLoop,
            Site::Cell(CellId::new(scc[0])),
            format!(
                "combinational cycle through {} LUT(s): {}",
                scc.len(),
                names.join(" → ")
            ),
        ));
    }
}

//! Batched tap planning across several concurrent localizations.
//!
//! The paper's loop localizes one error at a time: every observation
//! ECO serves exactly one suspect cone. With `k` live errors, that
//! wastes the tiled flow's cheap ECOs — one batch of inserted test
//! logic can serve *all* of them. [`MultiErrorScheduler`] runs one
//! [`LocalizationStrategy`] instance per error and, each round,
//! merges every strategy's tap requests into deduplicated physical
//! batches: overlapping cones request the same upstream cells, which
//! are tapped (and paid for) once, and a single re-implementation ECO
//! advances every live error's search.
//!
//! Two further mechanisms cut the physical tap bill below the naive
//! union:
//!
//! * a **windowed verdict cache** — every tap is observed once,
//!   physically, as its exact *divergence onset* (the first pattern
//!   its net diverges on), and every query against the cache is keyed
//!   by `(net, window)`: a track watching the observation window
//!   `[0, w]` reads the cached onset as `diverged iff onset <= w`. One
//!   physical tap therefore serves every cluster, each under its own
//!   window, instead of silently conflating "diverged somewhere in
//!   the sweep" across clusters whose errors surface at different
//!   times. Partial knowledge composes the same way:
//!   [`assume`](MultiErrorScheduler::assume)d whole-sweep verdicts
//!   and screening exonerations are stored as onset *bounds*
//!   (diverged-by / clean-through) and answer exactly the windows
//!   they soundly can — a cell never pays for a second tap, and a
//!   verdict observed under one window is reused (or narrowed) by
//!   another cluster only when the bounds actually cover its window.
//!   Rounds whose requests are fully answered by the cache execute
//!   with *zero* physical ECOs;
//! * **shared-core screening** — before any strategy walks the
//!   [`ConePartition`]'s shared core, the scheduler taps only the
//!   core's *frontier* (the cells whose fanout escapes the core: on
//!   the DAG, every path from a core error to any output runs through
//!   them). Screening is windowed and latency-aware: each core cell
//!   is exonerated through the earliest, over the frontier cells its
//!   divergence could escape through, of the frontier's clean-through
//!   bound minus the cell's FF distance to it — a frontier clean
//!   across the whole sweep exonerates its fanin for every window
//!   (the original all-or-nothing behaviour), while a frontier that
//!   first diverges at pattern `p` still vouches for an in-core cell
//!   `d` flip-flops upstream on every window ending before `p − d`.
//!
//! The scheduler is pure decision logic — the session owns emulation
//! and the physical flow — so it is testable against a simulated
//! oracle exactly like the strategies themselves. It also hosts
//! [`merge_fsm_clusters`], the pre-registration pass that folds the
//! several failure clusters one FSM error fans out into back into a
//! single track.

use std::collections::{HashMap, HashSet};

use netlist::{CellId, Netlist};

use crate::strategy::{LocalizationStrategy, TapObservation};

use super::attribution::{causal_depths, FailureCluster};
use super::cone::SuspectCone;
use super::partition::ConePartition;

/// What the scheduler knows about one net's divergence onset: a pair
/// of bounds that together answer windowed verdict queries.
///
/// A physical tap measures the exact onset (both bounds collapse onto
/// it); assumptions and screening exonerations contribute one-sided
/// bounds. Queries outside the bounds return `None` — the cell still
/// needs a tap *for that window*.
#[derive(Debug, Clone, Copy, Default)]
struct CellKnowledge {
    /// `Some(p)`: the net is known to diverge on pattern `p`, hence
    /// within every window `>= p`.
    diverged_by: Option<usize>,
    /// `Some(w)`: the net is known clean on every pattern `<= w`.
    clean_through: Option<usize>,
}

impl CellKnowledge {
    /// Window value standing for "the whole stimulus sweep" (the
    /// window of a track registered without one, and the horizon of
    /// whole-sweep assumptions).
    const WHOLE_SWEEP: usize = usize::MAX;

    /// The verdict for the observation window `[0, window]`, if the
    /// bounds determine it.
    fn verdict(&self, window: usize) -> Option<bool> {
        if self.diverged_by.is_some_and(|p| p <= window) {
            return Some(true);
        }
        if self.clean_through.is_some_and(|c| c >= window) {
            return Some(false);
        }
        None
    }

    /// Folds in an exact measurement: the first diverging pattern
    /// over the whole sweep (`None` = clean throughout).
    fn record_measured(&mut self, onset: Option<usize>) {
        match onset {
            Some(p) => {
                self.note_diverged_by(p);
                if p > 0 {
                    self.note_clean_through(p - 1);
                }
            }
            None => self.note_clean_through(Self::WHOLE_SWEEP),
        }
    }

    fn note_diverged_by(&mut self, p: usize) {
        self.diverged_by = Some(self.diverged_by.map_or(p, |q| q.min(p)));
    }

    fn note_clean_through(&mut self, w: usize) {
        self.clean_through = Some(self.clean_through.map_or(w, |q| q.max(w)));
    }

    /// Whether the bounds pin the onset down exactly — a physical tap
    /// can teach nothing more.
    fn exact(&self) -> bool {
        self.clean_through == Some(Self::WHOLE_SWEEP)
            || self
                .diverged_by
                .is_some_and(|p| p == 0 || self.clean_through.is_some_and(|c| c + 1 >= p))
    }
}

/// One cluster's observation window, with optional causal
/// sharpening.
///
/// The window ends at the cluster's earliest failing pattern: by
/// then, the divergence that exposed the cluster had already
/// happened, so later evidence belongs to other errors. The *causal*
/// variant additionally accounts for propagation latency — a
/// suspect's divergence can only explain a failure at pattern `end`
/// if it occurred at least `depth` patterns earlier, where `depth` is
/// the suspect's minimum flip-flop distance to the cluster's
/// outputs. Without it, a slower upstream error's wavefront passing
/// *through* the suspect region inside the window would be blamed
/// for a failure it cannot have caused yet.
#[derive(Debug, Clone, Default)]
pub struct ObservationWindow {
    end: usize,
    /// Minimum FF distance from each fanin cell to the cluster's
    /// outputs (empty for a flat window: every cell judged at `end`).
    depths: HashMap<CellId, usize>,
}

impl ObservationWindow {
    /// A flat window: every suspect judged over `[0, end]`.
    pub fn flat(end: usize) -> Self {
        Self {
            end,
            depths: HashMap::new(),
        }
    }

    /// A causal window ending at `end`: each suspect judged over
    /// `[0, end - ffdepth(suspect -> outputs)]`.
    pub fn causal(golden: &Netlist, outputs: &[CellId], end: usize) -> Self {
        Self::from_depths(end, causal_depths(golden, outputs))
    }

    /// A causal window over a precomputed depth table (e.g. derived
    /// from [`super::attribution::AlibiIndex::cluster_depths`],
    /// avoiding a second graph traversal per cluster).
    pub fn from_depths(end: usize, depths: HashMap<CellId, usize>) -> Self {
        Self { end, depths }
    }

    /// End of the window (the cluster's earliest failing pattern).
    pub fn end(&self) -> usize {
        self.end
    }

    /// Minimum FF distance from `cell` to the cluster's outputs (0
    /// for a flat window or a cell outside the fanin).
    ///
    /// Beyond shrinking the cell's verdict window, this orders
    /// suspects *temporally*: `topo_order` treats flip-flops as
    /// sources, so on sequential cones plain topological rank can
    /// place a downstream-of-FF cell before its temporal ancestors —
    /// sorting by descending depth (ties broken by rank) restores
    /// "the first diverging suspect is the error site" for
    /// [`crate::strategy::LinearBatches`].
    pub fn depth_of(&self, cell: CellId) -> usize {
        self.depths.get(&cell).copied().unwrap_or(0)
    }

    /// The effective window for one cell.
    fn for_cell(&self, cell: CellId) -> usize {
        self.end
            .saturating_sub(self.depths.get(&cell).copied().unwrap_or(0))
    }
}

/// One localization in flight.
struct Track {
    strategy: Box<dyn LocalizationStrategy>,
    cone: SuspectCone,
    /// The track's observation window; `None` = the whole sweep.
    window: Option<ObservationWindow>,
    /// Cells requested this round, in the strategy's (topological)
    /// order. Cleared when the round's verdicts are fed back.
    requested: Vec<CellId>,
    taps_requested: usize,
    rounds_joined: usize,
    done: bool,
}

impl Track {
    /// The window a verdict for `cell` is evaluated at.
    fn window_for(&self, cell: CellId) -> usize {
        self.window
            .as_ref()
            .map_or(CellKnowledge::WHOLE_SWEEP, |w| w.for_cell(cell))
    }
}

/// Shared-core screening progress.
enum Screening {
    /// Not yet planned (first `plan_round` will emit it, if any).
    Planned,
    /// The screening batch is out; the next `record_round` resolves it.
    Pending,
    /// Resolved (or there was nothing to screen).
    Done,
}

/// One round's physical tap plan.
#[derive(Debug, Clone, Default)]
pub struct RoundPlan {
    /// The deduplicated union of all live tracks' requests — minus
    /// every cell whose verdict is already cached — split into batches
    /// of at most `max_taps_per_eco` cells. Each batch is one
    /// observation-tap ECO.
    pub batches: Vec<Vec<CellId>>,
    /// Whether this is the shared-core screening round (no track
    /// requested these cells; the scheduler did, to rule the whole
    /// core in or out at frontier cost).
    pub screening: bool,
}

impl RoundPlan {
    /// Total taps the round will insert.
    pub fn taps(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }
}

/// A diverging observation that more than one suspect cone can
/// explain; the attribution engine resolves the blame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ambiguity {
    /// The diverging tapped cell.
    pub cell: CellId,
    /// Indices of every track whose cone contains the cell.
    pub tracks: Vec<usize>,
}

/// Plans shared observation-tap batches for `k` concurrent error
/// localizations.
///
/// Protocol: [`add_error`](Self::add_error) once per suspected error
/// (and optionally [`assume`](Self::assume) verdicts detection
/// already established), then alternate
/// [`plan_round`](Self::plan_round) (`None` = all tracks finished)
/// with the physical tap ECOs and
/// [`record_round`](Self::record_round);
/// [`localized`](Self::localized) yields the per-error answers.
pub struct MultiErrorScheduler {
    tracks: Vec<Track>,
    partition: ConePartition,
    max_taps_per_eco: usize,
    /// Everything ever observed or assumed about each net's
    /// divergence onset; queries are keyed by `(net, window)` through
    /// [`CellKnowledge::verdict`].
    verdicts: HashMap<CellId, CellKnowledge>,
    /// Shared-core frontier: each frontier cell paired with its
    /// in-core fanin cone (the cells it testifies for) and the min
    /// FF distance from each of those cells to the frontier (the
    /// latency a divergence needs to escape through it).
    screen: Vec<(CellId, SuspectCone, HashMap<CellId, usize>)>,
    screening: Screening,
}

impl MultiErrorScheduler {
    /// A scheduler that caps each physical ECO at `max_taps_per_eco`
    /// inserted taps (observation pads are scarce).
    ///
    /// # Panics
    ///
    /// Panics on a zero cap.
    pub fn new(max_taps_per_eco: usize) -> Self {
        assert!(max_taps_per_eco > 0, "tap cap must be positive");
        Self {
            tracks: Vec::new(),
            partition: ConePartition::default(),
            max_taps_per_eco,
            verdicts: HashMap::new(),
            screen: Vec::new(),
            screening: Screening::Planned,
        }
    }

    /// Registers one suspected error: its topologically-sorted suspect
    /// list, its [`ObservationWindow`] (`None` = the whole sweep) and
    /// a fresh strategy to drive. Returns the track index. All errors
    /// must be registered before the first
    /// [`plan_round`](Self::plan_round).
    pub fn add_error(
        &mut self,
        golden: &Netlist,
        suspects: &[CellId],
        window: Option<ObservationWindow>,
        mut strategy: Box<dyn LocalizationStrategy>,
    ) -> usize {
        strategy.begin(golden, suspects);
        self.tracks.push(Track {
            strategy,
            cone: suspects.iter().copied().collect(),
            window,
            requested: Vec::new(),
            taps_requested: 0,
            rounds_joined: 0,
            done: false,
        });
        let partition = ConePartition::split(
            &self
                .tracks
                .iter()
                .map(|t| t.cone.clone())
                .collect::<Vec<_>>(),
        );
        // The frontier's fanin traversals are the expensive part of a
        // registration; redo them only when this cone actually changed
        // the shared core (never for the first cone, or disjoint ones).
        let shared_changed = partition.shared != self.partition.shared;
        self.partition = partition;
        if shared_changed {
            self.recompute_screen(golden);
        }
        self.tracks.len() - 1
    }

    /// Seeds the verdict cache with a whole-sweep observation that is
    /// already known. A `true` records "diverged somewhere in the
    /// sweep" (answers only unbounded windows — prefer
    /// [`assume_onset`](Self::assume_onset) when the onset is known);
    /// a `false` records "clean across the sweep", which answers
    /// every window.
    pub fn assume(&mut self, cell: CellId, diverged: bool) {
        let k = self.verdicts.entry(cell).or_default();
        if diverged {
            k.note_diverged_by(CellKnowledge::WHOLE_SWEEP);
        } else {
            k.note_clean_through(CellKnowledge::WHOLE_SWEEP);
        }
    }

    /// Seeds the verdict cache with an exact divergence onset — e.g.
    /// the detection sweep measured every primary output per pattern,
    /// so each PO driver's first failing pattern is free and answers
    /// *any* cluster's window without a physical tap.
    pub fn assume_onset(&mut self, cell: CellId, onset: Option<usize>) {
        self.verdicts
            .entry(cell)
            .or_default()
            .record_measured(onset);
    }

    /// Number of registered tracks.
    pub fn tracks(&self) -> usize {
        self.tracks.len()
    }

    /// The ownership partition of the registered suspect cones.
    pub fn partition(&self) -> &ConePartition {
        &self.partition
    }

    /// Cells track `k` asked to tap in the current round.
    pub fn requested(&self, k: usize) -> &[CellId] {
        &self.tracks[k].requested
    }

    /// Total taps track `k` has requested so far (before cross-track
    /// deduplication and verdict-cache hits — the difference against
    /// the physical tap count is the sharing win).
    pub fn taps_requested(&self, k: usize) -> usize {
        self.tracks[k].taps_requested
    }

    /// Rounds track `k` participated in (including rounds served
    /// entirely from the verdict cache).
    pub fn rounds_joined(&self, k: usize) -> usize {
        self.tracks[k].rounds_joined
    }

    /// The shared-core frontier cells the screening round taps, in
    /// ascending cell order (empty when cones do not overlap).
    pub fn screen_cells(&self) -> Vec<CellId> {
        self.screen.iter().map(|&(c, _, _)| c).collect()
    }

    /// Collects every live track's next tap request and merges them
    /// into deduplicated, capped batches of cells whose verdict the
    /// cache cannot answer *at the requesting track's window*. The
    /// very first round screens the shared core's frontier instead
    /// (when cones overlap). Rounds whose requests the cache already
    /// answers are fed back internally and cost nothing; `None` means
    /// every track has finished.
    pub fn plan_round(&mut self) -> Option<RoundPlan> {
        if matches!(self.screening, Screening::Planned) {
            let cells: Vec<CellId> = self
                .screen
                .iter()
                .map(|&(c, _, _)| c)
                .filter(|c| !self.verdicts.get(c).is_some_and(|k| k.exact()))
                .collect();
            if cells.is_empty() {
                // Nothing to tap — resolve from whatever is cached.
                self.screening = Screening::Done;
                self.resolve_screening();
            } else {
                self.screening = Screening::Pending;
                return Some(RoundPlan {
                    batches: self.chunk(cells),
                    screening: true,
                });
            }
        }
        loop {
            let mut merged: Vec<CellId> = Vec::new();
            let mut seen: HashSet<CellId> = HashSet::new();
            let mut any_request = false;
            for t in &mut self.tracks {
                if t.done {
                    continue;
                }
                if t.requested.is_empty() {
                    let req = t.strategy.next_taps();
                    if req.is_empty() {
                        t.done = true;
                        continue;
                    }
                    t.taps_requested += req.len();
                    t.rounds_joined += 1;
                    t.requested = req;
                }
                any_request = true;
                for &c in &t.requested {
                    // A cell cached for one window can still need a
                    // physical tap for another: only a verdict at
                    // *this* track's window counts as answered.
                    let answered = self
                        .verdicts
                        .get(&c)
                        .is_some_and(|k| k.verdict(t.window_for(c)).is_some());
                    if !answered && seen.insert(c) {
                        merged.push(c);
                    }
                }
            }
            if !any_request {
                return None;
            }
            if merged.is_empty() {
                // Every requested cell is cached: answer the whole
                // round for free and ask the strategies again.
                self.feed_requested(&HashMap::new());
                continue;
            }
            return Some(RoundPlan {
                batches: self.chunk(merged),
                screening: false,
            });
        }
    }

    /// Merges the round's fresh measurements — each tapped cell's
    /// exact divergence onset over the sweep (`None` = clean
    /// throughout) — into the cache, then either resolves a pending
    /// shared-core screening or feeds every requesting track its
    /// observations (each sees its own requests, in its own order and
    /// *under its own window*, cached verdicts included). Returns the
    /// diverging cells that more than one cone-and-window can explain.
    ///
    /// Divergence is credited per window: a track sees a tap as
    /// diverging only when the onset falls inside its observation
    /// window, so a late divergence caused by a slow error no longer
    /// misleads the cluster that failed early. When two live errors'
    /// windows both see a shared-core divergence, the returned
    /// [`Ambiguity`] list names exactly those observations so the
    /// caller can score them with
    /// [`crate::diagnosis::FaultAttribution`].
    pub fn record_round(&mut self, fresh: &HashMap<CellId, Option<usize>>) -> Vec<Ambiguity> {
        for (&c, &onset) in fresh {
            self.verdicts.entry(c).or_default().record_measured(onset);
        }
        if matches!(self.screening, Screening::Pending) {
            self.screening = Screening::Done;
            self.resolve_screening();
            // Frontier ⊆ shared core ⇒ ≥ 2 owning cones, but only
            // owners whose window reaches the onset actually see the
            // divergence — one of them alone is not ambiguous.
            return self
                .screen
                .iter()
                .filter_map(|&(cell, _, _)| {
                    let onset = self.verdicts.get(&cell)?.diverged_by?;
                    let tracks = self.visible_owners(cell, onset);
                    (tracks.len() > 1).then_some(Ambiguity { cell, tracks })
                })
                .collect();
        }
        self.feed_requested(fresh)
    }

    /// Per-track localization results, in registration order.
    pub fn localized(&self) -> Vec<Option<CellId>> {
        self.tracks.iter().map(|t| t.strategy.localized()).collect()
    }

    fn chunk(&self, cells: Vec<CellId>) -> Vec<Vec<CellId>> {
        cells
            .chunks(self.max_taps_per_eco)
            .map(<[CellId]>::to_vec)
            .collect()
    }

    /// Tracks whose cone contains `cell` *and* whose observation
    /// window reaches a divergence at `onset` — the only tracks the
    /// observation can actually implicate.
    fn visible_owners(&self, cell: CellId, onset: usize) -> Vec<usize> {
        self.tracks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.cone.contains(cell) && t.window_for(cell) >= onset)
            .map(|(i, _)| i)
            .collect()
    }

    /// The shared core's frontier: core cells whose output net feeds
    /// anything outside the core (another cell region or a primary
    /// output). Every observable core error must diverge at some
    /// frontier cell, because exclusive regions never feed *into* the
    /// core (a cell upstream of a shared cell is itself shared).
    fn recompute_screen(&mut self, golden: &Netlist) {
        self.screen.clear();
        let shared = &self.partition.shared;
        for c in shared.iter() {
            let Ok(net) = golden.cell_output(c) else {
                continue;
            };
            let Ok(n) = golden.net(net) else {
                continue;
            };
            if n.sinks.iter().any(|s| !shared.contains(s.cell)) {
                self.screen.push((
                    c,
                    SuspectCone::fanin(golden, &[c]).intersect(shared),
                    causal_depths(golden, &[c]),
                ));
            }
        }
    }

    /// Applies the screening verdicts, windowed and latency-aware:
    /// each core cell is exonerated through the *minimum*, over the
    /// frontier cells its divergence could escape through, of
    /// `frontier_clean_through - ffdepth(cell -> frontier)` (every
    /// escape path from a core error runs through its covering
    /// frontier cells, but the wavefront needs `ffdepth` patterns to
    /// get there — a frontier still clean at `p` only vouches for the
    /// cell up to `p - ffdepth`). A frontier clean across the whole
    /// sweep exonerates its in-core fanin for every window.
    /// Strategies whose window falls inside a cell's exonerated range
    /// sweep it from the cache instead of the device.
    fn resolve_screening(&mut self) {
        let mut bound: HashMap<CellId, Option<usize>> = HashMap::new();
        for (cell, in_core_fanin, depths) in &self.screen {
            let ct = self.verdicts.get(cell).and_then(|k| k.clean_through);
            for c in in_core_fanin.iter() {
                let b = match ct {
                    Some(CellKnowledge::WHOLE_SWEEP) => Some(CellKnowledge::WHOLE_SWEEP),
                    Some(p) => p.checked_sub(depths.get(&c).copied().unwrap_or(0)),
                    None => None,
                };
                bound
                    .entry(c)
                    .and_modify(|e| {
                        *e = match (*e, b) {
                            (Some(x), Some(y)) => Some(x.min(y)),
                            _ => None,
                        }
                    })
                    .or_insert(b);
            }
        }
        for (c, b) in bound {
            if let Some(w) = b {
                self.verdicts.entry(c).or_default().note_clean_through(w);
            }
        }
    }

    /// Feeds each requesting track its verdicts — fresh merged over
    /// cache, each evaluated at the track's own window (a missing
    /// verdict reads as "did not diverge") — and flags the fresh
    /// divergences that more than one cone-and-window explains.
    fn feed_requested(&mut self, fresh: &HashMap<CellId, Option<usize>>) -> Vec<Ambiguity> {
        let mut ambiguities: Vec<Ambiguity> = Vec::new();
        let mut flagged: HashSet<CellId> = HashSet::new();
        for k in 0..self.tracks.len() {
            if self.tracks[k].requested.is_empty() {
                continue;
            }
            let requested = std::mem::take(&mut self.tracks[k].requested);
            let obs: Vec<TapObservation> = requested
                .iter()
                .map(|&cell| TapObservation {
                    cell,
                    diverged: self
                        .verdicts
                        .get(&cell)
                        .and_then(|kn| kn.verdict(self.tracks[k].window_for(cell)))
                        .unwrap_or(false),
                })
                .collect();
            for o in obs.iter().filter(|o| o.diverged) {
                let Some(&Some(onset)) = fresh.get(&o.cell) else {
                    continue;
                };
                if !flagged.insert(o.cell) {
                    continue;
                }
                let owners = self.visible_owners(o.cell, onset);
                if owners.len() > 1 {
                    ambiguities.push(Ambiguity {
                        cell: o.cell,
                        tracks: owners,
                    });
                }
            }
            self.tracks[k].strategy.observe(&obs);
        }
        ambiguities
    }
}

/// Folds the several failure clusters one FSM error fans out into
/// back into a single cluster, so the error is localized once instead
/// of `k` times.
///
/// A single error in next-state logic corrupts the state registers,
/// and the corruption surfaces simultaneously on every output the
/// registers reach — as several clusters with *different* fanin cones
/// but the same failure onset. Two clusters merge when
///
/// 1. they first fail on the same pattern (the corruption reached
///    them on the same cycle), and
/// 2. their cones share a **dominating sequential core**: a state
///    register implicated by both whose fanout cone covers every
///    member output of both clusters (the register can explain the
///    entire joint footprint).
///
/// The merged cluster carries the union footprint (outputs and
/// response signature) over the *intersection* of the member cones —
/// under the one-shared-error hypothesis the site lies in every
/// member's fanin, so the intersection keeps it while shedding the
/// per-output exclusive logic that a genuine FSM error cannot
/// explain. Combinational designs have no state registers and are
/// never merged; clusters with different onsets (independent errors
/// that happen to overlap structurally) are left apart.
///
/// # Limitation
///
/// Two *independent* errors in different exclusive regions behind a
/// shared sequential trunk can fail on the same pattern, and with
/// primary-output observability alone that case is indistinguishable
/// from one FSM error at clustering time (even the signatures can
/// coincide). Such a wrongly merged cluster intersects both sites
/// away and its localization comes back `None` — the campaign still
/// repairs through the corrective ECO, and the cost is one track's
/// worth of probes over the shared core. The evidence that *would*
/// discriminate (a clean shared-core frontier) only arrives during
/// the scheduler's screening round; deferring the merge decision
/// until after screening is recorded as an open item in ROADMAP.md.
pub fn merge_fsm_clusters(golden: &Netlist, clusters: Vec<FailureCluster>) -> Vec<FailureCluster> {
    let mut merged: Vec<FailureCluster> = Vec::new();
    let mut fanouts: HashMap<CellId, SuspectCone> = HashMap::new();
    for cl in clusters {
        let host = merged.iter().position(|m| {
            m.window == cl.window && dominating_register(golden, m, &cl, &mut fanouts).is_some()
        });
        match host {
            Some(i) => {
                let m = &mut merged[i];
                m.outputs.extend_from_slice(&cl.outputs);
                m.signature.union_with(&cl.signature);
                m.cone.intersect_with(&cl.cone);
            }
            None => merged.push(cl),
        }
    }
    merged
}

/// A state register in both clusters' cones whose fanout covers every
/// member output of both — the witness that one sequential error can
/// explain the joint footprint.
fn dominating_register(
    golden: &Netlist,
    a: &FailureCluster,
    b: &FailureCluster,
    fanouts: &mut HashMap<CellId, SuspectCone>,
) -> Option<CellId> {
    let shared = a.cone.intersect(&b.cone);
    let witness = shared
        .iter()
        .filter(|&c| golden.cell(c).is_ok_and(netlist::Cell::is_sequential))
        .find(|&ff| {
            let fanout = fanouts
                .entry(ff)
                .or_insert_with(|| SuspectCone::from_cells(golden.fanout_cone(&[ff])));
            a.outputs
                .iter()
                .chain(&b.outputs)
                .all(|&o| fanout.contains(o))
        });
    witness
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{BinarySearch, LinearBatches};
    use netlist::TruthTable;

    /// A backbone chain of `bb` inverters fanning out into `branches`
    /// chains of `blen` inverters, each ending in its own output.
    /// Returns (netlist, backbone cells, per-branch cells).
    fn backbone_design(
        bb: usize,
        branches: usize,
        blen: usize,
    ) -> (Netlist, Vec<CellId>, Vec<Vec<CellId>>) {
        let mut nl = Netlist::new("backbone");
        let pi = nl.add_input("a").unwrap();
        let mut net = nl.cell_output(pi).unwrap();
        let mut backbone = Vec::new();
        for k in 0..bb {
            let c = nl
                .add_lut(format!("bb{k}"), TruthTable::not(), &[net])
                .unwrap();
            net = nl.cell_output(c).unwrap();
            backbone.push(c);
        }
        let mut branch_cells = Vec::new();
        for b in 0..branches {
            let mut bnet = net;
            let mut cells = Vec::new();
            for k in 0..blen {
                let c = nl
                    .add_lut(format!("br{b}_{k}"), TruthTable::not(), &[bnet])
                    .unwrap();
                bnet = nl.cell_output(c).unwrap();
                cells.push(c);
            }
            nl.add_output(format!("y{b}"), bnet).unwrap();
            branch_cells.push(cells);
        }
        (nl, backbone, branch_cells)
    }

    /// Runs the scheduler against a perfect oracle (tap diverges from
    /// pattern 0 iff an error lies in its fanin cone). Returns
    /// (localized, taps, ecos).
    fn run_oracle(
        sched: &mut MultiErrorScheduler,
        nl: &Netlist,
        errors: &[CellId],
    ) -> (Vec<Option<CellId>>, usize, usize) {
        let fanouts: Vec<SuspectCone> = errors
            .iter()
            .map(|&e| SuspectCone::from_cells(nl.fanout_cone(&[e])))
            .collect();
        let (mut taps, mut ecos) = (0usize, 0usize);
        let mut guard = 0;
        while let Some(plan) = sched.plan_round() {
            let mut verdicts = HashMap::new();
            for batch in &plan.batches {
                taps += batch.len();
                ecos += 1;
                for &c in batch {
                    let onset = fanouts.iter().any(|f| f.contains(c)).then_some(0);
                    verdicts.insert(c, onset);
                }
            }
            sched.record_round(&verdicts);
            guard += 1;
            assert!(guard <= 256, "scheduler failed to converge");
        }
        (sched.localized(), taps, ecos)
    }

    /// Runs one strategy alone on one cone against the same oracle.
    fn run_single(
        nl: &Netlist,
        suspects: &[CellId],
        strategy: Box<dyn LocalizationStrategy>,
        error: CellId,
    ) -> (Option<CellId>, usize, usize) {
        let mut sched = MultiErrorScheduler::new(LinearBatches::DEFAULT_BATCH);
        sched.add_error(nl, suspects, None, strategy);
        let (found, taps, ecos) = run_oracle(&mut sched, nl, &[error]);
        (found[0], taps, ecos)
    }

    fn cone_suspects(po_branch: &[CellId], backbone: &[CellId]) -> Vec<CellId> {
        // Topological order: backbone first, then the branch.
        let mut v = backbone.to_vec();
        v.extend_from_slice(po_branch);
        v
    }

    #[test]
    fn shared_batches_beat_sequential_localization() {
        let (nl, backbone, branches) = backbone_design(40, 3, 8);
        let errors: Vec<CellId> = branches.iter().map(|b| b[5]).collect();
        for fresh in [
            (|| Box::new(LinearBatches::default()) as Box<dyn LocalizationStrategy>)
                as fn() -> Box<dyn LocalizationStrategy>,
            || Box::new(BinarySearch::new()),
        ] {
            let mut sched = MultiErrorScheduler::new(LinearBatches::DEFAULT_BATCH);
            for b in &branches {
                sched.add_error(&nl, &cone_suspects(b, &backbone), None, fresh());
            }
            // Overlap analysis: the backbone is the shared core, each
            // branch an exclusive region; only the last backbone cell
            // is the core's frontier.
            assert_eq!(sched.partition().shared.len(), backbone.len());
            assert_eq!(sched.partition().exclusive_sizes(), vec![8, 8, 8]);
            assert_eq!(sched.screen_cells(), vec![backbone[39]]);

            let (found, taps, ecos) = run_oracle(&mut sched, &nl, &errors);
            assert_eq!(found, errors.iter().map(|&e| Some(e)).collect::<Vec<_>>());

            let (mut staps, mut secos) = (0, 0);
            for (k, b) in branches.iter().enumerate() {
                let (f, t, e) = run_single(&nl, &cone_suspects(b, &backbone), fresh(), errors[k]);
                assert_eq!(f, Some(errors[k]));
                staps += t;
                secos += e;
            }
            assert!(taps < staps, "shared {taps} !< sequential {staps} taps");
            assert!(ecos < secos, "shared {ecos} !< sequential {secos} ECOs");
        }
    }

    #[test]
    fn clean_frontier_exonerates_the_whole_core_for_one_tap() {
        let (nl, backbone, branches) = backbone_design(40, 3, 8);
        // Errors only in the branches: the screening tap on bb39 comes
        // back clean, so all 40 core cells resolve from the cache and
        // linear batching pays taps only inside the exclusive regions.
        let errors: Vec<CellId> = branches.iter().map(|b| b[5]).collect();
        let mut sched = MultiErrorScheduler::new(LinearBatches::DEFAULT_BATCH);
        for b in &branches {
            sched.add_error(
                &nl,
                &cone_suspects(b, &backbone),
                None,
                Box::new(LinearBatches::default()),
            );
        }
        let plan = sched.plan_round().unwrap();
        assert!(plan.screening);
        assert_eq!(plan.batches, vec![vec![backbone[39]]]);
        let amb = sched.record_round(&HashMap::from([(backbone[39], None)]));
        assert!(amb.is_empty(), "clean frontier is unambiguous");
        let (found, taps, _) = run_oracle(&mut sched, &nl, &errors);
        assert_eq!(found, errors.iter().map(|&e| Some(e)).collect::<Vec<_>>());
        // 1 screening tap + 3 × 8 branch taps; the 120 backbone
        // requests all hit the cache.
        assert_eq!(taps, 24);
        assert_eq!(
            sched.taps_requested(0) + sched.taps_requested(1) + sched.taps_requested(2),
            144
        );
    }

    #[test]
    fn diverging_frontier_keeps_its_fanin_alive_and_is_ambiguous() {
        let (nl, backbone, branches) = backbone_design(8, 2, 2);
        let mut sched = MultiErrorScheduler::new(8);
        for b in &branches {
            sched.add_error(
                &nl,
                &cone_suspects(b, &backbone),
                None,
                Box::new(LinearBatches::default()),
            );
        }
        // Screening round: the core frontier, physically tapped once
        // for both tracks.
        let plan = sched.plan_round().unwrap();
        assert!(plan.screening);
        assert_eq!(plan.batches, vec![vec![backbone[7]]]);
        // An error *in* the shared core: the frontier diverges, both
        // cones explain it, and no core cell is exonerated.
        let amb = sched.record_round(&HashMap::from([(backbone[7], Some(0))]));
        assert_eq!(
            amb,
            vec![Ambiguity {
                cell: backbone[7],
                tracks: vec![0, 1],
            }]
        );
        // The next round is the strategies' first: the 8-cell batch
        // covers the backbone, minus the already-tapped frontier.
        let plan = sched.plan_round().unwrap();
        assert!(!plan.screening);
        assert_eq!(plan.batches, vec![backbone[..7].to_vec()]);
        assert_eq!(sched.taps_requested(0) + sched.taps_requested(1), 16);
    }

    #[test]
    fn one_tap_serves_two_windows_with_different_verdicts() {
        // Two clusters suspect the same cell under different windows:
        // one physical tap measures the onset once, and each track
        // reads it under its own window — the (net, window) cache.
        let (nl, _, branches) = backbone_design(1, 1, 1);
        let cell = branches[0][0];
        let mut sched = MultiErrorScheduler::new(8);
        sched.add_error(
            &nl,
            &[cell],
            Some(ObservationWindow::flat(2)),
            Box::new(LinearBatches::default()),
        );
        sched.add_error(
            &nl,
            &[cell],
            Some(ObservationWindow::flat(10)),
            Box::new(LinearBatches::default()),
        );
        let plan = sched.plan_round().unwrap();
        assert_eq!(
            plan.batches,
            vec![vec![cell]],
            "both windows miss: one physical tap"
        );
        // The net first diverges on pattern 5: inside the second
        // track's window, outside the first's.
        let amb = sched.record_round(&HashMap::from([(cell, Some(5))]));
        assert!(amb.is_empty(), "only one window sees the divergence");
        assert!(
            sched.plan_round().is_none(),
            "everything is answerable from the cache"
        );
        assert_eq!(sched.localized(), vec![None, Some(cell)]);
    }

    #[test]
    fn screening_exonerates_per_window_when_the_frontier_diverges_late() {
        let (nl, backbone, branches) = backbone_design(4, 2, 2);
        let mut sched = MultiErrorScheduler::new(8);
        for (b, w) in branches.iter().zip([2usize, 20]) {
            sched.add_error(
                &nl,
                &cone_suspects(b, &backbone),
                Some(ObservationWindow::flat(w)),
                Box::new(LinearBatches::default()),
            );
        }
        let plan = sched.plan_round().unwrap();
        assert!(plan.screening);
        assert_eq!(plan.batches, vec![vec![backbone[3]]]);
        // The frontier first diverges on pattern 10: the whole core
        // is exonerated for the window-2 track (clean through 9) but
        // stays live for the window-20 track, which alone sees the
        // divergence — no ambiguity.
        let amb = sched.record_round(&HashMap::from([(backbone[3], Some(10))]));
        assert!(amb.is_empty());
        let plan = sched.plan_round().unwrap();
        assert!(!plan.screening);
        // Track 0's backbone requests resolve from the cache; only
        // its branch plus track 1's still-live cells need taps.
        let tapped: Vec<CellId> = plan.batches.concat();
        assert!(backbone[..3].iter().all(|c| tapped.contains(c)));
        assert!(branches[0].iter().all(|c| tapped.contains(c)));
    }

    /// One state register fanning out into two outputs through
    /// different combinational cones — the FSM fan-out shape.
    fn fsm_fanout_design() -> (Netlist, CellId, Vec<CellId>) {
        let mut nl = Netlist::new("fsm");
        let a = nl.add_input("a").unwrap();
        let pre = nl
            .add_lut("pre", TruthTable::not(), &[nl.cell_output(a).unwrap()])
            .unwrap();
        let ff = nl
            .add_ff("state", false, nl.cell_output(pre).unwrap())
            .unwrap();
        let q = nl.cell_output(ff).unwrap();
        let a0 = nl.add_lut("a0", TruthTable::not(), &[q]).unwrap();
        nl.add_output("yA", nl.cell_output(a0).unwrap()).unwrap();
        let b0 = nl.add_lut("b0", TruthTable::not(), &[q]).unwrap();
        let b1 = nl
            .add_lut("b1", TruthTable::not(), &[nl.cell_output(b0).unwrap()])
            .unwrap();
        nl.add_output("yB", nl.cell_output(b1).unwrap()).unwrap();
        let pos = nl.primary_outputs();
        (nl, ff, pos)
    }

    fn cluster_for(nl: &Netlist, po: CellId, window: usize) -> FailureCluster {
        let mut signature = crate::diagnosis::ResponseSignature::default();
        signature.record(window);
        FailureCluster {
            outputs: vec![po],
            signature,
            cone: SuspectCone::fanin(nl, &[po]),
            window,
        }
    }

    #[test]
    fn fsm_fanout_clusters_merge_on_shared_state_register() {
        let (nl, ff, pos) = fsm_fanout_design();
        // Same onset behind the same register: one merged cluster
        // over the cone intersection (the state cone, shedding the
        // per-output combinational logic).
        let merged = merge_fsm_clusters(
            &nl,
            vec![cluster_for(&nl, pos[0], 3), cluster_for(&nl, pos[1], 3)],
        );
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].outputs, pos);
        assert_eq!(merged[0].window, 3);
        assert!(merged[0].cone.contains(ff));
        assert!(!merged[0].cone.contains(nl.find_cell("a0").unwrap()));
        assert!(!merged[0].cone.contains(nl.find_cell("b1").unwrap()));
        assert_eq!(merged[0].signature.count(), 1, "signatures union");

        // Different onsets = independent errors: left apart.
        let apart = merge_fsm_clusters(
            &nl,
            vec![cluster_for(&nl, pos[0], 3), cluster_for(&nl, pos[1], 7)],
        );
        assert_eq!(apart.len(), 2);
    }

    #[test]
    fn combinational_clusters_never_merge() {
        // Shared combinational backbone, no state register: the
        // dominating-core witness requires a flip-flop, so clusters
        // stay apart even with identical windows.
        let (nl, _, _) = backbone_design(4, 2, 2);
        let pos = nl.primary_outputs();
        let merged = merge_fsm_clusters(
            &nl,
            vec![cluster_for(&nl, pos[0], 0), cluster_for(&nl, pos[1], 0)],
        );
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn assumed_verdicts_are_never_tapped() {
        let (nl, backbone, branches) = backbone_design(4, 2, 2);
        let errors = [branches[0][1], branches[1][1]];
        let mut sched = MultiErrorScheduler::new(8);
        for b in &branches {
            sched.add_error(
                &nl,
                &cone_suspects(b, &backbone),
                None,
                Box::new(LinearBatches::default()),
            );
        }
        // Detection already knows the branch tips diverge (they drive
        // the failing outputs).
        sched.assume(branches[0][1], true);
        sched.assume(branches[1][1], true);
        let (found, taps, _) = run_oracle(&mut sched, &nl, &errors);
        assert_eq!(found, vec![Some(errors[0]), Some(errors[1])]);
        // 1 screening tap + br0_0 + br1_0; the assumed tips and the
        // exonerated 4-cell core never hit the device.
        assert_eq!(taps, 3);
    }

    #[test]
    fn finished_tracks_stop_requesting() {
        let (nl, backbone, branches) = backbone_design(4, 2, 2);
        let mut sched = MultiErrorScheduler::new(8);
        for b in &branches {
            sched.add_error(
                &nl,
                &cone_suspects(b, &backbone),
                None,
                Box::new(LinearBatches::default()),
            );
        }
        // Error only in branch 0; branch 1's track exhausts its cone.
        let errors = [branches[0][0]];
        let (found, _, _) = run_oracle(&mut sched, &nl, &errors);
        assert_eq!(found[0], Some(branches[0][0]));
        assert_eq!(found[1], None, "clean cone must not localize anything");
        assert!(sched.plan_round().is_none(), "all tracks are done");
    }
}

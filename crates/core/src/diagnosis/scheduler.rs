//! Batched tap planning across several concurrent localizations.
//!
//! The paper's loop localizes one error at a time: every observation
//! ECO serves exactly one suspect cone. With `k` live errors, that
//! wastes the tiled flow's cheap ECOs — one batch of inserted test
//! logic can serve *all* of them. [`MultiErrorScheduler`] runs one
//! [`LocalizationStrategy`] instance per error and, each round,
//! merges every strategy's tap requests into deduplicated physical
//! batches: overlapping cones request the same upstream cells, which
//! are tapped (and paid for) once, and a single re-implementation ECO
//! advances every live error's search.
//!
//! The scheduler is deliberately thin: all knowledge lives in the
//! shared [`EvidenceBase`] — the (net, window)-keyed verdict cache
//! that the serial path reads through too. The scheduler's own job is
//! pure orchestration:
//!
//! * **cache-first planning** — a round's merged request drops every
//!   cell whose verdict the evidence base already determines *at the
//!   requesting track's window*; rounds answered entirely from
//!   evidence execute with zero physical ECOs;
//! * **shared-core screening** — before any strategy walks the
//!   [`ConePartition`]'s shared core, the scheduler taps only the
//!   core's *frontier* (the cells whose fanout escapes the core: on
//!   the DAG, every path from a core error to any output runs through
//!   them) and records the windowed, latency-aware exonerations into
//!   the evidence base
//!   ([`EvidenceBase::exonerate_fanin`]).
//!
//! It also hosts [`merge_fsm_clusters`], which folds the several
//! failure clusters one FSM error fans out into back into a single
//! track — a decision that is *deferred* until the discriminating
//! screening evidence (did the dominating state register actually
//! diverge?) is recorded in the evidence base.

use std::collections::{HashMap, HashSet};

use netlist::{CellId, Netlist};

use crate::strategy::LocalizationStrategy;

use super::attribution::FailureCluster;
use super::cone::SuspectCone;
use super::evidence::{causal_depths, EvidenceBase, ObservationWindow};
use super::partition::ConePartition;

/// One localization in flight.
struct Track {
    strategy: Box<dyn LocalizationStrategy>,
    cone: SuspectCone,
    /// The track's observation window
    /// ([`ObservationWindow::whole_sweep`] when the track has no
    /// failure-onset information).
    window: ObservationWindow,
    /// Cells requested this round, in the strategy's order. Cleared
    /// when the round's verdicts are fed back.
    requested: Vec<CellId>,
    taps_requested: usize,
    rounds_joined: usize,
    done: bool,
}

/// Shared-core screening progress.
enum Screening {
    /// Not yet planned (first `plan_round` will emit it, if any).
    Planned,
    /// The screening batch is out; the next `record_round` resolves it.
    Pending,
    /// Resolved (or there was nothing to screen).
    Done,
}

/// One round's physical tap plan.
#[derive(Debug, Clone, Default)]
pub struct RoundPlan {
    /// The deduplicated union of all live tracks' requests — minus
    /// every cell whose verdict is already in evidence — split into
    /// batches of at most `max_taps_per_eco` cells. Each batch is one
    /// observation-tap ECO.
    pub batches: Vec<Vec<CellId>>,
    /// Whether this round carries the shared-core screening batch:
    /// the frontier cells the scheduler taps (to rule the whole core
    /// in or out at frontier cost) ride the same ECO as the tracks'
    /// first non-core requests, so screening does not cost an extra
    /// tap round.
    pub screening: bool,
}

impl RoundPlan {
    /// Total taps the round will insert.
    pub fn taps(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }
}

/// A diverging observation that more than one suspect cone can
/// explain; the attribution engine resolves the blame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ambiguity {
    /// The diverging tapped cell.
    pub cell: CellId,
    /// Indices of every track whose cone contains the cell.
    pub tracks: Vec<usize>,
}

/// Plans shared observation-tap batches for `k` concurrent error
/// localizations over one [`EvidenceBase`].
///
/// Protocol: [`add_error`](Self::add_error) once per suspected error,
/// then alternate [`plan_round`](Self::plan_round) (`None` = all
/// tracks finished) with the physical tap ECOs and
/// [`record_round`](Self::record_round);
/// [`localized`](Self::localized) yields the per-error answers. All
/// verdict seeding (detection onsets, assumptions) goes directly into
/// the evidence base.
pub struct MultiErrorScheduler {
    tracks: Vec<Track>,
    partition: ConePartition,
    max_taps_per_eco: usize,
    /// Shared-core frontier: each frontier cell paired with its
    /// in-core fanin cone (the cells it testifies for) and the min
    /// FF distance from each of those cells to the frontier (the
    /// latency a divergence needs to escape through it).
    screen: Vec<(CellId, SuspectCone, HashMap<CellId, usize>)>,
    screening: Screening,
}

impl MultiErrorScheduler {
    /// A scheduler that caps each physical ECO at `max_taps_per_eco`
    /// inserted taps (observation pads are scarce).
    ///
    /// # Panics
    ///
    /// Panics on a zero cap.
    pub fn new(max_taps_per_eco: usize) -> Self {
        assert!(max_taps_per_eco > 0, "tap cap must be positive");
        Self {
            tracks: Vec::new(),
            partition: ConePartition::default(),
            max_taps_per_eco,
            screen: Vec::new(),
            screening: Screening::Planned,
        }
    }

    /// Registers one suspected error: its sorted suspect list, its
    /// [`ObservationWindow`] and a fresh strategy to drive. Returns
    /// the track index. All errors must be registered before the
    /// first [`plan_round`](Self::plan_round).
    pub fn add_error(
        &mut self,
        golden: &Netlist,
        suspects: &[CellId],
        window: ObservationWindow,
        mut strategy: Box<dyn LocalizationStrategy>,
    ) -> usize {
        strategy.begin(golden, suspects);
        self.tracks.push(Track {
            strategy,
            cone: suspects.iter().copied().collect(),
            window,
            requested: Vec::new(),
            taps_requested: 0,
            rounds_joined: 0,
            done: false,
        });
        let partition = ConePartition::split(
            &self
                .tracks
                .iter()
                .map(|t| t.cone.clone())
                .collect::<Vec<_>>(),
        );
        // The frontier's fanin traversals are the expensive part of a
        // registration; redo them only when this cone actually changed
        // the shared core (never for the first cone, or disjoint ones).
        let shared_changed = partition.shared != self.partition.shared;
        self.partition = partition;
        if shared_changed {
            self.recompute_screen(golden);
        }
        self.tracks.len() - 1
    }

    /// Number of registered tracks.
    pub fn tracks(&self) -> usize {
        self.tracks.len()
    }

    /// The ownership partition of the registered suspect cones.
    pub fn partition(&self) -> &ConePartition {
        &self.partition
    }

    /// Cells track `k` asked to tap in the current round.
    pub fn requested(&self, k: usize) -> &[CellId] {
        &self.tracks[k].requested
    }

    /// Total taps track `k` has requested so far (before cross-track
    /// deduplication and evidence hits — the difference against the
    /// physical tap count is the sharing win).
    pub fn taps_requested(&self, k: usize) -> usize {
        self.tracks[k].taps_requested
    }

    /// Rounds track `k` participated in (including rounds served
    /// entirely from evidence).
    pub fn rounds_joined(&self, k: usize) -> usize {
        self.tracks[k].rounds_joined
    }

    /// The shared-core frontier cells the screening round taps, in
    /// ascending cell order (empty when cones do not overlap).
    pub fn screen_cells(&self) -> Vec<CellId> {
        self.screen.iter().map(|&(c, _, _)| c).collect()
    }

    /// Collects every live track's next tap request and merges them
    /// into deduplicated, capped batches of cells whose verdict the
    /// evidence base cannot answer *at the requesting track's
    /// window*. The very first round (when cones overlap) also
    /// carries the shared core's frontier screening, piggybacked onto
    /// the same ECO as the tracks' non-core requests — core requests
    /// are held back until the screening verdict lands, since a clean
    /// frontier answers them for free. Rounds whose requests the
    /// evidence already answers are fed back internally and cost
    /// nothing; `None` means every track has finished.
    pub fn plan_round(&mut self, evidence: &mut EvidenceBase) -> Option<RoundPlan> {
        if matches!(self.screening, Screening::Planned) {
            let cells: Vec<CellId> = self
                .screen
                .iter()
                .map(|&(c, _, _)| c)
                .filter(|&c| !evidence.exact(c))
                .collect();
            if cells.is_empty() {
                // Nothing to tap — resolve from whatever is known.
                self.screening = Screening::Done;
                evidence.exonerate_fanin(&self.screen);
            } else {
                // Piggyback the strategies' first requests onto the
                // screening ECO — minus every shared-core cell, whose
                // verdict a clean frontier answers for free (tapping
                // those now would waste the exoneration). Held-back
                // cells the screening cannot answer re-merge into the
                // next round; a track is only fed once its whole
                // request is answerable.
                let mut merged = cells;
                let mut seen: HashSet<CellId> = merged.iter().copied().collect();
                for t in &mut self.tracks {
                    if t.done {
                        continue;
                    }
                    if t.requested.is_empty() {
                        let req = t.strategy.next_taps();
                        if req.is_empty() {
                            t.done = true;
                            continue;
                        }
                        t.taps_requested += req.len();
                        t.rounds_joined += 1;
                        t.requested = req;
                    }
                    for &c in &t.requested {
                        let answered = evidence.verdict(c, t.window.for_cell(c)).is_some();
                        if !answered && !self.partition.shared.contains(c) && seen.insert(c) {
                            merged.push(c);
                        }
                    }
                }
                self.screening = Screening::Pending;
                return Some(RoundPlan {
                    batches: self.chunk(merged),
                    screening: true,
                });
            }
        }
        loop {
            let mut merged: Vec<CellId> = Vec::new();
            let mut seen: HashSet<CellId> = HashSet::new();
            let mut any_request = false;
            for t in &mut self.tracks {
                if t.done {
                    continue;
                }
                if t.requested.is_empty() {
                    let req = t.strategy.next_taps();
                    if req.is_empty() {
                        t.done = true;
                        continue;
                    }
                    t.taps_requested += req.len();
                    t.rounds_joined += 1;
                    t.requested = req;
                }
                any_request = true;
                for &c in &t.requested {
                    // A cell known for one window can still need a
                    // physical tap for another: only a verdict at
                    // *this* track's window counts as answered.
                    let answered = evidence.verdict(c, t.window.for_cell(c)).is_some();
                    if !answered && seen.insert(c) {
                        merged.push(c);
                    }
                }
            }
            if !any_request {
                return None;
            }
            if merged.is_empty() {
                // Every requested cell is already in evidence: answer
                // the whole round for free and ask the strategies
                // again.
                self.feed_requested(evidence, &HashMap::new());
                continue;
            }
            return Some(RoundPlan {
                batches: self.chunk(merged),
                screening: false,
            });
        }
    }

    /// Merges the round's fresh measurements — each tapped cell's
    /// exact divergence onset over the sweep (`None` = clean
    /// throughout) — into the evidence base, then either resolves a
    /// pending shared-core screening (recording the windowed
    /// exonerations) or feeds every requesting track its verdicts
    /// (each strategy reads its own requests from evidence *under its
    /// own window*). Returns the diverging cells that more than one
    /// cone-and-window can explain.
    ///
    /// Divergence is credited per window: a track sees a tap as
    /// diverging only when the onset falls inside its observation
    /// window, so a late divergence caused by a slow error no longer
    /// misleads the cluster that failed early. When two live errors'
    /// windows both see a shared-core divergence, the returned
    /// [`Ambiguity`] list names exactly those observations so the
    /// caller can score them with
    /// [`crate::diagnosis::FaultAttribution`].
    pub fn record_round(
        &mut self,
        evidence: &mut EvidenceBase,
        fresh: &HashMap<CellId, Option<usize>>,
    ) -> Vec<Ambiguity> {
        for (&c, &onset) in fresh {
            evidence.record(c, onset);
        }
        if matches!(self.screening, Screening::Pending) {
            self.screening = Screening::Done;
            evidence.exonerate_fanin(&self.screen);
            // Frontier ⊆ shared core ⇒ ≥ 2 owning cones, but only
            // owners whose window reaches the onset actually see the
            // divergence — one of them alone is not ambiguous.
            let mut ambiguities: Vec<Ambiguity> = self
                .screen
                .iter()
                .filter_map(|&(cell, _, _)| {
                    let onset = evidence.diverged_by(cell)?;
                    let tracks = self.visible_owners(cell, onset);
                    (tracks.len() > 1).then_some(Ambiguity { cell, tracks })
                })
                .collect();
            // Feed the piggybacked first-round requests the screening
            // ECO measured (or its exonerations now answer).
            ambiguities.extend(self.feed_requested(evidence, fresh));
            let mut flagged: HashSet<CellId> = HashSet::new();
            ambiguities.retain(|a| flagged.insert(a.cell));
            return ambiguities;
        }
        self.feed_requested(evidence, fresh)
    }

    /// Per-track localization results, in registration order.
    pub fn localized(&self) -> Vec<Option<CellId>> {
        self.tracks.iter().map(|t| t.strategy.localized()).collect()
    }

    fn chunk(&self, cells: Vec<CellId>) -> Vec<Vec<CellId>> {
        cells
            .chunks(self.max_taps_per_eco)
            .map(<[CellId]>::to_vec)
            .collect()
    }

    /// Tracks whose cone contains `cell` *and* whose observation
    /// window reaches a divergence at `onset` — the only tracks the
    /// observation can actually implicate.
    fn visible_owners(&self, cell: CellId, onset: usize) -> Vec<usize> {
        self.tracks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.cone.contains(cell) && t.window.for_cell(cell) >= onset)
            .map(|(i, _)| i)
            .collect()
    }

    /// The shared core's frontier: core cells whose output net feeds
    /// anything outside the core (another cell region or a primary
    /// output). Every observable core error must diverge at some
    /// frontier cell, because exclusive regions never feed *into* the
    /// core (a cell upstream of a shared cell is itself shared).
    fn recompute_screen(&mut self, golden: &Netlist) {
        self.screen.clear();
        let shared = &self.partition.shared;
        for c in shared.iter() {
            let Ok(net) = golden.cell_output(c) else {
                continue;
            };
            let Ok(n) = golden.net(net) else {
                continue;
            };
            if n.sinks.iter().any(|s| !shared.contains(s.cell)) {
                self.screen.push((
                    c,
                    SuspectCone::fanin(golden, &[c]).intersect(shared),
                    causal_depths(golden, &[c]),
                ));
            }
        }
    }

    /// Feeds each requesting track its verdicts — every strategy
    /// reads its requested cells from the evidence base under its own
    /// window — and flags the fresh divergences that more than one
    /// cone-and-window explains.
    fn feed_requested(
        &mut self,
        evidence: &EvidenceBase,
        fresh: &HashMap<CellId, Option<usize>>,
    ) -> Vec<Ambiguity> {
        let mut ambiguities: Vec<Ambiguity> = Vec::new();
        let mut flagged: HashSet<CellId> = HashSet::new();
        for k in 0..self.tracks.len() {
            if self.tracks[k].requested.is_empty() {
                continue;
            }
            // A piggybacked round can leave a request half-answered
            // (held-back core cells whose exoneration fell through
            // when the frontier diverged): keep it pending — the next
            // `plan_round` re-merges the unanswered remainder — so a
            // strategy never observes a partial batch as "clean".
            {
                let t = &self.tracks[k];
                if !t
                    .requested
                    .iter()
                    .all(|&c| evidence.verdict(c, t.window.for_cell(c)).is_some())
                {
                    continue;
                }
            }
            let requested = std::mem::take(&mut self.tracks[k].requested);
            for &cell in &requested {
                let Some(&Some(onset)) = fresh.get(&cell) else {
                    continue;
                };
                if evidence.verdict(cell, self.tracks[k].window.for_cell(cell)) != Some(true) {
                    continue;
                }
                if !flagged.insert(cell) {
                    continue;
                }
                let owners = self.visible_owners(cell, onset);
                if owners.len() > 1 {
                    ambiguities.push(Ambiguity {
                        cell,
                        tracks: owners,
                    });
                }
            }
            let (strategy, window) = {
                let t = &mut self.tracks[k];
                (&mut t.strategy, &t.window)
            };
            strategy.observe(evidence, window);
        }
        ambiguities
    }
}

/// The dominating state registers that would witness folding
/// same-onset failure clusters into one FSM track — the cells whose
/// divergence onsets discriminate one fanned-out FSM error from
/// several independent same-onset errors behind a shared trunk.
///
/// Runs the *same* fold as [`merge_fsm_clusters`], but optimistically
/// (every dominating register is presumed diverging), and collects
/// each fold step's preferred witness — the most *downstream*
/// dominating register, the one any trunk-borne corruption must pass
/// through last. Mirroring the fold matters: a third fan-out cluster
/// is judged against the *accumulated union* of the first two, whose
/// dominating register can differ from any pairwise one. The caller
/// taps the witnesses the [`EvidenceBase`] cannot already judge,
/// records the measured onsets, and only then calls
/// [`merge_fsm_clusters`]: the merge decision is *deferred* until
/// that evidence exists. (If a real merge is later rejected — the
/// witness came back clean — deeper fold steps may consult registers
/// this pass did not name; those merges are conservatively skipped,
/// which is sound: a clean trunk carried no corruption.)
pub fn fsm_merge_witnesses(golden: &Netlist, clusters: &[FailureCluster]) -> Vec<CellId> {
    let mut fanouts: HashMap<CellId, SuspectCone> = HashMap::new();
    let mut witnesses: Vec<CellId> = Vec::new();
    let mut merged: Vec<FailureCluster> = Vec::new();
    for cl in clusters.iter().cloned() {
        let mut host = None;
        for (i, m) in merged.iter().enumerate() {
            if m.window != cl.window {
                continue;
            }
            if let Some(ff) = dominating_register(golden, m, &cl, &mut fanouts) {
                if !witnesses.contains(&ff) {
                    witnesses.push(ff);
                }
                host = Some(i);
                break;
            }
        }
        match host {
            Some(i) => {
                let m = &mut merged[i];
                m.outputs.extend_from_slice(&cl.outputs);
                m.signature.union_with(&cl.signature);
                m.cone.intersect_with(&cl.cone);
            }
            None => merged.push(cl),
        }
    }
    witnesses.sort_unstable();
    witnesses
}

/// Folds the several failure clusters one FSM error fans out into
/// back into a single cluster, so the error is localized once instead
/// of `k` times — *deferred* until the discriminating screening
/// evidence is in the [`EvidenceBase`].
///
/// A single error in next-state logic corrupts the state registers,
/// and the corruption surfaces simultaneously on every output the
/// registers reach — as several clusters with *different* fanin cones
/// but the same failure onset. Two clusters merge when
///
/// 1. they first fail on the same pattern (the corruption reached
///    them on the same cycle),
/// 2. their cones share a **dominating sequential core**: a state
///    register implicated by both whose fanout cone covers every
///    member output of both clusters (the register can explain the
///    entire joint footprint), and
/// 3. the evidence base shows that register **actually diverged**
///    within the clusters' window — the corruption really flowed
///    through the shared trunk.
///
/// Criterion 3 is what the old pre-registration merge lacked: two
/// *independent* errors in different exclusive regions behind a
/// shared sequential trunk can fail on the same pattern, and with
/// primary-output observability alone that case is indistinguishable
/// from one FSM error — the old merge then intersected both sites
/// away and localized nothing. One screening tap on the witness
/// register settles it: a register still clean through the window
/// cannot have carried the corruption, so the clusters stay apart
/// (and both sites localize); a register diverged within the window
/// proves the trunk carried it, so the clusters fold. Registers the
/// evidence cannot judge (no verdict at the window) conservatively
/// stay apart — correctness is unaffected, only tap cost.
///
/// The merged cluster carries the union footprint (outputs and
/// response signature) over the *intersection* of the member cones —
/// under the one-shared-error hypothesis the site lies in every
/// member's fanin, so the intersection keeps it while shedding the
/// per-output exclusive logic that a genuine FSM error cannot
/// explain. Combinational designs have no state registers and are
/// never merged; clusters with different onsets (independent errors
/// that happen to overlap structurally) are left apart.
pub fn merge_fsm_clusters(
    golden: &Netlist,
    clusters: Vec<FailureCluster>,
    evidence: &EvidenceBase,
) -> Vec<FailureCluster> {
    let mut merged: Vec<FailureCluster> = Vec::new();
    let mut fanouts: HashMap<CellId, SuspectCone> = HashMap::new();
    for cl in clusters {
        let host = merged.iter().position(|m| {
            m.window == cl.window
                && dominating_register(golden, m, &cl, &mut fanouts)
                    .is_some_and(|ff| evidence.verdict(ff, cl.window) == Some(true))
        });
        match host {
            Some(i) => {
                let m = &mut merged[i];
                m.outputs.extend_from_slice(&cl.outputs);
                m.signature.union_with(&cl.signature);
                m.cone.intersect_with(&cl.cone);
            }
            None => merged.push(cl),
        }
    }
    merged
}

/// A state register in both clusters' cones whose fanout covers every
/// member output of both — the witness that one sequential error can
/// explain the joint footprint. Among qualifying registers the most
/// downstream one (smallest fanout cone; ties to the lowest cell
/// index) is preferred: any corruption the trunk carries to the
/// outputs must pass through it last, so its divergence onset is the
/// sharpest discriminator.
fn dominating_register(
    golden: &Netlist,
    a: &FailureCluster,
    b: &FailureCluster,
    fanouts: &mut HashMap<CellId, SuspectCone>,
) -> Option<CellId> {
    let shared = a.cone.intersect(&b.cone);
    let mut witness: Option<(usize, CellId)> = None;
    for ff in shared
        .iter()
        .filter(|&c| golden.cell(c).is_ok_and(netlist::Cell::is_sequential))
    {
        let fanout = fanouts
            .entry(ff)
            .or_insert_with(|| SuspectCone::from_cells(golden.fanout_cone(&[ff])));
        let dominates = a
            .outputs
            .iter()
            .chain(&b.outputs)
            .all(|&o| fanout.contains(o));
        if dominates {
            let key = (fanout.len(), ff);
            if witness.is_none_or(|w| key < w) {
                witness = Some(key);
            }
        }
    }
    witness.map(|(_, ff)| ff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{BinarySearch, LinearBatches};
    use netlist::TruthTable;

    /// A backbone chain of `bb` inverters fanning out into `branches`
    /// chains of `blen` inverters, each ending in its own output.
    /// Returns (netlist, backbone cells, per-branch cells).
    fn backbone_design(
        bb: usize,
        branches: usize,
        blen: usize,
    ) -> (Netlist, Vec<CellId>, Vec<Vec<CellId>>) {
        let mut nl = Netlist::new("backbone");
        let pi = nl.add_input("a").unwrap();
        let mut net = nl.cell_output(pi).unwrap();
        let mut backbone = Vec::new();
        for k in 0..bb {
            let c = nl
                .add_lut(format!("bb{k}"), TruthTable::not(), &[net])
                .unwrap();
            net = nl.cell_output(c).unwrap();
            backbone.push(c);
        }
        let mut branch_cells = Vec::new();
        for b in 0..branches {
            let mut bnet = net;
            let mut cells = Vec::new();
            for k in 0..blen {
                let c = nl
                    .add_lut(format!("br{b}_{k}"), TruthTable::not(), &[bnet])
                    .unwrap();
                bnet = nl.cell_output(c).unwrap();
                cells.push(c);
            }
            nl.add_output(format!("y{b}"), bnet).unwrap();
            branch_cells.push(cells);
        }
        (nl, backbone, branch_cells)
    }

    /// Runs the scheduler against a perfect oracle (tap diverges from
    /// pattern 0 iff an error lies in its fanin cone). Returns
    /// (localized, taps, ecos).
    fn run_oracle(
        sched: &mut MultiErrorScheduler,
        evidence: &mut EvidenceBase,
        nl: &Netlist,
        errors: &[CellId],
    ) -> (Vec<Option<CellId>>, usize, usize) {
        let fanouts: Vec<SuspectCone> = errors
            .iter()
            .map(|&e| SuspectCone::from_cells(nl.fanout_cone(&[e])))
            .collect();
        let (mut taps, mut ecos) = (0usize, 0usize);
        let mut guard = 0;
        while let Some(plan) = sched.plan_round(evidence) {
            let mut verdicts = HashMap::new();
            for batch in &plan.batches {
                taps += batch.len();
                ecos += 1;
                for &c in batch {
                    let onset = fanouts.iter().any(|f| f.contains(c)).then_some(0);
                    verdicts.insert(c, onset);
                }
            }
            sched.record_round(evidence, &verdicts);
            guard += 1;
            assert!(guard <= 256, "scheduler failed to converge");
        }
        (sched.localized(), taps, ecos)
    }

    /// Runs one strategy alone on one cone against the same oracle.
    fn run_single(
        nl: &Netlist,
        suspects: &[CellId],
        strategy: Box<dyn LocalizationStrategy>,
        error: CellId,
    ) -> (Option<CellId>, usize, usize) {
        let mut sched = MultiErrorScheduler::new(LinearBatches::DEFAULT_BATCH);
        let mut evidence = EvidenceBase::new();
        sched.add_error(nl, suspects, ObservationWindow::whole_sweep(), strategy);
        let (found, taps, ecos) = run_oracle(&mut sched, &mut evidence, nl, &[error]);
        (found[0], taps, ecos)
    }

    fn cone_suspects(po_branch: &[CellId], backbone: &[CellId]) -> Vec<CellId> {
        // Topological order: backbone first, then the branch.
        let mut v = backbone.to_vec();
        v.extend_from_slice(po_branch);
        v
    }

    #[test]
    fn shared_batches_beat_sequential_localization() {
        let (nl, backbone, branches) = backbone_design(40, 3, 8);
        let errors: Vec<CellId> = branches.iter().map(|b| b[5]).collect();
        for fresh in [
            (|| Box::new(LinearBatches::default()) as Box<dyn LocalizationStrategy>)
                as fn() -> Box<dyn LocalizationStrategy>,
            || Box::new(BinarySearch::new()),
        ] {
            let mut sched = MultiErrorScheduler::new(LinearBatches::DEFAULT_BATCH);
            let mut evidence = EvidenceBase::new();
            for b in &branches {
                sched.add_error(
                    &nl,
                    &cone_suspects(b, &backbone),
                    ObservationWindow::whole_sweep(),
                    fresh(),
                );
            }
            // Overlap analysis: the backbone is the shared core, each
            // branch an exclusive region; only the last backbone cell
            // is the core's frontier.
            assert_eq!(sched.partition().shared.len(), backbone.len());
            assert_eq!(sched.partition().exclusive_sizes(), vec![8, 8, 8]);
            assert_eq!(sched.screen_cells(), vec![backbone[39]]);

            let (found, taps, ecos) = run_oracle(&mut sched, &mut evidence, &nl, &errors);
            assert_eq!(found, errors.iter().map(|&e| Some(e)).collect::<Vec<_>>());

            let (mut staps, mut secos) = (0, 0);
            for (k, b) in branches.iter().enumerate() {
                let (f, t, e) = run_single(&nl, &cone_suspects(b, &backbone), fresh(), errors[k]);
                assert_eq!(f, Some(errors[k]));
                staps += t;
                secos += e;
            }
            assert!(taps < staps, "shared {taps} !< sequential {staps} taps");
            assert!(ecos < secos, "shared {ecos} !< sequential {secos} ECOs");
        }
    }

    #[test]
    fn clean_frontier_exonerates_the_whole_core_for_one_tap() {
        let (nl, backbone, branches) = backbone_design(40, 3, 8);
        // Errors only in the branches: the screening tap on bb39 comes
        // back clean, so all 40 core cells resolve from evidence and
        // linear batching pays taps only inside the exclusive regions.
        let errors: Vec<CellId> = branches.iter().map(|b| b[5]).collect();
        let mut sched = MultiErrorScheduler::new(LinearBatches::DEFAULT_BATCH);
        let mut evidence = EvidenceBase::new();
        for b in &branches {
            sched.add_error(
                &nl,
                &cone_suspects(b, &backbone),
                ObservationWindow::whole_sweep(),
                Box::new(LinearBatches::default()),
            );
        }
        let plan = sched.plan_round(&mut evidence).unwrap();
        assert!(plan.screening);
        assert_eq!(plan.batches, vec![vec![backbone[39]]]);
        let amb = sched.record_round(&mut evidence, &HashMap::from([(backbone[39], None)]));
        assert!(amb.is_empty(), "clean frontier is unambiguous");
        let (found, taps, _) = run_oracle(&mut sched, &mut evidence, &nl, &errors);
        assert_eq!(found, errors.iter().map(|&e| Some(e)).collect::<Vec<_>>());
        // 1 screening tap + 3 × 8 branch taps; the 120 backbone
        // requests all resolve from evidence.
        assert_eq!(taps, 24);
        assert_eq!(
            sched.taps_requested(0) + sched.taps_requested(1) + sched.taps_requested(2),
            144
        );
    }

    #[test]
    fn diverging_frontier_keeps_its_fanin_alive_and_is_ambiguous() {
        let (nl, backbone, branches) = backbone_design(8, 2, 2);
        let mut sched = MultiErrorScheduler::new(8);
        let mut evidence = EvidenceBase::new();
        for b in &branches {
            sched.add_error(
                &nl,
                &cone_suspects(b, &backbone),
                ObservationWindow::whole_sweep(),
                Box::new(LinearBatches::default()),
            );
        }
        // Screening round: the core frontier, physically tapped once
        // for both tracks.
        let plan = sched.plan_round(&mut evidence).unwrap();
        assert!(plan.screening);
        assert_eq!(plan.batches, vec![vec![backbone[7]]]);
        // An error *in* the shared core: the frontier diverges, both
        // cones explain it, and no core cell is exonerated.
        let amb = sched.record_round(&mut evidence, &HashMap::from([(backbone[7], Some(0))]));
        assert_eq!(
            amb,
            vec![Ambiguity {
                cell: backbone[7],
                tracks: vec![0, 1],
            }]
        );
        // The next round is the strategies' first: the 8-cell batch
        // covers the backbone, minus the already-tapped frontier.
        let plan = sched.plan_round(&mut evidence).unwrap();
        assert!(!plan.screening);
        assert_eq!(plan.batches, vec![backbone[..7].to_vec()]);
        assert_eq!(sched.taps_requested(0) + sched.taps_requested(1), 16);
    }

    #[test]
    fn one_tap_serves_two_windows_with_different_verdicts() {
        // Two clusters suspect the same cell under different windows:
        // one physical tap measures the onset once, and each track
        // reads it under its own window — the (net, window) cache.
        let (nl, _, branches) = backbone_design(1, 1, 1);
        let cell = branches[0][0];
        let mut sched = MultiErrorScheduler::new(8);
        let mut evidence = EvidenceBase::new();
        sched.add_error(
            &nl,
            &[cell],
            ObservationWindow::flat(2),
            Box::new(LinearBatches::default()),
        );
        sched.add_error(
            &nl,
            &[cell],
            ObservationWindow::flat(10),
            Box::new(LinearBatches::default()),
        );
        let plan = sched.plan_round(&mut evidence).unwrap();
        assert_eq!(
            plan.batches,
            vec![vec![cell]],
            "both windows miss: one physical tap"
        );
        // The net first diverges on pattern 5: inside the second
        // track's window, outside the first's.
        let amb = sched.record_round(&mut evidence, &HashMap::from([(cell, Some(5))]));
        assert!(amb.is_empty(), "only one window sees the divergence");
        assert!(
            sched.plan_round(&mut evidence).is_none(),
            "everything is answerable from evidence"
        );
        assert_eq!(sched.localized(), vec![None, Some(cell)]);
    }

    #[test]
    fn screening_exonerates_per_window_when_the_frontier_diverges_late() {
        let (nl, backbone, branches) = backbone_design(4, 2, 2);
        let mut sched = MultiErrorScheduler::new(8);
        let mut evidence = EvidenceBase::new();
        for (b, w) in branches.iter().zip([2usize, 20]) {
            sched.add_error(
                &nl,
                &cone_suspects(b, &backbone),
                ObservationWindow::flat(w),
                Box::new(LinearBatches::default()),
            );
        }
        // The screening ECO carries the frontier plus both tracks'
        // piggybacked non-core (branch) requests; the core requests
        // are held back pending the frontier verdict.
        let plan = sched.plan_round(&mut evidence).unwrap();
        assert!(plan.screening);
        let mut expected = vec![backbone[3]];
        expected.extend_from_slice(&branches[0]);
        expected.extend_from_slice(&branches[1]);
        assert_eq!(plan.batches, vec![expected]);
        // The frontier first diverges on pattern 10: the whole core
        // is exonerated for the window-2 track (clean through 9) but
        // stays live for the window-20 track, which alone sees the
        // divergence — no ambiguity.
        let mut verdicts: HashMap<CellId, Option<usize>> = HashMap::from([(backbone[3], Some(10))]);
        for b in &branches {
            for &c in b {
                verdicts.insert(c, None);
            }
        }
        let amb = sched.record_round(&mut evidence, &verdicts);
        assert!(amb.is_empty());
        // Track 0's whole request is answered (exonerated core +
        // measured branch); only track 1's still-live core cells need
        // a second round.
        let plan = sched.plan_round(&mut evidence).unwrap();
        assert!(!plan.screening);
        assert_eq!(plan.batches, vec![backbone[..3].to_vec()]);
    }

    /// One state register fanning out into two outputs through
    /// different combinational cones — the FSM fan-out shape.
    fn fsm_fanout_design() -> (Netlist, CellId, Vec<CellId>) {
        let mut nl = Netlist::new("fsm");
        let a = nl.add_input("a").unwrap();
        let pre = nl
            .add_lut("pre", TruthTable::not(), &[nl.cell_output(a).unwrap()])
            .unwrap();
        let ff = nl
            .add_ff("state", false, nl.cell_output(pre).unwrap())
            .unwrap();
        let q = nl.cell_output(ff).unwrap();
        let a0 = nl.add_lut("a0", TruthTable::not(), &[q]).unwrap();
        nl.add_output("yA", nl.cell_output(a0).unwrap()).unwrap();
        let b0 = nl.add_lut("b0", TruthTable::not(), &[q]).unwrap();
        let b1 = nl
            .add_lut("b1", TruthTable::not(), &[nl.cell_output(b0).unwrap()])
            .unwrap();
        nl.add_output("yB", nl.cell_output(b1).unwrap()).unwrap();
        let pos = nl.primary_outputs();
        (nl, ff, pos)
    }

    fn cluster_for(nl: &Netlist, po: CellId, window: usize) -> FailureCluster {
        let mut signature = crate::diagnosis::ResponseSignature::default();
        signature.record(window);
        FailureCluster {
            outputs: vec![po],
            signature,
            cone: SuspectCone::fanin(nl, &[po]),
            window,
        }
    }

    #[test]
    fn fsm_fanout_clusters_merge_once_the_register_is_seen_diverging() {
        let (nl, ff, pos) = fsm_fanout_design();
        let clusters = vec![cluster_for(&nl, pos[0], 3), cluster_for(&nl, pos[1], 3)];
        // The deferred-merge protocol names the register as the
        // discriminating witness to tap.
        assert_eq!(fsm_merge_witnesses(&nl, &clusters), vec![ff]);
        // Screening evidence: the register diverged at pattern 1 —
        // inside the shared window. Same onset behind the same
        // register: one merged cluster over the cone intersection
        // (the state cone, shedding the per-output combinational
        // logic).
        let mut evidence = EvidenceBase::new();
        evidence.record(ff, Some(1));
        let merged = merge_fsm_clusters(&nl, clusters.clone(), &evidence);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].outputs, pos);
        assert_eq!(merged[0].window, 3);
        assert!(merged[0].cone.contains(ff));
        assert!(!merged[0].cone.contains(nl.find_cell("a0").unwrap()));
        assert!(!merged[0].cone.contains(nl.find_cell("b1").unwrap()));
        assert_eq!(merged[0].signature.count(), 1, "signatures union");

        // Different onsets = independent errors: left apart.
        let apart = merge_fsm_clusters(
            &nl,
            vec![cluster_for(&nl, pos[0], 3), cluster_for(&nl, pos[1], 7)],
            &evidence,
        );
        assert_eq!(apart.len(), 2);
    }

    #[test]
    fn clean_register_keeps_same_onset_clusters_apart() {
        // The documented PR 4 limitation, closed: two independent
        // same-onset errors behind a shared sequential trunk present
        // exactly like one FSM error at clustering time, but the
        // screening tap on the dominating register comes back clean —
        // the trunk never carried any corruption — so the deferred
        // merge keeps the clusters apart and both sites stay in play.
        let (nl, ff, pos) = fsm_fanout_design();
        let clusters = vec![cluster_for(&nl, pos[0], 3), cluster_for(&nl, pos[1], 3)];
        let mut evidence = EvidenceBase::new();
        evidence.record(ff, None); // clean across the sweep
        let apart = merge_fsm_clusters(&nl, clusters.clone(), &evidence);
        assert_eq!(apart.len(), 2, "clean trunk forbids the merge");
        // A register diverging only *after* the window is just as
        // exculpatory for these clusters.
        let mut late = EvidenceBase::new();
        late.record(ff, Some(9));
        assert_eq!(merge_fsm_clusters(&nl, clusters.clone(), &late).len(), 2);
        // And with no evidence at all the merge is conservatively
        // skipped rather than guessed.
        assert_eq!(
            merge_fsm_clusters(&nl, clusters, &EvidenceBase::new()).len(),
            2
        );
    }

    #[test]
    fn combinational_clusters_never_merge() {
        // Shared combinational backbone, no state register: the
        // dominating-core witness requires a flip-flop, so clusters
        // stay apart even with identical windows and rich evidence.
        let (nl, backbone, _) = backbone_design(4, 2, 2);
        let pos = nl.primary_outputs();
        let clusters = vec![cluster_for(&nl, pos[0], 0), cluster_for(&nl, pos[1], 0)];
        assert!(fsm_merge_witnesses(&nl, &clusters).is_empty());
        let mut evidence = EvidenceBase::new();
        for &c in &backbone {
            evidence.record(c, Some(0));
        }
        let merged = merge_fsm_clusters(&nl, clusters, &evidence);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn assumed_verdicts_are_never_tapped() {
        let (nl, backbone, branches) = backbone_design(4, 2, 2);
        let errors = [branches[0][1], branches[1][1]];
        let mut sched = MultiErrorScheduler::new(8);
        let mut evidence = EvidenceBase::new();
        for b in &branches {
            sched.add_error(
                &nl,
                &cone_suspects(b, &backbone),
                ObservationWindow::whole_sweep(),
                Box::new(LinearBatches::default()),
            );
        }
        // Detection already knows the branch tips diverge (they drive
        // the failing outputs).
        evidence.assume(branches[0][1], true);
        evidence.assume(branches[1][1], true);
        let (found, taps, _) = run_oracle(&mut sched, &mut evidence, &nl, &errors);
        assert_eq!(found, vec![Some(errors[0]), Some(errors[1])]);
        // 1 screening tap + br0_0 + br1_0; the assumed tips and the
        // exonerated 4-cell core never hit the device.
        assert_eq!(taps, 3);
    }

    #[test]
    fn finished_tracks_stop_requesting() {
        let (nl, backbone, branches) = backbone_design(4, 2, 2);
        let mut sched = MultiErrorScheduler::new(8);
        let mut evidence = EvidenceBase::new();
        for b in &branches {
            sched.add_error(
                &nl,
                &cone_suspects(b, &backbone),
                ObservationWindow::whole_sweep(),
                Box::new(LinearBatches::default()),
            );
        }
        // Error only in branch 0; branch 1's track exhausts its cone.
        let errors = [branches[0][0]];
        let (found, _, _) = run_oracle(&mut sched, &mut evidence, &nl, &errors);
        assert_eq!(found[0], Some(branches[0][0]));
        assert_eq!(found[1], None, "clean cone must not localize anything");
        assert!(
            sched.plan_round(&mut evidence).is_none(),
            "all tracks are done"
        );
    }
}

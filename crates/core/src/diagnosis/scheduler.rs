//! Batched tap planning across several concurrent localizations.
//!
//! The paper's loop localizes one error at a time: every observation
//! ECO serves exactly one suspect cone. With `k` live errors, that
//! wastes the tiled flow's cheap ECOs — one batch of inserted test
//! logic can serve *all* of them. [`MultiErrorScheduler`] runs one
//! [`LocalizationStrategy`] instance per error and, each round,
//! merges every strategy's tap requests into deduplicated physical
//! batches: overlapping cones request the same upstream cells, which
//! are tapped (and paid for) once, and a single re-implementation ECO
//! advances every live error's search.
//!
//! Two further mechanisms cut the physical tap bill below the naive
//! union:
//!
//! * a **verdict cache** — every observed (or
//!   [`assume`](MultiErrorScheduler::assume)d) tap verdict is
//!   remembered, so a cell never pays for a second tap no matter how
//!   many strategies ask about it, in whatever round; rounds whose
//!   requests are fully answered by the cache execute with *zero*
//!   physical ECOs;
//! * **shared-core screening** — before any strategy walks the
//!   [`ConePartition`]'s shared core, the scheduler taps only the
//!   core's *frontier* (the cells whose fanout escapes the core: on
//!   the DAG, every path from a core error to any output runs through
//!   them). A clean frontier exonerates the entire core at once —
//!   cells upstream of a silent frontier cannot host an observable
//!   error — and a diverging frontier cell keeps exactly its in-core
//!   fanin cone alive, which is also the evidence the attribution
//!   engine scores.
//!
//! The scheduler is pure decision logic — the session owns emulation
//! and the physical flow — so it is testable against a simulated
//! oracle exactly like the strategies themselves.

use std::collections::{HashMap, HashSet};

use netlist::{CellId, Netlist};

use crate::strategy::{LocalizationStrategy, TapObservation};

use super::cone::SuspectCone;
use super::partition::ConePartition;

/// One localization in flight.
struct Track {
    strategy: Box<dyn LocalizationStrategy>,
    cone: SuspectCone,
    /// Cells requested this round, in the strategy's (topological)
    /// order. Cleared when the round's verdicts are fed back.
    requested: Vec<CellId>,
    taps_requested: usize,
    rounds_joined: usize,
    done: bool,
}

/// Shared-core screening progress.
enum Screening {
    /// Not yet planned (first `plan_round` will emit it, if any).
    Planned,
    /// The screening batch is out; the next `record_round` resolves it.
    Pending,
    /// Resolved (or there was nothing to screen).
    Done,
}

/// One round's physical tap plan.
#[derive(Debug, Clone, Default)]
pub struct RoundPlan {
    /// The deduplicated union of all live tracks' requests — minus
    /// every cell whose verdict is already cached — split into batches
    /// of at most `max_taps_per_eco` cells. Each batch is one
    /// observation-tap ECO.
    pub batches: Vec<Vec<CellId>>,
    /// Whether this is the shared-core screening round (no track
    /// requested these cells; the scheduler did, to rule the whole
    /// core in or out at frontier cost).
    pub screening: bool,
}

impl RoundPlan {
    /// Total taps the round will insert.
    pub fn taps(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }
}

/// A diverging observation that more than one suspect cone can
/// explain; the attribution engine resolves the blame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ambiguity {
    /// The diverging tapped cell.
    pub cell: CellId,
    /// Indices of every track whose cone contains the cell.
    pub tracks: Vec<usize>,
}

/// Plans shared observation-tap batches for `k` concurrent error
/// localizations.
///
/// Protocol: [`add_error`](Self::add_error) once per suspected error
/// (and optionally [`assume`](Self::assume) verdicts detection
/// already established), then alternate
/// [`plan_round`](Self::plan_round) (`None` = all tracks finished)
/// with the physical tap ECOs and
/// [`record_round`](Self::record_round);
/// [`localized`](Self::localized) yields the per-error answers.
pub struct MultiErrorScheduler {
    tracks: Vec<Track>,
    partition: ConePartition,
    max_taps_per_eco: usize,
    /// Every verdict ever observed or assumed, keyed by tapped cell.
    verdicts: HashMap<CellId, bool>,
    /// Shared-core frontier: each frontier cell paired with its
    /// in-core fanin cone (the cells it testifies for).
    screen: Vec<(CellId, SuspectCone)>,
    screening: Screening,
}

impl MultiErrorScheduler {
    /// A scheduler that caps each physical ECO at `max_taps_per_eco`
    /// inserted taps (observation pads are scarce).
    ///
    /// # Panics
    ///
    /// Panics on a zero cap.
    pub fn new(max_taps_per_eco: usize) -> Self {
        assert!(max_taps_per_eco > 0, "tap cap must be positive");
        Self {
            tracks: Vec::new(),
            partition: ConePartition::default(),
            max_taps_per_eco,
            verdicts: HashMap::new(),
            screen: Vec::new(),
            screening: Screening::Planned,
        }
    }

    /// Registers one suspected error: its topologically-sorted suspect
    /// list and a fresh strategy to drive. Returns the track index.
    /// All errors must be registered before the first
    /// [`plan_round`](Self::plan_round).
    pub fn add_error(
        &mut self,
        golden: &Netlist,
        suspects: &[CellId],
        mut strategy: Box<dyn LocalizationStrategy>,
    ) -> usize {
        strategy.begin(golden, suspects);
        self.tracks.push(Track {
            strategy,
            cone: suspects.iter().copied().collect(),
            requested: Vec::new(),
            taps_requested: 0,
            rounds_joined: 0,
            done: false,
        });
        let partition = ConePartition::split(
            &self
                .tracks
                .iter()
                .map(|t| t.cone.clone())
                .collect::<Vec<_>>(),
        );
        // The frontier's fanin traversals are the expensive part of a
        // registration; redo them only when this cone actually changed
        // the shared core (never for the first cone, or disjoint ones).
        let shared_changed = partition.shared != self.partition.shared;
        self.partition = partition;
        if shared_changed {
            self.recompute_screen(golden);
        }
        self.tracks.len() - 1
    }

    /// Seeds the verdict cache with an observation that is already
    /// known — e.g. the detection sweep measured every primary
    /// output, so each PO driver's divergence verdict is free. Cached
    /// cells are never physically tapped.
    pub fn assume(&mut self, cell: CellId, diverged: bool) {
        self.verdicts.insert(cell, diverged);
    }

    /// Number of registered tracks.
    pub fn tracks(&self) -> usize {
        self.tracks.len()
    }

    /// The ownership partition of the registered suspect cones.
    pub fn partition(&self) -> &ConePartition {
        &self.partition
    }

    /// Cells track `k` asked to tap in the current round.
    pub fn requested(&self, k: usize) -> &[CellId] {
        &self.tracks[k].requested
    }

    /// Total taps track `k` has requested so far (before cross-track
    /// deduplication and verdict-cache hits — the difference against
    /// the physical tap count is the sharing win).
    pub fn taps_requested(&self, k: usize) -> usize {
        self.tracks[k].taps_requested
    }

    /// Rounds track `k` participated in (including rounds served
    /// entirely from the verdict cache).
    pub fn rounds_joined(&self, k: usize) -> usize {
        self.tracks[k].rounds_joined
    }

    /// The shared-core frontier cells the screening round taps, in
    /// ascending cell order (empty when cones do not overlap).
    pub fn screen_cells(&self) -> Vec<CellId> {
        self.screen.iter().map(|&(c, _)| c).collect()
    }

    /// Collects every live track's next tap request and merges them
    /// into deduplicated, capped batches of *cache-missing* cells.
    /// The very first round screens the shared core's frontier
    /// instead (when cones overlap). Rounds whose requests the cache
    /// already answers are fed back internally and cost nothing;
    /// `None` means every track has finished.
    pub fn plan_round(&mut self) -> Option<RoundPlan> {
        if matches!(self.screening, Screening::Planned) {
            let cells: Vec<CellId> = self
                .screen
                .iter()
                .map(|&(c, _)| c)
                .filter(|c| !self.verdicts.contains_key(c))
                .collect();
            if cells.is_empty() {
                // Nothing to tap — resolve from whatever is cached.
                self.screening = Screening::Done;
                self.resolve_screening();
            } else {
                self.screening = Screening::Pending;
                return Some(RoundPlan {
                    batches: self.chunk(cells),
                    screening: true,
                });
            }
        }
        loop {
            let mut merged: Vec<CellId> = Vec::new();
            let mut seen: HashSet<CellId> = HashSet::new();
            let mut any_request = false;
            for t in &mut self.tracks {
                if t.done {
                    continue;
                }
                if t.requested.is_empty() {
                    let req = t.strategy.next_taps();
                    if req.is_empty() {
                        t.done = true;
                        continue;
                    }
                    t.taps_requested += req.len();
                    t.rounds_joined += 1;
                    t.requested = req;
                }
                any_request = true;
                for &c in &t.requested {
                    if !self.verdicts.contains_key(&c) && seen.insert(c) {
                        merged.push(c);
                    }
                }
            }
            if !any_request {
                return None;
            }
            if merged.is_empty() {
                // Every requested cell is cached: answer the whole
                // round for free and ask the strategies again.
                self.feed_requested(&HashMap::new());
                continue;
            }
            return Some(RoundPlan {
                batches: self.chunk(merged),
                screening: false,
            });
        }
    }

    /// Merges the round's fresh verdicts into the cache, then either
    /// resolves a pending shared-core screening or feeds every
    /// requesting track its observations (each sees its own requests,
    /// in its own order, cached verdicts included). Returns the
    /// diverging cells that more than one cone can explain.
    ///
    /// Divergence is credited *conservatively*: every requesting
    /// track sees the global verdict, because a tap diverges whenever
    /// any upstream error propagates to it. When two live errors
    /// share a cone, a shared-core divergence can therefore mislead
    /// the track whose error did not cause it — the returned
    /// [`Ambiguity`] list names exactly those observations so the
    /// caller can score them with
    /// [`crate::diagnosis::FaultAttribution`].
    pub fn record_round(&mut self, fresh: &HashMap<CellId, bool>) -> Vec<Ambiguity> {
        for (&c, &v) in fresh {
            self.verdicts.insert(c, v);
        }
        if matches!(self.screening, Screening::Pending) {
            self.screening = Screening::Done;
            self.resolve_screening();
            // Frontier divergences are ambiguous by construction
            // (frontier ⊆ shared core ⇒ ≥ 2 owning cones).
            return self
                .screen
                .iter()
                .filter(|(c, _)| self.verdicts.get(c).copied().unwrap_or(false))
                .map(|&(cell, _)| Ambiguity {
                    cell,
                    tracks: self.owners(cell),
                })
                .collect();
        }
        self.feed_requested(fresh)
    }

    /// Per-track localization results, in registration order.
    pub fn localized(&self) -> Vec<Option<CellId>> {
        self.tracks.iter().map(|t| t.strategy.localized()).collect()
    }

    fn chunk(&self, cells: Vec<CellId>) -> Vec<Vec<CellId>> {
        cells
            .chunks(self.max_taps_per_eco)
            .map(<[CellId]>::to_vec)
            .collect()
    }

    fn owners(&self, cell: CellId) -> Vec<usize> {
        self.tracks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.cone.contains(cell))
            .map(|(i, _)| i)
            .collect()
    }

    /// The shared core's frontier: core cells whose output net feeds
    /// anything outside the core (another cell region or a primary
    /// output). Every observable core error must diverge at some
    /// frontier cell, because exclusive regions never feed *into* the
    /// core (a cell upstream of a shared cell is itself shared).
    fn recompute_screen(&mut self, golden: &Netlist) {
        self.screen.clear();
        let shared = &self.partition.shared;
        for c in shared.iter() {
            let Ok(net) = golden.cell_output(c) else {
                continue;
            };
            let Ok(n) = golden.net(net) else {
                continue;
            };
            if n.sinks.iter().any(|s| !shared.contains(s.cell)) {
                self.screen
                    .push((c, SuspectCone::fanin(golden, &[c]).intersect(shared)));
            }
        }
    }

    /// Applies the screening verdicts: every core cell that no
    /// diverging frontier cell can observe is exonerated (a cached
    /// `false` verdict), so strategies sweep the core from the cache
    /// instead of the device.
    fn resolve_screening(&mut self) {
        let mut live = SuspectCone::new();
        for (cell, in_core_fanin) in &self.screen {
            if self.verdicts.get(cell).copied().unwrap_or(false) {
                live.union_with(in_core_fanin);
            }
        }
        for c in self.partition.shared.subtract(&live).iter() {
            self.verdicts.entry(c).or_insert(false);
        }
    }

    /// Feeds each requesting track its verdicts (fresh merged over
    /// cache; a missing verdict reads as "did not diverge") and
    /// flags the fresh divergences that more than one cone explains.
    fn feed_requested(&mut self, fresh: &HashMap<CellId, bool>) -> Vec<Ambiguity> {
        let mut ambiguities: Vec<Ambiguity> = Vec::new();
        let mut flagged: HashSet<CellId> = HashSet::new();
        for k in 0..self.tracks.len() {
            if self.tracks[k].requested.is_empty() {
                continue;
            }
            let requested = std::mem::take(&mut self.tracks[k].requested);
            let obs: Vec<TapObservation> = requested
                .iter()
                .map(|&cell| TapObservation {
                    cell,
                    diverged: self.verdicts.get(&cell).copied().unwrap_or(false),
                })
                .collect();
            for o in obs.iter().filter(|o| o.diverged) {
                if !fresh.contains_key(&o.cell) || !flagged.insert(o.cell) {
                    continue;
                }
                let owners = self.owners(o.cell);
                if owners.len() > 1 {
                    ambiguities.push(Ambiguity {
                        cell: o.cell,
                        tracks: owners,
                    });
                }
            }
            self.tracks[k].strategy.observe(&obs);
        }
        ambiguities
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{BinarySearch, LinearBatches};
    use netlist::TruthTable;

    /// A backbone chain of `bb` inverters fanning out into `branches`
    /// chains of `blen` inverters, each ending in its own output.
    /// Returns (netlist, backbone cells, per-branch cells).
    fn backbone_design(
        bb: usize,
        branches: usize,
        blen: usize,
    ) -> (Netlist, Vec<CellId>, Vec<Vec<CellId>>) {
        let mut nl = Netlist::new("backbone");
        let pi = nl.add_input("a").unwrap();
        let mut net = nl.cell_output(pi).unwrap();
        let mut backbone = Vec::new();
        for k in 0..bb {
            let c = nl
                .add_lut(format!("bb{k}"), TruthTable::not(), &[net])
                .unwrap();
            net = nl.cell_output(c).unwrap();
            backbone.push(c);
        }
        let mut branch_cells = Vec::new();
        for b in 0..branches {
            let mut bnet = net;
            let mut cells = Vec::new();
            for k in 0..blen {
                let c = nl
                    .add_lut(format!("br{b}_{k}"), TruthTable::not(), &[bnet])
                    .unwrap();
                bnet = nl.cell_output(c).unwrap();
                cells.push(c);
            }
            nl.add_output(format!("y{b}"), bnet).unwrap();
            branch_cells.push(cells);
        }
        (nl, backbone, branch_cells)
    }

    /// Runs the scheduler against a perfect oracle (tap diverges iff
    /// an error lies in its fanin cone). Returns (localized, taps,
    /// ecos).
    fn run_oracle(
        sched: &mut MultiErrorScheduler,
        nl: &Netlist,
        errors: &[CellId],
    ) -> (Vec<Option<CellId>>, usize, usize) {
        let fanouts: Vec<SuspectCone> = errors
            .iter()
            .map(|&e| SuspectCone::from_cells(nl.fanout_cone(&[e])))
            .collect();
        let (mut taps, mut ecos) = (0usize, 0usize);
        let mut guard = 0;
        while let Some(plan) = sched.plan_round() {
            let mut verdicts = HashMap::new();
            for batch in &plan.batches {
                taps += batch.len();
                ecos += 1;
                for &c in batch {
                    verdicts.insert(c, fanouts.iter().any(|f| f.contains(c)));
                }
            }
            sched.record_round(&verdicts);
            guard += 1;
            assert!(guard <= 256, "scheduler failed to converge");
        }
        (sched.localized(), taps, ecos)
    }

    /// Runs one strategy alone on one cone against the same oracle.
    fn run_single(
        nl: &Netlist,
        suspects: &[CellId],
        strategy: Box<dyn LocalizationStrategy>,
        error: CellId,
    ) -> (Option<CellId>, usize, usize) {
        let mut sched = MultiErrorScheduler::new(LinearBatches::DEFAULT_BATCH);
        sched.add_error(nl, suspects, strategy);
        let (found, taps, ecos) = run_oracle(&mut sched, nl, &[error]);
        (found[0], taps, ecos)
    }

    fn cone_suspects(po_branch: &[CellId], backbone: &[CellId]) -> Vec<CellId> {
        // Topological order: backbone first, then the branch.
        let mut v = backbone.to_vec();
        v.extend_from_slice(po_branch);
        v
    }

    #[test]
    fn shared_batches_beat_sequential_localization() {
        let (nl, backbone, branches) = backbone_design(40, 3, 8);
        let errors: Vec<CellId> = branches.iter().map(|b| b[5]).collect();
        for fresh in [
            (|| Box::new(LinearBatches::default()) as Box<dyn LocalizationStrategy>)
                as fn() -> Box<dyn LocalizationStrategy>,
            || Box::new(BinarySearch::new()),
        ] {
            let mut sched = MultiErrorScheduler::new(LinearBatches::DEFAULT_BATCH);
            for b in &branches {
                sched.add_error(&nl, &cone_suspects(b, &backbone), fresh());
            }
            // Overlap analysis: the backbone is the shared core, each
            // branch an exclusive region; only the last backbone cell
            // is the core's frontier.
            assert_eq!(sched.partition().shared.len(), backbone.len());
            assert_eq!(sched.partition().exclusive_sizes(), vec![8, 8, 8]);
            assert_eq!(sched.screen_cells(), vec![backbone[39]]);

            let (found, taps, ecos) = run_oracle(&mut sched, &nl, &errors);
            assert_eq!(found, errors.iter().map(|&e| Some(e)).collect::<Vec<_>>());

            let (mut staps, mut secos) = (0, 0);
            for (k, b) in branches.iter().enumerate() {
                let (f, t, e) = run_single(&nl, &cone_suspects(b, &backbone), fresh(), errors[k]);
                assert_eq!(f, Some(errors[k]));
                staps += t;
                secos += e;
            }
            assert!(taps < staps, "shared {taps} !< sequential {staps} taps");
            assert!(ecos < secos, "shared {ecos} !< sequential {secos} ECOs");
        }
    }

    #[test]
    fn clean_frontier_exonerates_the_whole_core_for_one_tap() {
        let (nl, backbone, branches) = backbone_design(40, 3, 8);
        // Errors only in the branches: the screening tap on bb39 comes
        // back clean, so all 40 core cells resolve from the cache and
        // linear batching pays taps only inside the exclusive regions.
        let errors: Vec<CellId> = branches.iter().map(|b| b[5]).collect();
        let mut sched = MultiErrorScheduler::new(LinearBatches::DEFAULT_BATCH);
        for b in &branches {
            sched.add_error(
                &nl,
                &cone_suspects(b, &backbone),
                Box::new(LinearBatches::default()),
            );
        }
        let plan = sched.plan_round().unwrap();
        assert!(plan.screening);
        assert_eq!(plan.batches, vec![vec![backbone[39]]]);
        let amb = sched.record_round(&HashMap::from([(backbone[39], false)]));
        assert!(amb.is_empty(), "clean frontier is unambiguous");
        let (found, taps, _) = run_oracle(&mut sched, &nl, &errors);
        assert_eq!(found, errors.iter().map(|&e| Some(e)).collect::<Vec<_>>());
        // 1 screening tap + 3 × 8 branch taps; the 120 backbone
        // requests all hit the cache.
        assert_eq!(taps, 24);
        assert_eq!(
            sched.taps_requested(0) + sched.taps_requested(1) + sched.taps_requested(2),
            144
        );
    }

    #[test]
    fn diverging_frontier_keeps_its_fanin_alive_and_is_ambiguous() {
        let (nl, backbone, branches) = backbone_design(8, 2, 2);
        let mut sched = MultiErrorScheduler::new(8);
        for b in &branches {
            sched.add_error(
                &nl,
                &cone_suspects(b, &backbone),
                Box::new(LinearBatches::default()),
            );
        }
        // Screening round: the core frontier, physically tapped once
        // for both tracks.
        let plan = sched.plan_round().unwrap();
        assert!(plan.screening);
        assert_eq!(plan.batches, vec![vec![backbone[7]]]);
        // An error *in* the shared core: the frontier diverges, both
        // cones explain it, and no core cell is exonerated.
        let amb = sched.record_round(&HashMap::from([(backbone[7], true)]));
        assert_eq!(
            amb,
            vec![Ambiguity {
                cell: backbone[7],
                tracks: vec![0, 1],
            }]
        );
        // The next round is the strategies' first: the 8-cell batch
        // covers the backbone, minus the already-tapped frontier.
        let plan = sched.plan_round().unwrap();
        assert!(!plan.screening);
        assert_eq!(plan.batches, vec![backbone[..7].to_vec()]);
        assert_eq!(sched.taps_requested(0) + sched.taps_requested(1), 16);
    }

    #[test]
    fn assumed_verdicts_are_never_tapped() {
        let (nl, backbone, branches) = backbone_design(4, 2, 2);
        let errors = [branches[0][1], branches[1][1]];
        let mut sched = MultiErrorScheduler::new(8);
        for b in &branches {
            sched.add_error(
                &nl,
                &cone_suspects(b, &backbone),
                Box::new(LinearBatches::default()),
            );
        }
        // Detection already knows the branch tips diverge (they drive
        // the failing outputs).
        sched.assume(branches[0][1], true);
        sched.assume(branches[1][1], true);
        let (found, taps, _) = run_oracle(&mut sched, &nl, &errors);
        assert_eq!(found, vec![Some(errors[0]), Some(errors[1])]);
        // 1 screening tap + br0_0 + br1_0; the assumed tips and the
        // exonerated 4-cell core never hit the device.
        assert_eq!(taps, 3);
    }

    #[test]
    fn finished_tracks_stop_requesting() {
        let (nl, backbone, branches) = backbone_design(4, 2, 2);
        let mut sched = MultiErrorScheduler::new(8);
        for b in &branches {
            sched.add_error(
                &nl,
                &cone_suspects(b, &backbone),
                Box::new(LinearBatches::default()),
            );
        }
        // Error only in branch 0; branch 1's track exhausts its cone.
        let errors = [branches[0][0]];
        let (found, _, _) = run_oracle(&mut sched, &nl, &errors);
        assert_eq!(found[0], Some(branches[0][0]));
        assert_eq!(found[1], None, "clean cone must not localize anything");
        assert!(sched.plan_round().is_none(), "all tracks are done");
    }
}

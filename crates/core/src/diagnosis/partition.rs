//! Ownership partitioning of overlapping suspect cones.
//!
//! When `k` errors are diagnosed simultaneously, their suspect cones
//! usually overlap (shared upstream logic feeds several failing
//! outputs). [`ConePartition::split`] decomposes the cones into
//! disjoint regions:
//!
//! * an **exclusive** region per error — cells only that error's cone
//!   implicates, where a diverging observation is unambiguous
//!   evidence;
//! * one **shared core** — cells implicated by two or more cones,
//!   where blame needs the attribution engine
//!   ([`crate::diagnosis::attribution`]).
//!
//! The scheduler uses the partition to flag ambiguous observations;
//! reports use it to quantify how entangled a multi-error scenario is.

use netlist::CellId;

use super::cone::SuspectCone;

/// Who owns a suspect cell in a `k`-cone overlap analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ownership {
    /// Only cone `0.0`'s error can explain evidence at this cell.
    Exclusive(usize),
    /// Two or more cones implicate the cell; blame is ambiguous.
    Shared,
}

/// Disjoint decomposition of `k` (possibly overlapping) suspect cones.
///
/// ```
/// use netlist::CellId;
/// use tiling::diagnosis::{ConePartition, Ownership, SuspectCone};
///
/// let a: SuspectCone = [0, 1, 2].map(CellId::new).into_iter().collect();
/// let b: SuspectCone = [2, 3].map(CellId::new).into_iter().collect();
/// let p = ConePartition::split(&[a, b]);
/// assert_eq!(p.exclusive[0].cells(), [0, 1].map(CellId::new).to_vec());
/// assert_eq!(p.shared.cells(), vec![CellId::new(2)]);
/// assert_eq!(p.owner(CellId::new(3)), Some(Ownership::Exclusive(1)));
/// assert_eq!(p.owner(CellId::new(2)), Some(Ownership::Shared));
/// assert_eq!(p.owner(CellId::new(9)), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConePartition {
    /// Per input cone: the cells no other cone implicates.
    pub exclusive: Vec<SuspectCone>,
    /// Cells implicated by at least two cones.
    pub shared: SuspectCone,
}

impl ConePartition {
    /// Splits `cones` into per-cone exclusive regions plus the shared
    /// core. The regions are pairwise disjoint and their union is the
    /// union of the input cones.
    pub fn split(cones: &[SuspectCone]) -> Self {
        let mut shared = SuspectCone::new();
        for (i, a) in cones.iter().enumerate() {
            for b in cones.iter().skip(i + 1) {
                shared.union_with(&a.intersect(b));
            }
        }
        let exclusive = cones.iter().map(|c| c.subtract(&shared)).collect();
        Self { exclusive, shared }
    }

    /// Which region `cell` falls in, if any.
    pub fn owner(&self, cell: CellId) -> Option<Ownership> {
        if self.shared.contains(cell) {
            return Some(Ownership::Shared);
        }
        self.exclusive
            .iter()
            .position(|c| c.contains(cell))
            .map(Ownership::Exclusive)
    }

    /// Union of every region (= union of the input cones).
    pub fn coverage(&self) -> SuspectCone {
        let mut all = self.shared.clone();
        for c in &self.exclusive {
            all.union_with(c);
        }
        all
    }

    /// Sizes of the exclusive regions, in input-cone order.
    pub fn exclusive_sizes(&self) -> Vec<usize> {
        self.exclusive.iter().map(SuspectCone::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[usize]) -> SuspectCone {
        xs.iter().map(|&i| CellId::new(i)).collect()
    }

    #[test]
    fn split_is_a_disjoint_cover() {
        let cones = [ids(&[0, 1, 2, 3]), ids(&[2, 3, 4]), ids(&[3, 5])];
        let p = ConePartition::split(&cones);
        assert_eq!(p.exclusive[0], ids(&[0, 1]));
        assert_eq!(p.exclusive[1], ids(&[4]));
        assert_eq!(p.exclusive[2], ids(&[5]));
        assert_eq!(p.shared, ids(&[2, 3]));
        // Disjoint…
        for (i, a) in p.exclusive.iter().enumerate() {
            assert!(!a.intersects(&p.shared));
            for b in p.exclusive.iter().skip(i + 1) {
                assert!(!a.intersects(b));
            }
        }
        // …and covering.
        let mut union = SuspectCone::new();
        for c in &cones {
            union.union_with(c);
        }
        assert_eq!(p.coverage(), union);
        assert_eq!(p.exclusive_sizes(), vec![2, 1, 1]);
    }

    #[test]
    fn disjoint_cones_have_empty_shared_core() {
        let p = ConePartition::split(&[ids(&[0, 1]), ids(&[2])]);
        assert!(p.shared.is_empty());
        assert_eq!(p.owner(CellId::new(1)), Some(Ownership::Exclusive(0)));
    }

    #[test]
    fn identical_cones_are_entirely_shared() {
        let p = ConePartition::split(&[ids(&[7, 8]), ids(&[7, 8])]);
        assert!(p.exclusive.iter().all(SuspectCone::is_empty));
        assert_eq!(p.shared.len(), 2);
    }
}

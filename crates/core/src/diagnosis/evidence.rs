//! The shared causal-evidence layer behind every localization.
//!
//! Serial and concurrent diagnosis are the same evidence-accumulation
//! process: a detection sweep measures *when* each primary output
//! first diverges, every observation tap measures *when* its net
//! first diverges, and screening/alibi reasoning turns those onsets
//! into verdicts about candidate error sites. [`EvidenceBase`] owns
//! all of it:
//!
//! * the **(net, window)-keyed verdict cache** — everything known
//!   about each net's divergence onset, stored as a pair of bounds
//!   ([`diverged_by`](EvidenceBase::diverged_by) /
//!   [`clean_through`](EvidenceBase::clean_through)) that answer
//!   windowed queries ([`verdict`](EvidenceBase::verdict)). A
//!   physical measurement collapses both bounds onto the exact onset;
//!   assumptions and screening exonerations contribute one-sided
//!   bounds that answer exactly the windows they soundly can. The
//!   bounds can never contradict: an exact measurement wins over any
//!   derived bound, and a derived bound is clamped below a known
//!   onset (see [`exonerate_through`](EvidenceBase::exonerate_through));
//! * the **alibi index** — per-primary-output divergence onsets and
//!   min-flip-flop-depth tables, built once per response sweep, which
//!   power causal pruning ([`prune_cone`](EvidenceBase::prune_cone)),
//!   causal windows ([`causal_window`](EvidenceBase::causal_window))
//!   and temporal suspect ordering
//!   ([`order_suspects`](EvidenceBase::order_suspects));
//! * **free seeding** — building the base from a sweep
//!   ([`from_sweep`](EvidenceBase::from_sweep)) records every PO
//!   driver's exact onset, so any consumer's first questions are
//!   answered without a physical tap.
//!
//! Consumers are narrow: [`crate::strategy::LocalizationStrategy`]
//! reads verdicts for the cells it requested,
//! [`crate::diagnosis::MultiErrorScheduler`] plans taps for the
//! queries the base cannot answer, and
//! [`crate::session::DebugSession`] records physical measurements.
//! No pruning or window logic lives anywhere else.

use std::cell::Cell;
use std::collections::HashMap;

use netlist::{CellId, Netlist};

use super::attribution::{FailureCluster, ResponseMatrix};
use super::cone::SuspectCone;

/// What is known about one net's divergence onset: a pair of bounds
/// that together answer windowed verdict queries.
///
/// Invariants: when both bounds are present, `clean_through <
/// diverged_by` — the bounds never contradict — and exact
/// measurements win over derived bounds: once a physical measurement
/// is folded in, the bounds are pinned to it and assumptions or
/// exonerations can no longer move them in either direction.
#[derive(Debug, Clone, Copy, Default)]
struct CellKnowledge {
    /// `Some(p)`: the net is known to diverge on pattern `p`, hence
    /// within every window `>= p`.
    diverged_by: Option<usize>,
    /// `Some(w)`: the net is known clean on every pattern `<= w`.
    clean_through: Option<usize>,
    /// The exact measured onset, once a physical measurement was
    /// folded in (`Some(None)` = measured clean across the sweep).
    measured: Option<Option<usize>>,
}

impl CellKnowledge {
    /// The verdict for the observation window `[0, window]`, if the
    /// bounds determine it.
    fn verdict(&self, window: usize) -> Option<bool> {
        if self.diverged_by.is_some_and(|p| p <= window) {
            return Some(true);
        }
        if self.clean_through.is_some_and(|c| c >= window) {
            return Some(false);
        }
        None
    }

    /// Folds in an exact measurement: the first diverging pattern
    /// over the whole sweep (`None` = clean throughout). The
    /// measurement is ground truth — it *replaces* whatever derived
    /// bounds were accumulated (a masking-blind exoneration, a
    /// whole-sweep assumption), and pins the bounds so later derived
    /// updates cannot move them. Repeated measurements of the same
    /// net merge by earliest onset (an observed divergence cannot be
    /// un-observed).
    fn record_measured(&mut self, onset: Option<usize>) {
        let merged = match self.measured {
            None => onset,
            Some(prev) => match (prev, onset) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (Some(a), None) => Some(a),
                (None, other) => other,
            },
        };
        self.measured = Some(merged);
        match merged {
            Some(p) => {
                self.diverged_by = Some(p);
                self.clean_through = p.checked_sub(1);
            }
            None => {
                self.diverged_by = None;
                self.clean_through = Some(EvidenceBase::WHOLE_SWEEP);
            }
        }
    }

    /// Returns `true` when the update was clamped: ignored because a
    /// measurement already pinned the bounds, or forced to pull an
    /// existing clean bound down to keep the invariant.
    fn note_diverged_by(&mut self, p: usize) -> bool {
        if self.measured.is_some() {
            return true; // the measurement already settled everything
        }
        self.diverged_by = Some(self.diverged_by.map_or(p, |q| q.min(p)));
        // Keep the invariant: clean bounds stop strictly below the
        // earliest known divergence.
        let mut clamped = false;
        if let Some(d) = self.diverged_by {
            match d.checked_sub(1) {
                Some(limit) => {
                    if self.clean_through.is_some_and(|c| c > limit) {
                        self.clean_through = Some(limit);
                        clamped = true;
                    }
                }
                None => {
                    clamped = self.clean_through.take().is_some();
                }
            }
        }
        clamped
    }

    /// Returns `true` when the requested bound was clamped below a
    /// known divergence onset (or ignored outright because a
    /// measurement already pinned the bounds).
    fn note_clean_through(&mut self, w: usize) -> bool {
        if self.measured.is_some() {
            return true; // the measurement already settled everything
        }
        // A derived clean bound can never leapfrog a known onset.
        let (w, clamped) = match self.diverged_by {
            Some(0) => return true,
            Some(d) => (w.min(d - 1), w > d - 1),
            None => (w, false),
        };
        self.clean_through = Some(self.clean_through.map_or(w, |q| q.max(w)));
        clamped
    }

    /// Whether the bounds pin the onset down exactly — a physical tap
    /// can teach nothing more.
    fn exact(&self) -> bool {
        self.measured.is_some()
            || self.clean_through == Some(EvidenceBase::WHOLE_SWEEP)
            || self
                .diverged_by
                .is_some_and(|p| p == 0 || self.clean_through.is_some_and(|c| c + 1 >= p))
    }
}

/// One failure cluster's observation window, with optional causal
/// sharpening.
///
/// The window ends at the cluster's earliest failing pattern: by
/// then, the divergence that exposed the cluster had already
/// happened, so later evidence belongs to other errors. The *causal*
/// variant additionally accounts for propagation latency — a
/// suspect's divergence can only explain a failure at pattern `end`
/// if it occurred at least `depth` patterns earlier, where `depth` is
/// the suspect's minimum flip-flop distance to the cluster's
/// outputs. Without it, a slower upstream error's wavefront passing
/// *through* the suspect region inside the window would be blamed
/// for a failure it cannot have caused yet.
#[derive(Debug, Clone, Default)]
pub struct ObservationWindow {
    end: usize,
    /// Minimum FF distance from each fanin cell to the cluster's
    /// outputs (empty for a flat window: every cell judged at `end`).
    depths: HashMap<CellId, usize>,
}

impl ObservationWindow {
    /// A flat window: every suspect judged over `[0, end]`.
    pub fn flat(end: usize) -> Self {
        Self {
            end,
            depths: HashMap::new(),
        }
    }

    /// The unbounded window: every suspect judged over the whole
    /// stimulus sweep (how a track registered without failure-onset
    /// information observes).
    pub fn whole_sweep() -> Self {
        Self::flat(EvidenceBase::WHOLE_SWEEP)
    }

    /// A causal window ending at `end`: each suspect judged over
    /// `[0, end - ffdepth(suspect -> outputs)]`.
    pub fn causal(golden: &Netlist, outputs: &[CellId], end: usize) -> Self {
        Self::from_depths(end, causal_depths(golden, outputs))
    }

    /// A causal window over a precomputed depth table (e.g. derived
    /// from [`EvidenceBase::cluster_depths`], avoiding a second graph
    /// traversal per cluster).
    pub fn from_depths(end: usize, depths: HashMap<CellId, usize>) -> Self {
        Self { end, depths }
    }

    /// End of the window (the cluster's earliest failing pattern).
    pub fn end(&self) -> usize {
        self.end
    }

    /// Whether the window carries a causal depth table (a flat window
    /// judges every cell at [`end`](Self::end)).
    pub fn is_causal(&self) -> bool {
        !self.depths.is_empty()
    }

    /// Minimum FF distance from `cell` to the cluster's outputs (0
    /// for a flat window or a cell outside the fanin).
    ///
    /// Beyond shrinking the cell's verdict window, this orders
    /// suspects *temporally*: `topo_order` treats flip-flops as
    /// sources, so on sequential cones plain topological rank can
    /// place a downstream-of-FF cell before its temporal ancestors —
    /// sorting by descending depth (ties broken by rank) restores
    /// "the first diverging suspect is the error site" for
    /// [`crate::strategy::LinearBatches`].
    pub fn depth_of(&self, cell: CellId) -> usize {
        self.depths.get(&cell).copied().unwrap_or(0)
    }

    /// Whether `cell` can causally reach the window's outputs at all
    /// within the window (its depth table knows it, and the distance
    /// fits). Flat windows make no causal claims: everything is
    /// feasible.
    pub fn feasible(&self, cell: CellId) -> bool {
        !self.is_causal() || self.depths.get(&cell).is_some_and(|&d| d <= self.end)
    }

    /// The effective window end for one cell.
    pub fn for_cell(&self, cell: CellId) -> usize {
        self.end.saturating_sub(self.depth_of(cell))
    }
}

/// Minimum flip-flop distance from every fanin cell to any of
/// `outputs`: a 0-1 BFS backward over driver edges, where stepping
/// *into* a flip-flop costs one cycle (its input is latched one
/// pattern before its output is seen) and combinational edges are
/// free. Feedback loops are handled naturally — a cycle always
/// crosses a flip-flop, so relaxation terminates.
pub(crate) fn causal_depths(golden: &Netlist, outputs: &[CellId]) -> HashMap<CellId, usize> {
    use std::collections::VecDeque;
    let mut depth: HashMap<CellId, usize> = HashMap::new();
    let mut dq: VecDeque<(CellId, usize)> = VecDeque::new();
    for &o in outputs {
        depth.insert(o, 0);
        dq.push_back((o, 0));
    }
    while let Some((c, d)) = dq.pop_front() {
        if depth.get(&c).is_some_and(|&x| x < d) {
            continue;
        }
        let Ok(cell) = golden.cell(c) else { continue };
        let step = usize::from(cell.is_sequential());
        for &net in &cell.inputs {
            let Some(u) = golden.net(net).ok().and_then(|n| n.driver) else {
                continue;
            };
            let nd = d + step;
            if depth.get(&u).is_none_or(|&x| nd < x) {
                depth.insert(u, nd);
                if step == 0 {
                    dq.push_front((u, nd));
                } else {
                    dq.push_back((u, nd));
                }
            }
        }
    }
    depth
}

/// Observability counters an [`EvidenceBase`] accumulates as a side
/// effect of normal operation — scraped by the session into the
/// metrics registry after localization. All values are deterministic
/// functions of the diagnosis (no wall-clock).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvidenceStats {
    /// Windowed verdict queries the (net, window) cache answered.
    pub verdict_hits: u64,
    /// Verdict queries that needed a physical tap for their window.
    pub verdict_misses: u64,
    /// Derived bound updates clamped against a known onset (or
    /// dropped because a measurement already pinned the bounds).
    pub onset_clamps: u64,
    /// Exonerations recorded (screening/frontier testimony entries).
    pub exonerations: u64,
    /// Suspects removed by causal-window pruning, summed over
    /// [`EvidenceBase::prune_cone`] calls.
    pub window_shrinks: u64,
}

/// Interior-mutable counter cells: `verdict` and `prune_cone` take
/// `&self` (the base is shared read-only during planning), so the
/// counters live in `Cell`s. The base is `Send` but never `Sync` —
/// each diagnosis owns its evidence — so plain cells suffice.
#[derive(Debug, Default)]
struct StatCells {
    verdict_hits: Cell<u64>,
    verdict_misses: Cell<u64>,
    onset_clamps: Cell<u64>,
    exonerations: Cell<u64>,
    window_shrinks: Cell<u64>,
}

/// The accumulated causal evidence of one diagnosis: every net's
/// divergence-onset bounds plus the per-output alibi tables of the
/// detection sweep (see the module docs).
#[derive(Debug, Default)]
pub struct EvidenceBase {
    /// Everything ever observed, assumed or derived about each net's
    /// divergence onset; queries are keyed by `(net, window)` through
    /// [`verdict`](Self::verdict).
    knowledge: HashMap<CellId, CellKnowledge>,
    /// Per PO: the PO cell, its divergence onset (`None` = clean
    /// across the sweep), and min FF depth from every fanin cell —
    /// empty when the base was not built from a response sweep.
    index: Vec<(CellId, Option<usize>, HashMap<CellId, usize>)>,
    /// Observability counters (see [`EvidenceStats`]).
    stats: StatCells,
}

impl EvidenceBase {
    /// Window value standing for "the whole stimulus sweep" (the
    /// horizon of whole-sweep assumptions and of tracks observed
    /// without a failure onset).
    pub const WHOLE_SWEEP: usize = usize::MAX;

    /// An empty base: no alibi index, no verdicts. Pruning through it
    /// is a no-op; it still serves as a (net, window) verdict cache
    /// (how the strategy-level oracle tests drive it).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the alibi index from one detection sweep (one backward
    /// 0-1 BFS per primary output) and seeds every PO driver's exact
    /// divergence onset — the sweep already measured every output on
    /// every pattern, so those verdicts are free and answer *any*
    /// window without a physical tap.
    pub fn from_sweep(golden: &Netlist, matrix: &ResponseMatrix) -> Self {
        let index = matrix
            .outputs
            .iter()
            .enumerate()
            .map(|(k, &po)| {
                (
                    po,
                    matrix.signatures[k].first_failing(),
                    causal_depths(golden, &[po]),
                )
            })
            .collect();
        let mut base = Self {
            knowledge: HashMap::new(),
            index,
            stats: StatCells::default(),
        };
        for (k, &po) in matrix.outputs.iter().enumerate() {
            let onset = matrix.signatures[k].first_failing();
            base.record(po, onset);
            let driver = golden
                .cell(po)
                .ok()
                .and_then(|c| c.inputs.first().copied())
                .and_then(|net| golden.net(net).ok())
                .and_then(|n| n.driver);
            if let Some(d) = driver {
                base.record(d, onset);
            }
        }
        base
    }

    // ---- Recording ----------------------------------------------------

    /// Folds in an exact physical measurement: `cell`'s first
    /// diverging pattern over the sweep (`None` = clean throughout).
    pub fn record(&mut self, cell: CellId, onset: Option<usize>) {
        self.knowledge
            .entry(cell)
            .or_default()
            .record_measured(onset);
    }

    /// Seeds a whole-sweep observation that is already known. `true`
    /// records "diverged somewhere in the sweep" (answers only
    /// unbounded windows — prefer [`record`](Self::record) when the
    /// onset is known); `false` records "clean across the sweep",
    /// which answers every window.
    pub fn assume(&mut self, cell: CellId, diverged: bool) {
        let k = self.knowledge.entry(cell).or_default();
        let clamped = if diverged {
            k.note_diverged_by(Self::WHOLE_SWEEP)
        } else {
            k.note_clean_through(Self::WHOLE_SWEEP)
        };
        if clamped {
            self.stats
                .onset_clamps
                .set(self.stats.onset_clamps.get() + 1);
        }
    }

    /// Records a derived exoneration: `cell` is vouched clean on
    /// every pattern `<= w` (how screening testimony enters the
    /// base). Clamped below any known divergence onset so the bounds
    /// never contradict.
    pub fn exonerate_through(&mut self, cell: CellId, w: usize) {
        self.stats
            .exonerations
            .set(self.stats.exonerations.get() + 1);
        let clamped = self
            .knowledge
            .entry(cell)
            .or_default()
            .note_clean_through(w);
        if clamped {
            self.stats
                .onset_clamps
                .set(self.stats.onset_clamps.get() + 1);
        }
    }

    /// Applies windowed, latency-aware frontier testimony: each
    /// `(frontier cell, vouched-for fanin cone, FF-depth-to-frontier
    /// table)` entry exonerates every fanin cell through the
    /// *minimum*, over the frontier cells its divergence could escape
    /// through, of `frontier_clean_through - ffdepth(cell ->
    /// frontier)` — every escape path from a core error runs through
    /// its covering frontier cells, but the wavefront needs `ffdepth`
    /// patterns to get there, so a frontier still clean at `p` only
    /// vouches for the cell up to `p - ffdepth`. A frontier clean
    /// across the whole sweep exonerates its fanin for every window.
    pub fn exonerate_fanin(&mut self, frontier: &[(CellId, SuspectCone, HashMap<CellId, usize>)]) {
        let mut bound: HashMap<CellId, Option<usize>> = HashMap::new();
        for (cell, fanin, depths) in frontier {
            let ct = self.clean_through(*cell);
            for c in fanin.iter() {
                let b = match ct {
                    Some(Self::WHOLE_SWEEP) => Some(Self::WHOLE_SWEEP),
                    Some(p) => p.checked_sub(depths.get(&c).copied().unwrap_or(0)),
                    None => None,
                };
                bound
                    .entry(c)
                    .and_modify(|e| {
                        *e = match (*e, b) {
                            (Some(x), Some(y)) => Some(x.min(y)),
                            _ => None,
                        }
                    })
                    .or_insert(b);
            }
        }
        for (c, b) in bound {
            if let Some(w) = b {
                self.exonerate_through(c, w);
            }
        }
    }

    // ---- Verdict queries ----------------------------------------------

    /// The earliest pattern `cell` is known to have diverged by, if
    /// any.
    pub fn diverged_by(&self, cell: CellId) -> Option<usize> {
        self.knowledge.get(&cell).and_then(|k| k.diverged_by)
    }

    /// The latest pattern `cell` is known clean through, if any.
    pub fn clean_through(&self, cell: CellId) -> Option<usize> {
        self.knowledge.get(&cell).and_then(|k| k.clean_through)
    }

    /// The verdict for `cell` over the window `[0, window]`, if the
    /// recorded bounds determine it (`None` = the cell still needs a
    /// physical tap *for that window*).
    pub fn verdict(&self, cell: CellId, window: usize) -> Option<bool> {
        let v = self.knowledge.get(&cell).and_then(|k| k.verdict(window));
        let counter = if v.is_some() {
            &self.stats.verdict_hits
        } else {
            &self.stats.verdict_misses
        };
        counter.set(counter.get() + 1);
        v
    }

    /// Whether the bounds pin `cell`'s onset down exactly — a
    /// physical tap can teach nothing more.
    pub fn exact(&self, cell: CellId) -> bool {
        self.knowledge.get(&cell).is_some_and(CellKnowledge::exact)
    }

    /// Debug-level invariant check: the bounds never contradict
    /// (`clean_through` strictly below `diverged_by` whenever both
    /// are known). The property tests drive this after random update
    /// interleavings.
    pub fn bounds_consistent(&self, cell: CellId) -> bool {
        match self.knowledge.get(&cell) {
            Some(k) => match (k.diverged_by, k.clean_through) {
                (Some(p), Some(c)) => c < p,
                _ => true,
            },
            None => true,
        }
    }

    // ---- Causal windows & pruning -------------------------------------

    /// Min FF depth from every fanin cell to the cluster's member
    /// outputs (min across members) — the depth table for the
    /// cluster's causal observation window, derived from the
    /// per-output index without another graph traversal.
    pub fn cluster_depths(&self, cluster: &FailureCluster) -> HashMap<CellId, usize> {
        let mut depths: HashMap<CellId, usize> = HashMap::new();
        for (po, _, map) in &self.index {
            if !cluster.outputs.contains(po) {
                continue;
            }
            for (&c, &d) in map {
                depths
                    .entry(c)
                    .and_modify(|e| *e = (*e).min(d))
                    .or_insert(d);
            }
        }
        depths
    }

    /// The cluster's causal [`ObservationWindow`]: each suspect
    /// judged at the cluster's earliest failure minus its FF distance
    /// to the cluster's outputs.
    pub fn causal_window(&self, cluster: &FailureCluster) -> ObservationWindow {
        ObservationWindow::from_depths(cluster.window, self.cluster_depths(cluster))
    }

    /// Causal pruning of a suspect cone under an observation window.
    /// A suspect is dropped when either
    ///
    /// * **causal infeasibility** — its FF distance to every window
    ///   output exceeds the window end: any divergence there needs at
    ///   least that many patterns to reach an output, so it cannot
    ///   have caused the failure. This direction is exact (each FF
    ///   crossing costs one full pattern);
    /// * **causal alibi** — some primary output with the suspect in
    ///   its fanin was still clean at pattern `end + ffdepth(suspect
    ///   -> output)`: had the suspect diverged within the window, its
    ///   wavefront would already have reached that output inside its
    ///   clean prefix. (Heuristic in the same sense as the classic
    ///   passing-cone split: the wavefront could be value-masked, or
    ///   travel only a slower path — the min-depth arrival is the
    ///   earliest possible one.)
    ///
    /// The serial path's whole-cone passing-split and the old flat
    /// windowed clean-cone subtraction are both the `depth = 0`
    /// special case of the alibi; the latency terms are what keep
    /// both directions honest on pipelines where the same error
    /// reaches different outputs after different numbers of cycles.
    /// An [`EvidenceBase`] built without a sweep prunes nothing.
    pub fn prune_cone(&self, cone: &SuspectCone, window: &ObservationWindow) -> SuspectCone {
        if self.index.is_empty() {
            return cone.clone();
        }
        let w = window.end();
        let pruned: SuspectCone = cone
            .iter()
            .filter(|&c| {
                let alibied = self.index.iter().any(|(_, onset, depths)| {
                    depths
                        .get(&c)
                        .is_some_and(|&d| onset.is_none_or(|f| f > w.saturating_add(d)))
                });
                window.feasible(c) && !alibied
            })
            .collect();
        let removed = (cone.len() - pruned.len()) as u64;
        self.stats
            .window_shrinks
            .set(self.stats.window_shrinks.get() + removed);
        pruned
    }

    /// Orders suspects temporally for the window: FF-deepest first
    /// (the cells whose divergence happened earliest), ties broken by
    /// topological rank — the order under which "the first diverging
    /// suspect is the error site" holds on sequential cones, where
    /// plain topological rank (flip-flops as sources) would visit a
    /// cell just past a flip-flop before its temporal ancestors.
    pub fn order_suspects(
        &self,
        window: &ObservationWindow,
        suspects: &mut [CellId],
        rank_of: impl Fn(CellId) -> usize,
    ) {
        suspects.sort_by_key(|&c| (std::cmp::Reverse(window.depth_of(c)), rank_of(c)));
    }

    // ---- Observability --------------------------------------------------

    /// A copy of the accumulated observability counters (cache
    /// hit/miss, clamps, exonerations, pruning) — scraped once per
    /// diagnosis into the metrics registry.
    pub fn stats(&self) -> EvidenceStats {
        EvidenceStats {
            verdict_hits: self.stats.verdict_hits.get(),
            verdict_misses: self.stats.verdict_misses.get(),
            onset_clamps: self.stats.onset_clamps.get(),
            exonerations: self.stats.exonerations.get(),
            window_shrinks: self.stats.window_shrinks.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> CellId {
        CellId::new(i)
    }

    #[test]
    fn measured_onset_answers_windows_on_both_sides() {
        let mut ev = EvidenceBase::new();
        ev.record(id(1), Some(5));
        assert_eq!(ev.verdict(id(1), 4), Some(false));
        assert_eq!(ev.verdict(id(1), 5), Some(true));
        assert_eq!(ev.verdict(id(1), 100), Some(true));
        assert!(ev.exact(id(1)));
        assert!(ev.bounds_consistent(id(1)));
    }

    #[test]
    fn clean_measurement_answers_every_window() {
        let mut ev = EvidenceBase::new();
        ev.record(id(2), None);
        assert_eq!(ev.verdict(id(2), 0), Some(false));
        assert_eq!(ev.verdict(id(2), EvidenceBase::WHOLE_SWEEP), Some(false));
        assert!(ev.exact(id(2)));
    }

    #[test]
    fn one_sided_bounds_answer_only_what_they_soundly_can() {
        let mut ev = EvidenceBase::new();
        ev.assume(id(3), true); // diverged somewhere in the sweep
        assert_eq!(ev.verdict(id(3), 7), None);
        assert_eq!(ev.verdict(id(3), EvidenceBase::WHOLE_SWEEP), Some(true));
        ev.exonerate_through(id(4), 9);
        assert_eq!(ev.verdict(id(4), 9), Some(false));
        assert_eq!(ev.verdict(id(4), 10), None);
        assert!(!ev.exact(id(4)));
    }

    #[test]
    fn contradictory_exoneration_is_clamped_below_the_measured_onset() {
        let mut ev = EvidenceBase::new();
        ev.record(id(5), Some(3));
        // A (wrong, masking-blind) screening bound cannot leapfrog
        // the measurement.
        ev.exonerate_through(id(5), 50);
        assert_eq!(ev.clean_through(id(5)), Some(2));
        assert_eq!(ev.verdict(id(5), 3), Some(true));
        assert!(ev.bounds_consistent(id(5)));
        // And the other order: an optimistic bound first, then the
        // measurement corrects it.
        ev.exonerate_through(id(6), 50);
        ev.record(id(6), Some(3));
        assert_eq!(ev.clean_through(id(6)), Some(2));
        assert_eq!(ev.verdict(id(6), 10), Some(true));
        assert!(ev.bounds_consistent(id(6)));
        // Onset zero leaves no clean prefix at all.
        ev.exonerate_through(id(7), 4);
        ev.record(id(7), Some(0));
        assert_eq!(ev.clean_through(id(7)), None);
        assert!(ev.bounds_consistent(id(7)));
    }

    #[test]
    fn measurements_beat_assumptions_in_both_orders() {
        // A measured-clean net stays clean no matter what a
        // whole-sweep assumption claimed before or claims after.
        let mut ev = EvidenceBase::new();
        ev.assume(id(10), true);
        ev.record(id(10), None);
        assert_eq!(ev.verdict(id(10), EvidenceBase::WHOLE_SWEEP), Some(false));
        let mut ev = EvidenceBase::new();
        ev.record(id(11), None);
        ev.assume(id(11), true);
        assert_eq!(ev.verdict(id(11), EvidenceBase::WHOLE_SWEEP), Some(false));
        // And a measured onset is immovable by later assumptions.
        let mut ev = EvidenceBase::new();
        ev.record(id(12), Some(4));
        ev.assume(id(12), false);
        assert_eq!(ev.verdict(id(12), 4), Some(true));
        assert_eq!(ev.clean_through(id(12)), Some(3));
    }

    #[test]
    fn empty_base_prunes_nothing() {
        let ev = EvidenceBase::new();
        let cone: SuspectCone = [id(1), id(2)].into_iter().collect();
        assert_eq!(ev.prune_cone(&cone, &ObservationWindow::flat(0)), cone);
    }

    #[test]
    fn whole_sweep_window_reads_unbounded_verdicts() {
        let mut ev = EvidenceBase::new();
        ev.assume(id(8), true);
        let w = ObservationWindow::whole_sweep();
        assert_eq!(ev.verdict(id(8), w.for_cell(id(8))), Some(true));
    }

    #[test]
    fn stats_count_cache_traffic_clamps_and_exonerations() {
        let mut ev = EvidenceBase::new();
        assert_eq!(ev.stats(), EvidenceStats::default());
        ev.record(id(1), Some(5));
        assert_eq!(ev.verdict(id(1), 4), Some(false)); // hit
        assert_eq!(ev.verdict(id(1), 5), Some(true)); // hit
        assert_eq!(ev.verdict(id(9), 5), None); // miss
        ev.exonerate_through(id(2), 9); // exoneration, no clamp
        ev.exonerate_through(id(1), 50); // exoneration, clamped by the measurement
        let s = ev.stats();
        assert_eq!(s.verdict_hits, 2);
        assert_eq!(s.verdict_misses, 1);
        assert_eq!(s.exonerations, 2);
        assert_eq!(s.onset_clamps, 1);
        assert_eq!(s.window_shrinks, 0);
    }
}

//! Simultaneous multi-error diagnosis: suspect-cone algebra, shared
//! test logic, and per-error attribution.
//!
//! The paper's debug loop (§3.1) — and [`crate::session::DebugSession`]'s
//! single-error `run` — assumes one error at a time. Real emulation
//! runs surface several interacting errors whose suspect cones
//! overlap. This module adds the machinery to hunt them *together*,
//! so the tiled flow's cheap ECOs are amortized across every live
//! error instead of being spent one cone at a time:
//!
//! * [`cone`] — [`SuspectCone`], a normalized bitset algebra
//!   (union / intersect / subtract, fanin-cone construction) over the
//!   netlist DAG; the vocabulary everything else is written in;
//! * [`partition`] — [`ConePartition`] splits `k` overlapping cones
//!   into disjoint per-error *exclusive* regions plus a *shared
//!   core*, classifying where observations are unambiguous;
//! * [`attribution`] — [`ResponseSignature`]s (which patterns each
//!   output fails on) cluster failing outputs into per-error
//!   footprints ([`cluster_failures`]), each carrying a
//!   `[0, first_fail]` observation window; an [`AlibiIndex`] prunes
//!   each cluster's cone causally (suspects too many flip-flops away
//!   to reach the outputs in time, or whose wavefront would already
//!   have crossed a still-clean output — [`windowed_clean_cone`] is
//!   the flat depth-0 form); [`FaultAttribution`] fault-simulates
//!   candidate sites under a complement error model to assign blame
//!   when cones intersect;
//! * [`scheduler`] — [`MultiErrorScheduler`] runs one
//!   [`crate::strategy::LocalizationStrategy`] per error and merges
//!   all tap requests into deduplicated physical batches, so one
//!   observation ECO through any [`crate::flows::ReimplFlow`]
//!   advances every live localization. The verdict cache is keyed by
//!   *(net, window)*: each tap is measured once as its exact
//!   divergence onset and re-read under every cluster's own causal
//!   [`ObservationWindow`], so no net is ever tapped twice
//!   (detection's primary-output onsets are seeded into it for
//!   free), and the shared core is *screened* first: one tap batch
//!   on only its frontier exonerates the core per window or confines
//!   suspicion to the diverging frontier's in-core fanin.
//!   [`merge_fsm_clusters`] folds the several clusters one FSM error
//!   fans out into (same onset, dominating shared state register)
//!   back into a single track before registration.
//!
//! The session-level entry points are
//! [`crate::session::DebugSession::run_concurrent`] (planted errors)
//! and [`crate::session::DebugSession::run_concurrent_campaign`]
//! (random distinct errors); `run_campaign` routes through the same
//! scheduler whenever it is asked for more than one error.
//!
//! # Protocol assumptions
//!
//! Failing outputs are clustered by *(response signature, fanin
//! cone)*: one cluster per distinguishable error footprint. Each
//! cluster is localized under a single-error-per-cluster assumption —
//! when two errors hide in one cluster's cone (e.g. a single-output
//! design), localization converges on the topologically dominant one
//! and the remainder is caught by the corrective re-emulation, as in
//! the sequential protocol. Divergences in a shared core are credited
//! conservatively to every requesting cluster; the
//! [`FaultAttribution`] engine scores which cluster's candidates best
//! explain them and the session reports the verdicts as
//! [`crate::session::DebugEvent::Attribution`] events.

pub mod attribution;
pub mod cone;
pub mod partition;
pub mod scheduler;

pub use attribution::{
    cluster_failures, collect_responses, windowed_clean_cone, AlibiIndex, FailureCluster,
    FaultAttribution, ResponseMatrix, ResponseSignature,
};
pub use cone::SuspectCone;
pub use partition::{ConePartition, Ownership};
pub use scheduler::{
    merge_fsm_clusters, Ambiguity, MultiErrorScheduler, ObservationWindow, RoundPlan,
};

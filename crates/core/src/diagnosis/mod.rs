//! Diagnosis: causal evidence, suspect-cone algebra, shared test
//! logic, and per-error attribution.
//!
//! The paper's debug loop (§3.1) is one evidence-accumulation process
//! — detect, localize, confirm, correct — regardless of how many
//! errors are live. This module is structured around that fact:
//!
//! * [`evidence`] — **the shared causal-evidence layer**.
//!   [`EvidenceBase`] owns the (net, window)-keyed verdict cache
//!   (divergence-onset bounds per net), the per-output alibi tables
//!   of the detection sweep, causal-[`ObservationWindow`] computation,
//!   and screening exonerations, behind a narrow query API
//!   (`clean_through` / `diverged_by` / `verdict` / `prune_cone` /
//!   `order_suspects`). Both the serial single-error path
//!   ([`crate::session::DebugSession::run`]) and the concurrent
//!   scheduler read and write the same layer, so serial localization
//!   gets causal windows, alibi pruning and free PO-onset seeding —
//!   no pruning or window logic exists anywhere else;
//! * [`cone`] — [`SuspectCone`], a normalized bitset algebra
//!   (union / intersect / subtract, fanin-cone construction) over the
//!   netlist DAG; the vocabulary everything else is written in;
//! * [`partition`] — [`ConePartition`] splits `k` overlapping cones
//!   into disjoint per-error *exclusive* regions plus a *shared
//!   core*, classifying where observations are unambiguous;
//! * [`attribution`] — [`ResponseSignature`]s (which patterns each
//!   output fails on) cluster failing outputs into per-error
//!   footprints ([`cluster_failures`]), each carrying a
//!   `[0, first_fail]` observation window; [`FaultAttribution`]
//!   fault-simulates candidate sites under a complement error model
//!   to assign blame when cones intersect;
//! * [`scheduler`] — [`MultiErrorScheduler`], a thin orchestrator
//!   over the evidence base: one
//!   [`crate::strategy::LocalizationStrategy`] per error, all tap
//!   requests merged into deduplicated physical batches, every
//!   request first checked against the evidence (cache-served rounds
//!   cost zero physical ECOs), and the shared core *screened* first —
//!   one tap batch on only its frontier records windowed,
//!   latency-aware exonerations for the whole core.
//!   [`merge_fsm_clusters`] folds the several clusters one FSM error
//!   fans out into back into a single track, a decision *deferred*
//!   until the discriminating screening evidence (the dominating
//!   state register's own onset, see [`fsm_merge_witnesses`]) is in
//!   the evidence base.
//!
//! The session-level entry points are
//! [`crate::session::DebugSession::run`] (one error, same evidence
//! layer), [`crate::session::DebugSession::run_concurrent`] (planted
//! errors) and [`crate::session::DebugSession::run_concurrent_campaign`]
//! (random distinct errors); `run_campaign` routes through the same
//! scheduler whenever it is asked for more than one error.
//!
//! # Protocol assumptions
//!
//! Failing outputs are clustered by *(response signature, fanin
//! cone)*: one cluster per distinguishable error footprint. Each
//! cluster is localized under a single-error-per-cluster assumption —
//! when two errors hide in one cluster's cone (e.g. a single-output
//! design), localization converges on the temporally dominant one
//! and the remainder is caught by the corrective re-emulation, as in
//! the sequential protocol. Divergences in a shared core are credited
//! conservatively to every requesting cluster; the
//! [`FaultAttribution`] engine scores which cluster's candidates best
//! explain them and the session reports the verdicts as
//! [`crate::session::DebugEvent::Attribution`] events.

pub mod attribution;
pub mod cone;
pub mod evidence;
pub mod partition;
pub mod scheduler;

pub use attribution::{
    cluster_failures, collect_responses, FailureCluster, FaultAttribution, ResponseMatrix,
    ResponseSignature,
};
pub use cone::SuspectCone;
pub use evidence::{EvidenceBase, EvidenceStats, ObservationWindow};
pub use partition::{ConePartition, Ownership};
pub use scheduler::{
    fsm_merge_witnesses, merge_fsm_clusters, Ambiguity, MultiErrorScheduler, RoundPlan,
};

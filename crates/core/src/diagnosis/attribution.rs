//! Response signatures and per-error blame attribution.
//!
//! With several errors live at once, one golden-vs-DUT sweep mixes
//! their symptoms. This module untangles them in two steps:
//!
//! 1. **Signatures** — [`collect_responses`] records, for every
//!    primary output, *which stimulus patterns it fails on* (a
//!    [`ResponseSignature`]). [`cluster_failures`] then groups failing
//!    outputs that present the same signature through the same fanin
//!    cone: each [`FailureCluster`] is one suspected error's observable
//!    footprint. (Two clusters can still turn out to be the same
//!    error seen through different cones — the scheduler's per-batch
//!    tap deduplication makes chasing both nearly free, and exact-cell
//!    agreement merges them at the end.)
//! 2. **Fault attribution** — when suspect cones intersect, a
//!    diverging observation in the shared core is ambiguous.
//!    [`FaultAttribution`] fault-simulates candidate sites under a
//!    generic complement error model and scores how well each
//!    candidate's predicted failing-output set matches a cluster's
//!    observed one (Jaccard), assigning blame to the best match.
//!
//! Everything causal — onset bounds, alibi tables, windowed pruning —
//! lives in [`crate::diagnosis::evidence`]; this module only builds
//! the observable footprints that feed it.

use std::collections::HashMap;

use netlist::{CellId, Netlist, NetlistError};
use sim::patterns::PatternGen;
use sim::{PackedSimulator, LANES};

use super::cone::SuspectCone;

/// The set of stimulus patterns on which one output diverged,
/// word-packed by pattern index.
///
/// Invariant: the last word, if any, is non-zero —
/// [`record`](Self::record) and [`union_with`](Self::union_with) only ever grow
/// the vector to hold a set bit — so the derived `==`/`Hash` mean set
/// equality, like [`super::cone::SuspectCone`]'s (which indexes cells
/// rather than patterns).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct ResponseSignature {
    words: Vec<u64>,
}

impl ResponseSignature {
    /// Marks pattern `index` as failing.
    pub fn record(&mut self, index: usize) {
        let (w, b) = (index / 64, index % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << b;
    }

    /// Builds a signature directly from packed divergence words (bit
    /// `p % 64` of word `p / 64` = pattern `p` failed) — the layout
    /// [`sim::emulate::po_divergence_words`] produces. Trailing zero
    /// words are trimmed to restore the invariant.
    pub fn from_words(mut words: Vec<u64>) -> Self {
        while words.last() == Some(&0) {
            words.pop();
        }
        Self { words }
    }

    /// Whether pattern `index` failed.
    pub fn contains(&self, index: usize) -> bool {
        let (w, b) = (index / 64, index % 64);
        self.words.get(w).is_some_and(|&word| word >> b & 1 == 1)
    }

    /// Number of failing patterns.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when the output never diverged.
    pub fn is_clean(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The earliest failing pattern index, if any.
    pub fn first_failing(&self) -> Option<usize> {
        self.words
            .iter()
            .enumerate()
            .find(|(_, &w)| w != 0)
            .map(|(i, &w)| i * 64 + w.trailing_zeros() as usize)
    }

    /// Whether the output stayed clean on every pattern of the
    /// observation window `[0, window]` (inclusive). This is the
    /// windowed analog of [`is_clean`](Self::is_clean): an output
    /// clean *within a cluster's window* alibis its fanin cone for
    /// that cluster even if it diverges later in the sweep.
    pub fn clean_within(&self, window: usize) -> bool {
        self.first_failing().is_none_or(|p| p > window)
    }

    /// Marks every pattern failing in `other` as failing here too
    /// (set union — how a cluster accumulates the signatures of its
    /// member outputs).
    pub fn union_with(&mut self, other: &ResponseSignature) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }
}

/// Per-output response signatures from one golden-vs-DUT sweep.
#[derive(Debug, Clone)]
pub struct ResponseMatrix {
    /// Golden primary-output cells, in PO order.
    pub outputs: Vec<CellId>,
    /// One signature per entry of `outputs`.
    pub signatures: Vec<ResponseSignature>,
    /// How many patterns were swept.
    pub patterns: usize,
}

impl ResponseMatrix {
    /// Indices into `outputs` whose signature is not clean.
    pub fn failing(&self) -> Vec<usize> {
        (0..self.outputs.len())
            .filter(|&k| !self.signatures[k].is_clean())
            .collect()
    }
}

/// Sweeps `patterns` through both netlists and records, per primary
/// output, the set of patterns it fails on. Outputs are paired by
/// cell name, so a DUT carrying leftover debug instrumentation (extra
/// observation outputs) is compared only on the original outputs.
///
/// The sweep runs packed ([`sim::emulate::po_divergence_words`]):
/// combinational designs evaluate 64 patterns per topo pass and the
/// divergence words *are* the signature words; sequential designs are
/// clocked once per pattern without reset, as in
/// [`sim::emulate::first_mismatch`]. Unlike `first_mismatch` the
/// sweep does **not** stop at the first divergence — multi-error
/// diagnosis needs the whole footprint.
///
/// # Errors
///
/// Propagates simulator construction failures (combinational loops).
pub fn collect_responses(
    golden: &Netlist,
    dut: &Netlist,
    patterns: PatternGen,
) -> Result<ResponseMatrix, NetlistError> {
    let outputs = golden.primary_outputs();
    let pairs = po_pairs(golden, dut)?;
    let (words, count) = sim::emulate::po_divergence_words(golden, dut, &pairs, patterns)?;
    let mut signatures = vec![ResponseSignature::default(); outputs.len()];
    for (&(gk, _), w) in pairs.iter().zip(words) {
        signatures[gk] = ResponseSignature::from_words(w);
    }
    Ok(ResponseMatrix {
        outputs,
        signatures,
        patterns: count,
    })
}

/// Pairs golden primary outputs with the DUT cells of the same name:
/// `(golden PO index, DUT PO index)`, skipping outputs the DUT no
/// longer carries. The DUT accumulates extra debug-instrumentation
/// outputs during a campaign, so a plain positional compare would
/// misalign — every golden-vs-DUT output comparison in the session
/// and in [`collect_responses`] goes through this one pairing.
///
/// # Errors
///
/// Propagates cell-lookup failures.
pub fn po_pairs(golden: &Netlist, dut: &Netlist) -> Result<Vec<(usize, usize)>, NetlistError> {
    let gpos = golden.primary_outputs();
    let dpos = dut.primary_outputs();
    let mut pairs = Vec::with_capacity(gpos.len());
    for (k, &gpo) in gpos.iter().enumerate() {
        let name = &golden.cell(gpo)?.name;
        if let Some(dpo) = dut.find_cell(name) {
            if let Some(dk) = dpos.iter().position(|&c| c == dpo) {
                pairs.push((k, dk));
            }
        }
    }
    Ok(pairs)
}

/// One suspected error's observable footprint: the failing outputs
/// that see the same structural suspect cone, with the union of
/// their response signatures.
#[derive(Debug, Clone)]
pub struct FailureCluster {
    /// Golden primary-output cells presenting this footprint.
    pub outputs: Vec<CellId>,
    /// The patterns on which at least one member output fails.
    pub signature: ResponseSignature,
    /// Fanin cone of the member outputs (identical across members by
    /// construction; the *intersection* of member cones after an FSM
    /// merge), i.e. the raw structural suspect set.
    pub cone: SuspectCone,
    /// The cluster's observation window: the earliest failing pattern
    /// of any member output. Everything this error can teach us is
    /// already visible on `[0, window]` — the divergence that *first*
    /// exposed the cluster happened there — so pruning and tap
    /// verdicts for this cluster are evaluated within the window,
    /// mirroring the serial path's first-mismatching-cycle split.
    pub window: usize,
}

/// Groups the failing outputs of `matrix` into error clusters: two
/// outputs land in the same cluster iff they see exactly the same
/// fanin cone. Signature differences within one cone do *not* split a
/// cluster — a single error behind shared logic routinely reaches
/// different outputs on different patterns (ubiquitous on sequential
/// designs, where every state-fed output sees the whole state cone),
/// and splitting it would spawn redundant localizations of the same
/// site. Distinct cones stay distinct clusters even with identical
/// signatures. Clusters are ordered by their first member's PO
/// position, so the result is deterministic.
pub fn cluster_failures(golden: &Netlist, matrix: &ResponseMatrix) -> Vec<FailureCluster> {
    let mut clusters: Vec<FailureCluster> = Vec::new();
    for k in matrix.failing() {
        let po = matrix.outputs[k];
        let cone = SuspectCone::fanin(golden, &[po]);
        let sig = &matrix.signatures[k];
        if let Some(c) = clusters.iter_mut().find(|c| c.cone == cone) {
            c.outputs.push(po);
            c.signature.union_with(sig);
        } else {
            clusters.push(FailureCluster {
                outputs: vec![po],
                signature: sig.clone(),
                cone,
                window: 0,
            });
        }
    }
    for c in &mut clusters {
        // The union signature's earliest failure is the min over the
        // member outputs' onsets — the sharpest window that still
        // contains the divergence that exposed the cluster.
        c.window = c.signature.first_failing().unwrap_or(0);
    }
    clusters
}

/// Fault-simulation-based blame assignment.
///
/// For a candidate error site, the engine simulates the golden model
/// with that cell's function complemented (the generic single-error
/// model: any functional bug at a cell perturbs its output on *some*
/// patterns; the complement perturbs it on all, giving the widest
/// observable footprint the site can produce) and records which
/// primary outputs ever diverge. A candidate *explains* a cluster to
/// the degree its predicted failing-output set overlaps the cluster's
/// observed one.
///
/// Fault simulation runs packed on both design classes, exploiting a
/// different word axis on each: combinational candidates sweep 64
/// *patterns* per topo pass (the candidate planted as an all-lane
/// complement via [`PackedSimulator::set_fault_lanes`]), while
/// sequential designs — whose stimulus stream cannot be
/// pattern-parallel — batch up to 64 candidate *machines* per stream
/// pass, one lane-complement fault each (classic parallel-fault
/// simulation). [`prime`](Self::prime) fills the cache batch-wise;
/// per-candidate queries fall back to batches of one.
pub struct FaultAttribution<'a> {
    golden: &'a Netlist,
    patterns: Vec<Vec<bool>>,
    /// Persistent packed engine over the golden model; faults are
    /// planted and cleared around each candidate sweep.
    psim: PackedSimulator<'a>,
    /// Golden PO words, indexed `[po][pattern / 64]` with bit
    /// `pattern % 64` = the golden output value.
    golden_po_words: Vec<Vec<u64>>,
    sequential: bool,
    /// Cache: candidate cell → predicted failing-PO mask.
    cache: HashMap<CellId, Vec<bool>>,
}

impl<'a> FaultAttribution<'a> {
    /// Prepares the engine by tracing the golden model once over
    /// `patterns`.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction failures.
    pub fn new(golden: &'a Netlist, patterns: &[Vec<bool>]) -> Result<Self, NetlistError> {
        let mut psim = PackedSimulator::new(golden)?;
        let sequential = golden.is_sequential();
        let num_pos = golden.primary_outputs().len();
        let chunks = patterns.len().div_ceil(LANES);
        let mut golden_po_words = vec![vec![0u64; chunks]; num_pos];
        if sequential {
            for (idx, pat) in patterns.iter().enumerate() {
                psim.broadcast_inputs(pat);
                psim.comb_eval();
                for (j, w) in golden_po_words.iter_mut().enumerate() {
                    w[idx / LANES] |= (psim.output_word(j) & 1) << (idx % LANES);
                }
                psim.step();
            }
        } else {
            for (c, chunk) in patterns.chunks(LANES).enumerate() {
                let lanes = psim.load_patterns(chunk);
                psim.comb_eval();
                for (j, w) in golden_po_words.iter_mut().enumerate() {
                    w[c] = psim.output_word(j) & lanes;
                }
            }
        }
        Ok(Self {
            golden,
            patterns: patterns.to_vec(),
            psim,
            golden_po_words,
            sequential,
            cache: HashMap::new(),
        })
    }

    /// Fills the prediction cache for every candidate in one packed
    /// sweep per 64 candidates (sequential designs) or one
    /// pattern-parallel sweep per candidate (combinational designs).
    /// Call before a loop of [`blame_score`](Self::blame_score)s so
    /// sequential scoring pays one stream pass per candidate *batch*
    /// rather than per candidate.
    ///
    /// # Errors
    ///
    /// Propagates fault-simulation failures.
    pub fn prime(&mut self, candidates: &[CellId]) -> Result<(), NetlistError> {
        self.prime_with_workers(candidates, parallel::default_workers())
    }

    /// [`prime`](Self::prime) with an explicit worker count: with more
    /// than one worker and more than one sweep unit, the candidate
    /// fault-sims fan out over a [`parallel`] work-stealing pool, one
    /// fresh [`PackedSimulator`] per in-flight unit (the engines are
    /// cheap to compile next to the sweeps they run). Results are
    /// merged in unit order, so the cache — and everything scored
    /// from it — is bit-identical to a serial prime.
    ///
    /// # Errors
    ///
    /// Propagates fault-simulation failures.
    pub fn prime_with_workers(
        &mut self,
        candidates: &[CellId],
        workers: usize,
    ) -> Result<(), NetlistError> {
        let mut luts: Vec<CellId> = Vec::new();
        for &c in candidates {
            if self.cache.contains_key(&c) || luts.contains(&c) {
                continue;
            }
            let is_lut = self
                .golden
                .cell(c)
                .ok()
                .is_some_and(|cell| cell.lut_function().is_some());
            if is_lut {
                luts.push(c);
            } else {
                // Non-LUT candidates predict nothing.
                self.cache
                    .insert(c, vec![false; self.golden_po_words.len()]);
            }
        }
        // One sweep unit = one packed pass: a 64-machine batch on
        // sequential designs, one pattern-parallel candidate on
        // combinational ones.
        let units: Vec<Vec<CellId>> = if self.sequential {
            luts.chunks(LANES).map(<[CellId]>::to_vec).collect()
        } else {
            luts.iter().map(|&c| vec![c]).collect()
        };
        if workers > 1 && units.len() > 1 {
            let golden = self.golden;
            let sequential = self.sequential;
            let patterns = &self.patterns;
            let po_words = &self.golden_po_words;
            let swept = parallel::map(workers.min(units.len()), units, |unit| {
                let mut psim = PackedSimulator::new(golden)?;
                if sequential {
                    sweep_candidate_batch(&mut psim, patterns, po_words, &unit)
                } else {
                    sweep_candidate_patterns(&mut psim, patterns, po_words, unit[0])
                        .map(|mask| vec![(unit[0], mask)])
                }
            });
            for unit in swept {
                for (c, mask) in unit? {
                    self.cache.insert(c, mask);
                }
            }
        } else {
            for unit in units {
                if self.sequential {
                    for (c, mask) in sweep_candidate_batch(
                        &mut self.psim,
                        &self.patterns,
                        &self.golden_po_words,
                        &unit,
                    )? {
                        self.cache.insert(c, mask);
                    }
                } else {
                    let mask = sweep_candidate_patterns(
                        &mut self.psim,
                        &self.patterns,
                        &self.golden_po_words,
                        unit[0],
                    )?;
                    self.cache.insert(unit[0], mask);
                }
            }
        }
        Ok(())
    }

    /// Predicted failing-PO mask (PO order) for a complement-model
    /// error at `cell`. Non-LUT cells predict nothing.
    ///
    /// # Errors
    ///
    /// Propagates netlist editing / simulation failures.
    pub fn fault_outputs(&mut self, cell: CellId) -> Result<Vec<bool>, NetlistError> {
        if !self.cache.contains_key(&cell) {
            self.prime(&[cell])?;
        }
        Ok(self.cache[&cell].clone())
    }

    /// Jaccard similarity between the candidate's predicted
    /// failing-PO set and an observed one (both in PO order).
    /// 0.0 = disjoint, 1.0 = identical footprints.
    ///
    /// # Errors
    ///
    /// Propagates fault-simulation failures.
    pub fn blame_score(&mut self, cell: CellId, observed: &[bool]) -> Result<f64, NetlistError> {
        let predicted = self.fault_outputs(cell)?;
        let mut inter = 0usize;
        let mut uni = 0usize;
        for (p, o) in predicted.iter().zip(observed) {
            inter += usize::from(*p && *o);
            uni += usize::from(*p || *o);
        }
        Ok(if uni == 0 {
            0.0
        } else {
            inter as f64 / uni as f64
        })
    }

    /// The candidate that best explains `observed`, with its score.
    /// Ties resolve to the lowest cell index; an empty candidate list
    /// yields `None`. Candidates are [`prime`](Self::prime)d first, so
    /// sequential designs fault-simulate them 64 machines per pass.
    ///
    /// # Errors
    ///
    /// Propagates fault-simulation failures.
    pub fn best_explanation(
        &mut self,
        candidates: &[CellId],
        observed: &[bool],
    ) -> Result<Option<(CellId, f64)>, NetlistError> {
        self.prime(candidates)?;
        let mut best: Option<(CellId, f64)> = None;
        for &c in candidates {
            let s = self.blame_score(c, observed)?;
            let better = match best {
                None => true,
                Some((bc, bs)) => s > bs || (s == bs && c.index() < bc.index()),
            };
            if better {
                best = Some((c, s));
            }
        }
        Ok(best)
    }
}

/// One pattern-parallel sweep of a single combinational candidate:
/// all 64 lanes carry the complemented machine, patterns chunk
/// through the lanes. Returns the predicted failing-PO mask in PO
/// order.
///
/// A free function (rather than a method) so [`prime_with_workers`]
/// can run it against worker-local engines without borrowing the
/// whole attribution state.
///
/// [`prime_with_workers`]: FaultAttribution::prime_with_workers
fn sweep_candidate_patterns(
    psim: &mut PackedSimulator<'_>,
    patterns: &[Vec<bool>],
    golden_po_words: &[Vec<u64>],
    cell: CellId,
) -> Result<Vec<bool>, NetlistError> {
    let mut acc = vec![0u64; golden_po_words.len()];
    psim.set_fault_lanes(cell, u64::MAX)?;
    for (c, chunk) in patterns.chunks(LANES).enumerate() {
        let lanes = psim.load_patterns(chunk);
        psim.comb_eval();
        for (j, a) in acc.iter_mut().enumerate() {
            *a |= (psim.output_word(j) ^ golden_po_words[j][c]) & lanes;
        }
    }
    psim.clear_faults();
    Ok(acc.iter().map(|&a| a != 0).collect())
}

/// One packed stream pass over up to 64 sequential candidates: lane
/// `i` carries the machine with `batch[i]` complemented, all lanes
/// fed the same stimulus stream. Returns `(candidate, failing-PO
/// mask)` pairs in batch order.
fn sweep_candidate_batch(
    psim: &mut PackedSimulator<'_>,
    patterns: &[Vec<bool>],
    golden_po_words: &[Vec<u64>],
    batch: &[CellId],
) -> Result<Vec<(CellId, Vec<bool>)>, NetlistError> {
    debug_assert!(batch.len() <= LANES);
    let mut acc = vec![0u64; golden_po_words.len()];
    psim.clear_faults();
    psim.reset();
    for (i, &c) in batch.iter().enumerate() {
        psim.set_fault_lanes(c, 1u64 << i)?;
    }
    for (idx, pat) in patterns.iter().enumerate() {
        psim.broadcast_inputs(pat);
        psim.comb_eval();
        for (j, a) in acc.iter_mut().enumerate() {
            let golden_bit = golden_po_words[j][idx / LANES] >> (idx % LANES) & 1;
            *a |= psim.output_word(j) ^ 0u64.wrapping_sub(golden_bit);
        }
        psim.step();
    }
    psim.clear_faults();
    Ok(batch
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, acc.iter().map(|&a| a >> i & 1 == 1).collect()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::TruthTable;
    use sim::inject::{inject, DesignErrorKind};

    /// y0 = a AND b through u0; y1 = a XOR c through u1 (independent
    /// cones except for the shared input a).
    fn two_cone_design() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let c = nl.add_input("c").unwrap();
        let (na, nb, nc) = (
            nl.cell_output(a).unwrap(),
            nl.cell_output(b).unwrap(),
            nl.cell_output(c).unwrap(),
        );
        let u0 = nl.add_lut("u0", TruthTable::and(2), &[na, nb]).unwrap();
        let u1 = nl.add_lut("u1", TruthTable::xor(2), &[na, nc]).unwrap();
        nl.add_output("y0", nl.cell_output(u0).unwrap()).unwrap();
        nl.add_output("y1", nl.cell_output(u1).unwrap()).unwrap();
        nl
    }

    #[test]
    fn signatures_separate_two_simultaneous_errors() {
        let golden = two_cone_design();
        let mut dut = golden.clone();
        let u0 = dut.find_cell("u0").unwrap();
        let u1 = dut.find_cell("u1").unwrap();
        inject(&mut dut, u0, DesignErrorKind::FlipRow { row: 3 }).unwrap();
        inject(&mut dut, u1, DesignErrorKind::Complement).unwrap();
        let m = collect_responses(&golden, &dut, PatternGen::exhaustive(3)).unwrap();
        assert_eq!(m.patterns, 8);
        assert_eq!(m.failing().len(), 2, "both outputs must fail");
        // y0 fails only on a=b=1 (2 of 8 patterns); y1 on all 8.
        assert_eq!(m.signatures[0].count(), 2);
        assert_eq!(m.signatures[1].count(), 8);
        let clusters = cluster_failures(&golden, &m);
        assert_eq!(clusters.len(), 2, "distinct footprints, distinct clusters");
        assert!(clusters[0].cone.contains(golden.find_cell("u0").unwrap()));
        assert!(!clusters[0].cone.contains(golden.find_cell("u1").unwrap()));
    }

    #[test]
    fn windowed_pruning_on_combinational_designs_matches_the_passing_split() {
        // No flip-flops: every causal depth is zero, so evidence
        // pruning degenerates to the classic passing-cone subtraction
        // — it keeps the guilty cell while shedding the clean sibling
        // cone.
        use crate::diagnosis::evidence::EvidenceBase;
        let golden = two_cone_design();
        let mut dut = golden.clone();
        let u1 = dut.find_cell("u1").unwrap();
        inject(&mut dut, u1, DesignErrorKind::Complement).unwrap();
        let m = collect_responses(&golden, &dut, PatternGen::exhaustive(3)).unwrap();
        let clusters = cluster_failures(&golden, &m);
        assert_eq!(clusters.len(), 1);
        let cl = &clusters[0];
        let evidence = EvidenceBase::from_sweep(&golden, &m);
        let pruned = evidence.prune_cone(&cl.cone, &evidence.causal_window(cl));
        let u1g = golden.find_cell("u1").unwrap();
        let u0g = golden.find_cell("u0").unwrap();
        assert!(pruned.contains(u1g));
        assert!(!pruned.contains(u0g), "clean y0's cone is an alibi");
        assert_eq!(
            pruned.union(&cl.cone),
            cl.cone,
            "pruning only ever shrinks the cone"
        );
    }

    #[test]
    fn clean_design_yields_no_clusters() {
        let golden = two_cone_design();
        let m = collect_responses(&golden, &golden.clone(), PatternGen::exhaustive(3)).unwrap();
        assert!(m.failing().is_empty());
        assert!(cluster_failures(&golden, &m).is_empty());
    }

    #[test]
    fn fault_simulation_blames_the_right_cone() {
        let golden = two_cone_design();
        let pats: Vec<Vec<bool>> = PatternGen::exhaustive(3).collect();
        let mut att = FaultAttribution::new(&golden, &pats).unwrap();
        let u0 = golden.find_cell("u0").unwrap();
        let u1 = golden.find_cell("u1").unwrap();
        // Observed: only y1 failing (an error somewhere in u1's cone).
        let observed = vec![false, true];
        let s0 = att.blame_score(u0, &observed).unwrap();
        let s1 = att.blame_score(u1, &observed).unwrap();
        assert!(s1 > s0, "u1 {s1} must beat u0 {s0}");
        let best = att.best_explanation(&[u0, u1], &observed).unwrap().unwrap();
        assert_eq!(best.0, u1);
        assert!(best.1 > 0.99, "exact footprint match expected");
        // Non-LUT candidates predict nothing and score zero.
        let a = golden.find_cell("a").unwrap();
        assert_eq!(att.blame_score(a, &observed).unwrap(), 0.0);
    }
}

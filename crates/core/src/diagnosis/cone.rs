//! Bitset algebra over suspect cones in the netlist DAG.
//!
//! Multi-error diagnosis reasons about *sets of candidate error
//! sites*: the fanin cone of a failing output, the overlap of two
//! such cones, what remains of a cone after a probe rules a region
//! out. [`SuspectCone`] packs those sets into `u64` words indexed by
//! [`CellId`], so union / intersection / subtraction are word-wide
//! operations and the `k`-cone overlap analysis in
//! [`crate::diagnosis::partition`] stays cheap even on paper-scale
//! designs.
//!
//! Cones are *normalized*: trailing zero words are trimmed after
//! every operation, so structural equality (`==`, hashing) means set
//! equality regardless of how a cone was built.

use netlist::{CellId, Netlist};

/// A set of suspect cells, packed 64 cells per word.
///
/// ```
/// use netlist::CellId;
/// use tiling::diagnosis::SuspectCone;
///
/// let a = SuspectCone::from_cells([CellId::new(1), CellId::new(70)]);
/// let b = SuspectCone::from_cells([CellId::new(70), CellId::new(3)]);
/// assert_eq!(a.intersect(&b).cells(), vec![CellId::new(70)]);
/// assert_eq!(a.union(&b).len(), 3);
/// assert_eq!(a.subtract(&b).cells(), vec![CellId::new(1)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct SuspectCone {
    /// Bit `i % 64` of word `i / 64` is set iff cell `i` is a suspect.
    /// Invariant: the last word (if any) is non-zero.
    words: Vec<u64>,
}

impl SuspectCone {
    /// The empty suspect set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cone containing exactly `cells`.
    pub fn from_cells(cells: impl IntoIterator<Item = CellId>) -> Self {
        let mut cone = Self::new();
        for c in cells {
            cone.insert(c);
        }
        cone
    }

    /// The transitive fanin cone of `seeds` (including the seeds) in
    /// `nl` — the structural suspect set behind a failing output.
    pub fn fanin(nl: &Netlist, seeds: &[CellId]) -> Self {
        Self::from_cells(nl.fanin_cone(seeds))
    }

    /// Adds a cell.
    pub fn insert(&mut self, cell: CellId) {
        let (w, b) = (cell.index() / 64, cell.index() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << b;
    }

    /// Whether `cell` is in the set.
    pub fn contains(&self, cell: CellId) -> bool {
        let (w, b) = (cell.index() / 64, cell.index() % 64);
        self.words.get(w).is_some_and(|&word| word >> b & 1 == 1)
    }

    /// Number of suspects in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    fn word(&self, i: usize) -> u64 {
        self.words.get(i).copied().unwrap_or(0)
    }

    fn trim(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }

    fn binary(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        let n = self.words.len().max(other.words.len());
        let mut out = Self {
            words: (0..n).map(|i| f(self.word(i), other.word(i))).collect(),
        };
        out.trim();
        out
    }

    /// Set union: suspects implicated by either cone.
    pub fn union(&self, other: &Self) -> Self {
        self.binary(other, |a, b| a | b)
    }

    /// Set intersection: suspects implicated by both cones.
    pub fn intersect(&self, other: &Self) -> Self {
        self.binary(other, |a, b| a & b)
    }

    /// Set difference: suspects of `self` not ruled in by `other`.
    pub fn subtract(&self, other: &Self) -> Self {
        self.binary(other, |a, b| a & !b)
    }

    /// In-place union. Word-wise `|=` after growing to `other`'s
    /// length; no trim needed (both operands are normalized and union
    /// only sets bits, so the last word stays non-zero).
    pub fn union_with(&mut self, other: &Self) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// In-place intersection: truncate to the common length, word-wise
    /// `&=`, re-trim.
    pub fn intersect_with(&mut self, other: &Self) {
        self.words.truncate(other.words.len());
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
        self.trim();
    }

    /// In-place difference: word-wise and-not over the common prefix
    /// (words past `other`'s length are untouched — nothing to
    /// subtract there), then re-trim.
    pub fn subtract_with(&mut self, other: &Self) {
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
        self.trim();
    }

    /// Whether the two cones share at least one suspect (cheaper than
    /// materializing the intersection).
    pub fn intersects(&self, other: &Self) -> bool {
        let n = self.words.len().min(other.words.len());
        (0..n).any(|i| self.words[i] & other.words[i] != 0)
    }

    /// Iterates the suspects in ascending cell-index order.
    pub fn iter(&self) -> impl Iterator<Item = CellId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let b = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(CellId::new(w * 64 + b))
            })
        })
    }

    /// The suspects as a sorted vector.
    pub fn cells(&self) -> Vec<CellId> {
        self.iter().collect()
    }
}

impl FromIterator<CellId> for SuspectCone {
    fn from_iter<T: IntoIterator<Item = CellId>>(iter: T) -> Self {
        Self::from_cells(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::TruthTable;

    fn ids(xs: &[usize]) -> SuspectCone {
        xs.iter().map(|&i| CellId::new(i)).collect()
    }

    #[test]
    fn algebra_basics() {
        let a = ids(&[0, 5, 64, 130]);
        let b = ids(&[5, 64, 200]);
        assert_eq!(a.len(), 4);
        assert!(a.contains(CellId::new(130)));
        assert!(!a.contains(CellId::new(131)));
        assert_eq!(a.intersect(&b), ids(&[5, 64]));
        assert_eq!(a.union(&b), ids(&[0, 5, 64, 130, 200]));
        assert_eq!(a.subtract(&b), ids(&[0, 130]));
        assert!(a.intersects(&b));
        assert!(!ids(&[1]).intersects(&ids(&[2])));
    }

    #[test]
    fn equality_is_set_equality_regardless_of_history() {
        // Build the same set two ways, one passing through a larger
        // universe; trimming must make them structurally equal.
        let direct = ids(&[3, 7]);
        let via_subtract = ids(&[3, 7, 500]).subtract(&ids(&[500]));
        assert_eq!(direct, via_subtract);
        assert!(ids(&[9]).subtract(&ids(&[9])).is_empty());
    }

    #[test]
    fn iteration_is_sorted_and_complete() {
        let cone = ids(&[190, 2, 63, 64]);
        let cells: Vec<usize> = cone.iter().map(|c| c.index()).collect();
        assert_eq!(cells, vec![2, 63, 64, 190]);
        assert_eq!(cone.cells().len(), cone.len());
    }

    #[test]
    fn fanin_matches_netlist_cone() {
        let mut nl = Netlist::new("chain");
        let pi = nl.add_input("a").unwrap();
        let mut net = nl.cell_output(pi).unwrap();
        let mut cells = Vec::new();
        for k in 0..4 {
            let c = nl
                .add_lut(format!("u{k}"), TruthTable::not(), &[net])
                .unwrap();
            net = nl.cell_output(c).unwrap();
            cells.push(c);
        }
        let cone = SuspectCone::fanin(&nl, &[cells[2]]);
        assert!(cone.contains(pi));
        assert!(cone.contains(cells[2]));
        assert!(!cone.contains(cells[3]));
        // Monotone in the seed set.
        let bigger = SuspectCone::fanin(&nl, &[cells[2], cells[3]]);
        assert_eq!(cone.union(&bigger), bigger);
    }
}

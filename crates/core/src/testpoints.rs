//! Figure 3 and Figure 4 computations.
//!
//! * Figure 3: the percentage of tiles affected when a block of new
//!   logic of a given size is inserted (averaged over insertion
//!   sites), driven by the neighbour-expansion algorithm.
//! * Figure 4: the maximum per-point test-logic size that still fits
//!   when `n` evenly distributed test points are inserted at once,
//!   found by binary search over the same machinery with capacity
//!   accounting.

use crate::error::TilingError;
use crate::flow::TiledDesign;
use crate::tile::TileId;

/// Mean fraction of tiles affected by inserting `logic_clbs` CLBs of
/// test logic, averaged over every possible seed tile (Figure 3).
///
/// # Errors
///
/// Propagates plan lookups.
pub fn affected_fraction(td: &TiledDesign, logic_clbs: usize) -> Result<f64, TilingError> {
    let free = free_per_tile(td)?;
    let n = td.plan.len();
    if n == 0 {
        return Ok(0.0);
    }
    let mut total = 0.0;
    for seed in 0..n {
        let count =
            expand_from(td, &mut free.clone(), TileId(seed as u32), logic_clbs)?.unwrap_or(n);
        total += count as f64 / n as f64;
    }
    Ok(total / n as f64)
}

/// Maximum test-logic size (CLBs per point) that fits when `points`
/// evenly distributed test points are inserted (Figure 4).
///
/// # Errors
///
/// Propagates plan lookups.
pub fn max_logic_per_point(td: &TiledDesign, points: usize) -> Result<usize, TilingError> {
    max_logic_binary_search(td, points, false)
}

/// Figure 4's *clustered* variant (§6.1 discussion): all test points
/// seed the same tile, so per-point capacity decays like one insertion
/// of `points × size` CLBs.
///
/// # Errors
///
/// Propagates plan lookups.
pub fn max_logic_per_point_clustered(
    td: &TiledDesign,
    points: usize,
) -> Result<usize, TilingError> {
    max_logic_binary_search(td, points, true)
}

fn max_logic_binary_search(
    td: &TiledDesign,
    points: usize,
    clustered: bool,
) -> Result<usize, TilingError> {
    if points == 0 {
        return Ok(td.total_free_clbs());
    }
    let mut lo = 0usize;
    let mut hi = td.total_free_clbs() / points + 1;
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if fits(td, points, mid, clustered)? {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Ok(lo)
}

/// Checks whether `points` points of `size` CLBs each fit, inserting
/// them round-robin across tiles (or all into tile 0 when clustered)
/// with shared capacity accounting.
fn fits(
    td: &TiledDesign,
    points: usize,
    size: usize,
    clustered: bool,
) -> Result<bool, TilingError> {
    if size == 0 {
        return Ok(true);
    }
    let mut free = free_per_tile(td)?;
    let n = td.plan.len();
    for k in 0..points {
        let seed = if clustered {
            TileId(0)
        } else {
            TileId((k % n) as u32)
        };
        if expand_from(td, &mut free, seed, size)?.is_none() {
            return Ok(false);
        }
    }
    Ok(true)
}

fn free_per_tile(td: &TiledDesign) -> Result<Vec<usize>, TilingError> {
    let mut v = Vec::with_capacity(td.plan.len());
    for (id, _) in td.plan.iter() {
        v.push(td.plan.usage(id, &td.placement)?.free_clbs());
    }
    Ok(v)
}

/// Greedy neighbour expansion from `seed` consuming `size` CLBs out of
/// `free`. Returns the number of tiles drafted, or `None` if the
/// request cannot fit even device-wide. Capacity is *deducted* so
/// successive insertions compete for slack.
fn expand_from(
    td: &TiledDesign,
    free: &mut [usize],
    seed: TileId,
    size: usize,
) -> Result<Option<usize>, TilingError> {
    let mut tiles = vec![seed];
    let mut available = free[seed.index()];
    while available < size {
        // Frontier: adjacent tiles not yet drafted, most free first.
        let mut best: Option<(usize, TileId)> = None;
        for &t in &tiles {
            for nb in td.plan.neighbors(t)? {
                if tiles.contains(&nb) {
                    continue;
                }
                let f = free[nb.index()];
                if best.is_none_or(|(bf, bid)| f > bf || (f == bf && nb < bid)) {
                    best = Some((f, nb));
                }
            }
        }
        let Some((f, chosen)) = best else {
            return Ok(None); // saturated
        };
        available += f;
        tiles.push(chosen);
    }
    // Deduct the consumed capacity, seed tile first.
    let mut remaining = size;
    for &t in &tiles {
        let take = remaining.min(free[t.index()]);
        free[t.index()] -= take;
        remaining -= take;
        if remaining == 0 {
            break;
        }
    }
    Ok(Some(tiles.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{implement, TilingOptions};
    use synth::PaperDesign;

    fn td() -> TiledDesign {
        let b = PaperDesign::NineSym.generate().unwrap();
        implement(b.netlist, b.hierarchy, TilingOptions::fast(5)).unwrap()
    }

    #[test]
    fn fraction_is_monotone_in_logic_size() {
        let td = td();
        let f1 = affected_fraction(&td, 1).unwrap();
        let f5 = affected_fraction(&td, 5).unwrap();
        let f50 = affected_fraction(&td, 50).unwrap();
        assert!(f1 <= f5 && f5 <= f50, "{f1} {f5} {f50}");
        assert!(f1 > 0.0);
        assert!(f50 <= 1.0 + 1e-9);
    }

    #[test]
    fn huge_insertion_saturates_all_tiles() {
        let td = td();
        let f = affected_fraction(&td, 10_000).unwrap();
        assert!((f - 1.0).abs() < 1e-9);
    }

    #[test]
    fn max_logic_decreases_with_points() {
        let td = td();
        let m1 = max_logic_per_point(&td, 1).unwrap();
        let m4 = max_logic_per_point(&td, 4).unwrap();
        let m20 = max_logic_per_point(&td, 20).unwrap();
        assert!(m1 >= m4 && m4 >= m20, "{m1} {m4} {m20}");
        assert!(m1 >= 1, "one point must fit at least one CLB");
    }

    #[test]
    fn clustered_points_fit_less_than_distributed() {
        let td = td();
        for points in [2usize, 5, 10] {
            let even = max_logic_per_point(&td, points).unwrap();
            let clustered = max_logic_per_point_clustered(&td, points).unwrap();
            assert!(
                clustered <= even,
                "clustered {clustered} > distributed {even} at {points} points"
            );
        }
    }

    #[test]
    fn capacity_conservation() {
        // points × size never exceeds the design's total slack.
        let td = td();
        let total = td.total_free_clbs();
        for points in [1usize, 3, 7, 10] {
            let m = max_logic_per_point(&td, points).unwrap();
            assert!(m * points <= total, "{points} × {m} > {total}");
        }
    }
}

//! Human-readable reports over a tiled design.
//!
//! These are what the examples and the benchmark binaries print; they
//! also serve as a one-stop structured summary for downstream tools.

use std::fmt;

use crate::effort::EffortLedger;
use crate::error::TilingError;
use crate::flow::TiledDesign;
use crate::interface::tile_interface;
use crate::session::DebugOutcome;

/// Per-tile summary row.
#[derive(Debug, Clone, PartialEq)]
pub struct TileRow {
    /// Tile id.
    pub id: crate::tile::TileId,
    /// Footprint (for the header line).
    pub rect: fpga::Rect,
    /// CLB capacity.
    pub capacity: usize,
    /// Used CLBs (packing bound).
    pub used: usize,
    /// Free CLBs for test-logic insertion.
    pub free: usize,
    /// Route paths crossing this tile's boundary.
    pub crossings: usize,
    /// Distinct locked interface wire nodes.
    pub interface_nodes: usize,
}

/// Whole-design tiling report.
#[derive(Debug, Clone, PartialEq)]
pub struct TilingReport {
    /// Design name.
    pub design: String,
    /// Device description string.
    pub device: String,
    /// Rows, in tile order.
    pub tiles: Vec<TileRow>,
    /// Area overhead (Table 1 definition).
    pub area_overhead: f64,
    /// Nets whose placed terminals span tiles.
    pub cut_nets: usize,
    /// Routed critical path in ns.
    pub critical_ns: f64,
}

impl TilingReport {
    /// Builds the report from a tiled design.
    ///
    /// # Errors
    ///
    /// Propagates analysis failures (combinational loops etc.).
    pub fn build(td: &TiledDesign) -> Result<Self, TilingError> {
        let mut tiles = Vec::with_capacity(td.plan.len());
        for (id, tile) in td.plan.iter() {
            let usage = td.plan.usage(id, &td.placement)?;
            let iface = tile_interface(&td.device, &td.plan, &td.rrg, &td.routing, id)?;
            tiles.push(TileRow {
                id,
                rect: tile.rect,
                capacity: usage.capacity,
                used: usage.used_clbs(),
                free: usage.free_clbs(),
                crossings: iface.crossings,
                interface_nodes: iface.interface_nodes,
            });
        }
        Ok(Self {
            design: td.netlist.name().to_string(),
            device: td.device.to_string(),
            tiles,
            area_overhead: td.area_overhead(),
            cut_nets: td.plan.cut_nets(&td.netlist, &td.placement),
            critical_ns: td.timing()?.critical_ns,
        })
    }

    /// Mean free CLBs per tile (the §6.1 worked-example quantity).
    pub fn mean_free_clbs(&self) -> f64 {
        if self.tiles.is_empty() {
            return 0.0;
        }
        self.tiles.iter().map(|t| t.free).sum::<usize>() as f64 / self.tiles.len() as f64
    }

    /// Mean used CLBs per tile.
    pub fn mean_used_clbs(&self) -> f64 {
        if self.tiles.is_empty() {
            return 0.0;
        }
        self.tiles.iter().map(|t| t.used).sum::<usize>() as f64 / self.tiles.len() as f64
    }
}

impl fmt::Display for TilingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} on {}", self.design, self.device)?;
        writeln!(
            f,
            "area overhead {:.3} | cut nets {} | critical path {:.2} ns",
            self.area_overhead, self.cut_nets, self.critical_ns
        )?;
        writeln!(
            f,
            "{:<5} {:<14} {:>4} {:>5} {:>5} {:>10} {:>10}",
            "tile", "rect", "cap", "used", "free", "crossings", "iface-wires"
        )?;
        for t in &self.tiles {
            writeln!(
                f,
                "{:<5} {:<14} {:>4} {:>5} {:>5} {:>10} {:>10}",
                t.id.to_string(),
                t.rect.to_string(),
                t.capacity,
                t.used,
                t.free,
                t.crossings,
                t.interface_nodes
            )?;
        }
        write!(
            f,
            "mean used/tile {:.1} CLBs, mean free/tile {:.1} CLBs",
            self.mean_used_clbs(),
            self.mean_free_clbs()
        )
    }
}

/// Aggregated summary of one or more debug iterations: the per-phase
/// [`EffortLedger`] plus the headline counters the examples and bench
/// binaries print.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DebugReport {
    /// Iterations summarized.
    pub iterations: usize,
    /// Iterations whose DUT matched golden at the end.
    pub repaired: usize,
    /// Iterations where localization pinned a cell down.
    pub localized: usize,
    /// Observation taps inserted in total.
    pub taps_inserted: usize,
    /// Merged per-phase ledger.
    pub ledger: EffortLedger,
    /// Strategy name (from the first outcome; campaigns share one).
    pub strategy: String,
    /// Flow name (from the first outcome; campaigns share one).
    pub flow: String,
}

impl DebugReport {
    /// Builds the report from session outcomes.
    pub fn from_outcomes(outcomes: &[DebugOutcome]) -> Self {
        let mut report = DebugReport {
            iterations: outcomes.len(),
            ..Default::default()
        };
        if let Some(first) = outcomes.first() {
            report.strategy = first.strategy.to_string();
            report.flow = first.flow.to_string();
        }
        for o in outcomes {
            report.repaired += usize::from(o.repaired);
            report.localized += usize::from(o.localized.is_some());
            report.taps_inserted += o.taps_inserted;
            report.ledger.merge(&o.ledger);
        }
        report
    }
}

impl fmt::Display for DebugReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} iteration(s) via {} / {}: {} repaired, {} localized, {} taps",
            self.iterations,
            self.strategy,
            self.flow,
            self.repaired,
            self.localized,
            self.taps_inserted
        )?;
        writeln!(f, "{}", self.ledger)?;
        write!(
            f,
            "total: {} ECOs, {}",
            self.ledger.total_ecos(),
            self.ledger.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effort::Phase;
    use crate::flow::{implement, TilingOptions};
    use synth::PaperDesign;

    #[test]
    fn report_is_consistent_with_design() {
        let b = PaperDesign::NineSym.generate().unwrap();
        let td = implement(b.netlist, b.hierarchy, TilingOptions::fast(41)).unwrap();
        let r = TilingReport::build(&td).unwrap();
        assert_eq!(r.tiles.len(), td.plan.len());
        let cap: usize = r.tiles.iter().map(|t| t.capacity).sum();
        assert_eq!(cap, td.device.num_clbs());
        assert!(r.critical_ns > 0.0);
        let text = r.to_string();
        assert!(text.contains("area overhead"));
        assert!(text.contains("mean used/tile"));
        // Used + free <= capacity per tile.
        for t in &r.tiles {
            assert!(t.used + t.free <= t.capacity);
        }
    }

    #[test]
    fn debug_report_aggregates_session_outcomes() {
        let b = PaperDesign::NineSym.generate().unwrap();
        let golden = b.netlist.clone();
        let mut td = implement(b.netlist, b.hierarchy, TilingOptions::fast(43)).unwrap();
        let err = sim::inject::random_error(&mut td.netlist, 99).unwrap();
        let out = crate::session::DebugSession::new(&mut td, &golden)
            .seed(17)
            .run(&err)
            .unwrap();
        let report = DebugReport::from_outcomes(std::slice::from_ref(&out));
        assert_eq!(report.iterations, 1);
        assert_eq!(report.repaired, 1);
        assert_eq!(report.taps_inserted, out.taps_inserted);
        assert_eq!(report.ledger.total(), out.effort);
        let text = report.to_string();
        for phase in Phase::ALL {
            assert!(text.contains(phase.name()), "missing {phase}: {text}");
        }
        assert!(text.contains("tiled"));
    }

    #[test]
    #[ignore = "s9234-scale P&R; run with --ignored --release (see EXPERIMENTS.md)"]
    fn s9234_worked_example_matches_paper_scale() {
        // Paper §6.1: ten tiles averaging 23.5 CLBs leave ~4.7 CLBs
        // each at 20% overhead.
        let b = PaperDesign::S9234.generate().unwrap();
        let mut opts = TilingOptions::fast(42);
        opts.tracks = 18;
        opts.placer = place::PlacerConfig {
            seed: 42,
            max_temps: 120,
            ..Default::default()
        };
        let td = implement(b.netlist, b.hierarchy, opts).unwrap();
        let r = TilingReport::build(&td).unwrap();
        let used = r.mean_used_clbs();
        let free = r.mean_free_clbs();
        assert!(
            (15.0..=30.0).contains(&used),
            "mean used {used} vs paper's 23.5"
        );
        assert!(
            (2.0..=9.0).contains(&free),
            "mean free {free} vs paper's 4.7"
        );
    }
}

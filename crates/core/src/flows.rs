//! The unified re-implementation surface: one [`ReimplFlow`] trait
//! covering the paper's tiled flow *and* the three Figure 5 rivals.
//!
//! Every flow answers the same question — "the netlist changed at
//! `seeds`, with `added` new cells awaiting placement; produce a
//! consistent physical implementation and report what it cost" — but
//! each pays a different price:
//!
//! * [`TiledFlow`] clears only the affected tiles ([`crate::eco_flow`]);
//! * [`FullReplaceFlow`] re-places-and-routes the whole design;
//! * [`IncrementalFlow`] re-implements an inflated window around the
//!   change;
//! * [`QuickEcoFlow`] re-implements at functional-block granularity.
//!
//! [`crate::session::DebugSession`] drives an arbitrary
//! `&mut dyn ReimplFlow` through a whole debugging campaign, which is
//! exactly the Figure 5 experiment: the *same* sequence of ECOs run
//! through rival physical flows.

use std::collections::BTreeSet;

use fpga::{NodeId, Placement, Rect, Routing};
use netlist::{CellId, NetId};
use place::Constraints;

use crate::affected::{AffectedSet, ExpansionPolicy};
use crate::eco_flow::{replace_and_route, EcoPhysicalOutcome};
use crate::effort::CadEffort;
use crate::error::TilingError;
use crate::flow::TiledDesign;

/// A physical re-implementation flow.
///
/// Implementations **commit** their result to the [`TiledDesign`]:
/// after a successful call, placement and routing are consistent with
/// the (already edited) netlist, so a debug session can keep iterating
/// on the same design through any flow. Callers that only want the
/// *cost* of a flow run it on a clone (see [`crate::baselines`]).
///
/// ```no_run
/// use tiling::flows::{standard_flows, ReimplFlow};
/// # fn demo(td: &tiling::TiledDesign, victim: netlist::CellId)
/// #     -> Result<(), tiling::TilingError> {
/// // Figure 5: the same change, priced by every flow.
/// for mut flow in standard_flows() {
///     let mut trial = td.clone();
///     let outcome = flow.reimplement(&mut trial, &[victim], &[])?;
///     println!("{:<12} {}", flow.name(), outcome.effort);
/// }
/// # Ok(())
/// # }
/// ```
/// (The `Send` supertrait is load-bearing: campaign fleets move
/// boxed flows across worker threads — see the compile-time
/// assertions in [`crate::session`].)
pub trait ReimplFlow: Send {
    /// Short stable name for reports ("tiled", "full", ...).
    fn name(&self) -> &'static str;

    /// Re-implements the design after a netlist change.
    ///
    /// `seeds` are perturbed pre-existing cells (back-annotated from
    /// the ECO); `added` are newly created cells awaiting placement.
    ///
    /// # Errors
    ///
    /// Propagates placement/routing failures. On error the design's
    /// placement and routing are left as they were before the call
    /// (every flow snapshots or defers its commit), so a session can
    /// surface the error without corrupting the live design.
    fn reimplement(
        &mut self,
        td: &mut TiledDesign,
        seeds: &[CellId],
        added: &[CellId],
    ) -> Result<EcoPhysicalOutcome, TilingError>;
}

impl<T: ReimplFlow + ?Sized> ReimplFlow for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn reimplement(
        &mut self,
        td: &mut TiledDesign,
        seeds: &[CellId],
        added: &[CellId],
    ) -> Result<EcoPhysicalOutcome, TilingError> {
        (**self).reimplement(td, seeds, added)
    }
}

/// The paper's contribution: clear and re-implement only the affected
/// tiles, with every interface to the rest of the design locked.
#[derive(Debug, Clone, Copy, Default)]
pub struct TiledFlow {
    /// Neighbour-expansion policy when a tile's slack is insufficient.
    pub policy: ExpansionPolicy,
}

impl ReimplFlow for TiledFlow {
    fn name(&self) -> &'static str {
        "tiled"
    }

    fn reimplement(
        &mut self,
        td: &mut TiledDesign,
        seeds: &[CellId],
        added: &[CellId],
    ) -> Result<EcoPhysicalOutcome, TilingError> {
        replace_and_route(td, seeds, added, self.policy)
    }
}

/// Full re-place-and-route from scratch — what a flow without any
/// change tracking must do for every ECO.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullReplaceFlow;

impl ReimplFlow for FullReplaceFlow {
    fn name(&self) -> &'static str {
        "full"
    }

    fn reimplement(
        &mut self,
        td: &mut TiledDesign,
        _seeds: &[CellId],
        _added: &[CellId],
    ) -> Result<EcoPhysicalOutcome, TilingError> {
        let out = place::run_placer(
            &td.netlist,
            &td.device,
            &Constraints::free(),
            None,
            &td.options.placer,
        )?;
        let mut routing = Routing::new(td.rrg.num_nodes());
        let stats = route::route_design(
            &td.netlist,
            &out.placement,
            &td.rrg,
            &mut routing,
            &td.options.router,
        )?;
        td.placement = out.placement;
        td.routing = routing;
        let all_nets: Vec<NetId> = td.netlist.nets().map(|(id, _)| id).collect();
        route::normalize_routes(
            &td.netlist,
            &td.placement,
            &td.rrg,
            &mut td.routing,
            all_nets,
        );
        let replaced = td.netlist.cells().filter(|(_, c)| c.is_logic()).count();
        Ok(EcoPhysicalOutcome {
            effort: CadEffort {
                place_moves: out.moves_evaluated,
                route_expansions: stats.expansions,
            },
            affected: whole_design_affected(td)?,
            replaced_cells: replaced,
            rerouted_nets: td.routing.num_routed(),
            confined: false,
        })
    }
}

/// Incremental place-and-route: no locked interfaces, so the tool
/// re-places everything inside an *inflated* window around the change
/// (it needs room to shuffle surrounding logic) and fully re-routes
/// every net that touches the window.
#[derive(Debug, Clone, Copy)]
pub struct IncrementalFlow {
    /// Window inflation in CLBs on each side (2 in the benches).
    pub margin: u16,
    /// CLB cost of new logic to budget for (sizes the seed window).
    pub extra_clbs: usize,
}

impl Default for IncrementalFlow {
    fn default() -> Self {
        Self {
            margin: 2,
            extra_clbs: 0,
        }
    }
}

impl ReimplFlow for IncrementalFlow {
    fn name(&self) -> &'static str {
        "incremental"
    }

    fn reimplement(
        &mut self,
        td: &mut TiledDesign,
        seeds: &[CellId],
        added: &[CellId],
    ) -> Result<EcoPhysicalOutcome, TilingError> {
        // Window: bounding box of the tiles the change maps to,
        // inflated by the margin.
        let affected = AffectedSet::compute(
            &td.plan,
            &td.placement,
            seeds,
            self.extra_clbs,
            ExpansionPolicy::MostFree,
        )?;
        let mut bbox: Option<Rect> = None;
        for &t in &affected.tiles {
            let r = td.plan.tile(t)?.rect;
            bbox = Some(match bbox {
                None => r,
                Some(b) => b.union(&r),
            });
        }
        let b = td.device.bounds();
        let bbox = bbox.unwrap_or(b);
        let window = Rect::new(
            bbox.x0.saturating_sub(self.margin),
            bbox.y0.saturating_sub(self.margin),
            (bbox.x1 + self.margin).min(b.x1),
            (bbox.y1 + self.margin).min(b.y1),
        );
        let movable: Vec<CellId> = td
            .netlist
            .cells()
            .filter(|(id, c)| {
                c.is_logic()
                    && td
                        .placement
                        .loc_of(*id)
                        .and_then(|l| l.coord())
                        .is_some_and(|co| window.contains(co))
            })
            .map(|(id, _)| id)
            .collect();
        reimplement_subset(td, &movable, added, Some(window))
    }
}

/// Quick_ECO: change tracking stops at the netlist level, so the
/// re-implemented unit is the *functional block* — the hierarchy
/// children of the root. For the paper's experiments "each design
/// will be considered the size of one functional block" (§6), which
/// `whole_design_as_block` reproduces; with `false` the real hierarchy
/// blocks of our generators are used instead.
#[derive(Debug, Clone, Copy)]
pub struct QuickEcoFlow {
    /// Treat the whole design as one functional block (the paper's
    /// experimental setting).
    pub whole_design_as_block: bool,
}

impl Default for QuickEcoFlow {
    fn default() -> Self {
        Self {
            whole_design_as_block: true,
        }
    }
}

impl ReimplFlow for QuickEcoFlow {
    fn name(&self) -> &'static str {
        "quick_eco"
    }

    fn reimplement(
        &mut self,
        td: &mut TiledDesign,
        seeds: &[CellId],
        added: &[CellId],
    ) -> Result<EcoPhysicalOutcome, TilingError> {
        let movable: Vec<CellId> = if self.whole_design_as_block {
            td.netlist
                .cells()
                .filter(|(_, c)| c.is_logic())
                .map(|(id, _)| id)
                .collect()
        } else {
            let mut blocks = BTreeSet::new();
            for &s in seeds {
                if let Some(b) = td.hierarchy.functional_block_of(s) {
                    blocks.insert(b);
                }
            }
            let mut cells = BTreeSet::new();
            for b in blocks {
                for c in td.hierarchy.subtree_cells(b)? {
                    if td.netlist.cell(c).map(|cc| cc.is_logic()).unwrap_or(false) {
                        cells.insert(c);
                    }
                }
            }
            cells.into_iter().collect()
        };
        reimplement_subset(td, &movable, added, None)
    }
}

/// The four Figure 5 flows with their default settings, boxed for
/// uniform iteration. Order: tiled, full, incremental, quick_eco.
pub fn standard_flows() -> Vec<Box<dyn ReimplFlow>> {
    vec![
        Box::new(TiledFlow::default()),
        Box::new(FullReplaceFlow),
        Box::new(IncrementalFlow::default()),
        Box::new(QuickEcoFlow::default()),
    ]
}

/// `AffectedSet` covering every tile (the non-tiled flows disturb the
/// entire device).
fn whole_design_affected(td: &TiledDesign) -> Result<AffectedSet, TilingError> {
    let tiles: Vec<crate::tile::TileId> = td.plan.iter().map(|(id, _)| id).collect();
    let mut free_clbs = 0;
    for &t in &tiles {
        free_clbs += td.plan.usage(t, &td.placement)?.free_clbs();
    }
    Ok(AffectedSet {
        tiles,
        needed_clbs: 0,
        free_clbs,
        fits: true,
    })
}

/// Re-places `movable` plus any added logic (optionally confined to a
/// window) with the rest locked, then fully re-routes every net
/// incident to a moved cell. No interface locking: severed nets are
/// re-routed pin-to-pin, which is what both baseline flows do. The
/// result is committed to `td`; on error the design is restored to
/// its pre-call state (sessions drive these flows on the live design,
/// so a failed ECO must not leave it half-implemented).
fn reimplement_subset(
    td: &mut TiledDesign,
    movable: &[CellId],
    added: &[CellId],
    window: Option<Rect>,
) -> Result<EcoPhysicalOutcome, TilingError> {
    let placement_snapshot = td.placement.clone();
    let routing_snapshot = td.routing.clone();
    reimplement_subset_inner(td, movable, added, window).inspect_err(|_| {
        td.placement = placement_snapshot;
        td.routing = routing_snapshot;
    })
}

fn reimplement_subset_inner(
    td: &mut TiledDesign,
    movable: &[CellId],
    added: &[CellId],
    window: Option<Rect>,
) -> Result<EcoPhysicalOutcome, TilingError> {
    // Drop stale placements/routes of netlist-deleted objects
    // (retired instruments) — shared with the tiled flow.
    crate::flow::drop_stale_physical_state(td);

    // Moved set: the flow's movable selection plus added logic (added
    // IO cells go to free pads, constrained by site type, not window).
    let mut moved: BTreeSet<CellId> = movable.iter().copied().collect();
    for &c in added {
        if td.netlist.cell(c).map(|cc| cc.is_logic()).unwrap_or(false) {
            moved.insert(c);
        }
    }

    let mut placement: Placement = std::mem::take(&mut td.placement);
    for &c in &moved {
        let _ = placement.unplace(c);
    }
    let mut constraints = Constraints::free();
    for (id, _) in td.netlist.cells() {
        if moved.contains(&id) {
            if let Some(w) = window {
                constraints.confine(id, w);
            }
        } else if placement.loc_of(id).is_some() {
            constraints.lock(id);
        }
    }
    let out = place::run_placer(
        &td.netlist,
        &td.device,
        &constraints,
        Some(placement),
        &td.options.placer,
    )?;
    td.placement = out.placement;
    let mut effort = CadEffort {
        place_moves: out.moves_evaluated,
        route_expansions: 0,
    };

    // Re-route, from scratch, every net incident to a moved cell plus
    // any net whose tree became stale (a terminal no longer matches a
    // live placed sink — e.g. a path to a retired observation pad).
    let mut work: BTreeSet<NetId> = BTreeSet::new();
    for (net_id, net) in td.netlist.nets() {
        let mut touched = net.driver.map(|d| moved.contains(&d)).unwrap_or(false);
        touched |= net.sinks.iter().any(|s| moved.contains(&s.cell));
        if !touched {
            if let Some(tree) = td.routing.route(net_id) {
                let live_pins: BTreeSet<NodeId> = net
                    .sinks
                    .iter()
                    .filter_map(|s| {
                        td.placement
                            .loc_of(s.cell)
                            .map(|l| td.rrg.sink_node(l, s.pin))
                    })
                    .collect();
                touched = tree.paths.iter().any(|p| {
                    let last = *p.last().expect("paths are non-empty");
                    let is_wire = matches!(
                        td.rrg.node(last),
                        fpga::NodeKind::ChanX { .. } | fpga::NodeKind::ChanY { .. }
                    );
                    !is_wire && !live_pins.contains(&last)
                });
            } else {
                // Unrouted net with live placed terminals: a new
                // connection (observation tap, control point) whose
                // cells did not need to move.
                touched = net.driver.is_some() && !net.sinks.is_empty();
            }
        }
        if touched {
            work.insert(net_id);
        }
    }
    for &n in &work {
        td.routing.clear_route(n);
    }
    let mut requests = Vec::with_capacity(work.len());
    for &net_id in &work {
        let net = td.netlist.net(net_id)?;
        let Some(driver) = net.driver else { continue };
        let Some(src_loc) = td.placement.loc_of(driver) else {
            continue;
        };
        let mut sinks = Vec::new();
        for s in &net.sinks {
            if let Some(loc) = td.placement.loc_of(s.cell) {
                sinks.push(td.rrg.sink_node(loc, s.pin));
            }
        }
        if sinks.is_empty() {
            continue;
        }
        requests.push(route::ConnectionRequest {
            net: net_id,
            source: td.rrg.source_node(src_loc),
            sinks,
        });
    }
    if !requests.is_empty() {
        let stats = route::route(&td.rrg, &requests, &mut td.routing, &td.options.router)?;
        effort.route_expansions = stats.expansions;
    }
    route::normalize_routes(
        &td.netlist,
        &td.placement,
        &td.rrg,
        &mut td.routing,
        work.iter().copied(),
    );

    // Affected tiles: those overlapping the window, or all of them
    // when the flow has no spatial confinement.
    let tiles: Vec<crate::tile::TileId> = match window {
        Some(w) => td
            .plan
            .iter()
            .filter(|(_, t)| t.rect.intersects(&w))
            .map(|(id, _)| id)
            .collect(),
        None => td.plan.iter().map(|(id, _)| id).collect(),
    };
    let mut free_clbs = 0;
    for &t in &tiles {
        free_clbs += td.plan.usage(t, &td.placement)?.free_clbs();
    }
    Ok(EcoPhysicalOutcome {
        effort,
        affected: AffectedSet {
            tiles,
            needed_clbs: 0,
            free_clbs,
            fits: true,
        },
        replaced_cells: moved.len(),
        rerouted_nets: work.len(),
        confined: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{implement, TilingOptions};
    use synth::PaperDesign;

    fn victim_of(td: &TiledDesign) -> CellId {
        td.netlist
            .cells()
            .find(|(_, c)| c.lut_function().is_some())
            .map(|(id, _)| id)
            .unwrap()
    }

    #[test]
    fn every_flow_commits_a_feasible_implementation() {
        let b = PaperDesign::NineSym.generate().unwrap();
        let td0 = implement(b.netlist, b.hierarchy, TilingOptions::fast(31)).unwrap();
        let victim = victim_of(&td0);
        for mut flow in standard_flows() {
            let mut td = td0.clone();
            let tt = td
                .netlist
                .cell(victim)
                .unwrap()
                .lut_function()
                .unwrap()
                .complement();
            td.netlist.set_lut_function(victim, tt).unwrap();
            let out = flow.reimplement(&mut td, &[victim], &[]).unwrap();
            assert!(out.effort.total() > 0, "{} did no work", flow.name());
            assert!(
                td.routing.is_feasible(),
                "{} left infeasible routing",
                flow.name()
            );
            assert!(td.routing.num_routed() > 0, "{}", flow.name());
        }
    }

    #[test]
    fn full_flow_affects_every_tile_and_tiled_does_not() {
        let b = PaperDesign::NineSym.generate().unwrap();
        let td0 = implement(b.netlist, b.hierarchy, TilingOptions::fast(32)).unwrap();
        let victim = victim_of(&td0);

        let mut full_td = td0.clone();
        let full = FullReplaceFlow
            .reimplement(&mut full_td, &[victim], &[])
            .unwrap();
        assert_eq!(full.affected.tiles.len(), full_td.plan.len());

        let mut tiled_td = td0.clone();
        let tiled = TiledFlow::default()
            .reimplement(&mut tiled_td, &[victim], &[])
            .unwrap();
        assert!(tiled.affected.tiles.len() < tiled_td.plan.len());
    }
}

//! Compatibility wrapper for the original single-call debug API.
//!
//! The full emulation-debugging iteration (paper §3.1 steps 9–22) now
//! lives in [`crate::session`]: [`DebugSession`] runs detect →
//! localize → confirm → correct through a pluggable
//! [`crate::flows::ReimplFlow`] and
//! [`crate::strategy::LocalizationStrategy`], with all causal
//! knowledge accumulated in the shared
//! [`crate::diagnosis::EvidenceBase`] layer — the wrapper therefore
//! inherits causal windows, alibi pruning and free PO-onset seeding
//! like every other entry point. [`run_debug_iteration`] keeps the
//! old signature on top of the paper-shaped defaults (linear 8-tap
//! batches through the tiled flow).

use netlist::Netlist;
use sim::inject::InjectedError;

use crate::error::TilingError;
use crate::flow::TiledDesign;
use crate::session::DebugSession;

pub use crate::session::DebugOutcome;

/// Runs one full detect → localize → correct iteration with the
/// paper-shaped defaults ([`crate::strategy::LinearBatches`] through
/// the [`crate::flows::TiledFlow`]).
///
/// Equivalent to
/// `DebugSession::new(td, golden).seed(seed).run(error)`; new code
/// should build a [`DebugSession`] directly.
///
/// # Errors
///
/// Propagates netlist/placement/routing failures from the ECO flow.
pub fn run_debug_iteration(
    td: &mut TiledDesign,
    golden: &Netlist,
    error: &InjectedError,
    seed: u64,
) -> Result<DebugOutcome, TilingError> {
    DebugSession::new(td, golden).seed(seed).run(error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{implement, TilingOptions};
    use sim::inject::random_error;
    use synth::PaperDesign;

    #[test]
    fn full_debug_iteration_on_9sym() {
        let bundle = PaperDesign::NineSym.generate().unwrap();
        let golden = bundle.netlist.clone();
        let mut td = implement(bundle.netlist, bundle.hierarchy, TilingOptions::fast(9)).unwrap();
        let err = random_error(&mut td.netlist, 1234).unwrap();
        let out = run_debug_iteration(&mut td, &golden, &err, 42).unwrap();
        assert!(out.mismatch.is_some(), "planted error must be detectable");
        assert!(out.repaired, "repair ECO must restore behaviour");
        assert!(out.effort.total() > 0);
        assert!(td.routing.is_feasible());
        // Localization found the error site (or a tap batch that
        // contains it, for masked propagation).
        if let Some(found) = out.localized {
            assert_eq!(found, err.cell, "localized the wrong cell");
            // And controllability agreed: forcing the suspect's output
            // to golden values made the DUT match.
            assert!(out.confirmed_by_control, "control point failed to confirm");
        }
        assert!(out.taps_inserted > 0);
        // The wrapper runs the paper defaults.
        assert_eq!(out.strategy, "linear");
        assert_eq!(out.flow, "tiled");
    }

    #[test]
    fn clean_design_short_circuits() {
        let bundle = PaperDesign::NineSym.generate().unwrap();
        let golden = bundle.netlist.clone();
        let mut td = implement(bundle.netlist, bundle.hierarchy, TilingOptions::fast(10)).unwrap();
        // Fabricate an "error" record without actually corrupting the
        // netlist: detection must find nothing and return early.
        let any_lut = td
            .netlist
            .cells()
            .find(|(_, c)| c.lut_function().is_some())
            .map(|(id, _)| id)
            .unwrap();
        let tt = *td.netlist.cell(any_lut).unwrap().lut_function().unwrap();
        let fake = InjectedError {
            cell: any_lut,
            kind: sim::inject::DesignErrorKind::Complement,
            original: tt,
            buggy: tt,
        };
        let out = run_debug_iteration(&mut td, &golden, &fake, 1).unwrap();
        assert!(out.mismatch.is_none());
        assert!(out.repaired);
        assert_eq!(out.effort.total(), 0);
    }
}

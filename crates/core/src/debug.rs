//! The full emulation-debugging iteration (paper §3.1 steps 9–22).
//!
//! Given a tiled DUT containing a design error and a golden reference
//! netlist, one call to [`run_debug_iteration`]:
//!
//! 1. generates test patterns and **detects** the error by comparing
//!    primary outputs (internal nets are invisible, as on hardware);
//! 2. **localizes** it: computes the structural suspect cone, then
//!    iteratively inserts observation taps — each insertion is a real
//!    ECO that clears and re-implements only the affected tiles — and
//!    re-emulates until the earliest diverging cell is pinned down;
//! 3. **corrects** it with the repairing ECO, again re-implementing
//!    only the affected tiles, and re-emulates to confirm.
//!
//! The accumulated [`CadEffort`] is what Figure 5 compares against the
//! non-tiled baselines.

use netlist::{CellId, Netlist};
use sim::emulate::{first_mismatch, suspect_cells, Mismatch};
use sim::inject::InjectedError;
use sim::patterns::PatternGen;
use sim::testlogic::{insert_control_point, insert_observation_tap};
use sim::Simulator;

use crate::affected::ExpansionPolicy;
use crate::eco_flow::replace_and_route;
use crate::effort::CadEffort;
use crate::error::TilingError;
use crate::flow::TiledDesign;

/// Result of one debugging iteration.
#[derive(Debug, Clone)]
pub struct DebugOutcome {
    /// The detected divergence (None if the DUT already matched).
    pub mismatch: Option<Mismatch>,
    /// Size of the initial structural suspect set.
    pub initial_suspects: usize,
    /// The cell the localization loop identified.
    pub localized: Option<CellId>,
    /// Observation taps inserted during localization.
    pub taps_inserted: usize,
    /// Whether the corrective ECO made the DUT match the golden model.
    pub repaired: bool,
    /// Total tiled-flow CAD effort across all ECOs of the iteration.
    pub effort: CadEffort,
    /// Tiles cleared across all ECOs (with multiplicity).
    pub tiles_cleared: usize,
    /// Physical ECOs performed (tap batches + the correction). A
    /// non-tiled flow pays one full re-place-and-route per ECO.
    pub ecos: usize,
    /// Whether the localized cell was confirmed via a control point
    /// (forcing its output to golden values makes the DUT match).
    pub confirmed_by_control: bool,
}

fn patterns_for(nl: &Netlist, seed: u64) -> PatternGen {
    let width = nl.primary_inputs().len();
    if width <= 10 {
        PatternGen::exhaustive(width)
    } else {
        PatternGen::lfsr(width, 512, seed)
    }
}

/// Runs one full detect → localize → correct iteration.
///
/// # Errors
///
/// Propagates netlist/placement/routing failures from the ECO flow.
pub fn run_debug_iteration(
    td: &mut TiledDesign,
    golden: &Netlist,
    error: &InjectedError,
    seed: u64,
) -> Result<DebugOutcome, TilingError> {
    let mut outcome = DebugOutcome {
        mismatch: None,
        initial_suspects: 0,
        localized: None,
        taps_inserted: 0,
        repaired: false,
        effort: CadEffort::default(),
        tiles_cleared: 0,
        ecos: 0,
        confirmed_by_control: false,
    };

    // ---- Detection (steps 10, 21) --------------------------------
    let mismatch = first_mismatch(golden, &td.netlist, patterns_for(golden, seed))?;
    let Some(mismatch) = mismatch else {
        outcome.repaired = true; // nothing to do
        return Ok(outcome);
    };
    outcome.mismatch = Some(mismatch.clone());

    // ---- Localization (steps 16–21) -------------------------------
    // Structural suspect cone from the failing/passing output split.
    let mut candidates: Vec<CellId> = suspect_cells(golden, &mismatch);
    outcome.initial_suspects = candidates.len();
    // Keep only LUTs that still exist in the DUT, topologically sorted.
    let order = golden.topo_order()?;
    let rank = |c: CellId| order.iter().position(|&o| o == c).unwrap_or(usize::MAX);
    candidates.retain(|&c| {
        td.netlist
            .cell(c)
            .map(|cell| cell.lut_function().is_some())
            .unwrap_or(false)
    });
    candidates.sort_by_key(|&c| rank(c));

    let mut diverging: Vec<CellId> = Vec::new();
    for (batch_no, batch) in candidates.chunks(8).enumerate() {
        // Insert observation taps for this batch (a real ECO).
        let mut added = Vec::new();
        let mut tapped: Vec<(CellId, netlist::NetId)> = Vec::new();
        for &cell in batch {
            let net = td.netlist.cell_output(cell)?;
            let name = format!("dbg{batch_no}_{}", cell.index());
            let rep = insert_observation_tap(&mut td.netlist, net, &name, false)?;
            added.extend(rep.added.iter().copied());
            tapped.push((cell, net));
            outcome.taps_inserted += 1;
        }
        let phys = replace_and_route(td, batch, &added, ExpansionPolicy::MostFree)?;
        outcome.effort += phys.effort;
        outcome.tiles_cleared += phys.affected.tiles.len();
        outcome.ecos += 1;

        // Re-emulate up to the failing stimulus with golden-side full
        // visibility; find which tapped nets diverge at the earliest
        // diverging cycle.
        let mut gsim = Simulator::new(golden)?;
        let mut dsim = Simulator::new(&td.netlist)?;
        let pats: Vec<Vec<bool>> = patterns_for(golden, seed)
            .take(mismatch.pattern_index + 1)
            .collect();
        let sequential = golden.is_sequential();
        'cycles: for pat in &pats {
            gsim.set_inputs(pat);
            dsim.set_inputs(pat);
            gsim.comb_eval();
            dsim.comb_eval();
            let mut this_cycle = Vec::new();
            for &(cell, net) in &tapped {
                if gsim.net_value(net) != dsim.net_value(net) {
                    this_cycle.push(cell);
                }
            }
            if !this_cycle.is_empty() {
                diverging.extend(this_cycle);
                break 'cycles;
            }
            if sequential {
                gsim.step();
                dsim.step();
            }
        }
        // Retire this batch's observation taps: visibility instruments
        // are temporary, and pads are scarce — accumulating one PO per
        // tapped cell exhausts the device's IOB sites on small designs.
        // The physical cleanup (stale pad placement, dangling route
        // fragment) is folded into the next ECO's replace-and-route.
        let removals: Vec<netlist::EcoOp> = added
            .iter()
            .map(|&cell| netlist::EcoOp::RemoveCell { cell })
            .collect();
        netlist::eco::apply_all(&mut td.netlist, &removals)?;

        if !diverging.is_empty() {
            break;
        }
    }

    // The topologically earliest diverging cell is the error site: all
    // of its fanins agree (otherwise an earlier cell would diverge).
    diverging.sort_by_key(|&c| rank(c));
    outcome.localized = diverging.first().copied();

    // ---- Controllability confirmation (§4.1) ------------------------
    // Before committing to a fix, force the suspect's output to the
    // golden value through an inserted control point: if the DUT then
    // matches, the error is contained in that cell.
    if let Some(suspect) = outcome.localized {
        let confirmed = confirm_with_control_point(td, golden, suspect, seed, &mut outcome)?;
        outcome.confirmed_by_control = confirmed;
    }

    // ---- Correction (steps 11–15, 17–21) ---------------------------
    let fix = sim::inject::repair_op(error);
    let rep = netlist::eco::apply(&mut td.netlist, &fix)?;
    let phys = replace_and_route(td, &rep.touched(), &[], ExpansionPolicy::MostFree)?;
    outcome.effort += phys.effort;
    outcome.tiles_cleared += phys.affected.tiles.len();
    outcome.ecos += 1;

    // Confirmation emulation: observation taps were already retired
    // per batch, but the DUT may still carry extra PIs (the §4.1
    // control point's force inputs and mux), so compare by pairing
    // the golden primary outputs with their same-named DUT cells.
    outcome.repaired = confirm_repair(golden, &td.netlist, seed)?;
    Ok(outcome)
}

/// Inserts a control point on the suspect's output net (a tiled ECO),
/// then re-emulates with the override enabled and driven to the golden
/// value every cycle. Returns true if the DUT's original outputs then
/// match the golden model — the §4.1 controllability check that the
/// error is contained in the suspect cell.
fn confirm_with_control_point(
    td: &mut TiledDesign,
    golden: &Netlist,
    suspect: CellId,
    seed: u64,
    outcome: &mut DebugOutcome,
) -> Result<bool, TilingError> {
    let net = td.netlist.cell_output(suspect)?;
    let cp = insert_control_point(&mut td.netlist, net, "cpconfirm")?;
    let phys = replace_and_route(td, &[suspect], &cp.report.added, ExpansionPolicy::MostFree)?;
    outcome.effort += phys.effort;
    outcome.tiles_cleared += phys.affected.tiles.len();
    outcome.ecos += 1;

    let mut gsim = Simulator::new(golden)?;
    let mut dsim = Simulator::new(&td.netlist)?;
    // DUT inputs: golden pattern, then [force_val, force_en] (the two
    // new PIs append to the input order).
    assert_eq!(
        dsim.num_inputs(),
        gsim.num_inputs() + 2,
        "control point adds two PIs"
    );
    let pairs = po_pairs(golden, &td.netlist)?;
    let sequential = golden.is_sequential();
    for pat in patterns_for(golden, seed).take(256) {
        gsim.set_inputs(&pat);
        gsim.comb_eval();
        let forced = gsim.net_value(net);
        let mut dpat = pat.clone();
        dpat.push(forced); // force_val
        dpat.push(true); // force_en
        dsim.set_inputs(&dpat);
        dsim.comb_eval();
        let g = gsim.outputs();
        let d = dsim.outputs();
        if pairs.iter().any(|&(gk, dk)| g[gk] != d[dk]) {
            return Ok(false);
        }
        if sequential {
            gsim.step();
            dsim.step();
        }
    }
    Ok(true)
}

/// Pairs golden primary outputs with the DUT cells of the same name
/// (the DUT accumulates extra observation outputs during debug).
fn po_pairs(golden: &Netlist, dut: &Netlist) -> Result<Vec<(usize, usize)>, TilingError> {
    let gpos = golden.primary_outputs();
    let dpos = dut.primary_outputs();
    let mut pairs = Vec::with_capacity(gpos.len());
    for (k, &gpo) in gpos.iter().enumerate() {
        let name = &golden.cell(gpo)?.name;
        if let Some(dpo) = dut.find_cell(name) {
            if let Some(dk) = dpos.iter().position(|&c| c == dpo) {
                pairs.push((k, dk));
            }
        }
    }
    Ok(pairs)
}

/// Re-emulates and checks that every *original* primary output now
/// matches (the DUT has extra observation-tap outputs the golden model
/// lacks, so a plain output-vector compare would be misaligned).
fn confirm_repair(golden: &Netlist, dut: &Netlist, seed: u64) -> Result<bool, TilingError> {
    let mut gsim = Simulator::new(golden)?;
    let mut dsim = Simulator::new(dut)?;
    let pairs = po_pairs(golden, dut)?;
    let sequential = golden.is_sequential();
    for pat in patterns_for(golden, seed) {
        gsim.set_inputs(&pat);
        // The DUT may have grown extra PIs (control points); drive
        // them inactive.
        let mut dpat = pat.clone();
        dpat.resize(dsim.num_inputs(), false);
        dsim.set_inputs(&dpat);
        gsim.comb_eval();
        dsim.comb_eval();
        let g = gsim.outputs();
        let d = dsim.outputs();
        if pairs.iter().any(|&(gk, dk)| g[gk] != d[dk]) {
            return Ok(false);
        }
        if sequential {
            gsim.step();
            dsim.step();
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{implement, TilingOptions};
    use sim::inject::random_error;
    use synth::PaperDesign;

    #[test]
    fn full_debug_iteration_on_9sym() {
        let bundle = PaperDesign::NineSym.generate().unwrap();
        let golden = bundle.netlist.clone();
        let mut td = implement(bundle.netlist, bundle.hierarchy, TilingOptions::fast(9)).unwrap();
        let err = random_error(&mut td.netlist, 1234).unwrap();
        let out = run_debug_iteration(&mut td, &golden, &err, 42).unwrap();
        assert!(out.mismatch.is_some(), "planted error must be detectable");
        assert!(out.repaired, "repair ECO must restore behaviour");
        assert!(out.effort.total() > 0);
        assert!(td.routing.is_feasible());
        // Localization found the error site (or a tap batch that
        // contains it, for masked propagation).
        if let Some(found) = out.localized {
            assert_eq!(found, err.cell, "localized the wrong cell");
            // And controllability agreed: forcing the suspect's output
            // to golden values made the DUT match.
            assert!(out.confirmed_by_control, "control point failed to confirm");
        }
        assert!(out.taps_inserted > 0);
    }

    #[test]
    fn clean_design_short_circuits() {
        let bundle = PaperDesign::NineSym.generate().unwrap();
        let golden = bundle.netlist.clone();
        let mut td = implement(bundle.netlist, bundle.hierarchy, TilingOptions::fast(10)).unwrap();
        // Fabricate an "error" record without actually corrupting the
        // netlist: detection must find nothing and return early.
        let any_lut = td
            .netlist
            .cells()
            .find(|(_, c)| c.lut_function().is_some())
            .map(|(id, _)| id)
            .unwrap();
        let tt = *td.netlist.cell(any_lut).unwrap().lut_function().unwrap();
        let fake = InjectedError {
            cell: any_lut,
            kind: sim::inject::DesignErrorKind::Complement,
            original: tt,
            buggy: tt,
        };
        let out = run_debug_iteration(&mut td, &golden, &fake, 1).unwrap();
        assert!(out.mismatch.is_none());
        assert!(out.repaired);
        assert_eq!(out.effort.total(), 0);
    }
}

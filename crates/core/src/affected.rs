//! Affected-tile identification with neighbour expansion (paper §4.2).
//!
//! A debugging change or test-logic insertion seeds a set of tiles
//! (via back-annotation from the changed cells). If the new logic
//! needs more CLBs than the seed tiles' slack provides, neighbouring
//! tiles are drafted in — "neighboring tiles can also be labeled
//! 'affected' and may contribute their unused resources" — until the
//! request fits or the whole device is consumed. Figure 3 sweeps the
//! inserted-logic size through this exact algorithm.

use fpga::Placement;
use netlist::CellId;

use crate::error::TilingError;
use crate::tile::{TileId, TilePlan};

/// Expansion policy when a tile's slack is insufficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExpansionPolicy {
    /// Add the adjacent tile with the most free CLBs (default).
    #[default]
    MostFree,
    /// Add the adjacent tile with the lowest id (nearest-first,
    /// ablation baseline).
    NearestFirst,
}

/// The tiles a change touches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffectedSet {
    /// Affected tiles in the order they were drafted.
    pub tiles: Vec<TileId>,
    /// CLBs of new logic requested.
    pub needed_clbs: usize,
    /// Free CLBs available across the affected set.
    pub free_clbs: usize,
    /// Whether the request fits in the affected set's slack.
    pub fits: bool,
}

impl AffectedSet {
    /// Fraction of all tiles affected (Figure 3's y-axis).
    pub fn fraction_of(&self, plan: &TilePlan) -> f64 {
        if plan.is_empty() {
            return 0.0;
        }
        self.tiles.len() as f64 / plan.len() as f64
    }

    /// True if the tile is in the set.
    pub fn contains(&self, tile: TileId) -> bool {
        self.tiles.contains(&tile)
    }

    /// Computes the affected set for a change.
    ///
    /// `seeds` are the perturbed cells (from an
    /// [`netlist::EcoReport`] or a test-point list); `extra_clbs` is
    /// the CLB cost of newly inserted logic. The set saturates at the
    /// whole device rather than failing; check [`AffectedSet::fits`].
    ///
    /// # Errors
    ///
    /// Returns [`TilingError::UnknownTile`] only on internal plan
    /// inconsistencies.
    pub fn compute(
        plan: &TilePlan,
        placement: &Placement,
        seeds: &[CellId],
        extra_clbs: usize,
        policy: ExpansionPolicy,
    ) -> Result<AffectedSet, TilingError> {
        let mut tiles: Vec<TileId> = Vec::new();
        for &cell in seeds {
            if let Some(t) = plan.tile_of_cell(placement, cell) {
                if !tiles.contains(&t) {
                    tiles.push(t);
                }
            }
        }
        let free_of =
            |t: TileId| -> Result<usize, TilingError> { Ok(plan.usage(t, placement)?.free_clbs()) };
        if tiles.is_empty() {
            // Pure insertion with no placed seed: start at the tile
            // with the most slack.
            let mut best: Option<(usize, TileId)> = None;
            for (id, _) in plan.iter() {
                let f = free_of(id)?;
                if best.is_none_or(|(bf, bid)| f > bf || (f == bf && id < bid)) {
                    best = Some((f, id));
                }
            }
            if let Some((_, id)) = best {
                tiles.push(id);
            }
        }
        let mut free: usize = 0;
        for &t in &tiles {
            free += free_of(t)?;
        }
        // Neighbour expansion until the request fits.
        while free < extra_clbs {
            let mut frontier: Vec<TileId> = Vec::new();
            for &t in &tiles {
                for n in plan.neighbors(t)? {
                    if !tiles.contains(&n) && !frontier.contains(&n) {
                        frontier.push(n);
                    }
                }
            }
            if frontier.is_empty() {
                break; // saturated: every tile is affected
            }
            let chosen = match policy {
                ExpansionPolicy::MostFree => {
                    let mut best = frontier[0];
                    let mut best_free = free_of(best)?;
                    for &cand in &frontier[1..] {
                        let f = free_of(cand)?;
                        if f > best_free || (f == best_free && cand < best) {
                            best = cand;
                            best_free = f;
                        }
                    }
                    best
                }
                ExpansionPolicy::NearestFirst => {
                    let mut f = frontier.clone();
                    f.sort_unstable();
                    f[0]
                }
            };
            free += free_of(chosen)?;
            tiles.push(chosen);
        }
        Ok(AffectedSet {
            tiles,
            needed_clbs: extra_clbs,
            free_clbs: free,
            fits: free >= extra_clbs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga::{BelLoc, ClbSlot, Device, Rect};

    /// 4x4 grid split into 4 tiles of 4 CLBs; each CLB = 2 LUT slots.
    fn plan() -> (Device, TilePlan) {
        let dev = Device::new(4, 4, 4, 2).unwrap();
        let rects = vec![
            Rect::new(0, 0, 1, 1),
            Rect::new(2, 0, 3, 1),
            Rect::new(0, 2, 1, 3),
            Rect::new(2, 2, 3, 3),
        ];
        let plan = TilePlan::from_rects(&dev, rects);
        (dev, plan)
    }

    /// Fills `n` LUT slots of tile 0 (coords (0,0),(1,0),(0,1),(1,1)).
    fn fill_tile0(p: &mut Placement, n: usize) {
        let coords = [(0u16, 0u16), (1, 0), (0, 1), (1, 1)];
        let mut k = 0;
        'outer: for (x, y) in coords {
            for slot in [ClbSlot::LutF, ClbSlot::LutG] {
                if k >= n {
                    break 'outer;
                }
                p.place(CellId::new(k), BelLoc::clb(x, y, slot)).unwrap();
                k += 1;
            }
        }
    }

    #[test]
    fn small_insertion_stays_in_one_tile() {
        let (_, plan) = plan();
        let mut p = Placement::new(16);
        fill_tile0(&mut p, 4); // 2 CLBs used, 2 free in tile 0
        let set = AffectedSet::compute(&plan, &p, &[CellId::new(0)], 2, ExpansionPolicy::MostFree)
            .unwrap();
        assert_eq!(set.tiles, vec![TileId(0)]);
        assert!(set.fits);
        assert_eq!(set.fraction_of(&plan), 0.25);
    }

    #[test]
    fn large_insertion_expands_to_neighbors() {
        let (_, plan) = plan();
        let mut p = Placement::new(16);
        fill_tile0(&mut p, 4);
        // Need 6 CLBs: tile0 has 2 free, neighbours have 4 each.
        let set = AffectedSet::compute(&plan, &p, &[CellId::new(0)], 6, ExpansionPolicy::MostFree)
            .unwrap();
        assert_eq!(set.tiles.len(), 2);
        assert_eq!(set.tiles[0], TileId(0));
        assert!(set.fits);
        assert!(set.free_clbs >= 6);
    }

    #[test]
    fn saturates_at_whole_device() {
        let (_, plan) = plan();
        let p = Placement::new(0);
        let set = AffectedSet::compute(&plan, &p, &[], 1000, ExpansionPolicy::MostFree).unwrap();
        assert_eq!(set.tiles.len(), 4);
        assert!(!set.fits);
        assert_eq!(set.fraction_of(&plan), 1.0);
    }

    #[test]
    fn empty_seed_starts_at_most_free_tile() {
        let (_, plan) = plan();
        let mut p = Placement::new(16);
        fill_tile0(&mut p, 8); // tile 0 completely full of LUTs
        let set = AffectedSet::compute(&plan, &p, &[], 1, ExpansionPolicy::MostFree).unwrap();
        assert_ne!(set.tiles[0], TileId(0));
        assert!(set.fits);
    }

    #[test]
    fn policies_differ() {
        let (_, plan) = plan();
        let mut p = Placement::new(64);
        fill_tile0(&mut p, 8); // tile 0 full
                               // Fill tile 1 (x in 2..4, y in 0..2) halfway: 4 slots.
        let mut k = 8;
        for (x, y) in [(2u16, 0u16), (3, 0)] {
            for slot in [ClbSlot::LutF, ClbSlot::LutG] {
                p.place(CellId::new(k), BelLoc::clb(x, y, slot)).unwrap();
                k += 1;
            }
        }
        // Seed in tile 0 (full), need 4 CLBs. MostFree picks tile 2
        // (4 free) over tile 1 (2 free); NearestFirst picks tile 1.
        let most = AffectedSet::compute(&plan, &p, &[CellId::new(0)], 4, ExpansionPolicy::MostFree)
            .unwrap();
        let near = AffectedSet::compute(
            &plan,
            &p,
            &[CellId::new(0)],
            4,
            ExpansionPolicy::NearestFirst,
        )
        .unwrap();
        assert_eq!(most.tiles[1], TileId(2));
        assert_eq!(near.tiles[1], TileId(1));
        assert!(near.tiles.len() >= most.tiles.len());
    }

    #[test]
    fn multi_seed_unions_tiles() {
        let (_, plan) = plan();
        let mut p = Placement::new(16);
        p.place(CellId::new(0), BelLoc::clb(0, 0, ClbSlot::LutF))
            .unwrap();
        p.place(CellId::new(1), BelLoc::clb(3, 3, ClbSlot::LutF))
            .unwrap();
        let set = AffectedSet::compute(
            &plan,
            &p,
            &[CellId::new(0), CellId::new(1)],
            0,
            ExpansionPolicy::MostFree,
        )
        .unwrap();
        assert_eq!(set.tiles, vec![TileId(0), TileId(3)]);
        assert!(set.contains(TileId(3)));
    }
}

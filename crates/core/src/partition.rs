//! Tile-boundary determination (paper step 6).
//!
//! "Tile boundaries are determined by a number of factors. First,
//! inter-tile interconnect is minimized" (§3.2). We partition the CLB
//! grid with straight cut lines (so tiles stay rectangles — the shape
//! the constraint system and interface locking need) and choose the
//! cut positions by dynamic programming to minimize the number of
//! placed nets each line severs, under a width-balance constraint that
//! keeps tile capacities near-equal (the user's area-overhead budget
//! is per tile).

use fpga::{Device, Placement, Rect};
use netlist::Netlist;

use crate::tile::TilePlan;

/// Partitions a placed design into roughly `target_tiles` rectangular
/// tiles, minimizing severed nets.
///
/// The grid is split into `r × c` tiles with `r·c ≥ target_tiles`,
/// the row/column counts chosen to match the device aspect ratio.
///
/// # Panics
///
/// Panics if `target_tiles == 0`.
pub fn partition(
    nl: &Netlist,
    device: &Device,
    placement: &Placement,
    target_tiles: usize,
) -> TilePlan {
    assert!(target_tiles > 0, "need at least one tile");
    let (w, h) = (device.width() as usize, device.height() as usize);
    let t = target_tiles.min(w * h);
    // Rows/cols matching the aspect ratio. Tiles must be at least two
    // CLBs on a side: a one-CLB-wide tile owns no interior routing
    // channel at all, so nothing could ever be re-routed inside it.
    let max_rows = (h / 2).max(1);
    let max_cols = (w / 2).max(1);
    let mut rows = ((t as f64 * h as f64 / w as f64).sqrt().round() as usize).max(1);
    rows = rows.min(max_rows).min(t);
    let cols = t.div_ceil(rows).min(max_cols);

    // Crossing histograms: how many net bounding boxes straddle each
    // candidate cut line.
    let (xcross, ycross) = crossing_histograms(nl, device, placement);
    let xcuts = best_cuts(&xcross, w, cols);
    let ycuts = best_cuts(&ycross, h, rows);

    let mut rects = Vec::with_capacity(cols * rows);
    for r in 0..rows {
        for c in 0..cols {
            let x0 = xcuts[c] as u16;
            let x1 = (xcuts[c + 1] - 1) as u16;
            let y0 = ycuts[r] as u16;
            let y1 = (ycuts[r + 1] - 1) as u16;
            rects.push(Rect::new(x0, y0, x1, y1));
        }
    }
    TilePlan::from_rects(device, rects)
}

/// Uniform partition into `rows × cols` equal-as-possible tiles
/// (ablation baseline: no cut-cost minimization).
pub fn uniform_partition(device: &Device, rows: usize, cols: usize) -> TilePlan {
    let (w, h) = (device.width() as usize, device.height() as usize);
    let rows = rows.clamp(1, (h / 2).max(1));
    let cols = cols.clamp(1, (w / 2).max(1));
    let xcuts = even_cuts(w, cols);
    let ycuts = even_cuts(h, rows);
    let mut rects = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            rects.push(Rect::new(
                xcuts[c] as u16,
                ycuts[r] as u16,
                (xcuts[c + 1] - 1) as u16,
                (ycuts[r + 1] - 1) as u16,
            ));
        }
    }
    TilePlan::from_rects(device, rects)
}

fn even_cuts(len: usize, parts: usize) -> Vec<usize> {
    (0..=parts).map(|i| i * len / parts).collect()
}

/// Histogram of net-bbox crossings per vertical/horizontal line.
///
/// `xcross[x]` counts nets whose bbox spans the line between columns
/// `x-1` and `x` (valid x: 1..w).
fn crossing_histograms(
    nl: &Netlist,
    device: &Device,
    placement: &Placement,
) -> (Vec<u32>, Vec<u32>) {
    let (w, h) = (device.width(), device.height());
    let mut xcross = vec![0u32; w as usize + 1];
    let mut ycross = vec![0u32; h as usize + 1];
    for (_, net) in nl.nets() {
        let (mut x0, mut y0, mut x1, mut y1) = (u16::MAX, u16::MAX, 0u16, 0u16);
        let mut any = false;
        let mut visit = |cell: netlist::CellId| {
            if let Some(loc) = placement.loc_of(cell) {
                let c = loc.proxy_coord(w, h);
                x0 = x0.min(c.x);
                y0 = y0.min(c.y);
                x1 = x1.max(c.x);
                y1 = y1.max(c.y);
                any = true;
            }
        };
        if let Some(d) = net.driver {
            visit(d);
        }
        for s in &net.sinks {
            visit(s.cell);
        }
        if !any {
            continue;
        }
        for x in (x0 + 1)..=x1 {
            xcross[x as usize] += 1;
        }
        for y in (y0 + 1)..=y1 {
            ycross[y as usize] += 1;
        }
    }
    (xcross, ycross)
}

/// Chooses `parts - 1` interior cut positions minimizing total
/// crossing cost, with each part's width within ±2 of the even split
/// (never below 1). Returns the `parts + 1` boundaries including 0
/// and `len`.
fn best_cuts(cross: &[u32], len: usize, parts: usize) -> Vec<usize> {
    if parts <= 1 {
        return vec![0, len];
    }
    let even = len as f64 / parts as f64;
    // Keep every tile at least 2 CLBs across when the grid allows it
    // (see `partition` — 1-wide tiles have no interior routing).
    let min_dim = if len >= 2 * parts { 2.0 } else { 1.0 };
    let lo = ((even - 2.0).floor().max(min_dim)) as usize;
    let hi = ((even + 2.0).ceil()) as usize;

    // dp[i][p] = min cost of placing boundary i at position p, with
    // boundaries 0..i already placed (boundary 0 at 0).
    const INF: u64 = u64::MAX / 4;
    let mut dp = vec![vec![INF; len + 1]; parts + 1];
    let mut from = vec![vec![usize::MAX; len + 1]; parts + 1];
    dp[0][0] = 0;
    for i in 1..=parts {
        for p in 1..=len {
            let cost_here = if i == parts {
                // The final boundary must be exactly `len` (no cut cost).
                if p != len {
                    continue;
                }
                0
            } else {
                u64::from(cross[p])
            };
            // A boundary closer to the origin than `lo` would make the
            // first segment under-width (saturating here used to let
            // cut 1 land at x=1, creating 1-CLB sliver tiles).
            let Some(hi_prev) = p.checked_sub(lo) else {
                continue;
            };
            let lo_prev = p.saturating_sub(hi);
            for q in lo_prev..=hi_prev.min(len) {
                if dp[i - 1][q] == INF {
                    continue;
                }
                let cand = dp[i - 1][q] + cost_here;
                if cand < dp[i][p] {
                    dp[i][p] = cand;
                    from[i][p] = q;
                }
            }
        }
    }
    if dp[parts][len] == INF {
        // Balance constraints infeasible (tiny grids): fall back.
        return even_cuts(len, parts);
    }
    let mut cuts = vec![0usize; parts + 1];
    cuts[parts] = len;
    let mut p = len;
    for i in (1..=parts).rev() {
        let q = from[i][p];
        cuts[i - 1] = q;
        p = q;
    }
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga::{BelLoc, ClbSlot};
    use netlist::TruthTable;

    #[test]
    fn uniform_partition_covers() {
        let dev = Device::new(7, 5, 4, 2).unwrap();
        let plan = uniform_partition(&dev, 2, 3);
        assert_eq!(plan.len(), 6);
        let total: usize = plan.iter().map(|(_, t)| t.rect.area()).sum();
        assert_eq!(total, 35);
    }

    #[test]
    fn partition_prefers_low_cut_lines() {
        // Two clusters at x in {0,1} and x in {6,7}; the cheap vertical
        // cut is anywhere in 2..=6 — the DP must avoid x=1 and x=7.
        let mut nl = Netlist::new("t");
        let dev = Device::new(8, 2, 4, 2).unwrap();
        let mut p = fpga::Placement::new(64);
        let make_cluster = |nl: &mut Netlist, tag: &str, x: u16| {
            let a = nl.add_input(format!("{tag}_a")).unwrap();
            let na = nl.cell_output(a).unwrap();
            let u = nl
                .add_lut(format!("{tag}_u"), TruthTable::not(), &[na])
                .unwrap();
            let v = nl
                .add_lut(
                    format!("{tag}_v"),
                    TruthTable::not(),
                    &[nl.cell_output(u).unwrap()],
                )
                .unwrap();
            nl.add_output(format!("{tag}_y"), nl.cell_output(v).unwrap())
                .unwrap();
            (u, v, x)
        };
        let (u0, v0, _) = make_cluster(&mut nl, "l", 0);
        let (u1, v1, _) = make_cluster(&mut nl, "r", 6);
        p.place(u0, BelLoc::clb(0, 0, ClbSlot::LutF)).unwrap();
        p.place(v0, BelLoc::clb(1, 0, ClbSlot::LutF)).unwrap();
        p.place(u1, BelLoc::clb(6, 0, ClbSlot::LutF)).unwrap();
        p.place(v1, BelLoc::clb(7, 0, ClbSlot::LutF)).unwrap();
        let plan = partition(&nl, &dev, &p, 2);
        assert_eq!(plan.len(), 2);
        // Both cluster cells end up in the same tile.
        assert_eq!(
            plan.tile_of_cell(&p, u0),
            plan.tile_of_cell(&p, v0),
            "left cluster split"
        );
        assert_eq!(
            plan.tile_of_cell(&p, u1),
            plan.tile_of_cell(&p, v1),
            "right cluster split"
        );
        assert_eq!(plan.cut_nets(&nl, &p), 0);
    }

    #[test]
    fn partition_hits_target_count() {
        let dev = Device::new(10, 10, 4, 2).unwrap();
        let nl = Netlist::new("empty");
        let p = fpga::Placement::new(0);
        for target in [1, 2, 4, 9, 10, 25] {
            let plan = partition(&nl, &dev, &p, target);
            assert!(plan.len() >= target, "target {target} got {}", plan.len());
            assert!(
                plan.len() <= target * 2,
                "target {target} got {}",
                plan.len()
            );
        }
    }

    #[test]
    fn degenerate_small_grid() {
        // A 2x2 device cannot host more than one >=2x2 tile.
        let dev = Device::new(2, 2, 4, 2).unwrap();
        let nl = Netlist::new("empty");
        let p = fpga::Placement::new(0);
        let plan = partition(&nl, &dev, &p, 16);
        assert_eq!(plan.len(), 1);
        // A 4x4 device holds four 2x2 tiles.
        let dev = Device::new(4, 4, 4, 2).unwrap();
        let plan = partition(&nl, &dev, &p, 16);
        assert_eq!(plan.len(), 4);
    }
}

//! The CAD-effort metric Figure 5's speedups are computed from.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Back-end CAD effort: placer moves plus router wavefront expansions.
///
/// Wall-clock on 1996 workstations is not reproducible; these two
/// deterministic counters are, and both scale linearly with the real
/// work the tools perform. Speedups are ratios of totals.
///
/// ```
/// use tiling::CadEffort;
/// let full = CadEffort { place_moves: 900_000, route_expansions: 100_000 };
/// let tile = CadEffort { place_moves: 80_000, route_expansions: 20_000 };
/// assert!(full.speedup_over(&tile) > 9.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CadEffort {
    /// Simulated-annealing moves evaluated.
    pub place_moves: u64,
    /// PathFinder node expansions.
    pub route_expansions: u64,
}

impl CadEffort {
    /// Combined effort (moves and expansions cost about the same:
    /// both are one cost evaluation plus one heap/accept operation).
    pub fn total(&self) -> u64 {
        self.place_moves + self.route_expansions
    }

    /// How many times more effort `self` takes than `other`.
    pub fn speedup_over(&self, other: &CadEffort) -> f64 {
        let denom = other.total().max(1) as f64;
        self.total() as f64 / denom
    }
}

impl Add for CadEffort {
    type Output = CadEffort;

    fn add(self, rhs: CadEffort) -> CadEffort {
        CadEffort {
            place_moves: self.place_moves + rhs.place_moves,
            route_expansions: self.route_expansions + rhs.route_expansions,
        }
    }
}

impl AddAssign for CadEffort {
    fn add_assign(&mut self, rhs: CadEffort) {
        *self = *self + rhs;
    }
}

impl fmt::Display for CadEffort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} place moves + {} route expansions = {}",
            self.place_moves,
            self.route_expansions,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = CadEffort {
            place_moves: 10,
            route_expansions: 5,
        };
        let b = CadEffort {
            place_moves: 1,
            route_expansions: 2,
        };
        assert_eq!((a + b).total(), 18);
        let mut c = a;
        c += b;
        assert_eq!(c.total(), 18);
    }

    #[test]
    fn speedup_guards_zero() {
        let a = CadEffort {
            place_moves: 100,
            route_expansions: 0,
        };
        let zero = CadEffort::default();
        assert_eq!(a.speedup_over(&zero), 100.0);
    }
}

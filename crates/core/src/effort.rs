//! The CAD-effort metric Figure 5's speedups are computed from.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Back-end CAD effort: placer moves plus router wavefront expansions.
///
/// Wall-clock on 1996 workstations is not reproducible; these two
/// deterministic counters are, and both scale linearly with the real
/// work the tools perform. Speedups are ratios of totals.
///
/// ```
/// use tiling::CadEffort;
/// let full = CadEffort { place_moves: 900_000, route_expansions: 100_000 };
/// let tile = CadEffort { place_moves: 80_000, route_expansions: 20_000 };
/// assert!(full.speedup_over(&tile) > 9.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CadEffort {
    /// Simulated-annealing moves evaluated.
    pub place_moves: u64,
    /// PathFinder node expansions.
    pub route_expansions: u64,
}

impl CadEffort {
    /// Combined effort (moves and expansions cost about the same:
    /// both are one cost evaluation plus one heap/accept operation).
    pub fn total(&self) -> u64 {
        self.place_moves + self.route_expansions
    }

    /// How many times more effort `self` takes than `other`.
    pub fn speedup_over(&self, other: &CadEffort) -> f64 {
        let denom = other.total().max(1) as f64;
        self.total() as f64 / denom
    }
}

impl Add for CadEffort {
    type Output = CadEffort;

    fn add(self, rhs: CadEffort) -> CadEffort {
        CadEffort {
            place_moves: self.place_moves + rhs.place_moves,
            route_expansions: self.route_expansions + rhs.route_expansions,
        }
    }
}

impl AddAssign for CadEffort {
    fn add_assign(&mut self, rhs: CadEffort) {
        *self = *self + rhs;
    }
}

impl fmt::Display for CadEffort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} place moves + {} route expansions = {}",
            self.place_moves,
            self.route_expansions,
            self.total()
        )
    }
}

/// The four phases of one debugging iteration (paper §3.1): error
/// *detection* by emulation, iterative *localization* with observation
/// taps, controllability *confirmation* (§4.1), and the corrective
/// ECO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Pattern emulation until the first primary-output divergence.
    Detect,
    /// Observation-tap ECOs narrowing the suspect cone.
    Localize,
    /// Control-point ECO forcing the suspect to golden values.
    Confirm,
    /// The repairing ECO plus confirmation emulation.
    Correct,
}

impl Phase {
    /// All phases, in iteration order.
    pub const ALL: [Phase; 4] = [
        Phase::Detect,
        Phase::Localize,
        Phase::Confirm,
        Phase::Correct,
    ];

    /// Lower-case phase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Detect => "detect",
            Phase::Localize => "localize",
            Phase::Confirm => "confirm",
            Phase::Correct => "correct",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Detect => 0,
            Phase::Localize => 1,
            Phase::Confirm => 2,
            Phase::Correct => 3,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Effort accumulated within one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseEffort {
    /// CAD effort of this phase's physical ECOs.
    pub effort: CadEffort,
    /// Physical ECOs performed in this phase.
    pub ecos: usize,
    /// Tiles cleared (with multiplicity) across those ECOs.
    pub tiles_cleared: usize,
}

/// Per-phase effort bookkeeping for a debug session
/// (detect / localize / confirm / correct).
///
/// [`crate::report::DebugReport`] and the bench binaries render it;
/// [`crate::session::DebugSession`] fills it in.
///
/// ```
/// use tiling::effort::{CadEffort, EffortLedger, Phase};
/// let mut ledger = EffortLedger::default();
/// ledger.charge(
///     Phase::Localize,
///     CadEffort { place_moves: 10, route_expansions: 5 },
///     2,
/// );
/// assert_eq!(ledger.phase(Phase::Localize).ecos, 1);
/// assert_eq!(ledger.total().total(), 15);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EffortLedger {
    phases: [PhaseEffort; 4],
}

impl EffortLedger {
    /// Records one physical ECO against a phase.
    pub fn charge(&mut self, phase: Phase, effort: CadEffort, tiles_cleared: usize) {
        let p = &mut self.phases[phase.index()];
        p.effort += effort;
        p.ecos += 1;
        p.tiles_cleared += tiles_cleared;
    }

    /// One phase's accumulated effort.
    pub fn phase(&self, phase: Phase) -> &PhaseEffort {
        &self.phases[phase.index()]
    }

    /// Overwrites one phase's accumulated effort — for reconstructing
    /// a ledger from externally stored totals (the metrics registry).
    pub fn set_phase(&mut self, phase: Phase, value: PhaseEffort) {
        self.phases[phase.index()] = value;
    }

    /// Total CAD effort across all phases.
    pub fn total(&self) -> CadEffort {
        self.phases
            .iter()
            .fold(CadEffort::default(), |acc, p| acc + p.effort)
    }

    /// Total physical ECOs across all phases.
    pub fn total_ecos(&self) -> usize {
        self.phases.iter().map(|p| p.ecos).sum()
    }

    /// Total tiles cleared (with multiplicity) across all phases.
    pub fn total_tiles_cleared(&self) -> usize {
        self.phases.iter().map(|p| p.tiles_cleared).sum()
    }

    /// Folds another ledger into this one (campaign aggregation).
    pub fn merge(&mut self, other: &EffortLedger) {
        for (mine, theirs) in self.phases.iter_mut().zip(&other.phases) {
            mine.effort += theirs.effort;
            mine.ecos += theirs.ecos;
            mine.tiles_cleared += theirs.tiles_cleared;
        }
    }
}

impl fmt::Display for EffortLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, phase) in Phase::ALL.into_iter().enumerate() {
            let p = self.phase(phase);
            if k > 0 {
                writeln!(f)?;
            }
            write!(
                f,
                "{:<9} {:>2} ECOs, {:>2} tiles cleared, {}",
                phase, p.ecos, p.tiles_cleared, p.effort
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = CadEffort {
            place_moves: 10,
            route_expansions: 5,
        };
        let b = CadEffort {
            place_moves: 1,
            route_expansions: 2,
        };
        assert_eq!((a + b).total(), 18);
        let mut c = a;
        c += b;
        assert_eq!(c.total(), 18);
    }

    #[test]
    fn ledger_charges_and_merges_per_phase() {
        let eco = CadEffort {
            place_moves: 7,
            route_expansions: 3,
        };
        let mut a = EffortLedger::default();
        a.charge(Phase::Localize, eco, 2);
        a.charge(Phase::Localize, eco, 1);
        a.charge(Phase::Correct, eco, 1);
        assert_eq!(a.phase(Phase::Localize).ecos, 2);
        assert_eq!(a.phase(Phase::Localize).tiles_cleared, 3);
        assert_eq!(a.phase(Phase::Detect).ecos, 0);
        assert_eq!(a.total_ecos(), 3);
        assert_eq!(a.total().total(), 30);

        let mut b = EffortLedger::default();
        b.charge(Phase::Confirm, eco, 4);
        b.merge(&a);
        assert_eq!(b.total_ecos(), 4);
        assert_eq!(b.total_tiles_cleared(), 8);
        let text = b.to_string();
        for phase in Phase::ALL {
            assert!(text.contains(phase.name()), "missing {phase} in {text}");
        }
    }

    #[test]
    fn speedup_guards_zero() {
        let a = CadEffort {
            place_moves: 100,
            route_expansions: 0,
        };
        let zero = CadEffort::default();
        assert_eq!(a.speedup_over(&zero), 100.0);
    }
}

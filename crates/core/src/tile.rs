//! Tiles and the tile plan.

use std::fmt;

use fpga::{BelLoc, ClbSlot, Coord, Device, Placement, Rect};
use netlist::{CellId, CellKind, Netlist};

use crate::error::TilingError;

/// Identifier of a tile within a [`TilePlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TileId(pub u32);

impl TileId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One tile: a rectangle of CLBs with a locked interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tile {
    /// Physical footprint.
    pub rect: Rect,
}

impl Tile {
    /// CLB capacity of the tile.
    pub fn capacity_clbs(&self) -> usize {
        self.rect.area()
    }
}

/// Per-tile resource usage snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileUsage {
    /// Occupied LUT slots.
    pub used_luts: usize,
    /// Occupied flip-flop slots.
    pub used_ffs: usize,
    /// Total CLBs in the tile.
    pub capacity: usize,
}

impl TileUsage {
    /// CLBs considered consumed (XC4000 packing bound).
    pub fn used_clbs(&self) -> usize {
        self.used_luts.max(self.used_ffs).div_ceil(2)
    }

    /// Whole CLBs still available for new logic.
    ///
    /// New test logic needs both LUT and FF slots, so the free count
    /// is bounded by the scarcer resource.
    pub fn free_clbs(&self) -> usize {
        let free_luts = 2 * self.capacity - self.used_luts;
        let free_ffs = 2 * self.capacity - self.used_ffs;
        free_luts.min(free_ffs) / 2
    }
}

/// The physical partition of a device into tiles.
///
/// Tiles exactly cover the CLB grid and never overlap. I/O pads live
/// outside every tile (their placement never changes during ECOs).
#[derive(Debug, Clone)]
pub struct TilePlan {
    tiles: Vec<Tile>,
    /// Row-major `width × height` map from CLB coordinate to tile.
    coord_tile: Vec<TileId>,
    width: u16,
    height: u16,
}

impl TilePlan {
    /// Builds a plan from tile rectangles that exactly cover `device`.
    ///
    /// # Panics
    ///
    /// Panics if the rectangles overlap or leave grid coordinates
    /// uncovered (programming error in the partitioner).
    pub fn from_rects(device: &Device, rects: Vec<Rect>) -> Self {
        let (w, h) = (device.width(), device.height());
        let mut coord_tile = vec![None; w as usize * h as usize];
        for (i, r) in rects.iter().enumerate() {
            for c in r.iter() {
                let idx = c.y as usize * w as usize + c.x as usize;
                assert!(coord_tile[idx].is_none(), "tiles overlap at {c}");
                coord_tile[idx] = Some(TileId(i as u32));
            }
        }
        let coord_tile: Vec<TileId> = coord_tile
            .into_iter()
            .map(|t| t.expect("tiles must cover the grid"))
            .collect();
        Self {
            tiles: rects.into_iter().map(|rect| Tile { rect }).collect(),
            coord_tile,
            width: w,
            height: h,
        }
    }

    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// True if the plan has no tiles (never the case for real plans).
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// The tile with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`TilingError::UnknownTile`] for bad ids.
    pub fn tile(&self, id: TileId) -> Result<&Tile, TilingError> {
        self.tiles
            .get(id.index())
            .ok_or(TilingError::UnknownTile(id.index()))
    }

    /// Iterates over `(id, tile)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TileId, &Tile)> {
        self.tiles
            .iter()
            .enumerate()
            .map(|(i, t)| (TileId(i as u32), t))
    }

    /// The tile covering a CLB coordinate.
    pub fn tile_of_coord(&self, c: Coord) -> Option<TileId> {
        if c.x >= self.width || c.y >= self.height {
            return None;
        }
        Some(self.coord_tile[c.y as usize * self.width as usize + c.x as usize])
    }

    /// The tile hosting a placed cell (None for IOB-placed and
    /// unplaced cells).
    pub fn tile_of_cell(&self, placement: &Placement, cell: CellId) -> Option<TileId> {
        match placement.loc_of(cell)? {
            BelLoc::Clb { coord, .. } => self.tile_of_coord(coord),
            BelLoc::Iob(_) => None,
        }
    }

    /// Tiles sharing an edge with `id`.
    ///
    /// # Errors
    ///
    /// Returns [`TilingError::UnknownTile`] for bad ids.
    pub fn neighbors(&self, id: TileId) -> Result<Vec<TileId>, TilingError> {
        let rect = self.tile(id)?.rect;
        let mut out = Vec::new();
        let mut push = |t: Option<TileId>| {
            if let Some(t) = t {
                if t != id && !out.contains(&t) {
                    out.push(t);
                }
            }
        };
        for x in rect.x0..=rect.x1 {
            if rect.y0 > 0 {
                push(self.tile_of_coord(Coord::new(x, rect.y0 - 1)));
            }
            push(self.tile_of_coord(Coord::new(x, rect.y1 + 1)));
        }
        for y in rect.y0..=rect.y1 {
            if rect.x0 > 0 {
                push(self.tile_of_coord(Coord::new(rect.x0 - 1, y)));
            }
            push(self.tile_of_coord(Coord::new(rect.x1 + 1, y)));
        }
        Ok(out)
    }

    /// Resource usage of one tile under a placement.
    ///
    /// # Errors
    ///
    /// Returns [`TilingError::UnknownTile`] for bad ids.
    pub fn usage(&self, id: TileId, placement: &Placement) -> Result<TileUsage, TilingError> {
        let rect = self.tile(id)?.rect;
        let mut u = TileUsage {
            capacity: rect.area(),
            ..Default::default()
        };
        for c in rect.iter() {
            for slot in ClbSlot::ALL {
                let loc = BelLoc::Clb { coord: c, slot };
                if placement.cell_at(loc).is_some() {
                    if slot.is_lut() {
                        u.used_luts += 1;
                    } else {
                        u.used_ffs += 1;
                    }
                }
            }
        }
        Ok(u)
    }

    /// Cells of the netlist placed inside tile `id`.
    ///
    /// # Errors
    ///
    /// Returns [`TilingError::UnknownTile`] for bad ids.
    pub fn cells_in_tile(
        &self,
        id: TileId,
        nl: &Netlist,
        placement: &Placement,
    ) -> Result<Vec<CellId>, TilingError> {
        self.tile(id)?;
        Ok(nl
            .cells()
            .filter(|(cid, c)| {
                matches!(c.kind, CellKind::Lut(_) | CellKind::Ff { .. })
                    && self.tile_of_cell(placement, *cid) == Some(id)
            })
            .map(|(cid, _)| cid)
            .collect())
    }

    /// Nets whose placed terminals span more than one tile (or a tile
    /// and the IOB ring) — the inter-tile interconnect the partitioner
    /// minimizes.
    pub fn cut_nets(&self, nl: &Netlist, placement: &Placement) -> usize {
        let mut cut = 0;
        for (_, net) in nl.nets() {
            let mut first: Option<Option<TileId>> = None;
            let mut is_cut = false;
            let mut visit = |cell: CellId| {
                if placement.loc_of(cell).is_none() {
                    return;
                }
                let t = self.tile_of_cell(placement, cell);
                match first {
                    None => first = Some(t),
                    Some(f) if f != t => is_cut = true,
                    _ => {}
                }
            };
            if let Some(d) = net.driver {
                visit(d);
            }
            for s in &net.sinks {
                visit(s.cell);
            }
            if is_cut {
                cut += 1;
            }
        }
        cut
    }

    /// Average tile size in CLBs.
    pub fn mean_tile_clbs(&self) -> f64 {
        if self.tiles.is_empty() {
            return 0.0;
        }
        self.tiles.iter().map(|t| t.rect.area()).sum::<usize>() as f64 / self.tiles.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_plan() -> (Device, TilePlan) {
        let dev = Device::new(4, 4, 4, 2).unwrap();
        let rects = vec![
            Rect::new(0, 0, 1, 1),
            Rect::new(2, 0, 3, 1),
            Rect::new(0, 2, 1, 3),
            Rect::new(2, 2, 3, 3),
        ];
        let plan = TilePlan::from_rects(&dev, rects);
        (dev, plan)
    }

    #[test]
    fn coverage_and_lookup() {
        let (_, plan) = quad_plan();
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.tile_of_coord(Coord::new(0, 0)), Some(TileId(0)));
        assert_eq!(plan.tile_of_coord(Coord::new(3, 3)), Some(TileId(3)));
        assert_eq!(plan.tile_of_coord(Coord::new(4, 0)), None);
        assert_eq!(plan.mean_tile_clbs(), 4.0);
    }

    #[test]
    fn neighbors_are_edge_adjacent() {
        let (_, plan) = quad_plan();
        let mut n = plan.neighbors(TileId(0)).unwrap();
        n.sort_unstable();
        assert_eq!(n, vec![TileId(1), TileId(2)]); // not the diagonal t3
    }

    #[test]
    #[should_panic(expected = "cover")]
    fn uncovered_grid_panics() {
        let dev = Device::new(4, 4, 4, 2).unwrap();
        let _ = TilePlan::from_rects(&dev, vec![Rect::new(0, 0, 1, 1)]);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_tiles_panic() {
        let dev = Device::new(2, 1, 4, 2).unwrap();
        let _ = TilePlan::from_rects(&dev, vec![Rect::new(0, 0, 1, 0), Rect::new(1, 0, 1, 0)]);
    }

    #[test]
    fn usage_counts_slots() {
        let (_, plan) = quad_plan();
        let mut p = Placement::new(4);
        p.place(CellId::new(0), BelLoc::clb(0, 0, ClbSlot::LutF))
            .unwrap();
        p.place(CellId::new(1), BelLoc::clb(1, 1, ClbSlot::LutG))
            .unwrap();
        p.place(CellId::new(2), BelLoc::clb(0, 1, ClbSlot::FfA))
            .unwrap();
        let u = plan.usage(TileId(0), &p).unwrap();
        assert_eq!(u.used_luts, 2);
        assert_eq!(u.used_ffs, 1);
        assert_eq!(u.capacity, 4);
        assert_eq!(u.used_clbs(), 1);
        // free: min(8-2, 8-1)/2 = 3
        assert_eq!(u.free_clbs(), 3);
    }

    #[test]
    fn cut_nets_counts_cross_tile_nets() {
        let (_, plan) = quad_plan();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let na = nl.cell_output(a).unwrap();
        let u = nl.add_lut("u", netlist::TruthTable::not(), &[na]).unwrap();
        let v = nl
            .add_lut(
                "v",
                netlist::TruthTable::not(),
                &[nl.cell_output(u).unwrap()],
            )
            .unwrap();
        nl.add_output("y", nl.cell_output(v).unwrap()).unwrap();
        let mut p = Placement::new(nl.cell_capacity());
        // u in tile 0, v in tile 3: u->v is cut. a is an IOB (outside).
        p.place(
            a,
            BelLoc::Iob(fpga::IobSite {
                side: fpga::IobSide::West,
                pos: 0,
                k: 0,
            }),
        )
        .unwrap();
        p.place(u, BelLoc::clb(0, 0, ClbSlot::LutF)).unwrap();
        p.place(v, BelLoc::clb(3, 3, ClbSlot::LutF)).unwrap();
        // a->u also counts: IOB (None) vs tile 0. v->y does not: the
        // output cell y is unplaced, so the net has one visible
        // terminal.
        assert_eq!(plan.cut_nets(&nl, &p), 2); // a->u, u->v
    }
}

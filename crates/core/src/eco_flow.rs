//! Clear affected tiles and re-place-and-route them (paper §5.2).
//!
//! "Any tile that contains a design portion affected by the debugging
//! change must be cleared, while still maintaining the locked
//! interface to its surrounding tiles. [...] Once all of the affected
//! tiles are cleared, the remainder of the design is locked to its
//! location. The affected portions are then re-placed-and-routed in
//! the cleared tiles, any removed interfaces are re-locked."
//!
//! Two routing passes implement that: a *masked* pass confined to the
//! cleared region whose nets terminate on locked interface nodes, and
//! a small *free* pass for connections that inherently leave the
//! region (new pads, new cross-region connections, feedthroughs) —
//! those may use only free routing resources elsewhere, never locked
//! ones.

use std::collections::BTreeSet;

use fpga::{NodeId, RouteTree};
use netlist::{CellId, CellKind, NetId};
use place::Constraints;
use route::{ConnectionRequest, RouteOptions};

use crate::affected::{AffectedSet, ExpansionPolicy};
use crate::effort::CadEffort;
use crate::error::TilingError;
use crate::flow::TiledDesign;
use crate::interface::{split_tree, RegionSet};

/// Result of one tile-confined re-implementation.
#[derive(Debug, Clone)]
pub struct EcoPhysicalOutcome {
    /// CAD effort spent (Figure 5's numerator for the tiled flow).
    pub effort: CadEffort,
    /// Which tiles were cleared.
    pub affected: AffectedSet,
    /// Logic cells re-placed.
    pub replaced_cells: usize,
    /// Nets re-routed (fully or partially).
    pub rerouted_nets: usize,
    /// Whether the re-route stayed confined to the affected tiles, so
    /// the locked-interface / frozen-route contract holds outside them.
    /// The coarse-granularity and full-reroute fallback paths (and the
    /// non-tiled flows) legitimately clear routes everywhere and
    /// report `false`; the post-ECO audit only applies when `true`.
    pub confined: bool,
}

/// Clears the tiles affected by a change and re-implements them.
///
/// `seeds` are the perturbed pre-existing cells (back-annotated from
/// the ECO); `added` are newly created cells awaiting placement. The
/// rest of the design — placement and routing — is locked and
/// provably untouched on return.
///
/// Tile expansion is driven by *both* resources: logic slack first
/// (the [`AffectedSet`] computation), and if the confined routing then
/// fails to converge, neighbouring tiles are drafted and the attempt
/// repeats — "if more resources are needed, neighboring tiles can
/// also be re-placed-and-routed" (§1.2) applies to wires as much as
/// to CLBs. The effort of failed attempts is charged to the outcome,
/// as a real flow would pay for them.
///
/// # Errors
///
/// [`TilingError::InsufficientSlack`] if the change cannot fit even
/// with every tile affected; placement/routing errors otherwise.
pub fn replace_and_route(
    td: &mut TiledDesign,
    seeds: &[CellId],
    added: &[CellId],
    policy: ExpansionPolicy,
) -> Result<EcoPhysicalOutcome, TilingError> {
    // Resource demand of the new logic, in CLBs.
    let (mut new_luts, mut new_ffs) = (0usize, 0usize);
    for &c in added {
        match td.netlist.cell(c).map(|cell| cell.kind.clone()) {
            Ok(CellKind::Lut(_)) => new_luts += 1,
            Ok(CellKind::Ff { .. }) => new_ffs += 1,
            _ => {}
        }
    }
    let extra_clbs = new_luts.max(new_ffs).div_ceil(2);

    // Steps 16–17: identify affected tiles (with neighbour expansion).
    let affected = AffectedSet::compute(&td.plan, &td.placement, seeds, extra_clbs, policy)?;
    if !affected.fits {
        return Err(TilingError::InsufficientSlack {
            needed: extra_clbs,
            available: affected.free_clbs,
        });
    }

    let placement_snapshot = td.placement.clone();
    let routing_snapshot = td.routing.clone();
    let mut tiles = affected.tiles.clone();
    let mut wasted = CadEffort::default();
    let mut retries = 0usize;
    // The truly incremental path goes first: nothing is cleared, only
    // missing connections are routed. One shot — if the surviving
    // routes leave too little capacity, tile-clearing takes over.
    let mut try_incremental = td.options.incremental_routing;
    loop {
        let incremental_now = std::mem::take(&mut try_incremental);
        let result = if incremental_now {
            attempt_incremental(td, &tiles, added, extra_clbs)
        } else {
            attempt(td, &tiles, added, extra_clbs)
        };
        match result {
            Ok(mut outcome) => {
                outcome.effort += wasted;
                // Debug builds re-prove the paper's contract after
                // every confined ECO: everything outside the cleared
                // tiles — placements and cross-boundary routes — is
                // byte-identical to the snapshots. A violation here is
                // a flow bug, not bad input (pre-flight owns input),
                // so it asserts rather than returning an error.
                #[cfg(debug_assertions)]
                if outcome.confined {
                    let findings = crate::preflight::audit_confined_eco(
                        td,
                        &outcome.affected.tiles,
                        &placement_snapshot,
                        &routing_snapshot,
                    );
                    assert!(
                        findings.is_empty(),
                        "post-ECO DRC audit failed:\n{}",
                        findings
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join("\n")
                    );
                }
                return Ok(outcome);
            }
            // The incremental attempt is best-effort: capacity
            // shortfalls (congestion around the frozen routes, or no
            // free slot for added logic) demote to tile-clearing on
            // the same tiles, with the failed attempt's effort
            // charged. Anything else is a real error.
            Err((TilingError::Route(_) | TilingError::Place(_), spent)) if incremental_now => {
                wasted += spent;
                td.placement = placement_snapshot.clone();
                td.routing = routing_snapshot.clone();
            }
            // Once expansion retries stop being promising — half the
            // device drafted, or several failures already paid for —
            // the cheapest guaranteed exit is one full re-route, which
            // bounds tiled effort by the non-tiled flow's (§6.1).
            Err((TilingError::Route(_), spent))
                if tiles.len() >= td.plan.len()
                    || 2 * tiles.len() >= td.plan.len()
                    || retries >= 3 =>
            {
                // Every tile is already drafted and confined routing
                // still fails: degenerate to a full re-route from the
                // current placement — "the resulting CAD tool effort
                // will never exceed that required by a non-tiled
                // approach" (§6.1). Placement from the failed attempt
                // is kept (all tiles were movable anyway).
                wasted += spent;
                let all_nets: Vec<NetId> = td.routing.iter().map(|(n, _)| n).collect();
                for n in all_nets {
                    td.routing.clear_route(n);
                }
                // Last resort gets a patient schedule: it replaces the
                // entire iteration, so spending double the iterations
                // here is still far cheaper than failing.
                let fallback_router = route::RouteOptions {
                    max_iterations: td.options.router.max_iterations * 2,
                    stall_limit: td.options.router.stall_limit * 2,
                    ..td.options.router.clone()
                };
                let stats = route::route_design(
                    &td.netlist,
                    &td.placement,
                    &td.rrg,
                    &mut td.routing,
                    &fallback_router,
                )
                .map_err(|e| {
                    td.placement = placement_snapshot.clone();
                    td.routing = routing_snapshot.clone();
                    TilingError::Route(e)
                })?;
                wasted.route_expansions += stats.expansions;
                route::counters::record_full_rips(td.routing.num_routed() as u64);
                let mut free_clbs = 0;
                for &t in &tiles {
                    free_clbs += td.plan.usage(t, &td.placement)?.free_clbs();
                }
                return Ok(EcoPhysicalOutcome {
                    effort: wasted,
                    affected: AffectedSet {
                        tiles,
                        needed_clbs: extra_clbs,
                        free_clbs,
                        fits: true,
                    },
                    replaced_cells: td.netlist.cells().filter(|(_, c)| c.is_logic()).count(),
                    rerouted_nets: td.routing.num_routed(),
                    confined: false,
                });
            }
            Err((TilingError::Route(_), spent)) if tiles.len() < td.plan.len() => {
                // Routing capacity ran out: draft the most-free
                // neighbouring tile and retry on the pristine state.
                retries += 1;
                wasted += spent;
                td.placement = placement_snapshot.clone();
                td.routing = routing_snapshot.clone();
                let mut best: Option<(usize, crate::tile::TileId)> = None;
                for &t in &tiles {
                    for nb in td.plan.neighbors(t)? {
                        if tiles.contains(&nb) {
                            continue;
                        }
                        let f = td.plan.usage(nb, &td.placement)?.free_clbs();
                        if best.is_none_or(|(bf, bid)| f > bf || (f == bf && nb < bid)) {
                            best = Some((f, nb));
                        }
                    }
                }
                match best {
                    Some((_, nb)) => tiles.push(nb),
                    None => {
                        // No neighbours left (disjoint saturated set):
                        // add any remaining tile.
                        let next = td
                            .plan
                            .iter()
                            .map(|(id, _)| id)
                            .find(|id| !tiles.contains(id));
                        match next {
                            Some(id) => tiles.push(id),
                            None => unreachable!("guarded by tiles.len() < plan.len()"),
                        }
                    }
                }
            }
            Err((e, _)) => {
                // Diagnostics hook: dump the conflicting state before
                // restoring (enabled by setting TILING_DUMP).
                if std::env::var_os("TILING_DUMP").is_some() {
                    for node in td.routing.overused_nodes() {
                        eprintln!("overused {:?}", td.rrg.node(node));
                        for (net, tree) in td.routing.iter() {
                            if tree.nodes().contains(&node) {
                                let name = td
                                    .netlist
                                    .net(net)
                                    .map(|n| n.name.clone())
                                    .unwrap_or_else(|_| "<dead>".into());
                                eprintln!("  net {net} ({name}) paths:");
                                for p in &tree.paths {
                                    if p.contains(&node) {
                                        let s: Vec<String> = p
                                            .iter()
                                            .map(|&x| format!("{}", td.rrg.node(x)))
                                            .collect();
                                        eprintln!("    {}", s.join(" > "));
                                    }
                                }
                            }
                        }
                    }
                }
                td.placement = placement_snapshot;
                td.routing = routing_snapshot;
                return Err(e);
            }
        }
    }
}

/// One truly incremental attempt: no clearing at all.
///
/// Surviving placements and routes stay installed (so the router sees
/// their present congestion and treats their wires as locked), added
/// logic is placed into the affected tiles, and only nets whose
/// terminals changed — new nets, added sinks, retired sinks, moved or
/// replaced drivers — are touched. Ripping is minimal: a net keeps
/// every source-connected path that still ends on a live sink pin, and
/// the router grows the missing connections from that seed tree.
///
/// On error the caller restores the snapshots and retries with the
/// tile-clearing path; the effort spent is returned so it is charged.
fn attempt_incremental(
    td: &mut TiledDesign,
    tiles: &[crate::tile::TileId],
    added: &[CellId],
    extra_clbs: usize,
) -> Result<EcoPhysicalOutcome, (TilingError, CadEffort)> {
    let mut spent = CadEffort::default();
    attempt_incremental_inner(td, tiles, added, extra_clbs, &mut spent).map_err(|e| (e, spent))
}

fn attempt_incremental_inner(
    td: &mut TiledDesign,
    tiles: &[crate::tile::TileId],
    added: &[CellId],
    extra_clbs: usize,
    spent: &mut CadEffort,
) -> Result<EcoPhysicalOutcome, TilingError> {
    let mut free_clbs = 0;
    for &t in tiles {
        free_clbs += td.plan.usage(t, &td.placement)?.free_clbs();
    }
    let affected = AffectedSet {
        tiles: tiles.to_vec(),
        needed_clbs: extra_clbs,
        free_clbs,
        fits: free_clbs >= extra_clbs,
    };
    let rects: Vec<fpga::Rect> = affected
        .tiles
        .iter()
        .map(|&t| td.plan.tile(t).map(|tile| tile.rect))
        .collect::<Result<_, _>>()?;

    // Retired instruments lose their placements/routes first, so their
    // resources are genuinely free for the new connections.
    crate::flow::drop_stale_physical_state(td);

    let mut effort = CadEffort::default();

    // ----- Place only the added logic ------------------------------
    let added_logic: Vec<CellId> = added
        .iter()
        .copied()
        .filter(|&c| td.netlist.cell(c).is_ok_and(netlist::Cell::is_logic))
        .collect();
    let placeable = added
        .iter()
        .any(|&c| td.netlist.cell(c).is_ok() && td.placement.loc_of(c).is_none());
    if placeable {
        let mut constraints = Constraints::free();
        for (id, _) in td.netlist.cells() {
            if td.placement.loc_of(id).is_some() {
                constraints.lock(id);
            }
        }
        for &c in &added_logic {
            constraints.confine_any(c, rects.clone());
        }
        let out = place::run_placer(
            &td.netlist,
            &td.device,
            &constraints,
            Some(std::mem::take(&mut td.placement)),
            &td.options.placer,
        )?;
        td.placement = out.placement;
        spent.place_moves += out.moves_evaluated;
        effort.place_moves += out.moves_evaluated;
    }

    // ----- Minimal routing work list --------------------------------
    // A net needs work iff its installed tree no longer matches its
    // terminals. Everything else stays untouched — including nets
    // threading through the affected tiles.
    let mut requests: Vec<ConnectionRequest> = Vec::new();
    let mut touched: BTreeSet<NetId> = BTreeSet::new();
    let net_ids: Vec<NetId> = td.netlist.nets().map(|(id, _)| id).collect();
    for net_id in net_ids {
        let net = td.netlist.net(net_id)?.clone();
        let Some(driver) = net.driver else {
            if td.routing.route(net_id).is_some() {
                td.routing.clear_route(net_id);
                touched.insert(net_id);
            }
            continue;
        };
        let Some(driver_loc) = td.placement.loc_of(driver) else {
            continue;
        };
        let source = td.rrg.source_node(driver_loc);
        let mut pins: Vec<NodeId> = net
            .sinks
            .iter()
            .filter_map(|s| {
                td.placement
                    .loc_of(s.cell)
                    .map(|loc| td.rrg.sink_node(loc, s.pin))
            })
            .collect();
        pins.sort_unstable();
        pins.dedup();
        let tree = td.routing.route(net_id).cloned();
        let Some(tree) = tree else {
            if !pins.is_empty() {
                requests.push(ConnectionRequest {
                    net: net_id,
                    source,
                    sinks: pins,
                });
                touched.insert(net_id);
            }
            continue;
        };
        if tree.paths.iter().any(|p| p.first() != Some(&source)) {
            // Driver replaced or re-sourced: the tree's root is stale,
            // so the whole net reroutes (its wires are freed first).
            td.routing.clear_route(net_id);
            touched.insert(net_id);
            if !pins.is_empty() {
                requests.push(ConnectionRequest {
                    net: net_id,
                    source,
                    sinks: pins,
                });
            }
            continue;
        }
        let pin_set: BTreeSet<NodeId> = pins.iter().copied().collect();
        let endpoints: BTreeSet<NodeId> = tree
            .paths
            .iter()
            .filter_map(|p| p.last().copied())
            .collect();
        let missing: Vec<NodeId> = pins
            .iter()
            .copied()
            .filter(|p| !endpoints.contains(p))
            .collect();
        let keep: Vec<Vec<NodeId>> = tree
            .paths
            .iter()
            .filter(|p| p.last().is_some_and(|l| pin_set.contains(l)))
            .cloned()
            .collect();
        if keep.len() < tree.paths.len() {
            // A sink retired (e.g. a removed observation tap): strip
            // its path so the wires are freed instead of squatting.
            td.routing.clear_route(net_id);
            if !keep.is_empty() {
                td.routing.set_route(net_id, RouteTree { paths: keep });
            }
            touched.insert(net_id);
        }
        if !missing.is_empty() {
            requests.push(ConnectionRequest {
                net: net_id,
                source,
                sinks: missing,
            });
            touched.insert(net_id);
        }
    }

    // ----- One free routing pass ------------------------------------
    // No mask: new connections (taps, pads) may legitimately leave the
    // region, and every surviving route is locked, so the request nets
    // negotiate only among themselves on genuinely free resources.
    if !requests.is_empty() {
        let stats = route::route(&td.rrg, &requests, &mut td.routing, &td.options.router)?;
        effort.route_expansions += stats.expansions;
        spent.route_expansions += stats.expansions;
    }
    route::counters::record_incremental_rips(touched.len() as u64);

    route::normalize_routes(
        &td.netlist,
        &td.placement,
        &td.rrg,
        &mut td.routing,
        touched.iter().copied(),
    );

    Ok(EcoPhysicalOutcome {
        effort,
        affected,
        replaced_cells: added_logic.len(),
        rerouted_nets: touched.len(),
        confined: true,
    })
}

/// One clear/re-place/re-route attempt on an explicit tile set.
///
/// On error the caller restores the design from its snapshots; the
/// effort spent is returned alongside so it can be charged.
fn attempt(
    td: &mut TiledDesign,
    tiles: &[crate::tile::TileId],
    added: &[CellId],
    extra_clbs: usize,
) -> Result<EcoPhysicalOutcome, (TilingError, CadEffort)> {
    let mut spent = CadEffort::default();
    attempt_inner(td, tiles, added, extra_clbs, &mut spent).map_err(|e| (e, spent))
}

fn attempt_inner(
    td: &mut TiledDesign,
    tiles: &[crate::tile::TileId],
    added: &[CellId],
    extra_clbs: usize,
    spent: &mut CadEffort,
) -> Result<EcoPhysicalOutcome, TilingError> {
    let mut free_clbs = 0;
    for &t in tiles {
        free_clbs += td.plan.usage(t, &td.placement)?.free_clbs();
    }
    let affected = AffectedSet {
        tiles: tiles.to_vec(),
        needed_clbs: extra_clbs,
        free_clbs,
        fits: free_clbs >= extra_clbs,
    };
    let rects: Vec<fpga::Rect> = affected
        .tiles
        .iter()
        .map(|&t| td.plan.tile(t).map(|tile| tile.rect))
        .collect::<Result<_, _>>()?;
    let region = RegionSet::from_tiles(&td.device, &td.plan, &affected.tiles);

    // ----- Clear the affected tiles -------------------------------
    // Remove stale placements/routes of netlist-deleted objects
    // (retired instruments) anywhere.
    crate::flow::drop_stale_physical_state(td);
    // Unplace all logic inside the affected tiles.
    let mut to_replace: Vec<CellId> = Vec::new();
    for &t in &affected.tiles {
        to_replace.extend(td.plan.cells_in_tile(t, &td.netlist, &td.placement)?);
    }
    for &c in &to_replace {
        let _ = td.placement.unplace(c);
    }
    // Added cells: logic goes into the cleared region; new ports go to
    // free pads (constrained by site type, not region).
    let mut added_logic: Vec<CellId> = Vec::new();
    let mut added_io = 0usize;
    for &c in added {
        match td.netlist.cell(c) {
            Ok(cell) if cell.is_logic() => added_logic.push(c),
            Ok(_) => added_io += 1,
            Err(_) => {}
        }
    }
    to_replace.extend(added_logic.iter().copied());

    // ----- Constrained placement ----------------------------------
    let mut constraints = Constraints::free();
    let replace_set: BTreeSet<CellId> = to_replace.iter().copied().collect();
    for (id, _) in td.netlist.cells() {
        if !replace_set.contains(&id) {
            // Added IO cells are unplaced and unlocked (they go to
            // pads); everything else placed outside stays put.
            if td.placement.loc_of(id).is_some() {
                constraints.lock(id);
            }
        }
    }
    for &c in &to_replace {
        constraints.confine_any(c, rects.clone());
    }
    let out = place::run_placer(
        &td.netlist,
        &td.device,
        &constraints,
        Some(std::mem::take(&mut td.placement)),
        &td.options.placer,
    )?;
    td.placement = out.placement;
    spent.place_moves += out.moves_evaluated;
    let mut effort = CadEffort {
        place_moves: out.moves_evaluated,
        route_expansions: 0,
    };
    let _ = added_io;

    // Coarse-granularity path: when the cleared region covers a large
    // share of the device, confined negotiation (hundreds of nets
    // threading between locked outer trees) costs more than simply
    // re-routing the whole design — the paper observes that at ~1/4
    // design size tiling's purpose is "effectively eliminated" (§6.1).
    // Placement stayed confined; routing falls back to a clean full
    // pass, which also bounds effort by the non-tiled flow's.
    let region_share = region.area() as f64 / td.device.num_clbs() as f64;
    if region_share >= 0.20 {
        let nets: Vec<NetId> = td.routing.iter().map(|(n, _)| n).collect();
        for n in nets {
            td.routing.clear_route(n);
        }
        let stats = route::route_design(
            &td.netlist,
            &td.placement,
            &td.rrg,
            &mut td.routing,
            &td.options.router,
        )?;
        effort.route_expansions += stats.expansions;
        spent.route_expansions += stats.expansions;
        let all: Vec<NetId> = td.netlist.nets().map(|(id, _)| id).collect();
        let n_rerouted = all.len();
        route::counters::record_full_rips(n_rerouted as u64);
        route::normalize_routes(&td.netlist, &td.placement, &td.rrg, &mut td.routing, all);
        return Ok(EcoPhysicalOutcome {
            effort,
            affected,
            replaced_cells: to_replace.len(),
            rerouted_nets: n_rerouted,
            confined: false,
        });
    }

    // ----- Routing work list ---------------------------------------
    // (Dead-net routes were already dropped with the stale state.)
    let mut masked_requests: Vec<ConnectionRequest> = Vec::new();
    let mut free_requests: Vec<ConnectionRequest> = Vec::new();
    let mut rerouted = BTreeSet::new();

    let net_ids: Vec<NetId> = td.netlist.nets().map(|(id, _)| id).collect();
    for net_id in net_ids {
        let net = td.netlist.net(net_id)?.clone();
        let Some(driver) = net.driver else {
            td.routing.clear_route(net_id);
            continue;
        };
        let Some(driver_loc) = td.placement.loc_of(driver) else {
            continue;
        };
        let driver_inside = match driver_loc {
            fpga::BelLoc::Clb { coord, .. } => {
                region.contains_clamped(i32::from(coord.x), i32::from(coord.y))
            }
            fpga::BelLoc::Iob(_) => false,
        };

        // Current pin nodes for each sink.
        let mut inside_pins: Vec<NodeId> = Vec::new();
        let mut outside_pins: Vec<NodeId> = Vec::new();
        for s in &net.sinks {
            let Some(loc) = td.placement.loc_of(s.cell) else {
                continue;
            };
            let pin = td.rrg.sink_node(loc, s.pin);
            let inside = match loc {
                fpga::BelLoc::Clb { coord, .. } => {
                    region.contains_clamped(i32::from(coord.x), i32::from(coord.y))
                }
                fpga::BelLoc::Iob(_) => false,
            };
            if inside {
                inside_pins.push(pin);
            } else {
                outside_pins.push(pin);
            }
        }

        // Split any existing route against the region.
        let split = td
            .routing
            .route(net_id)
            .map(|tree| split_tree(&td.rrg, &region, tree))
            .unwrap_or_default();
        let had_route = td.routing.route(net_id).is_some();

        // Keep only base fragments that still serve a live outside pin
        // or act as an interface stub for surviving inside sinks.
        let outside_set: BTreeSet<NodeId> = outside_pins.iter().copied().collect();
        let mut base = RouteTree::default();
        let mut entry_nodes: Vec<NodeId> = Vec::new();
        let base_paths_before = split.base.paths.len();
        for path in split.base.paths {
            let last = *path.last().expect("paths are non-empty");
            let is_pin_path = outside_set.contains(&last);
            // A genuine interface stub ends on a channel wire (the
            // CrossIn prefix was cut at the region boundary); a path
            // ending on any *pin* that is not a live outside sink is a
            // dangling fragment toward a removed sink (e.g. a retired
            // observation pad) and must be dropped — keeping it would
            // hand the masked pass a dead pad pin as a route source.
            let ends_on_wire = matches!(
                td.rrg.node(last),
                fpga::NodeKind::ChanX { .. } | fpga::NodeKind::ChanY { .. }
            );
            if is_pin_path {
                base.paths.push(path);
            } else if !inside_pins.is_empty() && ends_on_wire {
                // Interface stub (CrossIn prefix ending on a wire).
                entry_nodes.push(last);
                base.paths.push(path);
            }
            // else: dangling fragment toward a removed sink — drop.
        }

        let outside_missing: Vec<NodeId> = {
            let base_nodes = base.nodes();
            outside_pins
                .iter()
                .copied()
                .filter(|p| !base_nodes.contains(p))
                .collect()
        };
        let exits: Vec<NodeId> = split.route_to_interface;

        let needs_inside = !inside_pins.is_empty() || (driver_inside && !exits.is_empty());
        // A kept-path count below the split's means a dangling fragment
        // to a removed sink (e.g. a retired observation pad) was
        // dropped: the net must be re-installed so those resources are
        // actually freed rather than squatting on the dead sink's pin.
        let dropped_fragment = base.paths.len() < base_paths_before;
        let untouched = !needs_inside
            && outside_missing.is_empty()
            && split.reroute_free.is_empty()
            && !driver_inside
            && !dropped_fragment
            && had_route;
        if untouched {
            continue;
        }
        if std::env::var_os("TILING_TRACE").is_some() {
            eprintln!(
                "work {net_id}: driver_inside={driver_inside} inside={} outside={} missing={} exits={} free_paths={} had_route={had_route}",
                inside_pins.len(),
                outside_pins.len(),
                outside_missing.len(),
                exits.len(),
                split.reroute_free.len(),
            );
        }
        if !had_route && inside_pins.is_empty() && outside_pins.is_empty() {
            continue; // dangling net, nothing to connect
        }

        // Install the preserved base.
        td.routing.clear_route(net_id);
        if !base.paths.is_empty() {
            td.routing.set_route(net_id, base.clone());
        }
        rerouted.insert(net_id);

        if driver_inside {
            let source = td.rrg.source_node(driver_loc);
            let mut sinks = inside_pins.clone();
            sinks.extend(exits.iter().copied());
            if !sinks.is_empty() {
                masked_requests.push(ConnectionRequest {
                    net: net_id,
                    source,
                    sinks,
                });
            }
            if !outside_missing.is_empty() {
                free_requests.push(ConnectionRequest {
                    net: net_id,
                    source,
                    sinks: outside_missing,
                });
            }
        } else {
            // Driver outside. Inside sinks reachable through existing
            // interface entries go in the masked pass; everything else
            // is folded into a *single* free request per net (a second
            // request for the same net in one pass would rip up the
            // first's work).
            let mut free_sinks = outside_missing.clone();
            if !inside_pins.is_empty() {
                if let Some(&entry) = entry_nodes.first() {
                    masked_requests.push(ConnectionRequest {
                        net: net_id,
                        source: entry,
                        sinks: inside_pins.clone(),
                    });
                } else {
                    free_sinks.extend(inside_pins.iter().copied());
                }
            }
            free_sinks.sort_unstable();
            free_sinks.dedup();
            if !free_sinks.is_empty() {
                free_requests.push(ConnectionRequest {
                    net: net_id,
                    source: td.rrg.source_node(driver_loc),
                    sinks: free_sinks,
                });
            }
        }
    }

    // ----- Masked pass: strictly inside the cleared tiles -----------
    if !masked_requests.is_empty() {
        let mask = region.node_mask(&td.rrg);
        // Structural congestion in a confined region is detected by
        // the router's stall limit; slow-but-converging negotiation is
        // allowed to finish (cutting it off just pays for a retry on a
        // bigger region).
        let opts = RouteOptions {
            allowed: Some(mask),
            ..td.options.router.clone()
        };
        let stats = route::route(&td.rrg, &masked_requests, &mut td.routing, &opts)?;
        effort.route_expansions += stats.expansions;
        spent.route_expansions += stats.expansions;
    }
    // ----- Free pass: region-escaping connections --------------------
    if !free_requests.is_empty() {
        let stats = route::route(&td.rrg, &free_requests, &mut td.routing, &td.options.router)?;
        effort.route_expansions += stats.expansions;
        spent.route_expansions += stats.expansions;
    }

    route::counters::record_full_rips(rerouted.len() as u64);

    // Normalize the rerouted nets' trees: one contiguous source→sink
    // path per netlist sink, in sink order, so downstream timing
    // analysis indexes them correctly.
    route::normalize_routes(
        &td.netlist,
        &td.placement,
        &td.rrg,
        &mut td.routing,
        rerouted.iter().copied(),
    );

    Ok(EcoPhysicalOutcome {
        effort,
        affected,
        replaced_cells: to_replace.len(),
        rerouted_nets: rerouted.len(),
        confined: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{implement, TilingOptions};
    use netlist::TruthTable;
    use synth::PaperDesign;

    fn tiled_9sym() -> TiledDesign {
        let b = PaperDesign::NineSym.generate().unwrap();
        implement(b.netlist, b.hierarchy, TilingOptions::fast(3)).unwrap()
    }

    #[test]
    fn function_only_eco_touches_one_tile() {
        let mut td = tiled_9sym();
        let outside_snapshot: Vec<(CellId, fpga::BelLoc)> = td.placement.iter().collect();
        // Pick a LUT and change its function (no connectivity change).
        let victim = td
            .netlist
            .cells()
            .find(|(_, c)| c.lut_function().is_some_and(|t| t.arity() == 2))
            .map(|(id, _)| id)
            .expect("design has 2-input LUTs");
        let tt = td
            .netlist
            .cell(victim)
            .unwrap()
            .lut_function()
            .unwrap()
            .complement();
        netlist::eco::apply(
            &mut td.netlist,
            &netlist::EcoOp::ChangeLutFunction {
                cell: victim,
                function: tt,
            },
        )
        .unwrap();
        let out = replace_and_route(&mut td, &[victim], &[], ExpansionPolicy::MostFree).unwrap();
        assert_eq!(out.affected.tiles.len(), 1, "function change fits one tile");
        assert!(td.routing.is_feasible());
        // Cells outside the affected tile did not move.
        let tile = out.affected.tiles[0];
        for (c, old_loc) in outside_snapshot {
            if td.plan.tile_of_cell(&td.placement, c) != Some(tile) && td.netlist.cell(c).is_ok() {
                if let Some(new_loc) = td.placement.loc_of(c) {
                    if td.plan.tile_of_cell(&td.placement, c).is_some() {
                        assert_eq!(new_loc, old_loc, "cell {c} moved outside affected tile");
                    }
                }
            }
        }
        // Effort is a small fraction of the initial implementation.
        assert!(out.effort.total() < td.initial_effort.total());
    }

    #[test]
    fn added_logic_is_placed_in_region_and_routed() {
        let mut td = tiled_9sym();
        // Tap an internal net with a new LUT + PO (observation logic).
        let (net, tile_cell) = {
            let (id, c) = td
                .netlist
                .cells()
                .find(|(_, c)| c.lut_function().is_some())
                .expect("luts exist");
            (c.output.unwrap(), id)
        };
        let rep = netlist::eco::apply(
            &mut td.netlist,
            &netlist::EcoOp::AddLut {
                name: "obs_inv".into(),
                function: TruthTable::not(),
                inputs: vec![net],
            },
        )
        .unwrap();
        let obs = rep.added[0];
        let obs_net = td.netlist.cell_output(obs).unwrap();
        let po = td.netlist.add_output("obs_po", obs_net).unwrap();

        let out = replace_and_route(&mut td, &[tile_cell], &[obs, po], ExpansionPolicy::MostFree)
            .unwrap();
        assert!(td.routing.is_feasible());
        assert!(out.replaced_cells > 0);
        // The new LUT landed inside an affected tile.
        let t = td
            .plan
            .tile_of_cell(&td.placement, obs)
            .expect("obs placed on a CLB");
        assert!(out.affected.contains(t));
        // Its net is routed.
        assert!(td.routing.route(obs_net).is_some());
        td.netlist.validate().unwrap();
    }

    #[test]
    fn interfaces_stay_locked_outside_region() {
        let mut td = tiled_9sym();
        // Snapshot routing of nets fully outside the future region.
        let victim = td
            .netlist
            .cells()
            .find(|(_, c)| c.lut_function().is_some())
            .map(|(id, _)| id)
            .unwrap();
        let before: Vec<(NetId, RouteTree)> =
            td.routing.iter().map(|(n, t)| (n, t.clone())).collect();
        let tt = td
            .netlist
            .cell(victim)
            .unwrap()
            .lut_function()
            .unwrap()
            .complement();
        td.netlist.set_lut_function(victim, tt).unwrap();
        let out = replace_and_route(&mut td, &[victim], &[], ExpansionPolicy::MostFree).unwrap();
        let region = RegionSet::from_tiles(&td.device, &td.plan, &out.affected.tiles);
        let mut checked = 0;
        for (net, tree) in before {
            // Nets with no node inside the region must be bit-identical.
            let touches = tree
                .nodes()
                .iter()
                .any(|&n| region.contains_node(&td.rrg, n));
            if !touches {
                assert_eq!(
                    td.routing.route(net),
                    Some(&tree),
                    "net {net} was perturbed"
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "test must check at least one outside net");
    }
}

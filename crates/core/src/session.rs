//! Session-oriented debugging: one object that drives detect →
//! localize → confirm → correct through a pluggable physical flow and
//! localization strategy (paper §3.1 steps 9–22).
//!
//! [`DebugSession`] generalizes the old monolithic
//! `run_debug_iteration` (which survives as a thin wrapper in
//! [`crate::debug`]):
//!
//! * the physical re-implementation behind every ECO is a
//!   [`ReimplFlow`], so the same campaign can be priced through the
//!   tiled flow or any Figure 5 baseline;
//! * localization is a [`LocalizationStrategy`], so linear batching
//!   and binary-search bisection are interchangeable;
//! * all causal knowledge — tap onsets, windows, alibi pruning,
//!   screening exonerations — lives in one
//!   [`crate::diagnosis::evidence::EvidenceBase`] shared by the
//!   serial and concurrent paths, fed by a single observation entry
//!   point ([`sim::emulate::net_first_divergences`]);
//! * progress is emitted as a typed [`DebugEvent`] stream;
//! * effort is recorded per phase in an [`EffortLedger`] that
//!   [`crate::report::DebugReport`] and the bench bins consume.

use std::collections::HashMap;

use netlist::{CellId, NetId, Netlist};
use obs::{MetricsRegistry, Tracer, TrackId};
use sim::emulate::Mismatch;
use sim::inject::InjectedError;
use sim::patterns::PatternGen;
use sim::testlogic::{insert_control_point, insert_observation_tap};

use crate::diagnosis::attribution::po_pairs;
use crate::diagnosis::scheduler::Ambiguity;
use crate::diagnosis::{
    cluster_failures, collect_responses, fsm_merge_witnesses, merge_fsm_clusters, EvidenceBase,
    FailureCluster, FaultAttribution, MultiErrorScheduler, ResponseMatrix, ResponseSignature,
    SuspectCone,
};
use crate::effort::{CadEffort, EffortLedger, Phase};
use crate::error::TilingError;
use crate::flow::TiledDesign;
use crate::flows::{ReimplFlow, TiledFlow};
use crate::strategy::{LinearBatches, LocalizationStrategy};

/// How the session generates stimulus vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PatternSpec {
    /// Exhaustive for narrow designs (≤ 10 inputs), 512 LFSR vectors
    /// otherwise — the paper-shaped default.
    #[default]
    Auto,
    /// All `2^width` vectors (panics above 24 inputs).
    Exhaustive,
    /// `count` LFSR vectors.
    Lfsr {
        /// Number of vectors.
        count: usize,
    },
    /// `count` uniform random vectors.
    Random {
        /// Number of vectors.
        count: usize,
    },
}

impl PatternSpec {
    /// Instantiates the generator for a netlist's input width.
    pub fn generate(self, nl: &Netlist, seed: u64) -> PatternGen {
        let width = nl.primary_inputs().len();
        match self {
            PatternSpec::Auto => {
                if width <= 10 {
                    PatternGen::exhaustive(width)
                } else {
                    PatternGen::lfsr(width, 512, seed)
                }
            }
            PatternSpec::Exhaustive => PatternGen::exhaustive(width),
            PatternSpec::Lfsr { count } => PatternGen::lfsr(width, count, seed),
            PatternSpec::Random { count } => PatternGen::random(width, count, seed),
        }
    }
}

/// Progress notifications emitted by [`DebugSession`].
#[derive(Debug, Clone)]
pub enum DebugEvent {
    /// A campaign planted (or was handed) an error to hunt.
    ErrorInjected {
        /// Iteration index within the campaign.
        iteration: usize,
        /// The buggy cell.
        cell: CellId,
    },
    /// Detection emulation found a primary-output divergence.
    Detected {
        /// Stimulus index that exposed the bug.
        pattern_index: usize,
        /// Name of the diverging output.
        output_name: String,
    },
    /// Detection emulation found no divergence (clean design).
    CleanDesign,
    /// The structural suspect cone was computed.
    SuspectsComputed {
        /// Raw structural suspects.
        structural: usize,
        /// Suspects surviving the DUT-liveness/LUT filter.
        candidates: usize,
    },
    /// One observation-tap ECO was performed.
    TapEco {
        /// Cells tapped by this ECO.
        cells: Vec<CellId>,
        /// Physical effort of the ECO.
        effort: CadEffort,
    },
    /// Re-emulation verdicts for the last tap ECO.
    Observed {
        /// Tapped cells whose nets diverged.
        diverging: Vec<CellId>,
    },
    /// Localization converged (or gave up).
    Localized {
        /// The identified error site.
        cell: Option<CellId>,
    },
    /// The §4.1 control-point confirmation ran.
    Confirmed {
        /// The suspect that was force-overridden.
        cell: CellId,
        /// Whether forcing it to golden values fixed the outputs.
        confirmed: bool,
    },
    /// The corrective ECO was applied and checked.
    Corrected {
        /// Whether the DUT now matches the golden model.
        repaired: bool,
    },
    /// Multi-error diagnosis partitioned the overlapping suspect
    /// cones into ownership regions (see [`crate::diagnosis`]).
    ConeSplit {
        /// Number of concurrent error clusters.
        clusters: usize,
        /// Suspects owned exclusively by each cluster.
        exclusive: Vec<usize>,
        /// Suspects implicated by two or more clusters.
        shared: usize,
    },
    /// Fault-simulation attribution scored an ambiguous shared-core
    /// divergence against every implicated cluster's footprint.
    Attribution {
        /// The diverging tapped cell whose blame was ambiguous.
        cell: CellId,
        /// The cluster whose observed footprint best matches a fault
        /// simulated at the cell.
        cluster: usize,
        /// Jaccard match score in `[0, 1]`.
        score: f64,
    },
}

/// Result of one debugging iteration.
#[derive(Debug, Clone)]
pub struct DebugOutcome {
    /// The detected divergence (None if the DUT already matched).
    pub mismatch: Option<Mismatch>,
    /// Size of the initial structural suspect set.
    pub initial_suspects: usize,
    /// The cell the localization loop identified.
    pub localized: Option<CellId>,
    /// Observation taps inserted during localization.
    pub taps_inserted: usize,
    /// Whether the corrective ECO made the DUT match the golden model.
    pub repaired: bool,
    /// Total CAD effort across all ECOs of the iteration.
    pub effort: CadEffort,
    /// Tiles cleared across all ECOs (with multiplicity).
    pub tiles_cleared: usize,
    /// Physical ECOs performed (tap batches + confirmation + the
    /// correction). A non-tiled flow pays one full re-place-and-route
    /// per ECO.
    pub ecos: usize,
    /// Whether the localized cell was confirmed via a control point
    /// (forcing its output to golden values makes the DUT match).
    pub confirmed_by_control: bool,
    /// Per-phase effort breakdown (detect/localize/confirm/correct).
    pub ledger: EffortLedger,
    /// Name of the localization strategy that ran.
    pub strategy: &'static str,
    /// Name of the physical flow that ran.
    pub flow: &'static str,
}

/// Aggregate result of a multi-error campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignOutcome {
    /// Per-iteration outcomes, in order.
    pub iterations: Vec<DebugOutcome>,
    /// Merged per-phase ledger across all iterations.
    pub ledger: EffortLedger,
}

impl CampaignOutcome {
    /// Whether every iteration ended with a matching DUT.
    pub fn all_repaired(&self) -> bool {
        self.iterations.iter().all(|o| o.repaired)
    }

    /// Total CAD effort across the campaign.
    pub fn total_effort(&self) -> CadEffort {
        self.ledger.total()
    }
}

/// Result of one error cluster within a concurrent multi-error
/// diagnosis (see [`DebugSession::run_concurrent`]).
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Golden primary-output cells presenting this failure footprint.
    pub outputs: Vec<CellId>,
    /// The stimulus patterns those outputs fail on.
    pub signature: ResponseSignature,
    /// The cluster's observation window: every suspect prune and tap
    /// verdict for this cluster was evaluated over patterns
    /// `[0, window]`, its earliest observed failure.
    pub window: usize,
    /// Structural suspect-cone size (before the live-LUT filter).
    pub cone_size: usize,
    /// Candidate suspects surviving the live-LUT filter.
    pub candidates: usize,
    /// Suspects no other cluster's cone implicates (the cluster's
    /// exclusive ownership region).
    pub exclusive_size: usize,
    /// The localized error site, if the cluster's strategy converged.
    pub localized: Option<CellId>,
    /// Whether the §4.1 control point confirmed the site. The check
    /// compares only this cluster's outputs — other live errors keep
    /// the rest of the design diverging.
    pub confirmed_by_control: bool,
    /// Index of the planted error this cluster was matched to (exact
    /// localized-cell agreement first, then cone containment).
    pub matched_error: Option<usize>,
    /// Taps this cluster's strategy requested. Requests deduplicate
    /// across clusters before insertion, so the sum over clusters
    /// exceeds the campaign's physical tap count whenever cones
    /// overlap — that difference is the sharing win.
    pub taps_requested: usize,
    /// This cluster's share of the campaign effort: tap ECOs split
    /// proportionally to requested taps, the corrective ECO evenly.
    pub ledger: EffortLedger,
    /// Whether this cluster's outputs match golden after correction.
    pub repaired: bool,
}

/// Aggregate result of a concurrent multi-error diagnosis.
#[derive(Debug, Clone)]
pub struct ConcurrentOutcome {
    /// Per-cluster results, in failure-footprint discovery order.
    /// Empty when the sweep detected no divergence at all.
    pub clusters: Vec<ClusterOutcome>,
    /// Scheduler rounds executed (each round advances every live
    /// cluster through one shared set of tap batches).
    pub rounds: usize,
    /// Observation taps physically inserted (post-deduplication).
    pub taps_inserted: usize,
    /// Physical ECOs performed across all phases.
    pub ecos: usize,
    /// Suspects implicated by two or more clusters.
    pub shared_core_cells: usize,
    /// Global per-phase effort (phases sum to the campaign total; the
    /// per-cluster ledgers apportion exactly this).
    pub ledger: EffortLedger,
    /// Whether the whole DUT matches the golden model at the end.
    pub repaired: bool,
    /// Name of the localization strategy driving every cluster.
    pub strategy: &'static str,
    /// Name of the physical flow that ran.
    pub flow: &'static str,
}

impl ConcurrentOutcome {
    /// The localized error sites, in cluster order, omitting clusters
    /// that failed to converge.
    pub fn localized_cells(&self) -> Vec<CellId> {
        self.clusters.iter().filter_map(|c| c.localized).collect()
    }

    /// Total CAD effort across the campaign.
    pub fn total_effort(&self) -> CadEffort {
        self.ledger.total()
    }

    /// Taps requested across all clusters before deduplication.
    pub fn taps_requested(&self) -> usize {
        self.clusters.iter().map(|c| c.taps_requested).sum()
    }
}

/// Boxed progress callback (see [`DebugSession::on_event`]). `Send`
/// so a whole configured session can cross to a fleet worker thread.
type EventCallback<'a> = Box<dyn FnMut(&DebugEvent) + Send + 'a>;

/// A configured debugging session over one tiled design.
///
/// Built with [`DebugSession::new`] plus the builder methods, then run
/// with [`run`](DebugSession::run) (one planted error) or
/// [`run_campaign`](DebugSession::run_campaign) (a sequence of random
/// errors).
///
/// ```no_run
/// use sim::inject::random_error;
/// use synth::PaperDesign;
/// use tiling::flows::TiledFlow;
/// use tiling::session::DebugSession;
/// use tiling::strategy::BinarySearch;
/// use tiling::{implement, TilingOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let b = PaperDesign::NineSym.generate()?;
/// let mut td = implement(b.netlist, b.hierarchy, TilingOptions::default())?;
/// let golden = td.netlist.clone();
/// let error = random_error(&mut td.netlist, 7)?;
/// let outcome = DebugSession::new(&mut td, &golden)
///     .strategy(BinarySearch::new())
///     .flow(TiledFlow::default())
///     .seed(42)
///     .on_event(|e| eprintln!("{e:?}"))
///     .run(&error)?;
/// assert!(outcome.repaired);
/// println!("{}", outcome.ledger);
/// # Ok(())
/// # }
/// ```
pub struct DebugSession<'a> {
    td: &'a mut TiledDesign,
    golden: &'a Netlist,
    strategy: Box<dyn LocalizationStrategy + 'a>,
    flow: Box<dyn ReimplFlow + 'a>,
    patterns: PatternSpec,
    seed: u64,
    confirm_with_control: bool,
    on_event: Option<EventCallback<'a>>,
    metrics: Option<&'a MetricsRegistry>,
    trace: Option<(&'a Tracer, TrackId)>,
    preflighted: bool,
}

impl<'a> DebugSession<'a> {
    /// A session with the paper-shaped defaults: [`LinearBatches`]
    /// localization through the [`TiledFlow`], auto patterns, seed 0,
    /// control-point confirmation on.
    pub fn new(td: &'a mut TiledDesign, golden: &'a Netlist) -> Self {
        Self {
            td,
            golden,
            strategy: Box::new(LinearBatches::default()),
            flow: Box::new(TiledFlow::default()),
            patterns: PatternSpec::Auto,
            seed: 0,
            confirm_with_control: true,
            on_event: None,
            metrics: None,
            trace: None,
            preflighted: false,
        }
    }

    /// Swaps the localization strategy.
    #[must_use]
    pub fn strategy(mut self, strategy: impl LocalizationStrategy + 'a) -> Self {
        self.strategy = Box::new(strategy);
        self
    }

    /// Swaps the physical re-implementation flow.
    #[must_use]
    pub fn flow(mut self, flow: impl ReimplFlow + 'a) -> Self {
        self.flow = Box::new(flow);
        self
    }

    /// [`strategy`](Self::strategy) for callers that picked the
    /// strategy at runtime (the `debugd` request decoder).
    #[must_use]
    pub fn strategy_boxed(mut self, strategy: Box<dyn LocalizationStrategy + 'a>) -> Self {
        self.strategy = strategy;
        self
    }

    /// [`flow`](Self::flow) for callers that picked the flow at
    /// runtime (the `debugd` request decoder).
    #[must_use]
    pub fn flow_boxed(mut self, flow: Box<dyn ReimplFlow + 'a>) -> Self {
        self.flow = flow;
        self
    }

    /// Swaps the stimulus specification.
    #[must_use]
    pub fn patterns(mut self, patterns: PatternSpec) -> Self {
        self.patterns = patterns;
        self
    }

    /// Sets the stimulus seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables/disables the §4.1 control-point confirmation ECO.
    #[must_use]
    pub fn confirm_with_control(mut self, enabled: bool) -> Self {
        self.confirm_with_control = enabled;
        self
    }

    /// Registers a progress-event callback.
    #[must_use]
    pub fn on_event(mut self, callback: impl FnMut(&DebugEvent) + Send + 'a) -> Self {
        self.on_event = Some(Box::new(callback));
        self
    }

    /// Attaches a metrics registry: the session records its
    /// deterministic per-phase effort counters
    /// (`session_phase_*_total{phase=…}`) and evidence-layer counters
    /// (`evidence_*_total`) into it as it runs.
    #[must_use]
    pub fn metrics(mut self, registry: &'a MetricsRegistry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Attaches a tracer track: the session emits one span per phase
    /// region (detect / localize / confirm / correct) onto it, each
    /// carrying wall-clock bounds *and* the region's deterministic
    /// effort-unit delta, so span totals reconcile exactly with the
    /// [`EffortLedger`].
    #[must_use]
    pub fn trace(mut self, tracer: &'a Tracer, track: TrackId) -> Self {
        self.trace = Some((tracer, track));
        self
    }

    fn emit(&mut self, event: DebugEvent) {
        if let Some(cb) = self.on_event.as_mut() {
            cb(&event);
        }
    }

    /// Wall-clock start marker for a phase region (0 when untraced).
    fn span_begin(&self) -> u64 {
        self.trace.map(|(t, _)| t.now_us()).unwrap_or(0)
    }

    /// Closes one phase region: emits a trace span whose effort units
    /// are the region's ledger delta for `phase`, and bumps the
    /// deterministic per-phase counters by the same delta. Every
    /// charge to a phase happens inside exactly one region of that
    /// phase's name, so per-phase span sums equal the ledger exactly.
    fn phase_mark(
        &mut self,
        phase: Phase,
        start_us: u64,
        before: EffortLedger,
        after: &EffortLedger,
    ) {
        let b = before.phase(phase);
        let a = after.phase(phase);
        let units = a.effort.total() - b.effort.total();
        if let Some((tracer, track)) = self.trace {
            tracer.complete(track, phase.name(), "phase", start_us, units);
        }
        if let Some(reg) = self.metrics {
            let labels = [("phase", phase.name())];
            reg.counter_add("session_phase_effort_units_total", &labels, units);
            reg.counter_add(
                "session_phase_place_moves_total",
                &labels,
                a.effort.place_moves - b.effort.place_moves,
            );
            reg.counter_add(
                "session_phase_route_expansions_total",
                &labels,
                a.effort.route_expansions - b.effort.route_expansions,
            );
            reg.counter_add(
                "session_phase_ecos_total",
                &labels,
                (a.ecos - b.ecos) as u64,
            );
            reg.counter_add(
                "session_phase_tiles_cleared_total",
                &labels,
                (a.tiles_cleared - b.tiles_cleared) as u64,
            );
        }
    }

    /// Scrapes one finished [`EvidenceBase`]'s counters into the
    /// registry. Each evidence base is scraped exactly once, so
    /// `counter_add` with the absolute stats is a correct delta.
    fn record_evidence(&mut self, evidence: &EvidenceBase) {
        if let Some(reg) = self.metrics {
            let s = evidence.stats();
            reg.counter_add("evidence_verdict_cache_hits_total", &[], s.verdict_hits);
            reg.counter_add("evidence_verdict_cache_misses_total", &[], s.verdict_misses);
            reg.counter_add("evidence_onset_clamps_total", &[], s.onset_clamps);
            reg.counter_add("evidence_exonerations_total", &[], s.exonerations);
            reg.counter_add("evidence_window_shrinks_total", &[], s.window_shrinks);
        }
    }

    fn patterns_for(&self, nl: &Netlist) -> PatternGen {
        self.patterns.generate(nl, self.seed)
    }

    /// The DRC pre-flight, run once per session before any entry
    /// point touches the design: a structurally broken DUT (cyclic,
    /// multi-driven, dangling routes, …) gets a typed
    /// [`TilingError::Drc`] instead of a panic or livelock deep in
    /// simulation or the flow. Findings — warnings included — land in
    /// the metrics registry as `drc_findings_total{rule=…}`, and a
    /// traced session gets a `preflight` span.
    fn preflight(&mut self) -> Result<(), TilingError> {
        if self.preflighted {
            return Ok(());
        }
        let t0 = self.span_begin();
        let result = crate::preflight::preflight(self.td);
        let findings: &[drc::Finding] = match &result {
            Ok(findings) | Err(TilingError::Drc { findings }) => findings,
            Err(_) => &[],
        };
        if let Some(reg) = self.metrics {
            drc::record_findings(reg, findings);
        }
        if let Some((tracer, track)) = self.trace {
            tracer.complete(track, "preflight", "drc", t0, findings.len() as u64);
        }
        result.map(|_| self.preflighted = true)
    }

    /// Runs one full detect → localize → confirm → correct iteration
    /// for a planted error already present in the DUT netlist.
    ///
    /// Serial localization runs through the same
    /// [`crate::diagnosis::evidence`] layer as the concurrent path:
    /// detection is one full response sweep whose per-output onsets
    /// seed the [`EvidenceBase`] for free, the suspect cone (the
    /// intersection of the failing outputs' fanin cones) is pruned
    /// causally — alibi by latency-aware clean prefixes instead of
    /// the old whole-cone passing-split, which collapsed to nearly
    /// nothing on FSM designs where every output shares the state
    /// cone — and every tap is measured once as its exact divergence
    /// onset and read back under the cluster's causal
    /// [`crate::diagnosis::ObservationWindow`].
    ///
    /// # Errors
    ///
    /// Propagates netlist/placement/routing failures from the flow.
    pub fn run(&mut self, error: &InjectedError) -> Result<DebugOutcome, TilingError> {
        self.preflight()?;
        let mut outcome = DebugOutcome {
            mismatch: None,
            initial_suspects: 0,
            localized: None,
            taps_inserted: 0,
            repaired: false,
            effort: CadEffort::default(),
            tiles_cleared: 0,
            ecos: 0,
            confirmed_by_control: false,
            ledger: EffortLedger::default(),
            strategy: self.strategy.name(),
            flow: self.flow.name(),
        };

        // ---- Detection (steps 10, 21): one full response sweep --------
        let t_detect = self.span_begin();
        let detect_before = outcome.ledger;
        let matrix = collect_responses(
            self.golden,
            &self.td.netlist,
            self.patterns_for(self.golden),
        )?;
        let mismatch = matrix_mismatch(self.golden, &matrix)?;
        self.phase_mark(Phase::Detect, t_detect, detect_before, &outcome.ledger);
        let Some(mismatch) = mismatch else {
            self.emit(DebugEvent::CleanDesign);
            outcome.repaired = true; // nothing to do
            return Ok(outcome);
        };
        // (The per-cluster `Detected` events are emitted by the
        // shared diagnosis pipeline below.)
        outcome.mismatch = Some(mismatch);

        // ---- Localization (steps 16–21) -------------------------------
        // The same cluster → defer-merge → prune pipeline as the
        // concurrent path, over the same evidence layer: every
        // failing-output cluster is pruned within its own causal
        // window, the strategies read tap verdicts from the shared
        // evidence base, and detection's PO onsets answer their first
        // questions for free. Under the single-error hypothesis every
        // cluster is observing the *same* error, so the clusters are
        // *alternative views* of it rather than concurrent work:
        // attempt them one at a time, cheapest pruned cone first, and
        // stop at the first site the §4.1 control point confirms —
        // evidence accumulated by one attempt (every measured onset)
        // carries over to the next for free.
        let pats: Vec<Vec<bool>> = self.patterns_for(self.golden).collect();
        let t_localize = self.span_begin();
        let localize_before = outcome.ledger;
        let (mut evidence, clusters, witness_taps, _) =
            self.screened_clusters(&matrix, &pats, &mut outcome.ledger)?;
        outcome.taps_inserted = witness_taps;
        let order = self.golden.topo_order()?;
        let rank: HashMap<CellId, usize> = order.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let rank_of = |c: CellId| rank.get(&c).copied().unwrap_or(usize::MAX);
        // The sharpest single-error view comes first: the
        // *intersection* of every failing output's cone (the site
        // must lie in all of them), judged at the global earliest
        // failure. On wide combinational designs this is a small,
        // deep set that one strategy pass settles. When causal alibis
        // prune it to nothing (the FSM regime: one early mismatch
        // alibis everything through value masking), the per-cluster
        // views below recover — each cluster's own window keeps its
        // cone honest.
        let mut tracks = Vec::with_capacity(clusters.len() + 1);
        if clusters.len() > 1 {
            let joint = serial_cluster(self.golden, &matrix);
            let (window, suspects) = self.cluster_track(&evidence, &joint, &rank_of)?;
            tracks.push((window, suspects));
        }
        let mut cluster_tracks = Vec::with_capacity(clusters.len());
        for cl in &clusters {
            let (window, suspects) = self.cluster_track(&evidence, cl, &rank_of)?;
            cluster_tracks.push((window, suspects));
        }
        cluster_tracks.sort_by_key(|(_, suspects)| suspects.len());
        tracks.extend(cluster_tracks);
        // Distinct suspects across the views (the views overlap — the
        // joint cone is a subset of every cluster cone).
        outcome.initial_suspects = tracks
            .iter()
            .flat_map(|(_, s)| s.iter().copied())
            .collect::<SuspectCone>()
            .len();

        // Bounded arbitration: a single error that several
        // independent views localize to *different, unconfirmable*
        // cells is masked beyond PO-evidence localization — burning a
        // strategy pass per remaining cluster cannot fix that, so the
        // hunt stops after a few views and reports the best
        // unconfirmed site (correction still repairs, exactly as when
        // a strategy itself comes back empty).
        const MAX_SERIAL_VIEWS: usize = 4;
        let mut tried: Vec<CellId> = Vec::new();
        let mut attempts = 0usize;
        for (window, suspects) in tracks {
            if suspects.is_empty() {
                continue;
            }
            if attempts >= MAX_SERIAL_VIEWS {
                break;
            }
            attempts += 1;
            let mut scheduler = MultiErrorScheduler::new(LinearBatches::DEFAULT_BATCH);
            scheduler.add_error(self.golden, &suspects, window, self.strategy.fresh());
            let stats = self.run_tap_rounds(
                &mut scheduler,
                &mut evidence,
                &pats,
                &mut outcome.ledger,
                &mut [],
            )?;
            outcome.taps_inserted += stats.taps_inserted;
            let Some(site) = scheduler.localized()[0] else {
                continue;
            };
            self.emit(DebugEvent::Localized { cell: Some(site) });
            if outcome.localized.is_none() {
                outcome.localized = Some(site);
            }
            if !self.confirm_with_control {
                outcome.localized = Some(site);
                break;
            }
            if tried.contains(&site) {
                continue;
            }
            tried.push(site);
            // ---- Controllability confirmation (§4.1) ------------------
            // Force the suspect's output to the golden value through
            // an inserted control point: if the DUT then matches on
            // *every* output, the error is contained in that cell —
            // and the hunt is over. An unconfirmed site sends the
            // search on to the next cluster's view of the failure.
            let t_confirm = self.span_begin();
            let confirm_before = outcome.ledger;
            let (confirmed, effort, tiles) = self.control_point_confirm(site, None)?;
            outcome.ledger.charge(Phase::Confirm, effort, tiles);
            self.phase_mark(Phase::Confirm, t_confirm, confirm_before, &outcome.ledger);
            self.emit(DebugEvent::Confirmed {
                cell: site,
                confirmed,
            });
            if confirmed {
                outcome.localized = Some(site);
                outcome.confirmed_by_control = true;
                break;
            }
        }
        if outcome.localized.is_none() {
            self.emit(DebugEvent::Localized { cell: None });
        }
        self.phase_mark(
            Phase::Localize,
            t_localize,
            localize_before,
            &outcome.ledger,
        );
        self.record_evidence(&evidence);

        // ---- Correction (steps 11–15, 17–21) ---------------------------
        let t_correct = self.span_begin();
        let correct_before = outcome.ledger;
        let fix = sim::inject::repair_op(error);
        let rep = netlist::eco::apply(&mut self.td.netlist, &fix)?;
        let phys = self.flow.reimplement(self.td, &rep.touched(), &[])?;
        outcome
            .ledger
            .charge(Phase::Correct, phys.effort, phys.affected.tiles.len());

        // Confirmation emulation: observation taps were already
        // retired per batch, but the DUT may still carry extra PIs
        // (the §4.1 control point's force inputs and mux), so compare
        // by pairing the golden primary outputs with their same-named
        // DUT cells.
        outcome.repaired = self.outputs_match(None)?;
        self.emit(DebugEvent::Corrected {
            repaired: outcome.repaired,
        });
        self.phase_mark(Phase::Correct, t_correct, correct_before, &outcome.ledger);

        outcome.effort = outcome.ledger.total();
        outcome.tiles_cleared = outcome.ledger.total_tiles_cleared();
        outcome.ecos = outcome.ledger.total_ecos();
        Ok(outcome)
    }

    /// Runs a multi-error campaign, one [`DebugOutcome`] row per seed.
    ///
    /// With a single seed this is the paper's protocol: plant, debug
    /// to repair, done ([`run_campaign_serial`](Self::run_campaign_serial)).
    /// With more than one seed, all errors are planted *simultaneously*
    /// and diagnosed through the [`crate::diagnosis`] scheduler
    /// ([`run_concurrent`](Self::run_concurrent)), so one batch of
    /// observation taps — and one corrective ECO — serves every live
    /// error; the result is then adapted back into per-error rows.
    /// Errors no cluster was matched to report `mismatch: None`, like
    /// serially-undetected errors, and unmatched clusters' effort is
    /// folded into the rows of errors their cones contain, so the
    /// per-iteration ledgers sum to [`CampaignOutcome::ledger`] on
    /// both paths.
    ///
    /// # Errors
    ///
    /// Propagates injection and flow failures.
    pub fn run_campaign(&mut self, seeds: &[u64]) -> Result<CampaignOutcome, TilingError> {
        self.preflight()?;
        if seeds.len() <= 1 {
            return self.run_campaign_serial(seeds);
        }
        let errors = sim::inject::random_distinct_errors(&mut self.td.netlist, seeds)?;
        for (iteration, error) in errors.iter().enumerate() {
            self.emit(DebugEvent::ErrorInjected {
                iteration,
                cell: error.cell,
            });
        }
        let conc = self.run_concurrent(&errors)?;
        let mut campaign = CampaignOutcome {
            iterations: Vec::new(),
            ledger: conc.ledger,
        };
        let pos = self.golden.primary_outputs();
        let sequential = self.golden.is_sequential();
        for i in 0..errors.len() {
            let row = match conc.clusters.iter().find(|c| c.matched_error == Some(i)) {
                Some(c) => DebugOutcome {
                    mismatch: Some(synthesized_mismatch(
                        self.golden,
                        &pos,
                        &conc.clusters,
                        c,
                        sequential,
                    )?),
                    initial_suspects: c.cone_size,
                    localized: c.localized,
                    taps_inserted: c.taps_requested,
                    repaired: c.repaired,
                    effort: c.ledger.total(),
                    tiles_cleared: c.ledger.total_tiles_cleared(),
                    ecos: c.ledger.total_ecos(),
                    confirmed_by_control: c.confirmed_by_control,
                    ledger: c.ledger,
                    strategy: conc.strategy,
                    flow: conc.flow,
                },
                None => DebugOutcome {
                    mismatch: None,
                    initial_suspects: 0,
                    localized: None,
                    taps_inserted: 0,
                    // Unmatched errors were still repaired by the
                    // shared corrective ECO (or reverted, if nothing
                    // was detected at all).
                    repaired: conc.repaired,
                    effort: CadEffort::default(),
                    tiles_cleared: 0,
                    ecos: 0,
                    confirmed_by_control: false,
                    ledger: EffortLedger::default(),
                    strategy: conc.strategy,
                    flow: conc.flow,
                },
            };
            campaign.iterations.push(row);
        }
        // Unmatched clusters (a footprint no planted error claimed —
        // e.g. one FSM error fanning out into several cones) still
        // spent real effort. Fold each into the row of an error its
        // cone contains, so per-iteration ledgers keep summing to the
        // campaign ledger exactly as on the serial path.
        for cl in conc.clusters.iter().filter(|c| c.matched_error.is_none()) {
            let cone = SuspectCone::fanin(self.golden, &cl.outputs);
            let i = (0..errors.len())
                .find(|&i| cone.contains(errors[i].cell))
                .unwrap_or(0);
            let row = &mut campaign.iterations[i];
            row.ledger.merge(&cl.ledger);
            row.effort = row.ledger.total();
            row.tiles_cleared = row.ledger.total_tiles_cleared();
            row.ecos = row.ledger.total_ecos();
            row.taps_inserted += cl.taps_requested;
        }
        Ok(campaign)
    }

    /// The paper's one-at-a-time protocol: for each seed, plants one
    /// random error, debugs it to repair, and moves on. Iterations
    /// whose error escapes detection (possible under LFSR stimulus on
    /// deep sequential state) are silently reverted at the netlist
    /// level so later iterations start from a clean DUT.
    ///
    /// Kept public as the baseline the concurrent path is measured
    /// against (the `multi` bench bin compares the two directly).
    ///
    /// # Errors
    ///
    /// Propagates injection and flow failures.
    pub fn run_campaign_serial(&mut self, seeds: &[u64]) -> Result<CampaignOutcome, TilingError> {
        self.preflight()?;
        let mut campaign = CampaignOutcome::default();
        for (iteration, &seed) in seeds.iter().enumerate() {
            let error = sim::inject::random_error(&mut self.td.netlist, seed)?;
            self.emit(DebugEvent::ErrorInjected {
                iteration,
                cell: error.cell,
            });
            let outcome = self.run(&error)?;
            if outcome.mismatch.is_none() {
                // Undetected: revert the netlist edit (no physical ECO
                // — a LUT-function change does not move cells or nets).
                netlist::eco::apply(&mut self.td.netlist, &sim::inject::repair_op(&error))?;
            }
            campaign.ledger.merge(&outcome.ledger);
            campaign.iterations.push(outcome);
        }
        Ok(campaign)
    }

    /// Plants one random error per seed — all at once, in distinct
    /// cells — and diagnoses them concurrently. Convenience wrapper
    /// over [`run_concurrent`](Self::run_concurrent).
    ///
    /// # Errors
    ///
    /// Propagates injection and flow failures.
    pub fn run_concurrent_campaign(
        &mut self,
        seeds: &[u64],
    ) -> Result<ConcurrentOutcome, TilingError> {
        self.preflight()?;
        let errors = sim::inject::random_distinct_errors(&mut self.td.netlist, seeds)?;
        for (iteration, error) in errors.iter().enumerate() {
            self.emit(DebugEvent::ErrorInjected {
                iteration,
                cell: error.cell,
            });
        }
        self.run_concurrent(&errors)
    }

    /// Diagnoses several already-planted errors *simultaneously*:
    /// detect once (a full response sweep), cluster the failing
    /// outputs into per-error footprints, localize every cluster
    /// concurrently through shared observation-tap batches, confirm
    /// each site against its own outputs, and repair everything with
    /// one corrective ECO.
    ///
    /// This is the multi-error counterpart of [`run`](Self::run) —
    /// the capability the single-error paper protocol lacks. The
    /// machinery lives in [`crate::diagnosis`]; progress is reported
    /// through the usual [`DebugEvent`] stream plus the multi-error
    /// [`DebugEvent::ConeSplit`] and [`DebugEvent::Attribution`]
    /// variants, and effort is attributed per error in
    /// [`ClusterOutcome::ledger`] rows that apportion the global
    /// ledger exactly.
    ///
    /// # Errors
    ///
    /// Propagates netlist/placement/routing failures from the flow.
    pub fn run_concurrent(
        &mut self,
        errors: &[InjectedError],
    ) -> Result<ConcurrentOutcome, TilingError> {
        self.preflight()?;
        let mut outcome = ConcurrentOutcome {
            clusters: Vec::new(),
            rounds: 0,
            taps_inserted: 0,
            ecos: 0,
            shared_core_cells: 0,
            ledger: EffortLedger::default(),
            repaired: false,
            strategy: self.strategy.name(),
            flow: self.flow.name(),
        };

        // ---- Detection: one full response sweep -----------------------
        let t_detect = self.span_begin();
        let detect_before = outcome.ledger;
        let matrix = collect_responses(
            self.golden,
            &self.td.netlist,
            self.patterns_for(self.golden),
        )?;
        let raw_clusters = cluster_failures(self.golden, &matrix);
        self.phase_mark(Phase::Detect, t_detect, detect_before, &outcome.ledger);
        if raw_clusters.is_empty() {
            self.emit(DebugEvent::CleanDesign);
            // Undetectable errors are still repaired — at the netlist
            // level only, since a LUT-function restore moves nothing —
            // mirroring the detected path, whose corrective ECO also
            // repairs every planted error. The caller never keeps a
            // latent bug in a DUT reported repaired.
            for error in errors {
                netlist::eco::apply(&mut self.td.netlist, &sim::inject::repair_op(error))?;
            }
            outcome.repaired = true;
            return Ok(outcome);
        }

        // ---- Shared diagnosis pipeline --------------------------------
        let pats: Vec<Vec<bool>> = self.patterns_for(self.golden).collect();
        let t_localize = self.span_begin();
        let localize_before = outcome.ledger;
        let mut ledger = std::mem::take(&mut outcome.ledger);
        let mut diagnosis = self.diagnose(&matrix, &pats, &mut ledger)?;
        outcome.ledger = ledger;
        outcome.rounds = diagnosis.rounds;
        outcome.taps_inserted = diagnosis.taps_inserted;
        outcome.shared_core_cells = diagnosis.shared_core_cells;
        let clusters = std::mem::take(&mut diagnosis.clusters);
        let candidate_counts = diagnosis.candidate_counts;
        let exclusive_sizes = diagnosis.exclusive_sizes;
        let localized = diagnosis.localized;
        let mut cluster_ledgers = diagnosis.cluster_ledgers;
        let n = clusters.len();

        // Score each ambiguous shared-core divergence against every
        // implicated cluster's observed footprint; report the best
        // match.
        if !diagnosis.ambiguities.is_empty() {
            let mut attribution = FaultAttribution::new(self.golden, &pats)?;
            // Prime the whole ambiguity set up front: sequential
            // designs fault-simulate 64 candidate machines per packed
            // stream pass instead of one hypothesis netlist each.
            let amb_cells: Vec<CellId> = diagnosis.ambiguities.iter().map(|a| a.cell).collect();
            attribution.prime(&amb_cells)?;
            let pos = self.golden.primary_outputs();
            let failing_masks: Vec<Vec<bool>> = clusters
                .iter()
                .map(|cl| pos.iter().map(|p| cl.outputs.contains(p)).collect())
                .collect();
            for amb in &diagnosis.ambiguities {
                let mut best: Option<(usize, f64)> = None;
                for &t in &amb.tracks {
                    let score = attribution.blame_score(amb.cell, &failing_masks[t])?;
                    if best.is_none_or(|(_, bs)| score > bs) {
                        best = Some((t, score));
                    }
                }
                if let Some((cluster, score)) = best {
                    self.emit(DebugEvent::Attribution {
                        cell: amb.cell,
                        cluster,
                        score,
                    });
                }
            }
        }
        for &cell in &localized {
            self.emit(DebugEvent::Localized { cell });
        }
        self.phase_mark(
            Phase::Localize,
            t_localize,
            localize_before,
            &outcome.ledger,
        );

        // ---- Per-cluster confirmation (§4.1) --------------------------
        let mut confirmed = vec![false; n];
        if self.confirm_with_control {
            for k in 0..n {
                if let Some(suspect) = localized[k] {
                    let t_confirm = self.span_begin();
                    let confirm_before = outcome.ledger;
                    let (ok, effort, tiles) =
                        self.control_point_confirm(suspect, Some(&clusters[k].outputs))?;
                    outcome.ledger.charge(Phase::Confirm, effort, tiles);
                    cluster_ledgers[k].charge(Phase::Confirm, effort, tiles);
                    self.phase_mark(Phase::Confirm, t_confirm, confirm_before, &outcome.ledger);
                    confirmed[k] = ok;
                    self.emit(DebugEvent::Confirmed {
                        cell: suspect,
                        confirmed: ok,
                    });
                }
            }
        }

        // ---- One corrective ECO for every error -----------------------
        let t_correct = self.span_begin();
        let correct_before = outcome.ledger;
        let mut seeds: Vec<CellId> = Vec::with_capacity(errors.len());
        for error in errors {
            netlist::eco::apply(&mut self.td.netlist, &sim::inject::repair_op(error))?;
            seeds.push(error.cell);
        }
        seeds.sort_unstable();
        seeds.dedup();
        let phys = self.flow.reimplement(self.td, &seeds, &[])?;
        let tiles = phys.affected.tiles.len();
        outcome.ledger.charge(Phase::Correct, phys.effort, tiles);
        let even = vec![1usize; n];
        split_charge(
            &mut cluster_ledgers,
            Phase::Correct,
            phys.effort,
            tiles,
            &even,
        );
        outcome.repaired = self.outputs_match(None)?;
        self.emit(DebugEvent::Corrected {
            repaired: outcome.repaired,
        });
        self.phase_mark(Phase::Correct, t_correct, correct_before, &outcome.ledger);

        // ---- Attribution: match clusters to planted errors ------------
        let mut matched: Vec<Option<usize>> = vec![None; n];
        let mut claimed = vec![false; errors.len()];
        for k in 0..n {
            if let Some(cell) = localized[k] {
                if let Some(i) = (0..errors.len()).find(|&i| !claimed[i] && errors[i].cell == cell)
                {
                    matched[k] = Some(i);
                    claimed[i] = true;
                }
            }
        }
        for k in 0..n {
            if matched[k].is_some() {
                continue;
            }
            if let Some(i) = (0..errors.len())
                .find(|&i| !claimed[i] && clusters[k].cone.contains(errors[i].cell))
            {
                matched[k] = Some(i);
                claimed[i] = true;
            }
        }

        for (k, cl) in clusters.into_iter().enumerate() {
            let repaired = self.outputs_match(Some(&cl.outputs))?;
            outcome.clusters.push(ClusterOutcome {
                outputs: cl.outputs,
                signature: cl.signature,
                window: cl.window,
                cone_size: cl.cone.len(),
                candidates: candidate_counts[k],
                exclusive_size: exclusive_sizes[k],
                localized: localized[k],
                confirmed_by_control: confirmed[k],
                matched_error: matched[k],
                taps_requested: diagnosis.taps_requested[k],
                ledger: cluster_ledgers[k],
                repaired,
            });
        }
        outcome.ecos = outcome.ledger.total_ecos();
        Ok(outcome)
    }

    /// The shared diagnosis pipeline both entry points run after a
    /// failing detection sweep: build the [`EvidenceBase`], tap the
    /// deferred-merge witness registers, fold FSM fan-out clusters,
    /// prune every cluster's cone within its causal window, register
    /// one strategy track per cluster, and drive the physical tap
    /// rounds to completion. Emits the per-cluster
    /// [`DebugEvent::Detected`] / [`DebugEvent::SuspectsComputed`]
    /// events and the campaign-level [`DebugEvent::ConeSplit`].
    ///
    /// The serial path ([`run`](Self::run)) consumes the per-cluster
    /// localizations as alternative candidate sites for its one
    /// error; the concurrent path ([`run_concurrent`](Self::run_concurrent))
    /// adapts them into [`ClusterOutcome`] rows.
    fn diagnose(
        &mut self,
        matrix: &ResponseMatrix,
        pats: &[Vec<bool>],
        ledger: &mut EffortLedger,
    ) -> Result<Diagnosis, TilingError> {
        let (mut evidence, clusters, taps_inserted, merge_screen) =
            self.screened_clusters(matrix, pats, ledger)?;

        let order = self.golden.topo_order()?;
        let rank: HashMap<CellId, usize> = order.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let rank_of = |c: CellId| rank.get(&c).copied().unwrap_or(usize::MAX);
        let n = clusters.len();
        let mut scheduler = MultiErrorScheduler::new(LinearBatches::DEFAULT_BATCH);
        let mut candidate_counts = Vec::with_capacity(n);
        for cl in &clusters {
            let (window, suspects) = self.cluster_track(&evidence, cl, &rank_of)?;
            candidate_counts.push(suspects.len());
            scheduler.add_error(self.golden, &suspects, window, self.strategy.fresh());
        }
        let exclusive_sizes = scheduler.partition().exclusive_sizes();
        let shared_core_cells = scheduler.partition().shared.len();
        self.emit(DebugEvent::ConeSplit {
            clusters: n,
            exclusive: exclusive_sizes.clone(),
            shared: shared_core_cells,
        });

        // The merge-screening taps served every (final) cluster
        // equally; apportion them now that the cluster count is known.
        let mut cluster_ledgers = vec![EffortLedger::default(); n];
        for &(effort, tiles) in &merge_screen {
            split_charge(
                &mut cluster_ledgers,
                Phase::Localize,
                effort,
                tiles,
                &vec![1usize; n],
            );
        }
        let stats = self.run_tap_rounds(
            &mut scheduler,
            &mut evidence,
            pats,
            ledger,
            &mut cluster_ledgers,
        )?;
        self.record_evidence(&evidence);
        Ok(Diagnosis {
            clusters,
            candidate_counts,
            exclusive_sizes,
            shared_core_cells,
            taps_requested: (0..n).map(|k| scheduler.taps_requested(k)).collect(),
            localized: scheduler.localized(),
            rounds: stats.rounds,
            taps_inserted: taps_inserted + stats.taps_inserted,
            ambiguities: stats.ambiguities,
            cluster_ledgers,
        })
    }

    /// Builds the [`EvidenceBase`] from a failing detection sweep,
    /// taps the deferred-merge witness registers, and folds the FSM
    /// fan-out clusters. Returns `(evidence, merged clusters, witness
    /// taps inserted, per-ECO witness charges)`.
    ///
    /// One FSM error fans out into several clusters (same failure
    /// onset, different output cones, a dominating state register
    /// behind all of them) — but so do several independent same-onset
    /// errors behind a shared sequential trunk, a case the old
    /// pre-registration merge conflated (it intersected both sites
    /// away and localized nothing). The merge decision is therefore
    /// *deferred* until screening evidence exists: one tap batch on
    /// the witness registers measures whether the trunk actually
    /// carried the corruption, and only then are clusters folded. The
    /// measurements stay in the evidence base, so later rounds reuse
    /// them free.
    #[allow(clippy::type_complexity)]
    fn screened_clusters(
        &mut self,
        matrix: &ResponseMatrix,
        pats: &[Vec<bool>],
        ledger: &mut EffortLedger,
    ) -> Result<
        (
            EvidenceBase,
            Vec<FailureCluster>,
            usize,
            Vec<(CadEffort, usize)>,
        ),
        TilingError,
    > {
        let raw_clusters = cluster_failures(self.golden, matrix);
        // The detection sweep seeds every PO driver's exact divergence
        // onset into the evidence base for free, and its per-output
        // onset/depth tables are built once and shared by every
        // cluster.
        let mut evidence = EvidenceBase::from_sweep(self.golden, matrix);
        let witnesses: Vec<CellId> = fsm_merge_witnesses(self.golden, &raw_clusters)
            .into_iter()
            .filter(|&c| !evidence.exact(c))
            .collect();
        let mut merge_screen: Vec<(CadEffort, usize)> = Vec::new();
        let mut taps_inserted = 0usize;
        for (eco_no, batch) in witnesses.chunks(LinearBatches::DEFAULT_BATCH).enumerate() {
            let (onsets, effort, tiles) = self.measure_batch(batch, pats, eco_no)?;
            taps_inserted += batch.len();
            ledger.charge(Phase::Localize, effort, tiles);
            merge_screen.push((effort, tiles));
            for (&cell, &onset) in batch.iter().zip(&onsets) {
                evidence.record(cell, onset);
            }
        }
        let clusters = merge_fsm_clusters(self.golden, raw_clusters, &evidence);
        Ok((evidence, clusters, taps_inserted, merge_screen))
    }

    /// One cluster's localization inputs: its causal
    /// [`crate::diagnosis::ObservationWindow`] and its pruned,
    /// live-LUT-filtered, temporally-ordered suspect list. Emits the
    /// cluster's [`DebugEvent::Detected`] /
    /// [`DebugEvent::SuspectsComputed`] pair.
    ///
    /// Pruning is windowed per cluster: everything a cluster's error
    /// can teach us already happened by the cluster's first failing
    /// pattern, so a cell is pruned when it could not have reached
    /// the cluster's outputs in time, or when another output was
    /// still clean at the pattern the cell's wavefront would earliest
    /// have reached it — even if a slower error diverges that output
    /// later in the sweep (see [`EvidenceBase::prune_cone`]). The
    /// causal window judges each suspect at the cluster's window
    /// minus its FF distance to the cluster's outputs, and the same
    /// depths order suspects temporally (FF-deepest first).
    fn cluster_track(
        &mut self,
        evidence: &EvidenceBase,
        cl: &FailureCluster,
        rank_of: &dyn Fn(CellId) -> usize,
    ) -> Result<(crate::diagnosis::ObservationWindow, Vec<CellId>), TilingError> {
        self.emit(DebugEvent::Detected {
            pattern_index: cl.window,
            output_name: self.golden.cell(cl.outputs[0])?.name.clone(),
        });
        let window = evidence.causal_window(cl);
        let live_lut = |c: CellId| {
            self.td
                .netlist
                .cell(c)
                .map(|cell| cell.lut_function().is_some())
                .unwrap_or(false)
        };
        let mut suspects: Vec<CellId> = evidence
            .prune_cone(&cl.cone, &window)
            .iter()
            .filter(|&c| live_lut(c))
            .collect();
        if suspects.is_empty() {
            // The prune's alibi direction is heuristic — value
            // masking can hide a wavefront from the "clean" output
            // that vouched the alibi — while "this cluster's
            // divergence has a cause inside its cone" is ground
            // truth. An empty suspect list therefore proves the
            // alibi misfired (seen on merged FSM clusters whose
            // earliest member onset shrinks the window); retry with
            // only the exact causal-feasibility direction.
            suspects = cl
                .cone
                .iter()
                .filter(|&c| window.feasible(c) && live_lut(c))
                .collect();
        }
        evidence.order_suspects(&window, &mut suspects, rank_of);
        self.emit(DebugEvent::SuspectsComputed {
            structural: cl.cone.len(),
            candidates: suspects.len(),
        });
        Ok((window, suspects))
    }

    /// Inserts observation taps on every cell of `batch` (one real
    /// ECO through the session flow), measures each tapped net's
    /// exact divergence onset over the whole sweep —
    /// [`sim::emulate::net_first_divergences`], the single
    /// observation entry point for serial and concurrent localization
    /// alike — then retires the taps again (visibility instruments
    /// are temporary, and pads are scarce; the physical cleanup folds
    /// into the next ECO's re-implementation). Emits the
    /// [`DebugEvent::TapEco`] / [`DebugEvent::Observed`] pair and
    /// returns `(onsets, effort, tiles cleared)`.
    fn measure_batch(
        &mut self,
        batch: &[CellId],
        pats: &[Vec<bool>],
        eco_no: usize,
    ) -> Result<(Vec<Option<usize>>, CadEffort, usize), TilingError> {
        let mut added = Vec::new();
        let mut nets: Vec<NetId> = Vec::with_capacity(batch.len());
        for &cell in batch {
            let net = self.td.netlist.cell_output(cell)?;
            let name = format!("dbg{eco_no}_{}", cell.index());
            let rep = insert_observation_tap(&mut self.td.netlist, net, &name, false)?;
            added.extend(rep.added.iter().copied());
            nets.push(net);
        }
        let removals: Vec<netlist::EcoOp> = added
            .iter()
            .map(|&cell| netlist::EcoOp::RemoveCell { cell })
            .collect();
        let phys = match self.flow.reimplement(self.td, batch, &added) {
            Ok(phys) => phys,
            Err(e) => {
                // The flow restored placement/routing; retire the
                // just-inserted taps too so the netlist matches and
                // the caller can retry on a consistent design.
                netlist::eco::apply_all(&mut self.td.netlist, &removals)?;
                return Err(e);
            }
        };
        self.emit(DebugEvent::TapEco {
            cells: batch.to_vec(),
            effort: phys.effort,
        });
        let onsets =
            sim::emulate::net_first_divergences(self.golden, &self.td.netlist, &nets, pats)?;
        self.emit(DebugEvent::Observed {
            diverging: batch
                .iter()
                .zip(&onsets)
                .filter(|(_, onset)| onset.is_some())
                .map(|(&cell, _)| cell)
                .collect(),
        });
        netlist::eco::apply_all(&mut self.td.netlist, &removals)?;
        Ok((onsets, phys.effort, phys.affected.tiles.len()))
    }

    /// The shared physical localization loop: alternates the
    /// scheduler's evidence-aware round planning with real tap ECOs
    /// ([`measure_batch`](Self::measure_batch)) until every track is
    /// done. Used verbatim by the serial path (one track) and the
    /// concurrent path (one track per cluster, `per_track` ledgers
    /// apportioning each shared ECO).
    fn run_tap_rounds(
        &mut self,
        scheduler: &mut MultiErrorScheduler,
        evidence: &mut EvidenceBase,
        pats: &[Vec<bool>],
        ledger: &mut EffortLedger,
        per_track: &mut [EffortLedger],
    ) -> Result<RoundStats, TilingError> {
        let n = scheduler.tracks();
        let mut stats = RoundStats::default();
        let mut eco_no = 1000; // distinct namespace from merge screening
        while let Some(plan) = scheduler.plan_round(evidence) {
            stats.rounds += 1;
            let mut verdicts: HashMap<CellId, Option<usize>> = HashMap::new();
            for batch in &plan.batches {
                // A screening batch serves every track equally (no
                // track requested it; it rules the shared core in or
                // out for all of them at frontier cost).
                let weights: Vec<usize> = if per_track.is_empty() {
                    Vec::new()
                } else if plan.screening {
                    vec![1; n]
                } else {
                    (0..n)
                        .map(|k| {
                            scheduler
                                .requested(k)
                                .iter()
                                .filter(|c| batch.contains(c))
                                .count()
                        })
                        .collect()
                };
                let (onsets, effort, tiles) = self.measure_batch(batch, pats, eco_no)?;
                eco_no += 1;
                stats.taps_inserted += batch.len();
                ledger.charge(Phase::Localize, effort, tiles);
                if !per_track.is_empty() {
                    split_charge(per_track, Phase::Localize, effort, tiles, &weights);
                }
                for (&cell, &onset) in batch.iter().zip(&onsets) {
                    verdicts.insert(cell, onset);
                }
            }
            stats
                .ambiguities
                .extend(scheduler.record_round(evidence, &verdicts));
        }
        Ok(stats)
    }

    /// Inserts a control point on the suspect's output net (an ECO
    /// through the session flow), then re-emulates with the override
    /// enabled and driven to the golden value every cycle. Returns
    /// (confirmed, effort, tiles cleared); *confirmed* means the
    /// compared outputs — all of them, or just the `outputs` subset a
    /// multi-error session passes — then match the golden model.
    ///
    /// Like observation taps, the control point is *retired* at the
    /// netlist level afterwards (the physical cleanup folds into the
    /// correction ECO that follows), so successive campaign
    /// iterations start from an uninstrumented DUT.
    fn control_point_confirm(
        &mut self,
        suspect: CellId,
        outputs: Option<&[CellId]>,
    ) -> Result<(bool, CadEffort, usize), TilingError> {
        let net = self.td.netlist.cell_output(suspect)?;
        // Control points add primary-input *nets* whose names outlive
        // retirement (removing a cell frees its name; a dead net keeps
        // its), so every insertion needs a fresh namespace — confirm
        // runs once per error in a concurrent session and once per
        // iteration in a campaign.
        let base = unique_cp_name(&self.td.netlist, suspect);
        let cp = insert_control_point(&mut self.td.netlist, net, &base)?;
        let phys = match self.flow.reimplement(self.td, &[suspect], &cp.report.added) {
            Ok(phys) => phys,
            Err(e) => {
                // The flow restored placement/routing; retire the
                // control point too so the netlist matches and the
                // caller can retry on a consistent design.
                self.retire_control_point(&cp, net)?;
                return Err(e);
            }
        };

        // DUT inputs: golden pattern, then [force_val, force_en] (the
        // two new PIs append to the input order); the packed sweep
        // drives force_val with the golden model's word for `net`.
        let confirmed = sim::emulate::forced_outputs_equivalent(
            self.golden,
            &self.td.netlist,
            net,
            &self.po_pairs_for(outputs)?,
            self.patterns_for(self.golden).take(256),
        )?;

        self.retire_control_point(&cp, net)?;
        Ok((confirmed, phys.effort, phys.affected.tiles.len()))
    }

    /// Golden↔DUT primary-output index pairs, optionally restricted
    /// to a subset of golden PO cells (a cluster's outputs).
    fn po_pairs_for(&self, outputs: Option<&[CellId]>) -> Result<Vec<(usize, usize)>, TilingError> {
        let mut pairs = po_pairs(self.golden, &self.td.netlist)?;
        if let Some(subset) = outputs {
            let gpos = self.golden.primary_outputs();
            pairs.retain(|&(gk, _)| subset.contains(&gpos[gk]));
        }
        Ok(pairs)
    }

    /// Retires a control point: rewires the mux's sinks back to the
    /// original net, then removes the mux and its two force PIs.
    fn retire_control_point(
        &mut self,
        cp: &sim::testlogic::ControlPoint,
        net: NetId,
    ) -> Result<(), TilingError> {
        let mux_net = self.td.netlist.cell_output(cp.mux)?;
        let sinks = self.td.netlist.net(mux_net)?.sinks.clone();
        for s in &sinks {
            self.td.netlist.set_pin(s.cell, s.pin, net)?;
        }
        let removals: Vec<netlist::EcoOp> = [cp.mux, cp.force_value, cp.force_enable]
            .iter()
            .map(|&cell| netlist::EcoOp::RemoveCell { cell })
            .collect();
        netlist::eco::apply_all(&mut self.td.netlist, &removals)?;
        Ok(())
    }

    /// Re-emulates and checks that the *original* primary outputs now
    /// match (the DUT has extra PIs/POs from debug instrumentation,
    /// so a plain output-vector compare would be misaligned). With
    /// `Some(subset)` only those golden PO cells are compared — how a
    /// multi-error session judges one cluster while others stay live.
    fn outputs_match(&self, outputs: Option<&[CellId]>) -> Result<bool, TilingError> {
        // The DUT may have grown extra PIs (control points); the
        // packed sweep drives them inactive.
        Ok(sim::emulate::outputs_equivalent(
            self.golden,
            &self.td.netlist,
            &self.po_pairs_for(outputs)?,
            self.patterns_for(self.golden),
        )?)
    }
}

// Compile-time `Send` regression gate (static_assertions-style): the
// campaign fleet (`debugd`, `parallel::scope`) moves sessions, their
// evidence, and whole tiled designs across worker threads. A change
// that makes any of these `!Send` — an `Rc` slipping into a cone, a
// non-`Send` trait object behind a session box — must fail *this
// compile*, not deadlock or refuse to build the fleet three crates
// downstream.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<TiledDesign>();
    assert_send::<crate::flow::TilingOptions>();
    assert_send::<DebugSession<'static>>();
    assert_send::<EvidenceBase>();
    assert_send::<MultiErrorScheduler>();
    assert_send::<FaultAttribution<'static>>();
    assert_send::<Box<dyn LocalizationStrategy>>();
    assert_send::<Box<dyn ReimplFlow>>();
    assert_send::<DebugEvent>();
    assert_send::<DebugOutcome>();
    assert_send::<CampaignOutcome>();
    assert_send::<ConcurrentOutcome>();
    assert_send::<crate::report::DebugReport>();
    assert_send::<TilingError>();
};

/// Everything the shared diagnosis pipeline
/// ([`DebugSession::diagnose`]) produced.
struct Diagnosis {
    /// The (deferred-merge folded) failure clusters, in discovery
    /// order.
    clusters: Vec<FailureCluster>,
    /// Pruned, live-LUT-filtered suspect count per cluster.
    candidate_counts: Vec<usize>,
    /// Exclusive-region sizes of the registered cones.
    exclusive_sizes: Vec<usize>,
    /// Cells implicated by two or more clusters.
    shared_core_cells: usize,
    /// Taps each track requested (pre-dedup / pre-evidence).
    taps_requested: Vec<usize>,
    /// Per-cluster localization results.
    localized: Vec<Option<CellId>>,
    /// Scheduler rounds executed.
    rounds: usize,
    /// Physical taps inserted (witness screening + rounds).
    taps_inserted: usize,
    /// Shared-core divergences needing attribution.
    ambiguities: Vec<Ambiguity>,
    /// Per-cluster effort rows apportioning the localization phase.
    cluster_ledgers: Vec<EffortLedger>,
}

/// What the shared tap-round loop accumulated.
#[derive(Debug, Default)]
struct RoundStats {
    /// Scheduler rounds executed.
    rounds: usize,
    /// Observation taps physically inserted (post-deduplication).
    taps_inserted: usize,
    /// Shared-core divergences more than one cone-and-window explains.
    ambiguities: Vec<Ambiguity>,
}

/// Reconstructs the classic first-mismatch record from a full
/// response sweep: the earliest failing pattern across all outputs,
/// with `output_ok` read off the signatures at that pattern. `None`
/// when nothing failed. Pattern indices are directly comparable with
/// every other consumer of the same sweep.
fn matrix_mismatch(
    golden: &Netlist,
    matrix: &ResponseMatrix,
) -> Result<Option<Mismatch>, TilingError> {
    let first = matrix
        .signatures
        .iter()
        .filter_map(ResponseSignature::first_failing)
        .min();
    let Some(pattern_index) = first else {
        return Ok(None);
    };
    let output_ok: Vec<bool> = matrix
        .signatures
        .iter()
        .map(|s| !s.contains(pattern_index))
        .collect();
    let output_index = output_ok.iter().position(|&ok| !ok).unwrap_or(0);
    Ok(Some(Mismatch {
        pattern_index,
        cycle: if golden.is_sequential() {
            pattern_index as u64
        } else {
            0
        },
        output_index,
        output_name: golden.cell(matrix.outputs[output_index])?.name.clone(),
        output_ok,
    }))
}

/// The serial path's sharpest one-cluster view of a failing sweep:
/// all failing outputs, the union of their signatures, the
/// *intersection* of their fanin cones (under the single-error
/// hypothesis the site lies in every failing output's fanin),
/// windowed at the earliest observed failure.
fn serial_cluster(golden: &Netlist, matrix: &ResponseMatrix) -> FailureCluster {
    let failing = matrix.failing();
    let mut outputs = Vec::with_capacity(failing.len());
    let mut signature = ResponseSignature::default();
    let mut cone: Option<SuspectCone> = None;
    for &k in &failing {
        let po = matrix.outputs[k];
        outputs.push(po);
        signature.union_with(&matrix.signatures[k]);
        let po_cone = SuspectCone::fanin(golden, &[po]);
        cone = Some(match cone {
            Some(mut c) => {
                c.intersect_with(&po_cone);
                c
            }
            None => po_cone,
        });
    }
    let window = signature.first_failing().unwrap_or(0);
    FailureCluster {
        outputs,
        signature,
        cone: cone.unwrap_or_default(),
        window,
    }
}

/// First `cp{suspect}_{k}` namespace whose control-point pieces are
/// all unclaimed in `nl` (see the comment at the insertion site).
fn unique_cp_name(nl: &Netlist, suspect: CellId) -> String {
    let mut k = 0usize;
    loop {
        let name = format!("cp{}_{k}", suspect.index());
        if nl.find_net(&format!("{name}_force_val")).is_none()
            && nl.find_net(&format!("{name}_force_en")).is_none()
            && nl.find_cell(&format!("{name}_ctl_mux")).is_none()
        {
            return name;
        }
        k += 1;
    }
}

/// Reconstructs a [`Mismatch`] for one cluster of a concurrent
/// diagnosis (the compat shape `run_campaign` rows report): the
/// cluster's earliest failing pattern, with `output_ok` rebuilt from
/// every cluster's signature at that pattern.
fn synthesized_mismatch(
    golden: &Netlist,
    pos: &[CellId],
    clusters: &[ClusterOutcome],
    cluster: &ClusterOutcome,
    sequential: bool,
) -> Result<Mismatch, TilingError> {
    let pattern_index = cluster.signature.first_failing().unwrap_or(0);
    let output_ok: Vec<bool> = pos
        .iter()
        .map(|po| {
            !clusters
                .iter()
                .any(|cl| cl.outputs.contains(po) && cl.signature.contains(pattern_index))
        })
        .collect();
    let output_index = output_ok.iter().position(|&ok| !ok).unwrap_or(0);
    Ok(Mismatch {
        pattern_index,
        cycle: if sequential { pattern_index as u64 } else { 0 },
        output_index,
        output_name: golden.cell(pos[output_index])?.name.clone(),
        output_ok,
    })
}

/// Splits `total` proportionally to `weights`, exactly: shares sum to
/// `total`, with the remainder dealt one unit at a time to the
/// lowest-index participating entries.
fn apportion(total: u64, weights: &[usize]) -> Vec<u64> {
    let w: u64 = weights.iter().map(|&x| x as u64).sum();
    if w == 0 {
        return vec![0; weights.len()];
    }
    let mut shares: Vec<u64> = weights.iter().map(|&x| total * x as u64 / w).collect();
    let mut rem = total - shares.iter().sum::<u64>();
    let mut k = 0usize;
    while rem > 0 {
        let i = k % weights.len();
        if weights[i] > 0 {
            shares[i] += 1;
            rem -= 1;
        }
        k += 1;
    }
    shares
}

/// Charges one shared physical ECO against the per-cluster ledgers:
/// effort and tiles apportioned by `weights` (taps each cluster had
/// in the batch), the ECO itself counted for every participant —
/// which is exactly why the per-cluster ECO counts sum to *more* than
/// the physical count when batches are shared.
fn split_charge(
    ledgers: &mut [EffortLedger],
    phase: Phase,
    effort: CadEffort,
    tiles: usize,
    weights: &[usize],
) {
    let moves = apportion(effort.place_moves, weights);
    let exps = apportion(effort.route_expansions, weights);
    let tls = apportion(tiles as u64, weights);
    for (k, ledger) in ledgers.iter_mut().enumerate() {
        if weights[k] == 0 {
            continue;
        }
        ledger.charge(
            phase,
            CadEffort {
                place_moves: moves[k],
                route_expansions: exps[k],
            },
            tls[k] as usize,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{implement, TilingOptions};
    use crate::strategy::BinarySearch;
    use sim::emulate::first_mismatch;
    use sim::inject::random_error;
    use synth::PaperDesign;

    #[test]
    fn session_with_binary_search_repairs_9sym() {
        let bundle = PaperDesign::NineSym.generate().unwrap();
        let golden = bundle.netlist.clone();
        let mut td = implement(bundle.netlist, bundle.hierarchy, TilingOptions::fast(9)).unwrap();
        let err = random_error(&mut td.netlist, 4321).unwrap();
        let mut events = Vec::new();
        let out = DebugSession::new(&mut td, &golden)
            .strategy(BinarySearch::new())
            .seed(42)
            .on_event(|e| events.push(format!("{e:?}")))
            .run(&err)
            .unwrap();
        assert!(out.mismatch.is_some());
        assert!(out.repaired);
        assert_eq!(out.strategy, "binary_search");
        assert_eq!(out.flow, "tiled");
        assert!(td.routing.is_feasible());
        // The event stream traces the whole iteration.
        assert!(events.iter().any(|e| e.contains("Detected")));
        assert!(events.iter().any(|e| e.contains("TapEco")));
        assert!(events.iter().any(|e| e.contains("Corrected")));
        // Ledger phases reconcile with the flat counters.
        assert_eq!(out.effort, out.ledger.total());
        assert_eq!(out.ecos, out.ledger.total_ecos());
        assert!(out.ledger.phase(Phase::Localize).ecos >= 1);
        assert_eq!(out.ledger.phase(Phase::Correct).ecos, 1);
    }

    /// An 8-LUT backbone fanning into two 4-LUT branches, each ending
    /// in its own output — two overlapping suspect cones.
    fn backbone_bundle() -> (Netlist, netlist::Hierarchy, Vec<CellId>, Vec<CellId>) {
        let mut nl = Netlist::new("bb");
        let pi = nl.add_input("a").unwrap();
        let mut net = nl.cell_output(pi).unwrap();
        for k in 0..8 {
            let c = nl
                .add_lut(format!("bb{k}"), netlist::TruthTable::not(), &[net])
                .unwrap();
            net = nl.cell_output(c).unwrap();
        }
        let mut branches = Vec::new();
        for b in 0..2 {
            let mut bnet = net;
            let mut cells = Vec::new();
            for k in 0..4 {
                let c = nl
                    .add_lut(format!("br{b}_{k}"), netlist::TruthTable::not(), &[bnet])
                    .unwrap();
                bnet = nl.cell_output(c).unwrap();
                cells.push(c);
            }
            nl.add_output(format!("y{b}"), bnet).unwrap();
            branches.push(cells);
        }
        let hier = netlist::Hierarchy::new("bb");
        let (b0, b1) = (branches.remove(0), branches.remove(0));
        (nl, hier, b0, b1)
    }

    #[test]
    fn concurrent_diagnosis_repairs_two_overlapping_errors() {
        let (nl, hier, b0, b1) = backbone_bundle();
        let mut td = implement(nl, hier, TilingOptions::fast(21)).unwrap();
        let golden = td.netlist.clone();
        let e0 = sim::inject::inject(
            &mut td.netlist,
            b0[2],
            sim::inject::DesignErrorKind::Complement,
        )
        .unwrap();
        let e1 = sim::inject::inject(
            &mut td.netlist,
            b1[2],
            sim::inject::DesignErrorKind::Complement,
        )
        .unwrap();
        let mut events = Vec::new();
        let out = DebugSession::new(&mut td, &golden)
            .seed(5)
            .on_event(|e| events.push(format!("{e:?}")))
            .run_concurrent(&[e0, e1])
            .unwrap();
        assert!(out.repaired);
        assert!(td.routing.is_feasible());
        assert_eq!(out.clusters.len(), 2, "one cluster per failing output");
        // Both errors localized to the exact planted cells and matched.
        let mut found = out.localized_cells();
        found.sort_unstable();
        let mut planted = vec![b0[2], b1[2]];
        planted.sort_unstable();
        assert_eq!(found, planted);
        for (k, c) in out.clusters.iter().enumerate() {
            assert!(c.matched_error.is_some(), "cluster {k} unmatched");
            assert!(c.repaired, "cluster {k} outputs still diverge");
            assert!(c.confirmed_by_control, "cluster {k} unconfirmed");
            assert_eq!(c.exclusive_size, 4, "branch is the exclusive region");
        }
        // The 8 backbone LUTs are the shared core.
        assert_eq!(out.shared_core_cells, 8);
        // Per-cluster ledgers apportion the global ledger exactly.
        let split: u64 = out.clusters.iter().map(|c| c.ledger.total().total()).sum();
        assert_eq!(split, out.ledger.total().total());
        // Sharing: requested taps exceed physically inserted taps.
        assert!(out.taps_requested() > out.taps_inserted);
        assert_eq!(out.ecos, out.ledger.total_ecos());
        assert!(events.iter().any(|e| e.contains("ConeSplit")));
        assert!(events.iter().any(|e| e.contains("Corrected")));
        // The DUT really is clean.
        let m =
            first_mismatch(&golden, &td.netlist, PatternSpec::Auto.generate(&golden, 5)).unwrap();
        assert!(m.is_none());
    }

    #[test]
    fn campaign_repairs_successive_errors() {
        let bundle = PaperDesign::NineSym.generate().unwrap();
        let golden = bundle.netlist.clone();
        let mut td = implement(bundle.netlist, bundle.hierarchy, TilingOptions::fast(11)).unwrap();
        let campaign = DebugSession::new(&mut td, &golden)
            .seed(7)
            .run_campaign(&[1001, 2002])
            .unwrap();
        assert_eq!(campaign.iterations.len(), 2);
        assert!(campaign.all_repaired());
        assert!(campaign.total_effort().total() > 0);
        assert!(td.routing.is_feasible());
        // The DUT really is clean at the end.
        let m =
            first_mismatch(&golden, &td.netlist, PatternSpec::Auto.generate(&golden, 7)).unwrap();
        assert!(m.is_none(), "campaign left a live bug behind");
    }
}

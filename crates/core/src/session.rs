//! Session-oriented debugging: one object that drives detect →
//! localize → confirm → correct through a pluggable physical flow and
//! localization strategy (paper §3.1 steps 9–22).
//!
//! [`DebugSession`] generalizes the old monolithic
//! `run_debug_iteration` (which survives as a thin wrapper in
//! [`crate::debug`]):
//!
//! * the physical re-implementation behind every ECO is a
//!   [`ReimplFlow`], so the same campaign can be priced through the
//!   tiled flow or any Figure 5 baseline;
//! * localization is a [`LocalizationStrategy`], so linear batching
//!   and binary-search bisection are interchangeable;
//! * progress is emitted as a typed [`DebugEvent`] stream;
//! * effort is recorded per phase in an [`EffortLedger`] that
//!   [`crate::report::DebugReport`] and the bench bins consume.

use std::collections::HashMap;

use netlist::{CellId, NetId, Netlist};
use sim::emulate::{first_mismatch, suspect_cells, Mismatch};
use sim::inject::InjectedError;
use sim::patterns::PatternGen;
use sim::testlogic::{insert_control_point, insert_observation_tap};
use sim::Simulator;

use crate::effort::{CadEffort, EffortLedger, Phase};
use crate::error::TilingError;
use crate::flow::TiledDesign;
use crate::flows::{ReimplFlow, TiledFlow};
use crate::strategy::{LinearBatches, LocalizationStrategy, TapObservation};

/// How the session generates stimulus vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PatternSpec {
    /// Exhaustive for narrow designs (≤ 10 inputs), 512 LFSR vectors
    /// otherwise — the paper-shaped default.
    #[default]
    Auto,
    /// All `2^width` vectors (panics above 24 inputs).
    Exhaustive,
    /// `count` LFSR vectors.
    Lfsr {
        /// Number of vectors.
        count: usize,
    },
    /// `count` uniform random vectors.
    Random {
        /// Number of vectors.
        count: usize,
    },
}

impl PatternSpec {
    /// Instantiates the generator for a netlist's input width.
    pub fn generate(self, nl: &Netlist, seed: u64) -> PatternGen {
        let width = nl.primary_inputs().len();
        match self {
            PatternSpec::Auto => {
                if width <= 10 {
                    PatternGen::exhaustive(width)
                } else {
                    PatternGen::lfsr(width, 512, seed)
                }
            }
            PatternSpec::Exhaustive => PatternGen::exhaustive(width),
            PatternSpec::Lfsr { count } => PatternGen::lfsr(width, count, seed),
            PatternSpec::Random { count } => PatternGen::random(width, count, seed),
        }
    }
}

/// Progress notifications emitted by [`DebugSession`].
#[derive(Debug, Clone)]
pub enum DebugEvent {
    /// A campaign planted (or was handed) an error to hunt.
    ErrorInjected {
        /// Iteration index within the campaign.
        iteration: usize,
        /// The buggy cell.
        cell: CellId,
    },
    /// Detection emulation found a primary-output divergence.
    Detected {
        /// Stimulus index that exposed the bug.
        pattern_index: usize,
        /// Name of the diverging output.
        output_name: String,
    },
    /// Detection emulation found no divergence (clean design).
    CleanDesign,
    /// The structural suspect cone was computed.
    SuspectsComputed {
        /// Raw structural suspects.
        structural: usize,
        /// Suspects surviving the DUT-liveness/LUT filter.
        candidates: usize,
    },
    /// One observation-tap ECO was performed.
    TapEco {
        /// Cells tapped by this ECO.
        cells: Vec<CellId>,
        /// Physical effort of the ECO.
        effort: CadEffort,
    },
    /// Re-emulation verdicts for the last tap ECO.
    Observed {
        /// Tapped cells whose nets diverged.
        diverging: Vec<CellId>,
    },
    /// Localization converged (or gave up).
    Localized {
        /// The identified error site.
        cell: Option<CellId>,
    },
    /// The §4.1 control-point confirmation ran.
    Confirmed {
        /// The suspect that was force-overridden.
        cell: CellId,
        /// Whether forcing it to golden values fixed the outputs.
        confirmed: bool,
    },
    /// The corrective ECO was applied and checked.
    Corrected {
        /// Whether the DUT now matches the golden model.
        repaired: bool,
    },
}

/// Result of one debugging iteration.
#[derive(Debug, Clone)]
pub struct DebugOutcome {
    /// The detected divergence (None if the DUT already matched).
    pub mismatch: Option<Mismatch>,
    /// Size of the initial structural suspect set.
    pub initial_suspects: usize,
    /// The cell the localization loop identified.
    pub localized: Option<CellId>,
    /// Observation taps inserted during localization.
    pub taps_inserted: usize,
    /// Whether the corrective ECO made the DUT match the golden model.
    pub repaired: bool,
    /// Total CAD effort across all ECOs of the iteration.
    pub effort: CadEffort,
    /// Tiles cleared across all ECOs (with multiplicity).
    pub tiles_cleared: usize,
    /// Physical ECOs performed (tap batches + confirmation + the
    /// correction). A non-tiled flow pays one full re-place-and-route
    /// per ECO.
    pub ecos: usize,
    /// Whether the localized cell was confirmed via a control point
    /// (forcing its output to golden values makes the DUT match).
    pub confirmed_by_control: bool,
    /// Per-phase effort breakdown (detect/localize/confirm/correct).
    pub ledger: EffortLedger,
    /// Name of the localization strategy that ran.
    pub strategy: &'static str,
    /// Name of the physical flow that ran.
    pub flow: &'static str,
}

/// Aggregate result of a multi-error campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignOutcome {
    /// Per-iteration outcomes, in order.
    pub iterations: Vec<DebugOutcome>,
    /// Merged per-phase ledger across all iterations.
    pub ledger: EffortLedger,
}

impl CampaignOutcome {
    /// Whether every iteration ended with a matching DUT.
    pub fn all_repaired(&self) -> bool {
        self.iterations.iter().all(|o| o.repaired)
    }

    /// Total CAD effort across the campaign.
    pub fn total_effort(&self) -> CadEffort {
        self.ledger.total()
    }
}

/// Boxed progress callback (see [`DebugSession::on_event`]).
type EventCallback<'a> = Box<dyn FnMut(&DebugEvent) + 'a>;

/// A configured debugging session over one tiled design.
///
/// Built with [`DebugSession::new`] plus the builder methods, then run
/// with [`run`](DebugSession::run) (one planted error) or
/// [`run_campaign`](DebugSession::run_campaign) (a sequence of random
/// errors).
///
/// ```no_run
/// use sim::inject::random_error;
/// use synth::PaperDesign;
/// use tiling::flows::TiledFlow;
/// use tiling::session::DebugSession;
/// use tiling::strategy::BinarySearch;
/// use tiling::{implement, TilingOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let b = PaperDesign::NineSym.generate()?;
/// let mut td = implement(b.netlist, b.hierarchy, TilingOptions::default())?;
/// let golden = td.netlist.clone();
/// let error = random_error(&mut td.netlist, 7)?;
/// let outcome = DebugSession::new(&mut td, &golden)
///     .strategy(BinarySearch::new())
///     .flow(TiledFlow::default())
///     .seed(42)
///     .on_event(|e| eprintln!("{e:?}"))
///     .run(&error)?;
/// assert!(outcome.repaired);
/// println!("{}", outcome.ledger);
/// # Ok(())
/// # }
/// ```
pub struct DebugSession<'a> {
    td: &'a mut TiledDesign,
    golden: &'a Netlist,
    strategy: Box<dyn LocalizationStrategy + 'a>,
    flow: Box<dyn ReimplFlow + 'a>,
    patterns: PatternSpec,
    seed: u64,
    confirm_with_control: bool,
    on_event: Option<EventCallback<'a>>,
}

impl<'a> DebugSession<'a> {
    /// A session with the paper-shaped defaults: [`LinearBatches`]
    /// localization through the [`TiledFlow`], auto patterns, seed 0,
    /// control-point confirmation on.
    pub fn new(td: &'a mut TiledDesign, golden: &'a Netlist) -> Self {
        Self {
            td,
            golden,
            strategy: Box::new(LinearBatches::default()),
            flow: Box::new(TiledFlow::default()),
            patterns: PatternSpec::Auto,
            seed: 0,
            confirm_with_control: true,
            on_event: None,
        }
    }

    /// Swaps the localization strategy.
    #[must_use]
    pub fn strategy(mut self, strategy: impl LocalizationStrategy + 'a) -> Self {
        self.strategy = Box::new(strategy);
        self
    }

    /// Swaps the physical re-implementation flow.
    #[must_use]
    pub fn flow(mut self, flow: impl ReimplFlow + 'a) -> Self {
        self.flow = Box::new(flow);
        self
    }

    /// Swaps the stimulus specification.
    #[must_use]
    pub fn patterns(mut self, patterns: PatternSpec) -> Self {
        self.patterns = patterns;
        self
    }

    /// Sets the stimulus seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables/disables the §4.1 control-point confirmation ECO.
    #[must_use]
    pub fn confirm_with_control(mut self, enabled: bool) -> Self {
        self.confirm_with_control = enabled;
        self
    }

    /// Registers a progress-event callback.
    #[must_use]
    pub fn on_event(mut self, callback: impl FnMut(&DebugEvent) + 'a) -> Self {
        self.on_event = Some(Box::new(callback));
        self
    }

    fn emit(&mut self, event: DebugEvent) {
        if let Some(cb) = self.on_event.as_mut() {
            cb(&event);
        }
    }

    fn patterns_for(&self, nl: &Netlist) -> PatternGen {
        self.patterns.generate(nl, self.seed)
    }

    /// Runs one full detect → localize → confirm → correct iteration
    /// for a planted error already present in the DUT netlist.
    ///
    /// # Errors
    ///
    /// Propagates netlist/placement/routing failures from the flow.
    pub fn run(&mut self, error: &InjectedError) -> Result<DebugOutcome, TilingError> {
        let mut outcome = DebugOutcome {
            mismatch: None,
            initial_suspects: 0,
            localized: None,
            taps_inserted: 0,
            repaired: false,
            effort: CadEffort::default(),
            tiles_cleared: 0,
            ecos: 0,
            confirmed_by_control: false,
            ledger: EffortLedger::default(),
            strategy: self.strategy.name(),
            flow: self.flow.name(),
        };

        // ---- Detection (steps 10, 21) --------------------------------
        let mismatch = first_mismatch(
            self.golden,
            &self.td.netlist,
            self.patterns_for(self.golden),
        )?;
        let Some(mismatch) = mismatch else {
            self.emit(DebugEvent::CleanDesign);
            outcome.repaired = true; // nothing to do
            return Ok(outcome);
        };
        self.emit(DebugEvent::Detected {
            pattern_index: mismatch.pattern_index,
            output_name: mismatch.output_name.clone(),
        });
        outcome.mismatch = Some(mismatch.clone());

        // ---- Localization (steps 16–21) -------------------------------
        // Structural suspect cone from the failing/passing output
        // split, filtered to LUTs still alive in the DUT and sorted
        // topologically (rank via one HashMap build, not a per-key
        // linear scan).
        let mut candidates: Vec<CellId> = suspect_cells(self.golden, &mismatch);
        outcome.initial_suspects = candidates.len();
        let order = self.golden.topo_order()?;
        let rank: HashMap<CellId, usize> = order.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let rank_of = |c: CellId| rank.get(&c).copied().unwrap_or(usize::MAX);
        candidates.retain(|&c| {
            self.td
                .netlist
                .cell(c)
                .map(|cell| cell.lut_function().is_some())
                .unwrap_or(false)
        });
        candidates.sort_by_key(|&c| rank_of(c));
        self.emit(DebugEvent::SuspectsComputed {
            structural: outcome.initial_suspects,
            candidates: candidates.len(),
        });

        self.strategy.begin(self.golden, &candidates);
        let mut eco_no = 0usize;
        loop {
            let batch = self.strategy.next_taps();
            if batch.is_empty() {
                break;
            }
            // Insert observation taps for this batch (a real ECO).
            let mut added = Vec::new();
            let mut tapped: Vec<(CellId, NetId)> = Vec::new();
            for &cell in &batch {
                let net = self.td.netlist.cell_output(cell)?;
                let name = format!("dbg{eco_no}_{}", cell.index());
                let rep = insert_observation_tap(&mut self.td.netlist, net, &name, false)?;
                added.extend(rep.added.iter().copied());
                tapped.push((cell, net));
                outcome.taps_inserted += 1;
            }
            let removals: Vec<netlist::EcoOp> = added
                .iter()
                .map(|&cell| netlist::EcoOp::RemoveCell { cell })
                .collect();
            let phys = match self.flow.reimplement(self.td, &batch, &added) {
                Ok(phys) => phys,
                Err(e) => {
                    // The flow restored placement/routing; retire the
                    // just-inserted taps too so the netlist matches
                    // and the caller can retry on a consistent design.
                    netlist::eco::apply_all(&mut self.td.netlist, &removals)?;
                    return Err(e);
                }
            };
            outcome
                .ledger
                .charge(Phase::Localize, phys.effort, phys.affected.tiles.len());
            self.emit(DebugEvent::TapEco {
                cells: batch.clone(),
                effort: phys.effort,
            });
            eco_no += 1;

            // Re-emulate up to the failing stimulus with golden-side
            // full visibility; record which tapped nets diverge at the
            // earliest diverging cycle.
            let observations = self.observe_taps(&tapped, mismatch.pattern_index, &rank_of)?;
            self.emit(DebugEvent::Observed {
                diverging: observations
                    .iter()
                    .filter(|o| o.diverged)
                    .map(|o| o.cell)
                    .collect(),
            });

            // Retire this batch's observation taps: visibility
            // instruments are temporary, and pads are scarce —
            // accumulating one PO per tapped cell exhausts the
            // device's IOB sites on small designs. The physical
            // cleanup (stale pad placement, dangling route fragment)
            // is folded into the next ECO's re-implementation.
            netlist::eco::apply_all(&mut self.td.netlist, &removals)?;

            self.strategy.observe(&observations);
        }
        outcome.localized = self.strategy.localized();
        self.emit(DebugEvent::Localized {
            cell: outcome.localized,
        });

        // ---- Controllability confirmation (§4.1) ----------------------
        // Before committing to a fix, force the suspect's output to
        // the golden value through an inserted control point: if the
        // DUT then matches, the error is contained in that cell.
        if self.confirm_with_control {
            if let Some(suspect) = outcome.localized {
                let confirmed = self.confirm_with_control_point(suspect, &mut outcome)?;
                outcome.confirmed_by_control = confirmed;
                self.emit(DebugEvent::Confirmed {
                    cell: suspect,
                    confirmed,
                });
            }
        }

        // ---- Correction (steps 11–15, 17–21) ---------------------------
        let fix = sim::inject::repair_op(error);
        let rep = netlist::eco::apply(&mut self.td.netlist, &fix)?;
        let phys = self.flow.reimplement(self.td, &rep.touched(), &[])?;
        outcome
            .ledger
            .charge(Phase::Correct, phys.effort, phys.affected.tiles.len());

        // Confirmation emulation: observation taps were already
        // retired per batch, but the DUT may still carry extra PIs
        // (the §4.1 control point's force inputs and mux), so compare
        // by pairing the golden primary outputs with their same-named
        // DUT cells.
        outcome.repaired = self.confirm_repair()?;
        self.emit(DebugEvent::Corrected {
            repaired: outcome.repaired,
        });

        outcome.effort = outcome.ledger.total();
        outcome.tiles_cleared = outcome.ledger.total_tiles_cleared();
        outcome.ecos = outcome.ledger.total_ecos();
        Ok(outcome)
    }

    /// Runs a multi-error campaign: for each seed, plants one random
    /// error, debugs it to repair, and moves on. Iterations whose
    /// error escapes detection (possible under LFSR stimulus on deep
    /// sequential state) are silently reverted at the netlist level so
    /// later iterations start from a clean DUT.
    ///
    /// # Errors
    ///
    /// Propagates injection and flow failures.
    pub fn run_campaign(&mut self, seeds: &[u64]) -> Result<CampaignOutcome, TilingError> {
        let mut campaign = CampaignOutcome::default();
        for (iteration, &seed) in seeds.iter().enumerate() {
            let error = sim::inject::random_error(&mut self.td.netlist, seed)?;
            self.emit(DebugEvent::ErrorInjected {
                iteration,
                cell: error.cell,
            });
            let outcome = self.run(&error)?;
            if outcome.mismatch.is_none() {
                // Undetected: revert the netlist edit (no physical ECO
                // — a LUT-function change does not move cells or nets).
                netlist::eco::apply(&mut self.td.netlist, &sim::inject::repair_op(&error))?;
            }
            campaign.ledger.merge(&outcome.ledger);
            campaign.iterations.push(outcome);
        }
        Ok(campaign)
    }

    /// Emulates patterns up to (and including) the failing stimulus;
    /// at the first cycle where any tapped net diverges, records each
    /// tap's verdict and stops.
    fn observe_taps(
        &mut self,
        tapped: &[(CellId, NetId)],
        upto_pattern: usize,
        rank_of: &dyn Fn(CellId) -> usize,
    ) -> Result<Vec<TapObservation>, TilingError> {
        let mut gsim = Simulator::new(self.golden)?;
        let mut dsim = Simulator::new(&self.td.netlist)?;
        let pats: Vec<Vec<bool>> = self
            .patterns_for(self.golden)
            .take(upto_pattern + 1)
            .collect();
        let sequential = self.golden.is_sequential();
        let mut verdicts: Vec<TapObservation> = tapped
            .iter()
            .map(|&(cell, _)| TapObservation {
                cell,
                diverged: false,
            })
            .collect();
        'cycles: for pat in &pats {
            gsim.set_inputs(pat);
            dsim.set_inputs(pat);
            gsim.comb_eval();
            dsim.comb_eval();
            let mut any = false;
            for (k, &(_, net)) in tapped.iter().enumerate() {
                if gsim.net_value(net) != dsim.net_value(net) {
                    verdicts[k].diverged = true;
                    any = true;
                }
            }
            if any {
                break 'cycles;
            }
            if sequential {
                gsim.step();
                dsim.step();
            }
        }
        // Strategies receive observations topologically sorted, like
        // the suspect list itself.
        verdicts.sort_by_key(|o| rank_of(o.cell));
        Ok(verdicts)
    }

    /// Inserts a control point on the suspect's output net (an ECO
    /// through the session flow), then re-emulates with the override
    /// enabled and driven to the golden value every cycle. Returns
    /// true if the DUT's original outputs then match the golden model.
    ///
    /// Like observation taps, the control point is *retired* at the
    /// netlist level afterwards (the physical cleanup folds into the
    /// correction ECO that follows), so successive campaign
    /// iterations start from an uninstrumented DUT.
    fn confirm_with_control_point(
        &mut self,
        suspect: CellId,
        outcome: &mut DebugOutcome,
    ) -> Result<bool, TilingError> {
        let net = self.td.netlist.cell_output(suspect)?;
        let cp = insert_control_point(&mut self.td.netlist, net, "cpconfirm")?;
        let phys = match self.flow.reimplement(self.td, &[suspect], &cp.report.added) {
            Ok(phys) => phys,
            Err(e) => {
                // The flow restored placement/routing; retire the
                // control point too so the netlist matches and the
                // caller can retry on a consistent design.
                self.retire_control_point(&cp, net)?;
                return Err(e);
            }
        };
        outcome
            .ledger
            .charge(Phase::Confirm, phys.effort, phys.affected.tiles.len());

        let confirmed = {
            let mut gsim = Simulator::new(self.golden)?;
            let mut dsim = Simulator::new(&self.td.netlist)?;
            // DUT inputs: golden pattern, then [force_val, force_en]
            // (the two new PIs append to the input order).
            assert_eq!(
                dsim.num_inputs(),
                gsim.num_inputs() + 2,
                "control point adds two PIs"
            );
            let pairs = po_pairs(self.golden, &self.td.netlist)?;
            let sequential = self.golden.is_sequential();
            let mut matched = true;
            for pat in self.patterns_for(self.golden).take(256) {
                gsim.set_inputs(&pat);
                gsim.comb_eval();
                let forced = gsim.net_value(net);
                let mut dpat = pat.clone();
                dpat.push(forced); // force_val
                dpat.push(true); // force_en
                dsim.set_inputs(&dpat);
                dsim.comb_eval();
                let g = gsim.outputs();
                let d = dsim.outputs();
                if pairs.iter().any(|&(gk, dk)| g[gk] != d[dk]) {
                    matched = false;
                    break;
                }
                if sequential {
                    gsim.step();
                    dsim.step();
                }
            }
            matched
        };

        self.retire_control_point(&cp, net)?;
        Ok(confirmed)
    }

    /// Retires a control point: rewires the mux's sinks back to the
    /// original net, then removes the mux and its two force PIs.
    fn retire_control_point(
        &mut self,
        cp: &sim::testlogic::ControlPoint,
        net: NetId,
    ) -> Result<(), TilingError> {
        let mux_net = self.td.netlist.cell_output(cp.mux)?;
        let sinks = self.td.netlist.net(mux_net)?.sinks.clone();
        for s in &sinks {
            self.td.netlist.set_pin(s.cell, s.pin, net)?;
        }
        let removals: Vec<netlist::EcoOp> = [cp.mux, cp.force_value, cp.force_enable]
            .iter()
            .map(|&cell| netlist::EcoOp::RemoveCell { cell })
            .collect();
        netlist::eco::apply_all(&mut self.td.netlist, &removals)?;
        Ok(())
    }

    /// Re-emulates and checks that every *original* primary output now
    /// matches (the DUT has extra PIs/POs from debug instrumentation,
    /// so a plain output-vector compare would be misaligned).
    fn confirm_repair(&self) -> Result<bool, TilingError> {
        let mut gsim = Simulator::new(self.golden)?;
        let mut dsim = Simulator::new(&self.td.netlist)?;
        let pairs = po_pairs(self.golden, &self.td.netlist)?;
        let sequential = self.golden.is_sequential();
        for pat in self.patterns_for(self.golden) {
            gsim.set_inputs(&pat);
            // The DUT may have grown extra PIs (control points); drive
            // them inactive.
            let mut dpat = pat.clone();
            dpat.resize(dsim.num_inputs(), false);
            dsim.set_inputs(&dpat);
            gsim.comb_eval();
            dsim.comb_eval();
            let g = gsim.outputs();
            let d = dsim.outputs();
            if pairs.iter().any(|&(gk, dk)| g[gk] != d[dk]) {
                return Ok(false);
            }
            if sequential {
                gsim.step();
                dsim.step();
            }
        }
        Ok(true)
    }
}

/// Pairs golden primary outputs with the DUT cells of the same name
/// (the DUT accumulates extra observation outputs during debug).
fn po_pairs(golden: &Netlist, dut: &Netlist) -> Result<Vec<(usize, usize)>, TilingError> {
    let gpos = golden.primary_outputs();
    let dpos = dut.primary_outputs();
    let mut pairs = Vec::with_capacity(gpos.len());
    for (k, &gpo) in gpos.iter().enumerate() {
        let name = &golden.cell(gpo)?.name;
        if let Some(dpo) = dut.find_cell(name) {
            if let Some(dk) = dpos.iter().position(|&c| c == dpo) {
                pairs.push((k, dk));
            }
        }
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{implement, TilingOptions};
    use crate::strategy::BinarySearch;
    use sim::inject::random_error;
    use synth::PaperDesign;

    #[test]
    fn session_with_binary_search_repairs_9sym() {
        let bundle = PaperDesign::NineSym.generate().unwrap();
        let golden = bundle.netlist.clone();
        let mut td = implement(bundle.netlist, bundle.hierarchy, TilingOptions::fast(9)).unwrap();
        let err = random_error(&mut td.netlist, 4321).unwrap();
        let mut events = Vec::new();
        let out = DebugSession::new(&mut td, &golden)
            .strategy(BinarySearch::new())
            .seed(42)
            .on_event(|e| events.push(format!("{e:?}")))
            .run(&err)
            .unwrap();
        assert!(out.mismatch.is_some());
        assert!(out.repaired);
        assert_eq!(out.strategy, "binary_search");
        assert_eq!(out.flow, "tiled");
        assert!(td.routing.is_feasible());
        // The event stream traces the whole iteration.
        assert!(events.iter().any(|e| e.contains("Detected")));
        assert!(events.iter().any(|e| e.contains("TapEco")));
        assert!(events.iter().any(|e| e.contains("Corrected")));
        // Ledger phases reconcile with the flat counters.
        assert_eq!(out.effort, out.ledger.total());
        assert_eq!(out.ecos, out.ledger.total_ecos());
        assert!(out.ledger.phase(Phase::Localize).ecos >= 1);
        assert_eq!(out.ledger.phase(Phase::Correct).ecos, 1);
    }

    #[test]
    fn campaign_repairs_successive_errors() {
        let bundle = PaperDesign::NineSym.generate().unwrap();
        let golden = bundle.netlist.clone();
        let mut td = implement(bundle.netlist, bundle.hierarchy, TilingOptions::fast(11)).unwrap();
        let campaign = DebugSession::new(&mut td, &golden)
            .seed(7)
            .run_campaign(&[1001, 2002])
            .unwrap();
        assert_eq!(campaign.iterations.len(), 2);
        assert!(campaign.all_repaired());
        assert!(campaign.total_effort().total() > 0);
        assert!(td.routing.is_feasible());
        // The DUT really is clean at the end.
        let m =
            first_mismatch(&golden, &td.netlist, PatternSpec::Auto.generate(&golden, 7)).unwrap();
        assert!(m.is_none(), "campaign left a live bug behind");
    }
}

//! The global flow (paper §3.1 steps 1–8): implement a design with
//! resource slack, draw tile boundaries, lock interfaces.

use std::sync::Arc;

use fpga::{DelayModel, Device, Placement, Routing, RoutingGraph, TimingReport};
use netlist::{CellId, Hierarchy, NetId, Netlist};
use place::{Constraints, PlacerConfig};
use route::RouteOptions;

use crate::effort::CadEffort;
use crate::error::TilingError;
use crate::partition::partition;
use crate::tile::{TileId, TilePlan};

/// Options for the tiled implementation flow.
#[derive(Debug, Clone)]
pub struct TilingOptions {
    /// Spare logic capacity to leave for future insertion (paper
    /// step 5's user-controlled parameter; Table 1 uses ~20%).
    pub overhead: f64,
    /// Number of tiles to partition into (the paper's worked examples
    /// use ten).
    pub target_tiles: usize,
    /// Routing channel width.
    pub tracks: u16,
    /// Annealer schedule.
    pub placer: PlacerConfig,
    /// Router parameters.
    pub router: RouteOptions,
    /// Move cells out of over-full tiles after partitioning so every
    /// tile keeps slack (paper step 5 is per-tile, not just global).
    pub enforce_tile_slack: bool,
    /// Try the truly incremental ECO path first: keep every surviving
    /// placement and route installed, place only added logic, and
    /// route only the missing connections (seeding the router with the
    /// surviving trees). Falls back to tile-clearing on congestion or
    /// placement failure. Disable to always clear affected tiles.
    pub incremental_routing: bool,
}

impl Default for TilingOptions {
    fn default() -> Self {
        Self {
            overhead: 0.20,
            target_tiles: 10,
            tracks: 10,
            placer: PlacerConfig::default(),
            router: RouteOptions::default(),
            enforce_tile_slack: true,
            incremental_routing: true,
        }
    }
}

impl TilingOptions {
    /// Light-effort options for tests: a short annealing schedule
    /// compensated by a slightly wider channel (low placement quality
    /// costs routability).
    pub fn fast(seed: u64) -> Self {
        Self {
            tracks: 12,
            placer: PlacerConfig::fast(seed),
            router: RouteOptions {
                max_iterations: 30,
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// A fully implemented, tiled design: the object every debugging
/// iteration operates on.
///
/// The artifacts that are immutable after [`implement`] — the device,
/// its routing-resource graph, the tile plan, and the hierarchy — are
/// held behind [`Arc`]s, so cloning a `TiledDesign` (one clone per
/// fleet campaign) shares them instead of duplicating them; only the
/// ECO-mutated state (netlist, placement, routing) is deep-copied.
/// Every flow reads these fields through deref coercion, which is why
/// the `Arc` wrappers stay invisible at call sites.
#[derive(Debug, Clone)]
pub struct TiledDesign {
    /// The mapped netlist (mutated by ECOs).
    pub netlist: Netlist,
    /// Module hierarchy with back-annotation links (shared, immutable
    /// after implement).
    pub hierarchy: Arc<Hierarchy>,
    /// The slack-sized device (shared, immutable after implement).
    pub device: Arc<Device>,
    /// Its routing-resource graph (shared, immutable after
    /// implement — the heaviest artifact a fleet would otherwise
    /// clone per campaign).
    pub rrg: Arc<RoutingGraph>,
    /// Tile boundaries (shared, immutable after implement; tiles are
    /// unlocked transiently by flows via placement/routing state, not
    /// by mutating the plan).
    pub plan: Arc<TilePlan>,
    /// Current placement.
    pub placement: Placement,
    /// Current routing.
    pub routing: Routing,
    /// Effort of the initial full implementation (the Figure 5
    /// denominator's sibling: one full re-place-and-route).
    pub initial_effort: CadEffort,
    /// The options the design was implemented with.
    pub options: TilingOptions,
}

impl TiledDesign {
    /// Area overhead of the tiled layout: device CLB capacity over
    /// used CLBs, minus one (Table 1's `area overhead` column).
    pub fn area_overhead(&self) -> f64 {
        let used = self.netlist.stats().clb_estimate().max(1);
        self.device.num_clbs() as f64 / used as f64 - 1.0
    }

    /// Post-route static timing.
    ///
    /// # Errors
    ///
    /// Propagates combinational-loop detection.
    pub fn timing(&self) -> Result<TimingReport, TilingError> {
        Ok(TimingReport::analyze_routed(
            &self.netlist,
            &self.device,
            &self.placement,
            &self.routing,
            &self.rrg,
            &DelayModel::default(),
        )?)
    }

    /// Free CLBs in one tile.
    ///
    /// # Errors
    ///
    /// Returns [`TilingError::UnknownTile`] on bad ids.
    pub fn free_clbs(&self, tile: TileId) -> Result<usize, TilingError> {
        Ok(self.plan.usage(tile, &self.placement)?.free_clbs())
    }

    /// Total free CLBs across all tiles.
    pub fn total_free_clbs(&self) -> usize {
        self.plan
            .iter()
            .filter_map(|(id, _)| self.free_clbs(id).ok())
            .sum()
    }

    /// Average tile size in *used* CLBs (the paper quotes tile sizes
    /// this way: "ten tiles that average 23.5 CLBs" for s9234).
    pub fn mean_used_clbs_per_tile(&self) -> f64 {
        let used: usize = self
            .plan
            .iter()
            .filter_map(|(id, _)| self.plan.usage(id, &self.placement).ok())
            .map(|u| u.used_clbs())
            .sum();
        used as f64 / self.plan.len().max(1) as f64
    }
}

/// Drops physical state that refers to netlist-deleted objects:
/// placements of removed cells (retired observation taps and control
/// points) and routes of removed nets. Every re-implementation flow
/// calls this before touching placement or routing, so instrument
/// retirement folds into the next ECO regardless of which flow runs
/// it.
pub(crate) fn drop_stale_physical_state(td: &mut TiledDesign) {
    let stale: Vec<CellId> = td
        .placement
        .iter()
        .map(|(c, _)| c)
        .filter(|&c| td.netlist.cell(c).is_err())
        .collect();
    for c in stale {
        let _ = td.placement.unplace(c);
    }
    let dead: Vec<NetId> = td
        .routing
        .iter()
        .map(|(n, _)| n)
        .filter(|&n| td.netlist.net(n).is_err())
        .collect();
    for n in dead {
        td.routing.clear_route(n);
    }
}

/// Implements a design: place with slack, route, partition, lock.
///
/// This is paper steps 1–8. The returned [`TiledDesign`] has every
/// interface locked by construction (locking is the *default*; tiles
/// are unlocked only while an ECO clears them).
///
/// # Errors
///
/// Propagates device-sizing, placement, and routing failures.
pub fn implement(
    netlist: Netlist,
    hierarchy: Hierarchy,
    options: TilingOptions,
) -> Result<TiledDesign, TilingError> {
    let stats = netlist.stats();
    let device = Device::for_design(
        stats.luts,
        stats.ffs,
        stats.inputs + stats.outputs,
        options.overhead,
        options.tracks,
    )?;
    let rrg = RoutingGraph::new(&device);

    // Step 5: place-and-route with resource slack.
    let outcome = place::run_placer(
        &netlist,
        &device,
        &Constraints::free(),
        None,
        &options.placer,
    )?;
    let mut placement = outcome.placement;
    let mut effort = CadEffort {
        place_moves: outcome.moves_evaluated,
        route_expansions: 0,
    };

    // Step 6: draw tile boundaries (cut-minimizing).
    let plan = partition(&netlist, &device, &placement, options.target_tiles);

    // Per-tile slack enforcement: relocate cells out of tiles that
    // kept less than half the slack budget.
    if options.enforce_tile_slack {
        rebalance(&netlist, &device, &plan, &mut placement, options.overhead)?;
    }

    // Route the full design (completes step 5's "and-route").
    let mut routing = Routing::new(rrg.num_nodes());
    let rstats = route::route_design(&netlist, &placement, &rrg, &mut routing, &options.router)?;
    effort.route_expansions = rstats.expansions;
    // Normalize trees so `sink_delay(k)` is exact for branched nets.
    let all_nets: Vec<netlist::NetId> = netlist.nets().map(|(id, _)| id).collect();
    route::normalize_routes(&netlist, &placement, &rrg, &mut routing, all_nets);

    // Steps 7–8: interfaces are locked by default from here on; the
    // ECO flow (crate::eco_flow) is the only code that unlocks tiles.
    Ok(TiledDesign {
        netlist,
        hierarchy: Arc::new(hierarchy),
        device: Arc::new(device),
        rrg: Arc::new(rrg),
        plan: Arc::new(plan),
        placement,
        routing,
        initial_effort: effort,
        options,
    })
}

/// Moves cells out of over-utilized tiles into adjacent slack until
/// every tile keeps at least `overhead / 2` of its capacity free.
fn rebalance(
    nl: &Netlist,
    device: &Device,
    plan: &TilePlan,
    placement: &mut Placement,
    overhead: f64,
) -> Result<(), TilingError> {
    let _ = device;
    for _ in 0..4 * plan.len() {
        // Find the most over-utilized tile.
        let mut worst: Option<(TileId, usize, usize)> = None; // (tile, free, want)
        for (id, tile) in plan.iter() {
            let u = plan.usage(id, placement)?;
            let want = ((tile.capacity_clbs() as f64) * overhead / 2.0).floor() as usize;
            let free = u.free_clbs();
            if free < want {
                match worst {
                    Some((_, wf, ww)) if (ww - wf) >= (want - free) => {}
                    _ => worst = Some((id, free, want)),
                }
            }
        }
        let Some((tile, _, _)) = worst else {
            return Ok(());
        };
        // Move one cell from this tile to the adjacent tile with the
        // most slack.
        let neighbors = plan.neighbors(tile)?;
        let mut best_n: Option<(usize, TileId)> = None;
        for n in neighbors {
            let f = plan.usage(n, placement)?.free_clbs();
            if best_n.is_none_or(|(bf, _)| f > bf) {
                best_n = Some((f, n));
            }
        }
        let Some((nf, target)) = best_n else {
            return Ok(());
        };
        if nf == 0 {
            return Ok(()); // nowhere to shed load
        }
        let cells = plan.cells_in_tile(tile, nl, placement)?;
        let Some(&victim) = cells.last() else {
            return Ok(());
        };
        // Find a free compatible slot in the target tile.
        let rect = plan.tile(target)?.rect;
        let kind = &nl.cell(victim)?.kind;
        let mut moved = false;
        'scan: for c in rect.iter() {
            for slot in fpga::ClbSlot::ALL {
                let ok = match kind {
                    netlist::CellKind::Lut(_) => slot.is_lut(),
                    netlist::CellKind::Ff { .. } => slot.is_ff(),
                    _ => false,
                };
                if !ok {
                    continue;
                }
                let loc = fpga::BelLoc::Clb { coord: c, slot };
                if placement.is_free(loc) {
                    placement
                        .place(victim, loc)
                        .map_err(|_| TilingError::UnknownTile(target.index()))?;
                    moved = true;
                    break 'scan;
                }
            }
        }
        if !moved {
            return Ok(());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use synth::PaperDesign;

    fn implement_9sym() -> TiledDesign {
        let bundle = PaperDesign::NineSym.generate().unwrap();
        implement(bundle.netlist, bundle.hierarchy, TilingOptions::fast(7)).unwrap()
    }

    #[test]
    fn implement_produces_feasible_layout() {
        let td = implement_9sym();
        assert!(td.routing.is_feasible());
        assert!(td.routing.num_routed() > 0);
        assert!(td.initial_effort.total() > 0);
        // target_tiles = 10; the aspect-matched grid may round up.
        assert!(
            (10..=14).contains(&td.plan.len()),
            "{} tiles",
            td.plan.len()
        );
    }

    #[test]
    fn area_overhead_near_target() {
        let td = implement_9sym();
        let oh = td.area_overhead();
        // Square-grid rounding makes the overhead land at or a bit
        // above the requested 20%.
        assert!((0.18..=0.40).contains(&oh), "overhead {oh}");
    }

    #[test]
    fn tiles_keep_slack() {
        let td = implement_9sym();
        let mut starved = 0;
        for (id, tile) in td.plan.iter() {
            let free = td.free_clbs(id).unwrap();
            let want = ((tile.capacity_clbs() as f64) * td.options.overhead / 2.0).floor() as usize;
            if free < want {
                starved += 1;
            }
        }
        assert!(starved <= 2, "{starved} tiles below half the slack budget");
    }

    #[test]
    fn timing_is_positive_and_finite() {
        let td = implement_9sym();
        let t = td.timing().unwrap();
        assert!(t.critical_ns > 0.0);
        assert!(t.critical_ns < 1000.0);
    }
}

//! Pluggable localization strategies for the debug loop.
//!
//! Localization (paper §3.1 steps 16–21) pins the error site down by
//! inserting observation taps — each insertion is a real physical ECO
//! — and re-emulating. *Which* cells to tap, and how the suspect set
//! narrows after each observation, is the [`LocalizationStrategy`]'s
//! decision:
//!
//! * [`LinearBatches`] walks the topologically-sorted suspect cone in
//!   fixed-size batches (the paper's flow; 8 taps per ECO);
//! * [`BinarySearch`] bisects the cone by fanin containment, cutting
//!   tap ECOs from `O(n/8)` to `O(log n)`.
//!
//! Strategies never see raw tap wires: every observation lands in the
//! shared [`EvidenceBase`] as a divergence onset, and a strategy reads
//! the verdicts for the cells it requested under its own
//! [`ObservationWindow`] — so one physical measurement serves every
//! consumer, serial or concurrent, each at its own window. The session
//! owns emulation and the physical flow; strategies are pure decision
//! logic, so they can also be exercised against a simulated oracle
//! (see the seed-sweep tests).

use std::collections::HashMap;

use netlist::{CellId, Netlist};

use crate::diagnosis::evidence::{EvidenceBase, ObservationWindow};

/// Decides which suspects to tap next and narrows on evidence.
///
/// Protocol: [`begin`](LocalizationStrategy::begin) once with the
/// topologically-sorted suspect cone, then alternate
/// [`next_taps`](LocalizationStrategy::next_taps) (empty = finished)
/// and [`observe`](LocalizationStrategy::observe) — the caller
/// records the physical measurements into the [`EvidenceBase`] and
/// the strategy reads its requested cells' verdicts from it;
/// [`localized`](LocalizationStrategy::localized) yields the answer.
///
/// ```
/// use netlist::{Netlist, TruthTable};
/// use tiling::diagnosis::evidence::{EvidenceBase, ObservationWindow};
/// use tiling::strategy::{LinearBatches, LocalizationStrategy};
///
/// // A 3-LUT inverter chain; pretend the middle cell is the bug.
/// let mut nl = Netlist::new("chain");
/// let pi = nl.add_input("a").unwrap();
/// let mut net = nl.cell_output(pi).unwrap();
/// let mut cells = Vec::new();
/// for k in 0..3 {
///     let c = nl
///         .add_lut(format!("inv{k}"), TruthTable::not(), &[net])
///         .unwrap();
///     net = nl.cell_output(c).unwrap();
///     cells.push(c);
/// }
/// let mut strat = LinearBatches::new(2);
/// strat.begin(&nl, &cells);
/// let taps = strat.next_taps();
/// assert_eq!(taps, vec![cells[0], cells[1]]);
/// let mut evidence = EvidenceBase::new();
/// evidence.record(cells[0], None);    // clean across the sweep
/// evidence.record(cells[1], Some(0)); // diverges from pattern 0
/// strat.observe(&evidence, &ObservationWindow::whole_sweep());
/// assert!(strat.next_taps().is_empty());
/// assert_eq!(strat.localized(), Some(cells[1]));
/// ```
/// (The `Send` supertrait is load-bearing: campaign fleets move
/// boxed strategies across worker threads, so a strategy that stops
/// being `Send` must fail the build — see the compile-time assertions
/// in [`crate::session`] — not the fleet.)
pub trait LocalizationStrategy: Send {
    /// Short stable name for reports ("linear", "binary_search").
    fn name(&self) -> &'static str;

    /// A new instance with the same configuration and no state.
    /// Multi-error diagnosis ([`crate::diagnosis`]) runs one strategy
    /// instance per suspected error, all cloned from the session's.
    fn fresh(&self) -> Box<dyn LocalizationStrategy>;

    /// Resets the strategy with a fresh suspect cone, topologically
    /// sorted earliest-first. `golden` is the reference netlist
    /// (cone-aware strategies query its structure).
    fn begin(&mut self, golden: &Netlist, suspects: &[CellId]);

    /// Cells to tap in the next observation ECO. Empty means the
    /// strategy is finished — consult
    /// [`localized`](LocalizationStrategy::localized).
    fn next_taps(&mut self) -> Vec<CellId>;

    /// Reads the verdicts for the cells returned by the last
    /// [`next_taps`](LocalizationStrategy::next_taps) call from the
    /// evidence base, each evaluated under `window` (a missing
    /// verdict reads as "did not diverge").
    fn observe(&mut self, evidence: &EvidenceBase, window: &ObservationWindow);

    /// The identified error site, if the strategy has converged.
    fn localized(&self) -> Option<CellId>;
}

impl<T: LocalizationStrategy + ?Sized> LocalizationStrategy for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn fresh(&self) -> Box<dyn LocalizationStrategy> {
        (**self).fresh()
    }

    fn begin(&mut self, golden: &Netlist, suspects: &[CellId]) {
        (**self).begin(golden, suspects);
    }

    fn next_taps(&mut self) -> Vec<CellId> {
        (**self).next_taps()
    }

    fn observe(&mut self, evidence: &EvidenceBase, window: &ObservationWindow) {
        (**self).observe(evidence, window);
    }

    fn localized(&self) -> Option<CellId> {
        (**self).localized()
    }
}

/// One cell's windowed verdict, read back the way every strategy does.
fn diverged(evidence: &EvidenceBase, window: &ObservationWindow, cell: CellId) -> bool {
    evidence
        .verdict(cell, window.for_cell(cell))
        .unwrap_or(false)
}

/// Today's paper flow, extracted: tap the sorted suspect cone in
/// fixed-size batches; the first batch containing a diverging cell
/// ends the search, and the order-earliest diverging cell in it is
/// the error site (all of its fanins agree — otherwise an earlier
/// cell would diverge).
#[derive(Debug, Clone)]
pub struct LinearBatches {
    batch: usize,
    suspects: Vec<CellId>,
    cursor: usize,
    /// Cells handed out by the last `next_taps` (the ones `observe`
    /// reads back), in request order.
    pending: Vec<CellId>,
    found: Option<CellId>,
    done: bool,
}

impl LinearBatches {
    /// Batch size used by the paper-shaped default flow.
    pub const DEFAULT_BATCH: usize = 8;

    /// A strategy tapping `batch` cells per observation ECO.
    ///
    /// # Panics
    ///
    /// Panics on a zero batch size.
    pub fn new(batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        Self {
            batch,
            suspects: Vec::new(),
            cursor: 0,
            pending: Vec::new(),
            found: None,
            done: false,
        }
    }
}

impl Default for LinearBatches {
    fn default() -> Self {
        Self::new(Self::DEFAULT_BATCH)
    }
}

impl LocalizationStrategy for LinearBatches {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn fresh(&self) -> Box<dyn LocalizationStrategy> {
        Box::new(Self::new(self.batch))
    }

    fn begin(&mut self, _golden: &Netlist, suspects: &[CellId]) {
        self.suspects = suspects.to_vec();
        self.cursor = 0;
        self.pending = Vec::new();
        self.found = None;
        self.done = false;
    }

    fn next_taps(&mut self) -> Vec<CellId> {
        if self.done || self.cursor >= self.suspects.len() {
            return Vec::new();
        }
        let end = (self.cursor + self.batch).min(self.suspects.len());
        let batch = self.suspects[self.cursor..end].to_vec();
        self.cursor = end;
        self.pending = batch.clone();
        batch
    }

    fn observe(&mut self, evidence: &EvidenceBase, window: &ObservationWindow) {
        // The batch preserves the suspect order, so the first
        // diverging cell is the (temporally/topologically) earliest.
        let pending = std::mem::take(&mut self.pending);
        if let Some(&hit) = pending.iter().find(|&&c| diverged(evidence, window, c)) {
            self.found = Some(hit);
            self.done = true;
        }
    }

    fn localized(&self) -> Option<CellId> {
        self.found
    }
}

/// Bisects the suspect cone: tap one probe cell per ECO, chosen so
/// its fanin cone splits the remaining window as evenly as possible.
///
/// A diverging probe proves the error lies in the probe's fanin cone
/// (`window ∩ cone⁺(probe)`); a matching probe rules that cone out
/// (`window ∖ cone⁺(probe)`). Either way the window shrinks
/// geometrically, so tap ECOs drop from `O(n/8)` to `O(log n)` — at
/// one tap per ECO, both taps *and* ECOs beat [`LinearBatches`] once
/// the cone spans several batches.
///
/// The matching-probe deduction assumes the error's effect is *not*
/// value-masked between the error site and the probe on every
/// observed stimulus. That is a strictly stronger assumption than
/// [`LinearBatches`] needs (linear taps every suspect, including the
/// error cell itself, so intermediate masking cannot hide it): on
/// reconvergent logic a masked probe can make bisection discard the
/// true site and finish with `localized() == None`. The session
/// treats an unlocalized iteration the same way in both strategies —
/// confirmation is skipped and the corrective ECO proceeds — so the
/// trade is ECO count versus masking robustness.
#[derive(Debug, Clone, Default)]
pub struct BinarySearch {
    /// The suspect cone, topologically sorted (fixed at `begin`).
    suspects: Vec<CellId>,
    /// `cones[i]` = bitset over suspect indices of
    /// `cone⁺(suspects[i]) ∩ suspects` (fanin cone plus the cell
    /// itself). A bitset row is `⌈n/64⌉` words, so the full table is
    /// `n²/64` bits — small even for thousand-cell cones.
    cones: Vec<Vec<u64>>,
    /// Remaining candidate indices into `suspects`, ascending.
    window: Vec<usize>,
    probe: Option<usize>,
    found: Option<CellId>,
    done: bool,
}

impl BinarySearch {
    /// A fresh bisection strategy.
    pub fn new() -> Self {
        Self::default()
    }

    fn in_cone(&self, probe: usize, candidate: usize) -> bool {
        self.cones[probe][candidate / 64] >> (candidate % 64) & 1 == 1
    }
}

impl LocalizationStrategy for BinarySearch {
    fn name(&self) -> &'static str {
        "binary_search"
    }

    fn fresh(&self) -> Box<dyn LocalizationStrategy> {
        Box::new(Self::new())
    }

    fn begin(&mut self, golden: &Netlist, suspects: &[CellId]) {
        self.suspects = suspects.to_vec();
        let index_of: HashMap<CellId, usize> =
            suspects.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let words = suspects.len().div_ceil(64);
        self.cones = suspects
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let mut row = vec![0u64; words];
                for x in golden.fanin_cone(&[c]) {
                    if let Some(&k) = index_of.get(&x) {
                        row[k / 64] |= 1 << (k % 64);
                    }
                }
                row[i / 64] |= 1 << (i % 64);
                row
            })
            .collect();
        self.window = (0..suspects.len()).collect();
        self.probe = None;
        self.found = None;
        self.done = false;
    }

    fn next_taps(&mut self) -> Vec<CellId> {
        if self.done || self.found.is_some() || self.window.is_empty() {
            return Vec::new();
        }
        if self.window.len() == 1 {
            // Confirmation probe on the last candidate.
            self.probe = Some(self.window[0]);
            return vec![self.suspects[self.window[0]]];
        }
        // Most balanced split: |cone⁺(m) ∩ window| closest to half.
        // The topologically-earliest element always splits off exactly
        // one cell, so a proper (shrinking) split always exists.
        let half = self.window.len() as i64;
        let m = self
            .window
            .iter()
            .copied()
            .min_by_key(|&c| {
                let split = self.window.iter().filter(|&&w| self.in_cone(c, w)).count() as i64;
                (2 * split - half).abs()
            })
            .expect("window is non-empty");
        self.probe = Some(m);
        vec![self.suspects[m]]
    }

    fn observe(&mut self, evidence: &EvidenceBase, obs_window: &ObservationWindow) {
        let Some(probe) = self.probe.take() else {
            return;
        };
        let probe_cell = self.suspects[probe];
        if diverged(evidence, obs_window, probe_cell) {
            if self.window.len() == 1 {
                self.found = Some(probe_cell);
                self.done = true;
                return;
            }
            let before = self.window.len();
            let cones = &self.cones;
            self.window
                .retain(|&c| cones[probe][c / 64] >> (c % 64) & 1 == 1);
            if self.window.len() == before && before > 1 {
                // No shrink: every remaining candidate is in the
                // probe's cone. Since the probe is the most balanced
                // split available, that means every candidate covers
                // the whole window — a cycle through FF feedback
                // (fanin cones traverse registers), where each suspect
                // explains every other. Bisection cannot refine inside
                // such a component; take the diverging probe as the
                // localization (control-point confirmation still
                // vets it) rather than re-probing forever.
                self.found = Some(probe_cell);
                self.done = true;
                return;
            }
            // The probe survives its own cone filter, so a window of
            // one *is* the probe — and it was just observed diverging,
            // which is exactly what the confirmation probe would
            // re-establish. Skip that redundant physical ECO.
            if self.window.len() == 1 {
                self.found = Some(probe_cell);
                self.done = true;
            }
        } else {
            if self.window.len() == 1 {
                // The last candidate does not even diverge: the error
                // is masked beyond this strategy's visibility.
                self.done = true;
                return;
            }
            let cones = &self.cones;
            self.window
                .retain(|&c| cones[probe][c / 64] >> (c % 64) & 1 == 0);
            if self.window.is_empty() {
                self.done = true;
            }
        }
    }

    fn localized(&self) -> Option<CellId> {
        self.found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::TruthTable;

    /// `len`-cell inverter chain; returns (netlist, cells in topo
    /// order).
    pub(crate) fn chain(len: usize) -> (Netlist, Vec<CellId>) {
        let mut nl = Netlist::new("chain");
        let pi = nl.add_input("a").unwrap();
        let mut net = nl.cell_output(pi).unwrap();
        let mut cells = Vec::with_capacity(len);
        for k in 0..len {
            let c = nl
                .add_lut(format!("inv{k}"), TruthTable::not(), &[net])
                .unwrap();
            net = nl.cell_output(c).unwrap();
            cells.push(c);
        }
        nl.add_output("y", net).unwrap();
        (nl, cells)
    }

    /// Drives a strategy against a perfect oracle: cell `c` diverges
    /// from pattern 0 iff the error site is in `c`'s fanin cone (true
    /// for a chain whenever `rank(c) >= err`), with every measurement
    /// recorded into a shared [`EvidenceBase`] exactly like the
    /// session does. Returns (localized, taps, ecos).
    fn run_oracle(
        strat: &mut dyn LocalizationStrategy,
        nl: &Netlist,
        cells: &[CellId],
        err: usize,
    ) -> (Option<CellId>, usize, usize) {
        strat.begin(nl, cells);
        let rank: HashMap<CellId, usize> = cells.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let window = ObservationWindow::whole_sweep();
        let mut evidence = EvidenceBase::new();
        let (mut taps, mut ecos) = (0usize, 0usize);
        loop {
            let batch = strat.next_taps();
            if batch.is_empty() {
                break;
            }
            taps += batch.len();
            ecos += 1;
            for &c in &batch {
                evidence.record(c, (rank[&c] >= err).then_some(0));
            }
            strat.observe(&evidence, &window);
            assert!(ecos <= cells.len() + 1, "strategy failed to converge");
        }
        (strat.localized(), taps, ecos)
    }

    #[test]
    fn both_strategies_localize_the_same_cell_across_seed_sweep() {
        // Seed sweep: chain lengths crossing several batch boundaries,
        // error planted at every position class.
        for len in [3usize, 8, 9, 16, 23, 40, 64] {
            let (nl, cells) = chain(len);
            for seed in 0..7u64 {
                let err = (seed as usize * 13 + 5) % len;
                let mut lin = LinearBatches::default();
                let mut bin = BinarySearch::new();
                let (l_cell, l_taps, _) = run_oracle(&mut lin, &nl, &cells, err);
                let (b_cell, b_taps, _) = run_oracle(&mut bin, &nl, &cells, err);
                assert_eq!(l_cell, Some(cells[err]), "linear, len {len} err {err}");
                assert_eq!(b_cell, l_cell, "strategies disagree, len {len} err {err}");
                if len > LinearBatches::DEFAULT_BATCH {
                    assert!(
                        b_taps < l_taps,
                        "binary {b_taps} !< linear {l_taps} taps, len {len} err {err}"
                    );
                }
            }
        }
    }

    #[test]
    fn binary_search_terminates_on_cyclic_cones() {
        // FF ring: fanin cones traverse registers, so every cell's
        // cone covers every other — no probe can split the window.
        // A diverging probe must then end the search with a
        // localization instead of re-probing the same cell forever
        // (this livelocked in release builds, where the old shrink
        // guarantee was only a debug_assert).
        let mut nl = Netlist::new("ring");
        let loopback = nl.add_net("loopback").unwrap();
        let mut cells = Vec::new();
        let mut net = loopback;
        for k in 0..4 {
            let lut = nl
                .add_lut(format!("inv{k}"), TruthTable::not(), &[net])
                .unwrap();
            net = nl.cell_output(lut).unwrap();
            let ff = nl.add_ff(format!("ff{k}"), false, net).unwrap();
            net = nl.cell_output(ff).unwrap();
            cells.push(lut);
            cells.push(ff);
        }
        let close = nl
            .add_lut_driving("close", TruthTable::not(), &[net], loopback)
            .unwrap();
        cells.push(close);
        nl.add_output("y", net).unwrap();

        let mut bin = BinarySearch::new();
        bin.begin(&nl, &cells);
        let window = ObservationWindow::whole_sweep();
        let mut evidence = EvidenceBase::new();
        let mut ecos = 0usize;
        loop {
            let batch = bin.next_taps();
            if batch.is_empty() {
                break;
            }
            ecos += 1;
            for &c in &batch {
                evidence.record(c, Some(0)); // everything diverges
            }
            bin.observe(&evidence, &window);
            assert!(ecos <= cells.len() + 1, "strategy failed to converge");
        }
        let found = bin.localized().expect("diverging ring must localize");
        assert!(cells.contains(&found));
    }

    #[test]
    fn binary_search_tap_count_is_logarithmic() {
        let (nl, cells) = chain(64);
        let mut bin = BinarySearch::new();
        let (found, taps, ecos) = run_oracle(&mut bin, &nl, &cells, 37);
        assert_eq!(found, Some(cells[37]));
        assert!(
            taps <= 8,
            "64-cell cone should need <= log2+confirm taps, got {taps}"
        );
        assert_eq!(taps, ecos, "binary search taps one cell per ECO");
    }

    #[test]
    fn windowed_verdicts_hide_out_of_window_divergence() {
        // The same evidence answers differently under different
        // windows: a divergence at pattern 6 is invisible to a
        // window-4 track, so its linear search keeps walking.
        let (nl, cells) = chain(4);
        let mut evidence = EvidenceBase::new();
        for &c in &cells {
            evidence.record(c, Some(6));
        }
        let mut early = LinearBatches::default();
        early.begin(&nl, &cells);
        let req = early.next_taps();
        assert_eq!(req.len(), 4);
        early.observe(&evidence, &ObservationWindow::flat(4));
        assert_eq!(early.localized(), None, "onsets after the window");
        let mut late = LinearBatches::default();
        late.begin(&nl, &cells);
        late.next_taps();
        late.observe(&evidence, &ObservationWindow::flat(10));
        assert_eq!(late.localized(), Some(cells[0]));
    }

    #[test]
    fn linear_exhausts_without_divergence() {
        let (nl, cells) = chain(10);
        let mut lin = LinearBatches::default();
        lin.begin(&nl, &cells);
        let evidence = EvidenceBase::new(); // no verdicts: nothing diverges
        loop {
            let batch = lin.next_taps();
            if batch.is_empty() {
                break;
            }
            lin.observe(&evidence, &ObservationWindow::whole_sweep());
        }
        assert_eq!(lin.localized(), None);
    }

    #[test]
    fn binary_handles_fully_masked_error() {
        let (nl, cells) = chain(12);
        let mut bin = BinarySearch::new();
        bin.begin(&nl, &cells);
        let evidence = EvidenceBase::new();
        let mut guard = 0;
        loop {
            let batch = bin.next_taps();
            if batch.is_empty() {
                break;
            }
            bin.observe(&evidence, &ObservationWindow::whole_sweep());
            guard += 1;
            assert!(guard <= 24, "no convergence");
        }
        assert_eq!(bin.localized(), None);
    }
}

//! Unified error type for the tiling flow.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the tiling flow.
#[derive(Debug)]
#[non_exhaustive]
pub enum TilingError {
    /// Netlist construction/editing failure.
    Netlist(netlist::NetlistError),
    /// Device sizing failure.
    Device(fpga::DeviceError),
    /// Placement failure.
    Place(place::PlaceError),
    /// Routing failure.
    Route(route::RouteError),
    /// The requested change does not fit the design's free resources.
    InsufficientSlack {
        /// CLBs requested.
        needed: usize,
        /// CLBs available across the whole device.
        available: usize,
    },
    /// A tile id is out of range.
    UnknownTile(usize),
    /// Static analysis rejected the design before the flow touched it.
    Drc {
        /// Every finding the analyzer produced (warnings included; at
        /// least one has error severity).
        findings: Vec<drc::Finding>,
    },
}

impl fmt::Display for TilingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Netlist(e) => write!(f, "netlist error: {e}"),
            Self::Device(e) => write!(f, "device error: {e}"),
            Self::Place(e) => write!(f, "placement error: {e}"),
            Self::Route(e) => write!(f, "routing error: {e}"),
            Self::InsufficientSlack { needed, available } => {
                write!(
                    f,
                    "change needs {needed} CLBs but only {available} are free"
                )
            }
            Self::UnknownTile(t) => write!(f, "unknown tile {t}"),
            Self::Drc { findings } => {
                let errors = findings
                    .iter()
                    .filter(|x| x.severity == drc::Severity::Error)
                    .count();
                write!(f, "design rejected by static analysis: {errors} error(s)")?;
                for x in findings.iter().take(4) {
                    write!(f, "; {x}")?;
                }
                if findings.len() > 4 {
                    write!(f, "; … {} more", findings.len() - 4)?;
                }
                Ok(())
            }
        }
    }
}

impl Error for TilingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Netlist(e) => Some(e),
            Self::Device(e) => Some(e),
            Self::Place(e) => Some(e),
            Self::Route(e) => Some(e),
            _ => None,
        }
    }
}

impl From<netlist::NetlistError> for TilingError {
    fn from(e: netlist::NetlistError) -> Self {
        Self::Netlist(e)
    }
}

impl From<fpga::DeviceError> for TilingError {
    fn from(e: fpga::DeviceError) -> Self {
        Self::Device(e)
    }
}

impl From<place::PlaceError> for TilingError {
    fn from(e: place::PlaceError) -> Self {
        Self::Place(e)
    }
}

impl From<route::RouteError> for TilingError {
    fn from(e: route::RouteError) -> Self {
        Self::Route(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = TilingError::InsufficientSlack {
            needed: 10,
            available: 3,
        };
        assert!(e.to_string().contains("10"));
        let e: TilingError = netlist::NetlistError::UnknownCell(netlist::CellId::new(1)).into();
        assert!(e.to_string().contains("netlist"));
        assert!(e.source().is_some());
    }
}

//! The comparison flows of Figure 5: full re-place-and-route,
//! incremental place-and-route, and Quick_ECO.
//!
//! All three run on a *clone* of the tiled design so the caller's
//! state is untouched; each returns the CAD effort the flow spends on
//! the same change the tiled flow handled.

use std::collections::BTreeSet;

use fpga::{Placement, Rect, Routing};
use netlist::{CellId, NetId};
use place::Constraints;

use crate::affected::{AffectedSet, ExpansionPolicy};
use crate::effort::CadEffort;
use crate::error::TilingError;
use crate::flow::TiledDesign;

/// Full re-place-and-route of the entire design from scratch — what a
/// flow without any change tracking must do every iteration.
///
/// # Errors
///
/// Propagates placement/routing failures.
pub fn full_replace_effort(td: &TiledDesign) -> Result<CadEffort, TilingError> {
    let out = place::place(
        &td.netlist,
        &td.device,
        &Constraints::free(),
        None,
        &td.options.placer,
    )?;
    let mut routing = Routing::new(td.rrg.num_nodes());
    let stats = route::route_design(
        &td.netlist,
        &out.placement,
        &td.rrg,
        &mut routing,
        &td.options.router,
    )?;
    Ok(CadEffort {
        place_moves: out.moves_evaluated,
        route_expansions: stats.expansions,
    })
}

/// Incremental place-and-route: no locked interfaces, so the tool
/// re-places everything inside an *inflated* window around the change
/// (it needs room to shuffle surrounding logic) and fully re-routes
/// every net that touches the window.
///
/// `margin` is the inflation in CLBs on each side (2 by default in the
/// benches; bigger changes disturb more of their surroundings).
///
/// # Errors
///
/// Propagates placement/routing failures.
pub fn incremental_effort(
    td: &TiledDesign,
    seeds: &[CellId],
    extra_clbs: usize,
    margin: u16,
) -> Result<CadEffort, TilingError> {
    // Window: bounding box of the tiles the change maps to, inflated.
    let affected = AffectedSet::compute(
        &td.plan,
        &td.placement,
        seeds,
        extra_clbs,
        ExpansionPolicy::MostFree,
    )?;
    let mut bbox: Option<Rect> = None;
    for &t in &affected.tiles {
        let r = td.plan.tile(t)?.rect;
        bbox = Some(match bbox {
            None => r,
            Some(b) => b.union(&r),
        });
    }
    let b = td.device.bounds();
    let bbox = bbox.unwrap_or(b);
    let window = Rect::new(
        bbox.x0.saturating_sub(margin),
        bbox.y0.saturating_sub(margin),
        (bbox.x1 + margin).min(b.x1),
        (bbox.y1 + margin).min(b.y1),
    );
    // Movable: every logic cell inside the window.
    let movable: Vec<CellId> = td
        .netlist
        .cells()
        .filter(|(id, c)| {
            c.is_logic()
                && td
                    .placement
                    .loc_of(*id)
                    .and_then(|l| l.coord())
                    .is_some_and(|co| window.contains(co))
        })
        .map(|(id, _)| id)
        .collect();
    reimplement_subset(td, &movable, Some(window))
}

/// Quick_ECO: change tracking stops at the netlist level, so the
/// re-implemented unit is the *functional block* — the hierarchy
/// children of the root. For the paper's experiments "each design
/// will be considered the size of one functional block" (§6), which
/// `whole_design_as_block` reproduces; with `false` the real hierarchy
/// blocks of our generators are used instead.
///
/// # Errors
///
/// Propagates placement/routing failures.
pub fn quick_eco_effort(
    td: &TiledDesign,
    seeds: &[CellId],
    whole_design_as_block: bool,
) -> Result<CadEffort, TilingError> {
    let movable: Vec<CellId> = if whole_design_as_block {
        td.netlist
            .cells()
            .filter(|(_, c)| c.is_logic())
            .map(|(id, _)| id)
            .collect()
    } else {
        let mut blocks = BTreeSet::new();
        for &s in seeds {
            if let Some(b) = td.hierarchy.functional_block_of(s) {
                blocks.insert(b);
            }
        }
        let mut cells = BTreeSet::new();
        for b in blocks {
            for c in td.hierarchy.subtree_cells(b)? {
                if td.netlist.cell(c).map(|cc| cc.is_logic()).unwrap_or(false) {
                    cells.insert(c);
                }
            }
        }
        cells.into_iter().collect()
    };
    reimplement_subset(td, &movable, None)
}

/// Re-places `movable` (optionally confined to a window) with the rest
/// locked, then fully re-routes every net incident to a movable cell.
/// No interface locking: severed nets are re-routed pin-to-pin, which
/// is what both baseline flows do.
fn reimplement_subset(
    td: &TiledDesign,
    movable: &[CellId],
    window: Option<Rect>,
) -> Result<CadEffort, TilingError> {
    let mut placement: Placement = td.placement.clone();
    for &c in movable {
        let _ = placement.unplace(c);
    }
    let movable_set: BTreeSet<CellId> = movable.iter().copied().collect();
    let mut constraints = Constraints::free();
    for (id, _) in td.netlist.cells() {
        if movable_set.contains(&id) {
            if let Some(w) = window {
                constraints.confine(id, w);
            }
        } else if placement.loc_of(id).is_some() {
            constraints.lock(id);
        }
    }
    let out = place::place(
        &td.netlist,
        &td.device,
        &constraints,
        Some(placement),
        &td.options.placer,
    )?;
    let placement = out.placement;
    let mut effort = CadEffort {
        place_moves: out.moves_evaluated,
        route_expansions: 0,
    };

    // Re-route every net incident to a movable cell, from scratch.
    let mut routing = td.routing.clone();
    let mut work: BTreeSet<NetId> = BTreeSet::new();
    for (net_id, net) in td.netlist.nets() {
        let mut touched = net
            .driver
            .map(|d| movable_set.contains(&d))
            .unwrap_or(false);
        touched |= net.sinks.iter().any(|s| movable_set.contains(&s.cell));
        if touched {
            work.insert(net_id);
            routing.clear_route(net_id);
        }
    }
    let mut requests = Vec::with_capacity(work.len());
    for net_id in work {
        let net = td.netlist.net(net_id)?;
        let Some(driver) = net.driver else { continue };
        let Some(src_loc) = placement.loc_of(driver) else {
            continue;
        };
        let mut sinks = Vec::new();
        for s in &net.sinks {
            if let Some(loc) = placement.loc_of(s.cell) {
                sinks.push(td.rrg.sink_node(loc, s.pin));
            }
        }
        if sinks.is_empty() {
            continue;
        }
        requests.push(route::ConnectionRequest {
            net: net_id,
            source: td.rrg.source_node(src_loc),
            sinks,
        });
    }
    if !requests.is_empty() {
        let stats = route::route(&td.rrg, &requests, &mut routing, &td.options.router)?;
        effort.route_expansions = stats.expansions;
    }
    Ok(effort)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eco_flow::replace_and_route;
    use crate::flow::{implement, TilingOptions};
    use synth::PaperDesign;

    #[test]
    fn tiling_beats_the_baselines_on_a_small_change() {
        let b = PaperDesign::NineSym.generate().unwrap();
        let mut td = implement(b.netlist, b.hierarchy, TilingOptions::fast(21)).unwrap();
        let victim = td
            .netlist
            .cells()
            .find(|(_, c)| c.lut_function().is_some())
            .map(|(id, _)| id)
            .unwrap();
        let tt = td
            .netlist
            .cell(victim)
            .unwrap()
            .lut_function()
            .unwrap()
            .complement();
        td.netlist.set_lut_function(victim, tt).unwrap();

        let full = full_replace_effort(&td).unwrap();
        let quick = quick_eco_effort(&td, &[victim], true).unwrap();
        let incr = incremental_effort(&td, &[victim], 0, 2).unwrap();
        let tiled = replace_and_route(&mut td, &[victim], &[], ExpansionPolicy::MostFree)
            .unwrap()
            .effort;

        assert!(
            full.total() > tiled.total(),
            "full {} vs tiled {}",
            full,
            tiled
        );
        assert!(
            quick.total() > tiled.total(),
            "quick {} vs tiled {}",
            quick,
            tiled
        );
        assert!(
            incr.total() >= tiled.total(),
            "incr {} vs tiled {}",
            incr,
            tiled
        );
        // And the orderings the paper reports: full >= quick(whole) >= incremental.
        assert!(full.total() >= incr.total());
    }

    #[test]
    fn quick_eco_with_real_blocks_is_cheaper_than_whole_design() {
        let b = PaperDesign::NineSym.generate().unwrap();
        let td = implement(b.netlist, b.hierarchy, TilingOptions::fast(22)).unwrap();
        let victim = td
            .netlist
            .cells()
            .find(|(_, c)| c.lut_function().is_some())
            .map(|(id, _)| id)
            .unwrap();
        let whole = quick_eco_effort(&td, &[victim], true).unwrap();
        let blocks = quick_eco_effort(&td, &[victim], false).unwrap();
        assert!(blocks.total() <= whole.total());
    }
}

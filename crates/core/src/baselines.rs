//! The comparison flows of Figure 5, as effort probes.
//!
//! The flows themselves live in [`crate::flows`] behind the
//! [`ReimplFlow`] trait; these helpers price a flow on a *clone* of
//! the tiled design so the caller's state is untouched — each returns
//! the CAD effort the flow spends on the same change the tiled flow
//! handled.

use netlist::CellId;

use crate::effort::CadEffort;
use crate::error::TilingError;
use crate::flow::TiledDesign;
use crate::flows::{FullReplaceFlow, IncrementalFlow, QuickEcoFlow, ReimplFlow};

/// Prices `flow` on a clone of the design: the clone is
/// re-implemented, the caller's design is untouched, and only the
/// effort is returned.
///
/// # Errors
///
/// Propagates placement/routing failures.
pub fn flow_effort(
    td: &TiledDesign,
    flow: &mut dyn ReimplFlow,
    seeds: &[CellId],
) -> Result<CadEffort, TilingError> {
    let mut trial = td.clone();
    Ok(flow.reimplement(&mut trial, seeds, &[])?.effort)
}

/// Full re-place-and-route of the entire design from scratch — what a
/// flow without any change tracking must do every iteration.
///
/// # Errors
///
/// Propagates placement/routing failures.
pub fn full_replace_effort(td: &TiledDesign) -> Result<CadEffort, TilingError> {
    flow_effort(td, &mut FullReplaceFlow, &[])
}

/// Incremental place-and-route: no locked interfaces, so the tool
/// re-places everything inside an *inflated* window around the change
/// (it needs room to shuffle surrounding logic) and fully re-routes
/// every net that touches the window.
///
/// `margin` is the inflation in CLBs on each side (2 by default in the
/// benches; bigger changes disturb more of their surroundings).
///
/// # Errors
///
/// Propagates placement/routing failures.
pub fn incremental_effort(
    td: &TiledDesign,
    seeds: &[CellId],
    extra_clbs: usize,
    margin: u16,
) -> Result<CadEffort, TilingError> {
    flow_effort(td, &mut IncrementalFlow { margin, extra_clbs }, seeds)
}

/// Quick_ECO: change tracking stops at the netlist level, so the
/// re-implemented unit is the *functional block* — the hierarchy
/// children of the root. For the paper's experiments "each design
/// will be considered the size of one functional block" (§6), which
/// `whole_design_as_block` reproduces; with `false` the real hierarchy
/// blocks of our generators are used instead.
///
/// # Errors
///
/// Propagates placement/routing failures.
pub fn quick_eco_effort(
    td: &TiledDesign,
    seeds: &[CellId],
    whole_design_as_block: bool,
) -> Result<CadEffort, TilingError> {
    flow_effort(
        td,
        &mut QuickEcoFlow {
            whole_design_as_block,
        },
        seeds,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{implement, TilingOptions};
    use crate::flows::{standard_flows, TiledFlow};
    use synth::PaperDesign;

    #[test]
    fn tiling_beats_the_baselines_on_a_small_change() {
        let b = PaperDesign::NineSym.generate().unwrap();
        let mut td = implement(b.netlist, b.hierarchy, TilingOptions::fast(21)).unwrap();
        let victim = td
            .netlist
            .cells()
            .find(|(_, c)| c.lut_function().is_some())
            .map(|(id, _)| id)
            .unwrap();
        let tt = td
            .netlist
            .cell(victim)
            .unwrap()
            .lut_function()
            .unwrap()
            .complement();
        td.netlist.set_lut_function(victim, tt).unwrap();

        // All four flows priced through the one trait, on the same
        // change (the Figure 5 harness shape).
        let mut efforts = std::collections::HashMap::new();
        for mut flow in standard_flows() {
            let name = flow.name();
            let effort = flow_effort(&td, flow.as_mut(), &[victim]).unwrap();
            efforts.insert(name, effort);
        }
        let full = efforts["full"];
        let quick = efforts["quick_eco"];
        let incr = efforts["incremental"];

        // The tiled flow commits for real (the state the next debug
        // step iterates on).
        let tiled = TiledFlow::default()
            .reimplement(&mut td, &[victim], &[])
            .unwrap()
            .effort;
        assert_eq!(
            efforts["tiled"].total(),
            tiled.total(),
            "probe and committed tiled run disagree"
        );

        assert!(
            full.total() > tiled.total(),
            "full {} vs tiled {}",
            full,
            tiled
        );
        assert!(
            quick.total() > tiled.total(),
            "quick {} vs tiled {}",
            quick,
            tiled
        );
        assert!(
            incr.total() >= tiled.total(),
            "incr {} vs tiled {}",
            incr,
            tiled
        );
        // And the orderings the paper reports: full >= quick(whole) >= incremental.
        assert!(full.total() >= incr.total());
    }

    #[test]
    fn quick_eco_with_real_blocks_is_cheaper_than_whole_design() {
        let b = PaperDesign::NineSym.generate().unwrap();
        let td = implement(b.netlist, b.hierarchy, TilingOptions::fast(22)).unwrap();
        let victim = td
            .netlist
            .cells()
            .find(|(_, c)| c.lut_function().is_some())
            .map(|(id, _)| id)
            .unwrap();
        let whole = quick_eco_effort(&td, &[victim], true).unwrap();
        let blocks = quick_eco_effort(&td, &[victim], false).unwrap();
        assert!(blocks.total() <= whole.total());
    }

    #[test]
    fn legacy_probes_leave_the_design_untouched() {
        let b = PaperDesign::NineSym.generate().unwrap();
        let td = implement(b.netlist, b.hierarchy, TilingOptions::fast(23)).unwrap();
        let victim = td
            .netlist
            .cells()
            .find(|(_, c)| c.lut_function().is_some())
            .map(|(id, _)| id)
            .unwrap();
        let placement_before: Vec<_> = td.placement.iter().collect();
        let _ = full_replace_effort(&td).unwrap();
        let _ = incremental_effort(&td, &[victim], 0, 2).unwrap();
        let _ = quick_eco_effort(&td, &[victim], true).unwrap();
        let placement_after: Vec<_> = td.placement.iter().collect();
        assert_eq!(placement_before, placement_after);
    }
}

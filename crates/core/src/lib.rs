//! Tiling: physical-design partitioning for FPGA emulation debugging.
//!
//! This crate is the paper's contribution. It partitions a
//! placed-and-routed FPGA design into independent rectangular *tiles*
//! with locked interfaces and deliberate resource slack, so that each
//! debugging step — test-logic insertion or an engineering change —
//! only requires clearing and re-placing-and-routing the affected
//! tiles. Everything else, including all routing that crosses tile
//! boundaries, stays frozen.
//!
//! The flow mirrors the paper's pseudo-code (§3.1):
//!
//! 1. [`flow::implement`] — synthesize → place with slack → route →
//!    [`partition`](mod@partition) into tiles → lock interfaces ([`interface`]);
//! 2. debugging iterations through a [`session::DebugSession`]:
//!    detect and localize with inserted test logic (strategy chosen
//!    via [`strategy`]), correct with an ECO, trace the change to
//!    tiles ([`affected`]), and re-implement through a pluggable
//!    physical flow ([`flows`]) — the tiled flow clears only the
//!    affected tiles ([`eco_flow`]);
//! 3. compare the CAD effort against the non-tiled alternatives
//!    (the same [`flows`] behind one trait; [`baselines`] prices them
//!    on clones): full re-place-and-route, incremental, and Quick_ECO
//!    functional-block granularity.
//!
//! [`testpoints`] computes the paper's Figure 3 / Figure 4 quantities
//! (tiles affected by logic insertion; maximum test-logic size per
//! test-point count).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affected;
pub mod baselines;
pub mod debug;
pub mod diagnosis;
pub mod eco_flow;
pub mod effort;
pub mod error;
pub mod flow;
pub mod flows;
pub mod interface;
pub mod partition;
pub mod preflight;
pub mod report;
pub mod session;
pub mod strategy;
pub mod testpoints;
pub mod tile;

// Re-exported so `TilingError::Drc { findings }` callers can name the
// finding types without depending on the analyzer crate directly.
pub use drc;

pub use affected::AffectedSet;
pub use baselines::{flow_effort, full_replace_effort, incremental_effort, quick_eco_effort};
pub use debug::run_debug_iteration;
pub use diagnosis::{
    cluster_failures, collect_responses, fsm_merge_witnesses, merge_fsm_clusters, ConePartition,
    EvidenceBase, EvidenceStats, FailureCluster, FaultAttribution, MultiErrorScheduler,
    ObservationWindow, ResponseSignature, SuspectCone,
};
pub use eco_flow::{replace_and_route, EcoPhysicalOutcome};
pub use effort::{CadEffort, EffortLedger, Phase};
pub use error::TilingError;
pub use flow::{implement, TiledDesign, TilingOptions};
pub use flows::{
    standard_flows, FullReplaceFlow, IncrementalFlow, QuickEcoFlow, ReimplFlow, TiledFlow,
};
pub use partition::partition;
pub use preflight::{audit_confined_eco, check_design, preflight, tile_views};
pub use report::{DebugReport, TilingReport};
pub use session::{
    CampaignOutcome, ClusterOutcome, ConcurrentOutcome, DebugEvent, DebugOutcome, DebugSession,
    PatternSpec,
};
pub use strategy::{BinarySearch, LinearBatches, LocalizationStrategy};
pub use tile::{Tile, TileId, TilePlan};

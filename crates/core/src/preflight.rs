//! Bridges the [`drc`] static analyzer into the tiling core.
//!
//! Three duties: build DRC views over a [`TiledDesign`] (the `drc`
//! crate deliberately knows nothing about tile plans or region sets),
//! run the pre-flight check a [`DebugSession`](crate::session::DebugSession)
//! performs before touching a design, and run the post-ECO audit that
//! re-proves the locked-interface / frozen-route contract after every
//! confined re-implementation in debug builds.

use drc::{DesignView, Drc, EcoRegion, EcoSnapshot, Finding, Severity, TileView};
use fpga::{BelLoc, NodeId, Placement, Routing, RoutingGraph};

use crate::error::TilingError;
use crate::flow::TiledDesign;
use crate::interface::RegionSet;
use crate::tile::TileId;

/// Per-tile usage summaries for the DRC slack-accounting pass.
///
/// # Errors
///
/// Propagates plan lookup failures (impossible for indices the plan
/// itself yields, but the signature keeps the audit panic-free).
pub fn tile_views(td: &TiledDesign) -> Result<Vec<TileView>, TilingError> {
    let mut views = Vec::with_capacity(td.plan.len());
    for (id, tile) in td.plan.iter() {
        let usage = td.plan.usage(id, &td.placement)?;
        views.push(TileView {
            id: id.index(),
            rect: tile.rect,
            used_clbs: usage.used_clbs(),
            capacity_clbs: usage.capacity,
        });
    }
    Ok(views)
}

/// Runs every DRC layer over the design's current state.
///
/// # Errors
///
/// Propagates tile-plan lookup failures; findings are *returned*, not
/// errors.
pub fn check_design(td: &TiledDesign) -> Result<Vec<Finding>, TilingError> {
    let tiles = tile_views(td)?;
    let view = DesignView {
        netlist: &td.netlist,
        placement: &td.placement,
        routing: &td.routing,
        rrg: &td.rrg,
        tiles: &tiles,
    };
    Ok(Drc::new().check_design(&view))
}

/// The session pre-flight: rejects a design carrying any
/// error-severity finding with [`TilingError::Drc`] before a single
/// pattern is simulated or a single tile cleared. Warnings (dead
/// logic, thin slack) pass — they degrade quality, not soundness.
///
/// Returns the findings (including warnings) on success so callers
/// can surface them as metrics.
///
/// # Errors
///
/// [`TilingError::Drc`] with every finding when at least one has
/// [`Severity::Error`].
pub fn preflight(td: &TiledDesign) -> Result<Vec<Finding>, TilingError> {
    let findings = check_design(td)?;
    if drc::max_severity(&findings) == Some(Severity::Error) {
        return Err(TilingError::Drc { findings });
    }
    Ok(findings)
}

/// [`RegionSet`] wearing the audit's [`EcoRegion`] interface.
struct RegionEco<'a> {
    region: &'a RegionSet,
    rrg: &'a RoutingGraph,
}

impl EcoRegion for RegionEco<'_> {
    fn touches_node(&self, node: NodeId) -> bool {
        self.region.touches_node(self.rrg, node)
    }

    fn contains_loc(&self, loc: BelLoc) -> bool {
        match loc {
            BelLoc::Clb { coord, .. } => self
                .region
                .contains_clamped(i32::from(coord.x), i32::from(coord.y)),
            // Pads are never inside a tile region (an ECO never clears
            // them), so the audit treats every IOB as locked.
            BelLoc::Iob(_) => false,
        }
    }
}

/// Audits one *confined* ECO: cells outside the cleared tiles still on
/// their pre-ECO BELs, routes that never touch the cleared region
/// byte-identical. `before_*` are the snapshots taken at the top of
/// [`replace_and_route`](crate::eco_flow::replace_and_route); the
/// design itself holds the *after* state.
pub fn audit_confined_eco(
    td: &TiledDesign,
    tiles: &[TileId],
    before_placement: &Placement,
    before_routing: &Routing,
) -> Vec<Finding> {
    let region = RegionSet::from_tiles(&td.device, &td.plan, tiles);
    let eco = RegionEco {
        region: &region,
        rrg: &td.rrg,
    };
    Drc::new().audit_eco(
        &td.netlist,
        &td.rrg,
        &eco,
        EcoSnapshot {
            placement: before_placement,
            routing: before_routing,
        },
        EcoSnapshot {
            placement: &td.placement,
            routing: &td.routing,
        },
    )
}

//! Tile interfaces: the locked boundary between a tile and the rest.
//!
//! A routing-resource node is *inside* a region when every CLB
//! position its span touches belongs to the region; wires that
//! straddle a tile edge are *interface* resources. When a tile is
//! cleared, routes are cut at their first interface node: the outside
//! fragment (including the interface node itself) stays locked — "if
//! one side of an interface is locked, the interface itself is locked"
//! (§3.2) — and only the inside portion is rebuilt.

use fpga::{Coord, Device, NodeId, Placement, Rect, RouteTree, Routing, RoutingGraph};

use crate::tile::{TileId, TilePlan};

/// A set of CLB coordinates (the union of some tiles' rectangles).
#[derive(Debug, Clone)]
pub struct RegionSet {
    width: u16,
    height: u16,
    inside: Vec<bool>,
}

impl RegionSet {
    /// Builds a region from tile rectangles.
    pub fn from_rects<'a>(device: &Device, rects: impl IntoIterator<Item = &'a Rect>) -> Self {
        let (w, h) = (device.width(), device.height());
        let mut inside = vec![false; w as usize * h as usize];
        for r in rects {
            for c in r.iter() {
                inside[c.y as usize * w as usize + c.x as usize] = true;
            }
        }
        Self {
            width: w,
            height: h,
            inside,
        }
    }

    /// Builds the region of an affected-tile set.
    pub fn from_tiles(device: &Device, plan: &TilePlan, tiles: &[TileId]) -> Self {
        let rects: Vec<Rect> = tiles
            .iter()
            .filter_map(|&t| plan.tile(t).ok().map(|tile| tile.rect))
            .collect();
        Self::from_rects(device, rects.iter())
    }

    /// True if the CLB coordinate is in the region (out-of-grid
    /// coordinates are clamped to their nearest grid cell, so boundary
    /// channels on the device edge count as inside when the edge tile
    /// is).
    pub fn contains_clamped(&self, x: i32, y: i32) -> bool {
        let cx = x.clamp(0, self.width as i32 - 1) as usize;
        let cy = y.clamp(0, self.height as i32 - 1) as usize;
        self.inside[cy * self.width as usize + cx]
    }

    fn in_grid(&self, x: i32, y: i32) -> bool {
        x >= 0 && y >= 0 && x < self.width as i32 && y < self.height as i32
    }

    /// True if an RRG node lies entirely inside the region (interior
    /// resources; used for route *splitting*: these are what clearing
    /// a tile removes).
    ///
    /// Device-edge channels (one span corner off-grid) belong to the
    /// edge tile; IOB pads (both corners off-grid) belong to *no*
    /// region — pads are never cleared by an ECO.
    pub fn contains_node(&self, rrg: &RoutingGraph, node: NodeId) -> bool {
        let (x0, y0, x1, y1) = rrg.span(node);
        let a_in = self.in_grid(x0, y0);
        let b_in = self.in_grid(x1, y1);
        if !a_in && !b_in {
            return false; // IOB pad: outside every tile
        }
        (!a_in || self.contains_clamped(x0, y0)) && (!b_in || self.contains_clamped(x1, y1))
    }

    /// True if an RRG node touches the region at all — interior
    /// resources plus the boundary channels shared with neighbouring
    /// tiles. IOB pads never touch a region.
    pub fn touches_node(&self, rrg: &RoutingGraph, node: NodeId) -> bool {
        let (x0, y0, x1, y1) = rrg.span(node);
        let a = self.in_grid(x0, y0) && self.contains_clamped(x0, y0);
        let b = self.in_grid(x1, y1) && self.contains_clamped(x1, y1);
        a || b
    }

    /// Availability mask over the whole RRG for tile-confined routing.
    ///
    /// The mask admits interior nodes *and* boundary-channel wires:
    /// locking an interface means freezing the signals that cross it
    /// (they stay in the routing database and block by occupancy), not
    /// embargoing every physical wire of the boundary channel — free
    /// boundary tracks are exactly where re-locked interfaces for new
    /// crossings get drawn.
    pub fn node_mask(&self, rrg: &RoutingGraph) -> Vec<bool> {
        (0..rrg.num_nodes())
            .map(|i| self.touches_node(rrg, NodeId::default_for_test(i as u32)))
            .collect()
    }

    /// Number of region coordinates.
    pub fn area(&self) -> usize {
        self.inside.iter().filter(|&&b| b).count()
    }
}

/// How one source→sink path relates to a cleared region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathSplit {
    /// Entirely outside: keep verbatim (locked).
    KeepOutside,
    /// Entirely inside: drop; re-route pin-to-pin within the region.
    DropInside,
    /// Source inside, sink outside: drop the inside prefix; the kept
    /// fragment starts at the interface node `path[cross]`.
    CrossOut {
        /// Index of the interface node in the original path.
        cross: usize,
    },
    /// Source outside, sink inside: keep up to and including the
    /// interface node `path[cross]`; re-route from there to the pin.
    CrossIn {
        /// Index of the interface node in the original path.
        cross: usize,
    },
    /// Both endpoints outside but the path tunnels through the
    /// region: drop entirely and re-route without confinement.
    Feedthrough,
}

/// Classifies a path against a region.
///
/// # Panics
///
/// Panics on an empty path (routes always have ≥1 node).
pub fn split_path(rrg: &RoutingGraph, region: &RegionSet, path: &[NodeId]) -> PathSplit {
    assert!(!path.is_empty(), "empty route path");
    let inside: Vec<bool> = path.iter().map(|&n| region.contains_node(rrg, n)).collect();
    let src_in = inside[0];
    let sink_in = *inside.last().expect("non-empty");
    let any_in = inside.iter().any(|&b| b);
    match (src_in, sink_in) {
        (true, true) => PathSplit::DropInside,
        (false, false) => {
            if any_in {
                PathSplit::Feedthrough
            } else {
                PathSplit::KeepOutside
            }
        }
        (true, false) => {
            let cross = inside.iter().position(|&b| !b).expect("sink is outside");
            PathSplit::CrossOut { cross }
        }
        (false, true) => {
            let cross = inside.iter().rposition(|&b| !b).expect("source is outside");
            PathSplit::CrossIn { cross }
        }
    }
}

/// Summary of a tile's locked interface under a routing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InterfaceSummary {
    /// Number of net route-paths crossing the tile boundary.
    pub crossings: usize,
    /// Distinct interface wire nodes in use.
    pub interface_nodes: usize,
}

/// Computes the interface summary of one tile.
///
/// # Errors
///
/// Returns [`crate::TilingError::UnknownTile`] for bad tile ids.
pub fn tile_interface(
    device: &Device,
    plan: &TilePlan,
    rrg: &RoutingGraph,
    routing: &Routing,
    tile: TileId,
) -> Result<InterfaceSummary, crate::TilingError> {
    let rect = plan.tile(tile)?.rect;
    let region = RegionSet::from_rects(device, std::iter::once(&rect));
    let mut summary = InterfaceSummary::default();
    let mut nodes = std::collections::BTreeSet::new();
    for (_, tree) in routing.iter() {
        for path in &tree.paths {
            match split_path(rrg, &region, path) {
                PathSplit::CrossOut { cross } | PathSplit::CrossIn { cross } => {
                    summary.crossings += 1;
                    nodes.insert(path[cross]);
                }
                PathSplit::Feedthrough => summary.crossings += 1,
                _ => {}
            }
        }
    }
    summary.interface_nodes = nodes.len();
    Ok(summary)
}

/// Splits a whole route tree, returning the kept (locked) fragment and
/// the work list for re-routing.
#[derive(Debug, Clone, Default)]
pub struct TreeSplit {
    /// Locked fragments (installed as the net's base before routing).
    pub base: RouteTree,
    /// Sinks to re-route from the net's (new) source pin toward a
    /// locked interface node (the net leaves the region here).
    pub route_to_interface: Vec<NodeId>,
    /// Interface nodes from which an in-region pin must be reached:
    /// `(interface node, original sink index)`.
    pub route_from_interface: Vec<(NodeId, usize)>,
    /// Original sink indices needing full in-region re-route.
    pub reroute_inside: Vec<usize>,
    /// Original sink indices needing unconfined re-route (feedthrough).
    pub reroute_free: Vec<usize>,
}

/// Splits each path of `tree` against `region`.
pub fn split_tree(rrg: &RoutingGraph, region: &RegionSet, tree: &RouteTree) -> TreeSplit {
    let mut out = TreeSplit::default();
    let mut seen_cross_out = false;
    for (k, path) in tree.paths.iter().enumerate() {
        match split_path(rrg, region, path) {
            PathSplit::KeepOutside => out.base.paths.push(path.clone()),
            PathSplit::DropInside => out.reroute_inside.push(k),
            PathSplit::Feedthrough => out.reroute_free.push(k),
            PathSplit::CrossOut { cross } => {
                out.base.paths.push(path[cross..].to_vec());
                // One connection from the new source to the interface
                // is enough even if several sinks share the exit.
                if !seen_cross_out {
                    out.route_to_interface.push(path[cross]);
                    seen_cross_out = true;
                } else if !out.route_to_interface.contains(&path[cross]) {
                    out.route_to_interface.push(path[cross]);
                }
            }
            PathSplit::CrossIn { cross } => {
                out.base.paths.push(path[..=cross].to_vec());
                out.route_from_interface.push((path[cross], k));
            }
        }
    }
    out
}

/// A placed cell's membership in a region.
pub fn cell_in_region(region: &RegionSet, placement: &Placement, cell: netlist::CellId) -> bool {
    match placement.loc_of(cell) {
        Some(fpga::BelLoc::Clb {
            coord: Coord { x, y },
            ..
        }) => region.contains_clamped(i32::from(x), i32::from(y)),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga::ClbSlot;

    fn setup() -> (Device, RoutingGraph, RegionSet) {
        let dev = Device::new(6, 6, 4, 2).unwrap();
        let rrg = RoutingGraph::new(&dev);
        // Region = lower-left 3x3 tile.
        let region = RegionSet::from_rects(&dev, std::iter::once(&Rect::new(0, 0, 2, 2)));
        (dev, rrg, region)
    }

    #[test]
    fn node_membership() {
        let (_, rrg, region) = setup();
        // Interior pin.
        assert!(region.contains_node(&rrg, rrg.opin(Coord::new(1, 1), ClbSlot::LutF)));
        // Outside pin.
        assert!(!region.contains_node(&rrg, rrg.opin(Coord::new(4, 4), ClbSlot::LutF)));
        // Interior channel (between rows 0 and 1 at column 1).
        assert!(region.contains_node(&rrg, rrg.chanx(1, 1, 0)));
        // Boundary channel between region row 2 and outside row 3.
        assert!(!region.contains_node(&rrg, rrg.chanx(1, 3, 0)));
        // Device-edge channel below row 0 clamps inside.
        assert!(region.contains_node(&rrg, rrg.chanx(1, 0, 0)));
        assert_eq!(region.area(), 9);
        // IOB pads are outside every region, even adjacent to an edge
        // tile (their nets split as driver-outside crossings).
        let pad = rrg.iob(fpga::IobSite {
            side: fpga::IobSide::West,
            pos: 1,
            k: 0,
        });
        assert!(!region.contains_node(&rrg, pad));
        assert!(!region.touches_node(&rrg, pad));
    }

    #[test]
    fn split_paths_all_cases() {
        let (_, rrg, region) = setup();
        let inside_pin = rrg.opin(Coord::new(0, 0), ClbSlot::LutF);
        let inside_wire = rrg.chanx(1, 1, 0);
        let inside_ipin = rrg.ipin(Coord::new(1, 1), 0);
        let boundary = rrg.chanx(1, 3, 0); // straddles the region edge
        let outside_wire = rrg.chanx(4, 4, 0);
        let outside_ipin = rrg.ipin(Coord::new(4, 4), 0);
        let outside_opin = rrg.opin(Coord::new(4, 4), ClbSlot::LutF);

        assert_eq!(
            split_path(&rrg, &region, &[outside_opin, outside_wire, outside_ipin]),
            PathSplit::KeepOutside
        );
        assert_eq!(
            split_path(&rrg, &region, &[inside_pin, inside_wire, inside_ipin]),
            PathSplit::DropInside
        );
        assert_eq!(
            split_path(
                &rrg,
                &region,
                &[
                    inside_pin,
                    inside_wire,
                    boundary,
                    outside_wire,
                    outside_ipin
                ]
            ),
            PathSplit::CrossOut { cross: 2 }
        );
        assert_eq!(
            split_path(
                &rrg,
                &region,
                &[
                    outside_opin,
                    outside_wire,
                    boundary,
                    inside_wire,
                    inside_ipin
                ]
            ),
            PathSplit::CrossIn { cross: 2 }
        );
        assert_eq!(
            split_path(
                &rrg,
                &region,
                &[outside_opin, boundary, inside_wire, boundary, outside_ipin]
            ),
            PathSplit::Feedthrough
        );
    }

    #[test]
    fn split_tree_collects_work() {
        let (_, rrg, region) = setup();
        let inside_pin = rrg.opin(Coord::new(0, 0), ClbSlot::LutF);
        let inside_wire = rrg.chanx(1, 1, 0);
        let boundary = rrg.chanx(1, 3, 0);
        let outside_wire = rrg.chanx(4, 4, 0);
        let outside_ipin = rrg.ipin(Coord::new(4, 4), 0);
        let inside_ipin = rrg.ipin(Coord::new(1, 1), 0);
        let tree = RouteTree {
            paths: vec![
                vec![
                    inside_pin,
                    inside_wire,
                    boundary,
                    outside_wire,
                    outside_ipin,
                ],
                vec![inside_pin, inside_wire, inside_ipin],
            ],
        };
        let split = split_tree(&rrg, &region, &tree);
        assert_eq!(split.base.paths.len(), 1);
        assert_eq!(split.base.paths[0][0], boundary);
        assert_eq!(split.route_to_interface, vec![boundary]);
        assert_eq!(split.reroute_inside, vec![1]);
        assert!(split.route_from_interface.is_empty());
        assert!(split.reroute_free.is_empty());
    }

    #[test]
    fn mask_matches_membership() {
        let (_, rrg, region) = setup();
        let mask = region.node_mask(&rrg);
        assert!(mask[rrg.opin(Coord::new(1, 1), ClbSlot::LutF).index()]);
        assert!(!mask[rrg.opin(Coord::new(5, 5), ClbSlot::LutF).index()]);
    }
}

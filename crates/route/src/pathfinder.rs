//! The PathFinder negotiated-congestion router.

use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

use fpga::{NodeId, RouteTree, Routing, RoutingGraph};

use crate::request::ConnectionRequest;

/// Router parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteOptions {
    /// Maximum negotiation iterations before giving up.
    pub max_iterations: usize,
    /// Initial present-congestion factor.
    pub pres_fac_init: f64,
    /// Present-congestion growth per iteration.
    pub pres_fac_mult: f64,
    /// Historical congestion weight.
    pub acc_fac: f64,
    /// A* aggressiveness (1.0 = admissible, >1 = faster, greedier).
    pub astar_weight: f64,
    /// Present-congestion ceiling: beyond this the cost landscape
    /// stops changing, so higher values only slow the search down.
    pub pres_fac_max: f64,
    /// Give up early if the overuse count has not improved for this
    /// many consecutive iterations (congestion is structural).
    pub stall_limit: usize,
    /// Optional per-node availability mask (tile confinement). `None`
    /// allows the whole device.
    pub allowed: Option<Vec<bool>>,
}

impl Default for RouteOptions {
    fn default() -> Self {
        Self {
            max_iterations: 40,
            pres_fac_init: 0.6,
            pres_fac_mult: 1.7,
            acc_fac: 1.0,
            astar_weight: 1.15,
            pres_fac_max: 5_000.0,
            stall_limit: 6,
            allowed: None,
        }
    }
}

/// Routing statistics — the effort half of Figure 5.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteStats {
    /// Negotiation iterations performed.
    pub iterations: usize,
    /// Total wavefront node expansions (the effort metric).
    pub expansions: u64,
    /// Nets routed.
    pub nets: usize,
}

/// Routing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// A sink was unreachable from its source under the mask/locks.
    Unroutable {
        /// The offending net.
        net: netlist::NetId,
    },
    /// Congestion negotiation did not converge.
    CongestionUnresolved {
        /// Iterations performed.
        iterations: usize,
        /// Overused nodes remaining.
        overused: usize,
    },
    /// Request construction failed (netlist inconsistency).
    BadRequest(String),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Unroutable { net } => write!(f, "net {net} has an unreachable sink"),
            Self::CongestionUnresolved {
                iterations,
                overused,
            } => {
                write!(f, "congestion unresolved after {iterations} iterations ({overused} nodes overused)")
            }
            Self::BadRequest(msg) => write!(f, "bad routing request: {msg}"),
        }
    }
}

impl Error for RouteError {}

/// Routes all `requests` into `routing`.
///
/// On entry, `routing` holds (a) the untouched routes of every net
/// *not* in `requests` — these are locked: their nodes are
/// hard-unavailable to other nets — and (b) optionally a *base
/// fragment* for request nets (the preserved outside-the-tile part of
/// an interface-crossing net). Base fragments stay fixed; the router
/// connects each request's source and sinks, growing from the base.
///
/// # Errors
///
/// [`RouteError::Unroutable`] if some sink has no path at all,
/// [`RouteError::CongestionUnresolved`] if negotiation fails.
pub fn route(
    rrg: &RoutingGraph,
    requests: &[ConnectionRequest],
    routing: &mut Routing,
    options: &RouteOptions,
) -> Result<RouteStats, RouteError> {
    let n = rrg.num_nodes();
    if let Some(mask) = &options.allowed {
        assert_eq!(mask.len(), n, "allowed mask must cover the RRG");
    }
    // One request per net: a second request would rip up the first's
    // routes on every iteration (callers must merge their sinks).
    {
        let mut nets: Vec<netlist::NetId> = requests.iter().map(|r| r.net).collect();
        nets.sort_unstable();
        let before = nets.len();
        nets.dedup();
        assert_eq!(nets.len(), before, "duplicate net in routing requests");
    }

    // Locked occupancy snapshot: whatever is installed at entry that a
    // request net does not own is immovable.
    let mut locked_occ = vec![0u16; n];
    for i in 0..n {
        locked_occ[i] = routing.occupancy(NodeId::default_for_test(i as u32));
    }
    // Request nets' bases stay in `locked_occ` (they are locked for
    // *other* nets); a per-net `own_seed` overlay unlocks each net's
    // own base while that net routes.
    let mut bases: Vec<RouteTree> = Vec::with_capacity(requests.len());
    for req in requests {
        bases.push(routing.route(req.net).cloned().unwrap_or_default());
    }
    // Base fragments split into the *source-connected* component
    // (usable as zero-cost seeds) and disconnected fragments (the
    // outside stubs of severed interface crossings): those may only be
    // entered at their head node as an explicit target — seeding them
    // would fake connectivity across the unrouted gap.
    struct BaseSplit {
        seed_nodes: Vec<NodeId>,
        /// (head node, full fragment nodes) per disconnected fragment.
        fragments: Vec<(NodeId, Vec<NodeId>)>,
    }
    let mut splits: Vec<BaseSplit> = Vec::with_capacity(requests.len());
    for (req, base) in requests.iter().zip(&bases) {
        let paths = &base.paths;
        // Union-find over paths sharing any node; the source joins the
        // component of any path containing it.
        let mut comp: Vec<usize> = (0..paths.len()).collect();
        fn find(comp: &mut Vec<usize>, i: usize) -> usize {
            if comp[i] != i {
                let r = find(comp, comp[i]);
                comp[i] = r;
            }
            comp[i]
        }
        for i in 0..paths.len() {
            let set_i: std::collections::BTreeSet<NodeId> = paths[i].iter().copied().collect();
            for j in (i + 1)..paths.len() {
                if paths[j].iter().any(|nd| set_i.contains(nd)) {
                    let (ri, rj) = (find(&mut comp, i), find(&mut comp, j));
                    comp[ri] = rj;
                }
            }
        }
        let source_comp: Option<usize> = (0..paths.len())
            .find(|&i| paths[i].contains(&req.source))
            .map(|i| find(&mut comp, i));
        let mut seed_nodes = vec![req.source];
        let mut fragments: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
        for i in 0..paths.len() {
            let root = find(&mut comp, i);
            if Some(root) == source_comp {
                seed_nodes.extend(paths[i].iter().copied());
            } else {
                fragments.push((paths[i][0], paths[i].clone()));
            }
        }
        seed_nodes.sort_unstable();
        seed_nodes.dedup();
        splits.push(BaseSplit {
            seed_nodes,
            fragments,
        });
    }
    // Per-net overlays for the net currently being routed:
    // `own_frag[i]` marks its disconnected-fragment nodes (blocked
    // unless targeted), `own_seed[i]` its source-connected base nodes
    // (exempt from the locked check).
    let mut own_frag = vec![false; n];
    let mut own_seed = vec![false; n];

    let mut stats = RouteStats {
        nets: requests.len(),
        ..Default::default()
    };
    let mut hist = vec![0.0f32; n];
    let mut pres = options.pres_fac_init;
    let mut astar = AStar::new(n);
    let mut best_overuse = usize::MAX;
    let mut stalled = 0usize;

    for iteration in 1..=options.max_iterations {
        stats.iterations = iteration;
        for ((req, base), split) in requests.iter().zip(&bases).zip(&splits) {
            routing.clear_route(req.net);
            // Reinstall the fixed base so its occupancy is visible.
            if !base.paths.is_empty() {
                routing.set_route(req.net, base.clone());
            }
            let mut frag_active: Vec<bool> = vec![true; split.fragments.len()];
            for (_, nodes) in &split.fragments {
                for nd in nodes {
                    own_frag[nd.index()] = true;
                }
            }
            for nd in &split.seed_nodes {
                own_seed[nd.index()] = true;
            }

            let mut seeds: Vec<NodeId> = split.seed_nodes.clone();
            let mut new_paths: Vec<Vec<NodeId>> = Vec::with_capacity(req.sinks.len());
            let mut fail = false;
            for &sink in &req.sinks {
                let path = astar.search(
                    rrg,
                    routing,
                    &locked_occ,
                    &own_frag,
                    &own_seed,
                    &hist,
                    options,
                    pres,
                    &seeds,
                    sink,
                    &mut stats.expansions,
                );
                let Some(path) = path else {
                    fail = true;
                    break;
                };
                for nd in &path {
                    own_seed[nd.index()] = true;
                }
                seeds.extend(path.iter().copied());
                // Reaching a fragment head reconnects that fragment:
                // its nodes become legitimate seeds for later sinks.
                for (fi, (head, nodes)) in split.fragments.iter().enumerate() {
                    if frag_active[fi] && path.last() == Some(head) {
                        frag_active[fi] = false;
                        for nd in nodes {
                            own_frag[nd.index()] = false;
                            own_seed[nd.index()] = true;
                        }
                        seeds.extend(nodes.iter().copied());
                    }
                }
                new_paths.push(path);
            }
            // Clear the per-net overlays.
            for (_, nodes) in &split.fragments {
                for nd in nodes {
                    own_frag[nd.index()] = false;
                    own_seed[nd.index()] = false;
                }
            }
            for nd in &split.seed_nodes {
                own_seed[nd.index()] = false;
            }
            for p in &new_paths {
                for nd in p {
                    own_seed[nd.index()] = false;
                }
            }
            if fail {
                return Err(RouteError::Unroutable { net: req.net });
            }
            let mut tree = base.clone();
            tree.paths.extend(new_paths);
            routing.clear_route(req.net);
            routing.set_route(req.net, tree);
        }

        // Converged?
        let overused = routing.overused_nodes();
        if overused.is_empty() {
            return Ok(stats);
        }
        // Stall detection: if escalation stopped reducing overuse, the
        // conflict is structural and further iterations are wasted.
        if overused.len() < best_overuse {
            best_overuse = overused.len();
            stalled = 0;
        } else {
            stalled += 1;
            if stalled >= options.stall_limit {
                return Err(RouteError::CongestionUnresolved {
                    iterations: stats.iterations,
                    overused: overused.len(),
                });
            }
        }
        for node in overused {
            let over = routing.occupancy(node).saturating_sub(1);
            hist[node.index()] += options.acc_fac as f32 * over as f32;
        }
        pres = (pres * options.pres_fac_mult).min(options.pres_fac_max);
    }
    Err(RouteError::CongestionUnresolved {
        iterations: stats.iterations,
        overused: routing.overused_nodes().len(),
    })
}

/// Heap entry ordered for a min-heap on (f, node).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    f: f64,
    node: u32,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed for BinaryHeap (max-heap) -> min-heap behaviour;
        // tie-break on node id for determinism.
        other
            .f
            .total_cmp(&self.f)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable A* state with generation-stamped visit arrays.
struct AStar {
    g: Vec<f64>,
    prev: Vec<u32>,
    stamp: Vec<u32>,
    generation: u32,
    heap: BinaryHeap<Entry>,
    nbrs: Vec<NodeId>,
}

const NO_PREV: u32 = u32::MAX;

impl AStar {
    fn new(n: usize) -> Self {
        Self {
            g: vec![0.0; n],
            prev: vec![NO_PREV; n],
            stamp: vec![0; n],
            generation: 0,
            heap: BinaryHeap::new(),
            nbrs: Vec::new(),
        }
    }

    /// Cost of stepping onto `node` (PathFinder node cost).
    fn node_cost(
        rrg: &RoutingGraph,
        routing: &Routing,
        hist: &[f32],
        pres: f64,
        node: NodeId,
    ) -> f64 {
        let b = rrg.base_cost(node);
        let h = 1.0 + f64::from(hist[node.index()]);
        let occ = routing.occupancy(node) as f64;
        let p = 1.0 + (occ + 1.0 - 1.0).max(0.0) * pres;
        b * h * p
    }

    #[allow(clippy::too_many_arguments)]
    fn search(
        &mut self,
        rrg: &RoutingGraph,
        routing: &Routing,
        locked_occ: &[u16],
        own_frag: &[bool],
        own_seed: &[bool],
        hist: &[f32],
        options: &RouteOptions,
        pres: f64,
        seeds: &[NodeId],
        target: NodeId,
        expansions: &mut u64,
    ) -> Option<Vec<NodeId>> {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamp.fill(0);
            self.generation = 1;
        }
        self.heap.clear();
        let (tx, ty) = rrg.center(target);
        let h_of = |rrg: &RoutingGraph, node: NodeId| -> f64 {
            let (x, y) = rrg.center(node);
            options.astar_weight * 0.55 * ((x - tx).abs() + (y - ty).abs()) as f64
        };
        // Seed the wavefront. Seeds are free (already paid for). Under
        // a mask, a seed that is outside it *and* has no in-mask
        // neighbour can never contribute — dropping those keeps large
        // outside route-trees from flooding confined searches.
        for &s in seeds {
            let i = s.index();
            if self.stamp[i] == self.generation {
                continue;
            }
            if let Some(mask) = &options.allowed {
                if !mask[i] {
                    rrg.neighbors(s, &mut self.nbrs);
                    let useful = self.nbrs.iter().any(|m| mask[m.index()] || *m == target);
                    if !useful {
                        continue;
                    }
                }
            }
            self.stamp[i] = self.generation;
            self.g[i] = 0.0;
            self.prev[i] = NO_PREV;
            self.heap.push(Entry {
                f: h_of(rrg, s),
                node: s.index() as u32,
            });
        }
        // Re-pops of stale heap entries are filtered by comparing the
        // entry's f against the node's current g + h.
        while let Some(Entry { f, node }) = self.heap.pop() {
            let ni = node as usize;
            let nid = NodeId::default_for_test(node);
            // Stale heap entry?
            let (x, y) = rrg.center(nid);
            let h_cur = options.astar_weight * 0.55 * ((x - tx).abs() + (y - ty).abs()) as f64;
            if f > self.g[ni] + h_cur + 1e-9 {
                continue;
            }
            *expansions += 1;
            if nid == target {
                return Some(self.trace(nid));
            }
            rrg.neighbors(nid, &mut self.nbrs);
            let neighbors = std::mem::take(&mut self.nbrs);
            for &m in &neighbors {
                let mi = m.index();
                // Availability: the explicit target is always fair
                // game (interface nodes straddle the mask boundary and
                // belong to this net's locked fragments); everything
                // else must pass the mask and be unlocked. The net's
                // own source-connected base is exempt from the locked
                // check; its disconnected fragments are target-only.
                if m != target {
                    if let Some(mask) = &options.allowed {
                        if !mask[mi] {
                            continue;
                        }
                    }
                    if own_frag[mi] || (locked_occ[mi] > 0 && !own_seed[mi]) {
                        continue;
                    }
                }
                let step = Self::node_cost(rrg, routing, hist, pres, m);
                let cand = self.g[ni] + step;
                if self.stamp[mi] != self.generation || cand + 1e-12 < self.g[mi] {
                    self.stamp[mi] = self.generation;
                    self.g[mi] = cand;
                    self.prev[mi] = node;
                    self.heap.push(Entry {
                        f: cand + h_of(rrg, m),
                        node: mi as u32,
                    });
                }
            }
            self.nbrs = neighbors;
        }
        None
    }

    fn trace(&self, target: NodeId) -> Vec<NodeId> {
        let mut path = vec![target];
        let mut cur = target.index() as u32;
        while self.prev[cur as usize] != NO_PREV {
            cur = self.prev[cur as usize];
            path.push(NodeId::default_for_test(cur));
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga::{BelLoc, ClbSlot, Coord, Device, Placement};
    use netlist::{NetId, Netlist, TruthTable};

    fn small_world() -> (Netlist, Device, RoutingGraph, Placement) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let u = nl
            .add_lut("u", TruthTable::not(), &[nl.cell_output(a).unwrap()])
            .unwrap();
        let v = nl
            .add_lut("v", TruthTable::not(), &[nl.cell_output(u).unwrap()])
            .unwrap();
        nl.add_output("y", nl.cell_output(v).unwrap()).unwrap();
        let dev = Device::new(6, 6, 4, 2).unwrap();
        let rrg = RoutingGraph::new(&dev);
        let mut p = Placement::new(nl.cell_capacity());
        p.place(
            nl.find_cell("a").unwrap(),
            BelLoc::Iob(fpga::IobSite {
                side: fpga::IobSide::West,
                pos: 1,
                k: 0,
            }),
        )
        .unwrap();
        p.place(nl.find_cell("u").unwrap(), BelLoc::clb(1, 1, ClbSlot::LutF))
            .unwrap();
        p.place(nl.find_cell("v").unwrap(), BelLoc::clb(4, 4, ClbSlot::LutG))
            .unwrap();
        p.place(
            nl.find_cell("y").unwrap(),
            BelLoc::Iob(fpga::IobSite {
                side: fpga::IobSide::East,
                pos: 4,
                k: 1,
            }),
        )
        .unwrap();
        (nl, dev, rrg, p)
    }

    #[test]
    fn routes_a_chain() {
        let (nl, _dev, rrg, p) = small_world();
        let mut routing = Routing::new(rrg.num_nodes());
        let stats =
            crate::request::route_design(&nl, &p, &rrg, &mut routing, &RouteOptions::default())
                .unwrap();
        assert_eq!(stats.nets, 3);
        assert!(routing.is_feasible());
        assert_eq!(routing.num_routed(), 3);
        assert!(stats.expansions > 0);
        // Each path starts at the source pin and ends at the sink pin.
        let u = nl.find_cell("u").unwrap();
        let unet = nl.cell_output(u).unwrap();
        let tree = routing.route(unet).unwrap();
        assert_eq!(tree.paths.len(), 1);
        let path = &tree.paths[0];
        assert_eq!(path[0], rrg.opin(Coord::new(1, 1), ClbSlot::LutF));
        assert_eq!(*path.last().unwrap(), rrg.ipin(Coord::new(4, 4), 4));
    }

    #[test]
    fn multi_sink_nets_share_a_tree() {
        let mut nl = Netlist::new("fanout");
        let a = nl.add_input("a").unwrap();
        let src = nl.cell_output(a).unwrap();
        for i in 0..4 {
            let u = nl
                .add_lut(format!("u{i}"), TruthTable::not(), &[src])
                .unwrap();
            nl.add_output(format!("y{i}"), nl.cell_output(u).unwrap())
                .unwrap();
        }
        let dev = Device::new(6, 6, 6, 2).unwrap();
        let rrg = RoutingGraph::new(&dev);
        let mut p = Placement::new(nl.cell_capacity());
        place::initial_place_for_tests(&nl, &dev, &mut p);
        let mut routing = Routing::new(rrg.num_nodes());
        let stats =
            crate::request::route_design(&nl, &p, &rrg, &mut routing, &RouteOptions::default())
                .unwrap();
        assert!(routing.is_feasible());
        let tree = routing.route(src).unwrap();
        assert_eq!(tree.paths.len(), 4);
        let _ = stats;
    }

    // Minimal stand-in for the place crate (not a dependency here):
    // deterministic spread placement used only by this test module.
    mod place {
        use super::*;

        pub fn initial_place_for_tests(nl: &Netlist, dev: &Device, p: &mut Placement) {
            let mut iobs = dev.iob_sites();
            let mut coords = dev.clb_coords();
            for (id, cell) in nl.cells() {
                match cell.kind {
                    netlist::CellKind::Input | netlist::CellKind::Output => {
                        let s = iobs.next().unwrap();
                        p.place(id, BelLoc::Iob(s)).unwrap();
                    }
                    _ => {
                        let c = coords.next().unwrap();
                        p.place(
                            id,
                            BelLoc::Clb {
                                coord: c,
                                slot: ClbSlot::LutF,
                            },
                        )
                        .unwrap();
                    }
                }
            }
        }
    }

    #[test]
    fn mask_confines_routing() {
        let (nl, _dev, rrg, p) = small_world();
        // Only allow nodes in the lower-left quadrant; the u->v net
        // (to (4,4)) becomes unroutable.
        let mut mask = vec![false; rrg.num_nodes()];
        for i in 0..rrg.num_nodes() {
            let (x0, y0, x1, y1) = rrg.span(NodeId::default_for_test(i as u32));
            if x0 >= -1 && y0 >= -1 && x1 <= 2 && y1 <= 2 {
                mask[i] = true;
            }
        }
        let mut routing = Routing::new(rrg.num_nodes());
        let err = crate::request::route_design(
            &nl,
            &p,
            &rrg,
            &mut routing,
            &RouteOptions {
                allowed: Some(mask),
                ..Default::default()
            },
        );
        assert!(matches!(err, Err(RouteError::Unroutable { .. })));
    }

    #[test]
    fn locked_nets_are_avoided() {
        let (nl, _dev, rrg, p) = small_world();
        let mut routing = Routing::new(rrg.num_nodes());
        crate::request::route_design(&nl, &p, &rrg, &mut routing, &RouteOptions::default())
            .unwrap();
        // Re-route only the u->v net; the other two stay locked.
        let u = nl.find_cell("u").unwrap();
        let unet = nl.cell_output(u).unwrap();
        let reqs = crate::request::derive_requests(&nl, &p, &rrg)
            .unwrap()
            .into_iter()
            .filter(|r| r.net == unet)
            .collect::<Vec<_>>();
        routing.clear_route(unet);
        let locked_nodes: std::collections::BTreeSet<_> =
            routing.iter().flat_map(|(_, t)| t.nodes()).collect();
        route(&rrg, &reqs, &mut routing, &RouteOptions::default()).unwrap();
        assert!(routing.is_feasible());
        // New route avoids every locked node.
        let new_nodes = routing.route(unet).unwrap().nodes();
        assert!(new_nodes.is_disjoint(&locked_nodes));
    }

    #[test]
    fn base_fragment_is_preserved_and_extended() {
        let (nl, _dev, rrg, p) = small_world();
        let mut routing = Routing::new(rrg.num_nodes());
        crate::request::route_design(&nl, &p, &rrg, &mut routing, &RouteOptions::default())
            .unwrap();
        let u = nl.find_cell("u").unwrap();
        let unet = nl.cell_output(u).unwrap();
        let full = routing.route(unet).unwrap().clone();
        let full_path = full.paths[0].clone();
        // Split the path in half: keep the source-side fragment as the
        // fixed base, re-route from its tip to the sink.
        let mid = full_path.len() / 2;
        let base = RouteTree {
            paths: vec![full_path[..=mid].to_vec()],
        };
        let tip = full_path[mid];
        let sink = *full_path.last().unwrap();
        routing.clear_route(unet);
        routing.set_route(unet, base.clone());
        let req = ConnectionRequest {
            net: unet,
            source: tip,
            sinks: vec![sink],
        };
        route(&rrg, &[req], &mut routing, &RouteOptions::default()).unwrap();
        let merged = routing.route(unet).unwrap();
        assert!(routing.is_feasible());
        // Base fragment still present verbatim.
        assert_eq!(merged.paths[0], base.paths[0]);
        // And the sink is reconnected.
        assert!(merged.nodes().contains(&sink));
    }

    #[test]
    fn congestion_negotiation_resolves_conflicts() {
        // Two nets forced through the same 1-track corridor must
        // negotiate (tracks=1 keeps capacity tight).
        let mut nl = Netlist::new("cong");
        for i in 0..2 {
            let a = nl.add_input(format!("a{i}")).unwrap();
            let u = nl
                .add_lut(
                    format!("u{i}"),
                    TruthTable::not(),
                    &[nl.cell_output(a).unwrap()],
                )
                .unwrap();
            nl.add_output(format!("y{i}"), nl.cell_output(u).unwrap())
                .unwrap();
        }
        let dev = Device::new(4, 4, 2, 2).unwrap();
        let rrg = RoutingGraph::new(&dev);
        let mut p = Placement::new(nl.cell_capacity());
        p.place(
            nl.find_cell("a0").unwrap(),
            BelLoc::Iob(fpga::IobSite {
                side: fpga::IobSide::West,
                pos: 1,
                k: 0,
            }),
        )
        .unwrap();
        p.place(
            nl.find_cell("a1").unwrap(),
            BelLoc::Iob(fpga::IobSite {
                side: fpga::IobSide::West,
                pos: 1,
                k: 1,
            }),
        )
        .unwrap();
        p.place(
            nl.find_cell("u0").unwrap(),
            BelLoc::clb(2, 1, ClbSlot::LutF),
        )
        .unwrap();
        p.place(
            nl.find_cell("u1").unwrap(),
            BelLoc::clb(2, 1, ClbSlot::LutG),
        )
        .unwrap();
        p.place(
            nl.find_cell("y0").unwrap(),
            BelLoc::Iob(fpga::IobSite {
                side: fpga::IobSide::East,
                pos: 1,
                k: 0,
            }),
        )
        .unwrap();
        p.place(
            nl.find_cell("y1").unwrap(),
            BelLoc::Iob(fpga::IobSite {
                side: fpga::IobSide::East,
                pos: 1,
                k: 1,
            }),
        )
        .unwrap();
        let mut routing = Routing::new(rrg.num_nodes());
        let stats =
            crate::request::route_design(&nl, &p, &rrg, &mut routing, &RouteOptions::default())
                .unwrap();
        assert!(routing.is_feasible());
        assert!(stats.iterations >= 1);
    }

    #[test]
    fn error_display() {
        let e = RouteError::Unroutable { net: NetId::new(3) };
        assert!(e.to_string().contains("n3"));
        let e = RouteError::CongestionUnresolved {
            iterations: 5,
            overused: 2,
        };
        assert!(e.to_string().contains('5'));
    }
}

//! Process-global rip-up counters.
//!
//! Same pattern as the `sim` and `place` counters: relaxed atomics
//! that only ever add, scraped at scope boundaries via [`snapshot`] +
//! [`RouteCounters::delta_since`]. Deltas are order-independent, so a
//! work-stealing fleet aggregating per-request deltas produces the
//! same totals as a serial run — which keeps the exported
//! `route_nets_ripped_total` metric family byte-identical serial vs
//! fleet.

use std::sync::atomic::{AtomicU64, Ordering};

static RIPPED_INCREMENTAL: AtomicU64 = AtomicU64::new(0);
static RIPPED_FULL: AtomicU64 = AtomicU64::new(0);

/// A point-in-time snapshot of the rip-up counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCounters {
    /// Nets ripped (partially or fully) by incremental ECO routing —
    /// surviving route trees were preserved and seeded.
    pub nets_ripped_incremental: u64,
    /// Nets ripped by full/tile-clearing re-routes (the masked ECO
    /// pass, coarse-granularity path, and full-re-route fallbacks).
    pub nets_ripped_full: u64,
}

impl RouteCounters {
    /// Counter increments since `before` (saturating, so a stale
    /// snapshot cannot underflow).
    pub fn delta_since(&self, before: &Self) -> Self {
        Self {
            nets_ripped_incremental: self
                .nets_ripped_incremental
                .saturating_sub(before.nets_ripped_incremental),
            nets_ripped_full: self
                .nets_ripped_full
                .saturating_sub(before.nets_ripped_full),
        }
    }
}

/// Reads the current totals.
pub fn snapshot() -> RouteCounters {
    RouteCounters {
        nets_ripped_incremental: RIPPED_INCREMENTAL.load(Ordering::Relaxed),
        nets_ripped_full: RIPPED_FULL.load(Ordering::Relaxed),
    }
}

/// Records `n` nets ripped on the incremental ECO path.
pub fn record_incremental_rips(n: u64) {
    RIPPED_INCREMENTAL.fetch_add(n, Ordering::Relaxed);
}

/// Records `n` nets ripped on a full/tile-clearing path.
pub fn record_full_rips(n: u64) {
    RIPPED_FULL.fetch_add(n, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_accumulate_and_saturate() {
        let before = snapshot();
        record_incremental_rips(3);
        record_full_rips(9);
        let d = snapshot().delta_since(&before);
        assert!(d.nets_ripped_incremental >= 3);
        assert!(d.nets_ripped_full >= 9);
        let future = RouteCounters {
            nets_ripped_incremental: u64::MAX,
            nets_ripped_full: u64::MAX,
        };
        assert_eq!(snapshot().delta_since(&future), RouteCounters::default());
    }
}

//! Negotiated-congestion routing (PathFinder) with locked resources.
//!
//! The router serves the tiling flow's two modes:
//!
//! * **full routing** — every net of a placed design is routed over the
//!   whole device (paper step 2 and the full re-route baseline);
//! * **tile-confined routing** — only the nets inside cleared tiles are
//!   re-routed. Nodes used by the rest of the design are *locked*
//!   (hard-unavailable), expansion is restricted to the tile
//!   rectangle, and nets crossing the tile boundary terminate on their
//!   locked *interface* wire nodes instead of their far-side pins.
//!   This is how "if one side of an interface is locked, the interface
//!   itself is locked" (§3.2) becomes operational.
//!
//! Routing effort is metered in wavefront *node expansions*, the
//! second component of Figure 5's CAD-effort speedups.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod pathfinder;
pub mod request;

pub use pathfinder::{route, RouteError, RouteOptions, RouteStats};
pub use request::{derive_requests, normalize_routes, route_design, ConnectionRequest};

//! Connection requests: what the router is asked to connect.

use fpga::{Placement, Routing, RoutingGraph};
use netlist::{NetId, Netlist, NetlistError};

use crate::pathfinder::{route, RouteError, RouteOptions, RouteStats};

/// One net's routing problem: a source node and sink nodes.
///
/// For ordinary nets these are the driver's output pin and every
/// sink's input pin. The tiling flow also builds *partial* requests
/// whose source or sinks are locked interface wire nodes on a tile
/// boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionRequest {
    /// The net being routed (keys the route database entry).
    pub net: NetId,
    /// Start node (output pin, pad, or interface wire).
    pub source: fpga::NodeId,
    /// Target nodes (input pins, pads, or interface wires).
    pub sinks: Vec<fpga::NodeId>,
}

/// Builds full connection requests for every routable net of a placed
/// design.
///
/// Nets are routable when their driver and at least one sink are
/// placed; unplaced sinks are skipped (they belong to cleared tiles and
/// get their own partial requests from the tiling flow).
///
/// # Errors
///
/// Propagates netlist lookup failures.
pub fn derive_requests(
    nl: &Netlist,
    placement: &Placement,
    rrg: &RoutingGraph,
) -> Result<Vec<ConnectionRequest>, NetlistError> {
    let mut out = Vec::new();
    for (net_id, net) in nl.nets() {
        let Some(driver) = net.driver else { continue };
        let Some(src_loc) = placement.loc_of(driver) else {
            continue;
        };
        let source = rrg.source_node(src_loc);
        let mut sinks = Vec::with_capacity(net.sinks.len());
        for s in &net.sinks {
            let Some(sink_loc) = placement.loc_of(s.cell) else {
                continue;
            };
            sinks.push(rrg.sink_node(sink_loc, s.pin));
        }
        if sinks.is_empty() {
            continue;
        }
        out.push(ConnectionRequest {
            net: net_id,
            source,
            sinks,
        });
    }
    Ok(out)
}

/// Convenience: derive requests from a placement and route them all.
///
/// # Errors
///
/// Returns [`RouteError`] on congestion failure, or panics never; the
/// netlist error is wrapped into [`RouteError::BadRequest`].
pub fn route_design(
    nl: &Netlist,
    placement: &Placement,
    rrg: &RoutingGraph,
    routing: &mut Routing,
    options: &RouteOptions,
) -> Result<RouteStats, RouteError> {
    let requests =
        derive_requests(nl, placement, rrg).map_err(|e| RouteError::BadRequest(e.to_string()))?;
    route(rrg, &requests, routing, options)
}

/// Rewrites every given net's route tree as one contiguous
/// source-pin → sink-pin path per netlist sink, in sink order.
///
/// PathFinder stores branch paths rooted anywhere on the growing tree,
/// which makes per-sink delay extraction undercount shared prefixes;
/// normalized trees make `RouteTree::sink_delay(k)` exact. Nets that
/// cannot be fully traced (unplaced sinks, partial trees) are left
/// untouched. Occupancy is preserved or reduced (dead branches are
/// pruned).
pub fn normalize_routes(
    nl: &Netlist,
    placement: &Placement,
    rrg: &RoutingGraph,
    routing: &mut Routing,
    nets: impl IntoIterator<Item = NetId>,
) {
    use std::collections::HashMap;
    for net_id in nets {
        let Ok(net) = nl.net(net_id) else { continue };
        let Some(driver) = net.driver else { continue };
        let Some(driver_loc) = placement.loc_of(driver) else {
            continue;
        };
        let source = rrg.source_node(driver_loc);
        let Some(tree) = routing.route(net_id) else {
            continue;
        };
        let mut pred: HashMap<fpga::NodeId, fpga::NodeId> = HashMap::new();
        for path in &tree.paths {
            for w in path.windows(2) {
                pred.entry(w[1]).or_insert(w[0]);
            }
        }
        let bound = tree.nodes().len() + 1;
        let mut new_paths = Vec::with_capacity(net.sinks.len());
        let mut ok = true;
        for s in &net.sinks {
            let Some(loc) = placement.loc_of(s.cell) else {
                ok = false;
                break;
            };
            let pin = rrg.sink_node(loc, s.pin);
            let mut path = vec![pin];
            let mut cur = pin;
            let mut hops = 0;
            while cur != source {
                let Some(&p) = pred.get(&cur) else {
                    ok = false;
                    break;
                };
                path.push(p);
                cur = p;
                hops += 1;
                if hops > bound {
                    ok = false;
                    break;
                }
            }
            if !ok {
                break;
            }
            path.reverse();
            new_paths.push(path);
        }
        if ok {
            routing.clear_route(net_id);
            routing.set_route(net_id, fpga::RouteTree { paths: new_paths });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga::{BelLoc, ClbSlot, Device};
    use netlist::TruthTable;

    #[test]
    fn derive_skips_unplaced() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let u = nl
            .add_lut("u", TruthTable::not(), &[nl.cell_output(a).unwrap()])
            .unwrap();
        nl.add_output("y", nl.cell_output(u).unwrap()).unwrap();
        let dev = Device::new(4, 4, 4, 2).unwrap();
        let rrg = RoutingGraph::new(&dev);
        let mut p = Placement::new(nl.cell_capacity());
        // Only a and u placed; y unplaced -> u's output net has no sinks.
        p.place(
            a,
            BelLoc::Iob(fpga::IobSite {
                side: fpga::IobSide::West,
                pos: 0,
                k: 0,
            }),
        )
        .unwrap();
        p.place(u, BelLoc::clb(1, 1, ClbSlot::LutF)).unwrap();
        let reqs = derive_requests(&nl, &p, &rrg).unwrap();
        assert_eq!(reqs.len(), 1); // only a -> u
        assert_eq!(reqs[0].sinks.len(), 1);
    }
}

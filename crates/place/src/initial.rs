//! Initial (constructive) placement of unplaced cells.

use fpga::{BelLoc, ClbSlot, Device, Placement, Rect};
use netlist::{CellId, CellKind, Netlist};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::Constraints;
use crate::sa::PlaceError;

/// True if `kind` may occupy `loc`.
pub(crate) fn compatible(kind: &CellKind, loc: BelLoc) -> bool {
    match (kind, loc) {
        (CellKind::Lut(_), BelLoc::Clb { slot, .. }) => slot.is_lut(),
        (CellKind::Ff { .. }, BelLoc::Clb { slot, .. }) => slot.is_ff(),
        (CellKind::Input | CellKind::Output, BelLoc::Iob(_)) => true,
        _ => false,
    }
}

/// The slots of `kind` available at a CLB coordinate.
pub(crate) fn slots_for(kind: &CellKind) -> &'static [ClbSlot] {
    match kind {
        CellKind::Lut(_) => &[ClbSlot::LutF, ClbSlot::LutG],
        CellKind::Ff { .. } => &[ClbSlot::FfA, ClbSlot::FfB],
        _ => &[],
    }
}

/// Places every currently unplaced live cell at a random free
/// compatible location inside its region constraint.
///
/// Already-placed cells are left untouched, so this doubles as the
/// "fill the cleared tile" step of the ECO flow.
///
/// # Errors
///
/// Returns [`PlaceError::NoSpace`] if a cell has no free compatible
/// site in its region.
pub fn initial_place(
    nl: &Netlist,
    device: &Device,
    constraints: &Constraints,
    placement: &mut Placement,
    seed: u64,
) -> Result<(), PlaceError> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1CE_BA5E);
    for (id, cell) in nl.cells() {
        if placement.loc_of(id).is_some() {
            continue;
        }
        let loc = find_free(nl, device, constraints, placement, &mut rng, id)?;
        placement
            .place(id, loc)
            .map_err(|_| PlaceError::NoSpace(id))?;
        let _ = cell;
    }
    Ok(())
}

/// Finds a free compatible location for `cell` (random, then sweep).
pub(crate) fn find_free(
    nl: &Netlist,
    device: &Device,
    constraints: &Constraints,
    placement: &Placement,
    rng: &mut SmallRng,
    cell: CellId,
) -> Result<BelLoc, PlaceError> {
    let kind = &nl.cell(cell).map_err(PlaceError::Netlist)?.kind;
    match kind {
        CellKind::Input | CellKind::Output => {
            let sites: Vec<_> = device.iob_sites().collect();
            // Random probes, then linear sweep.
            for _ in 0..64 {
                let s = sites[rng.gen_range(0..sites.len())];
                if placement.is_free(BelLoc::Iob(s)) {
                    return Ok(BelLoc::Iob(s));
                }
            }
            sites
                .into_iter()
                .map(BelLoc::Iob)
                .find(|&l| placement.is_free(l))
                .ok_or(PlaceError::NoSpace(cell))
        }
        CellKind::Lut(_) | CellKind::Ff { .. } => {
            let whole = [device.bounds()];
            let raw_rects: &[Rect] = constraints.region_of(cell).unwrap_or(&whole);
            let rects: Vec<Rect> = raw_rects
                .iter()
                .filter_map(|&r| clip(r, device.bounds()))
                .collect();
            if rects.is_empty() {
                return Err(PlaceError::NoSpace(cell));
            }
            let slots = slots_for(kind);
            for _ in 0..128 {
                let region = rects[rng.gen_range(0..rects.len())];
                let x = rng.gen_range(region.x0..=region.x1);
                let y = rng.gen_range(region.y0..=region.y1);
                let slot = slots[rng.gen_range(0..slots.len())];
                let loc = BelLoc::clb(x, y, slot);
                if placement.is_free(loc) {
                    return Ok(loc);
                }
            }
            for region in &rects {
                for c in region.iter() {
                    for &slot in slots {
                        let loc = BelLoc::Clb { coord: c, slot };
                        if placement.is_free(loc) {
                            return Ok(loc);
                        }
                    }
                }
            }
            Err(PlaceError::NoSpace(cell))
        }
    }
}

/// Intersects two rectangles.
pub(crate) fn clip(a: Rect, b: Rect) -> Option<Rect> {
    if !a.intersects(&b) {
        return None;
    }
    Some(Rect::new(
        a.x0.max(b.x0),
        a.y0.max(b.y0),
        a.x1.min(b.x1),
        a.y1.min(b.y1),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::TruthTable;

    fn design(luts: usize) -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a").unwrap();
        let mut prev = nl.cell_output(a).unwrap();
        for i in 0..luts {
            let u = nl
                .add_lut(format!("u{i}"), TruthTable::not(), &[prev])
                .unwrap();
            prev = nl.cell_output(u).unwrap();
        }
        nl.add_output("y", prev).unwrap();
        nl
    }

    #[test]
    fn places_everything() {
        let nl = design(10);
        let dev = Device::new(4, 4, 4, 2).unwrap();
        let mut p = Placement::new(nl.cell_capacity());
        initial_place(&nl, &dev, &Constraints::free(), &mut p, 3).unwrap();
        assert_eq!(p.num_placed(), nl.num_cells());
        for (id, cell) in nl.cells() {
            assert!(compatible(&cell.kind, p.loc_of(id).unwrap()));
        }
    }

    #[test]
    fn honors_region() {
        let nl = design(6);
        let dev = Device::new(8, 8, 4, 2).unwrap();
        let region = Rect::new(2, 2, 3, 3);
        let mut cons = Constraints::free();
        for (id, cell) in nl.cells() {
            if cell.is_logic() {
                cons.confine(id, region);
            }
        }
        let mut p = Placement::new(nl.cell_capacity());
        initial_place(&nl, &dev, &cons, &mut p, 3).unwrap();
        for (id, cell) in nl.cells() {
            if cell.is_logic() {
                let loc = p.loc_of(id).unwrap();
                assert!(region.contains(loc.coord().unwrap()));
            }
        }
    }

    #[test]
    fn overfull_region_errors() {
        let nl = design(10); // 10 LUTs into a 1-CLB region (2 LUT slots)
        let dev = Device::new(8, 8, 4, 2).unwrap();
        let mut cons = Constraints::free();
        for (id, cell) in nl.cells() {
            if cell.is_logic() {
                cons.confine(id, Rect::new(0, 0, 0, 0));
            }
        }
        let mut p = Placement::new(nl.cell_capacity());
        let err = initial_place(&nl, &dev, &cons, &mut p, 3).unwrap_err();
        assert!(matches!(err, PlaceError::NoSpace(_)));
    }

    #[test]
    fn preserves_existing_locations() {
        let nl = design(2);
        let dev = Device::new(4, 4, 4, 2).unwrap();
        let u0 = nl.find_cell("u0").unwrap();
        let mut p = Placement::new(nl.cell_capacity());
        let pinned = BelLoc::clb(3, 3, ClbSlot::LutG);
        p.place(u0, pinned).unwrap();
        initial_place(&nl, &dev, &Constraints::free(), &mut p, 3).unwrap();
        assert_eq!(p.loc_of(u0), Some(pinned));
    }
}
